"""The data pre-processor (paper §3.2, Fig. 5): decompress -> categorize ->
label, producing per-tag raw subset blobs ready for dispatch.

This is the work ADA *moves off the compute nodes*: it happens once, on a
storage node, when a dataset arrives for permanent storage -- instead of on
every read, on a compute node, as the traditional workflow does.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.categorizer import Categorizer
from repro.core.decompressor import Decompressor
from repro.core.labeler import LabelMap
from repro.core.tags import TagPolicy
from repro.formats.pdb import parse_pdb
from repro.formats.topology import Topology
from repro.formats.trajectory import Trajectory
from repro.formats.dcd import encode_dcd
from repro.formats.xtc import encode_raw, encode_xtc, resolve_workers

__all__ = ["DataPreProcessor", "PreProcessResult", "SUBSET_ENCODERS"]

#: How dispatched subsets are serialized.  The paper stores them
#: decompressed ("raw") so reads skip inflation entirely; "xtc" trades
#: read-time CPU for ~3x less backend storage (the design-choice ablation
#: in ``bench_ablation_subset_format.py``); "dcd" is raw-volume but in the
#: interoperable CHARMM layout.
SUBSET_ENCODERS = {
    "raw": encode_raw,
    "xtc": encode_xtc,
    "dcd": encode_dcd,
}


@dataclass
class PreProcessResult:
    """Everything the pre-processor hands to the I/O determinator."""

    label_map: LabelMap
    subsets: Dict[str, bytes]  # tag -> raw-container blob
    raw_nbytes: int  # decompressed size of the full dataset
    compressed_nbytes: int  # arriving (compressed) size
    nframes: int

    def subset_nbytes(self, tag: str) -> int:
        return len(self.subsets[tag])

    @property
    def tags(self) -> list:
        return sorted(self.subsets)


class DataPreProcessor:
    """Storage-side pipeline: structure analysis + dataset division."""

    def __init__(
        self,
        policy: TagPolicy = None,
        subset_format: str = "raw",
        workers: Optional[int] = None,
    ):
        if subset_format not in SUBSET_ENCODERS:
            raise ValueError(
                f"unknown subset format {subset_format!r}; "
                f"have {sorted(SUBSET_ENCODERS)}"
            )
        self.policy = policy or TagPolicy.protein_vs_misc()
        self.subset_format = subset_format
        self.workers = workers
        self.categorizer = Categorizer(self.policy)
        self.decompressor = Decompressor(workers=workers)

    def analyze_structure(self, pdb_text: str) -> LabelMap:
        """Algorithm 1 applied to a ``.pdb`` file."""
        topology, _ = parse_pdb(pdb_text)
        return self.categorizer.label(topology)

    def process(self, pdb_text: str, trajectory_blob: bytes) -> PreProcessResult:
        """Full pre-processing of one arriving ``(.pdb, .xtc)`` pair."""
        topology, _ = parse_pdb(pdb_text)
        return self.process_topology(topology, trajectory_blob)

    def process_topology(
        self, topology: Topology, trajectory_blob: bytes
    ) -> PreProcessResult:
        """Pre-process with an already-parsed structure."""
        label_map = self.categorizer.label(topology)
        trajectory = self.decompressor.decompress(trajectory_blob)
        return self._divide(label_map, trajectory, len(trajectory_blob))

    def process_chunk(
        self, label_map: LabelMap, trajectory_blob: bytes
    ) -> PreProcessResult:
        """Pre-process an *appended* chunk under an existing label map.

        Streaming ingestion: an MD engine keeps emitting ``.xtc`` segments
        for a structure ADA has already analyzed; only division is needed.
        """
        trajectory = self.decompressor.decompress(trajectory_blob)
        return self._divide(label_map, trajectory, len(trajectory_blob))

    def _divide(
        self, label_map: LabelMap, trajectory: Trajectory, compressed_nbytes: int
    ) -> PreProcessResult:
        encoder = SUBSET_ENCODERS[self.subset_format]
        split = self.categorizer.split(trajectory, label_map)
        nworkers = resolve_workers(self.workers, len(split))
        if nworkers > 1:
            tags = list(split)
            with ThreadPoolExecutor(max_workers=nworkers) as pool:
                blobs = list(pool.map(lambda t: encoder(split[t]), tags))
            subsets = dict(zip(tags, blobs))
        else:
            subsets = {tag: encoder(sub) for tag, sub in split.items()}
        return PreProcessResult(
            label_map=label_map,
            subsets=subsets,
            raw_nbytes=trajectory.nbytes,
            compressed_nbytes=compressed_nbytes,
            nframes=trajectory.nframes,
        )
