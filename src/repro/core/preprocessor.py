"""The data pre-processor (paper §3.2, Fig. 5): decompress -> categorize ->
label, producing per-tag raw subset blobs ready for dispatch.

This is the work ADA *moves off the compute nodes*: it happens once, on a
storage node, when a dataset arrives for permanent storage -- instead of on
every read, on a compute node, as the traditional workflow does.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.core.categorizer import Categorizer
from repro.core.decompressor import Decompressor
from repro.core.lod import lod_max_error, lod_tag
from repro.formats.codecexec import CodecPool, resolve_backend
from repro.core.labeler import LabelMap
from repro.core.tags import TagPolicy
from repro.formats.pdb import parse_pdb
from repro.formats.topology import Topology
from repro.formats.trajectory import Trajectory
from repro.formats.dcd import encode_dcd
from repro.formats.xtc import encode_raw, encode_xtc, resolve_workers

__all__ = [
    "DataPreProcessor",
    "PreProcessResult",
    "SUBSET_ENCODERS",
    "WindowResult",
]

#: How dispatched subsets are serialized.  The paper stores them
#: decompressed ("raw") so reads skip inflation entirely; "xtc" trades
#: read-time CPU for ~3x less backend storage (the design-choice ablation
#: in ``bench_ablation_subset_format.py``); "dcd" is raw-volume but in the
#: interoperable CHARMM layout.
SUBSET_ENCODERS = {
    "raw": encode_raw,
    "xtc": encode_xtc,
    "dcd": encode_dcd,
}


@dataclass
class PreProcessResult:
    """Everything the pre-processor hands to the I/O determinator."""

    label_map: LabelMap
    subsets: Dict[str, bytes]  # tag -> raw-container blob
    raw_nbytes: int  # decompressed size of the full dataset
    compressed_nbytes: int  # arriving (compressed) size
    nframes: int

    def subset_nbytes(self, tag: str) -> int:
        return len(self.subsets[tag])

    @property
    def tags(self) -> list:
        return sorted(self.subsets)


@dataclass
class WindowResult:
    """One pre-processed ingest window, ready for write-behind dispatch.

    The streaming counterpart of :class:`PreProcessResult`: same per-tag
    encoded subset blobs, but covering frames ``[start, stop)`` of the
    arriving stream only, so the dispatcher can start writing window 0
    while window 1 is still being categorized.
    """

    index: int
    start: int
    stop: int
    subsets: Dict[str, bytes]  # tag -> encoded container for this window
    raw_nbytes: int  # decompressed size of the window
    #: Decoded ``(nframes, natoms, 3)`` float32 coordinates of the window,
    #: populated only when the stream was opened with ``keep_coords=True``
    #: (the fused in-situ analysis stage reads them before the window's
    #: buffers are released, then nulls the field).
    coords: Optional[object] = None

    @property
    def nframes(self) -> int:
        return self.stop - self.start

    @property
    def nbytes(self) -> int:
        """Encoded bytes this window holds in the write-behind buffer."""
        return sum(len(blob) for blob in self.subsets.values())

    @property
    def tags(self) -> list:
        return sorted(self.subsets)


class DataPreProcessor:
    """Storage-side pipeline: structure analysis + dataset division."""

    def __init__(
        self,
        policy: TagPolicy = None,
        subset_format: str = "raw",
        workers: Optional[int] = None,
        codec_backend: str = "auto",
        lod_precision: Optional[float] = None,
        metrics=None,
    ):
        if subset_format not in SUBSET_ENCODERS:
            raise ValueError(
                f"unknown subset format {subset_format!r}; "
                f"have {sorted(SUBSET_ENCODERS)}"
            )
        resolve_backend(codec_backend)  # validate eagerly
        if lod_precision is not None:
            lod_max_error(lod_precision)  # validates > 0
        self.policy = policy or TagPolicy.protein_vs_misc()
        self.subset_format = subset_format
        self.workers = workers
        self.codec_backend = codec_backend
        self.lod_precision = (
            float(lod_precision) if lod_precision is not None else None
        )
        self.metrics = metrics
        self.categorizer = Categorizer(self.policy)
        self.decompressor = Decompressor(
            workers=workers, codec_backend=codec_backend, metrics=metrics
        )
        # Persistent encode pool: streaming ingestion calls ``_divide``
        # once per appended chunk/window, so constructing (and tearing
        # down) a worker pool per call would churn on the hot path.
        # Created lazily on the first parallel divide.  Always
        # thread-backed: the per-tag fan-out runs unpicklable closures
        # over shared split arrays; the process backend parallelizes
        # *inside* each xtc encode instead (GOF shared-memory workers).
        self._executor: Optional[CodecPool] = None

    def _pool_size(self) -> int:
        if self.workers is None:
            return 1
        size = os.cpu_count() or 1 if self.workers == 0 else int(self.workers)
        return max(1, size)

    def _pool(self) -> Optional[CodecPool]:
        """The lazily-created persistent encode pool (None when serial)."""
        size = self._pool_size()
        if size <= 1:
            return None
        if self._executor is None:
            self._executor = CodecPool(
                size, backend="thread", metrics=self.metrics
            )
        return self._executor

    def close(self) -> None:
        """Shut down the persistent pools (idempotent)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        self.decompressor.close()

    def __enter__(self) -> "DataPreProcessor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def analyze_structure(self, pdb_text: str) -> LabelMap:
        """Algorithm 1 applied to a ``.pdb`` file."""
        topology, _ = parse_pdb(pdb_text)
        return self.categorizer.label(topology)

    def process(self, pdb_text: str, trajectory_blob: bytes) -> PreProcessResult:
        """Full pre-processing of one arriving ``(.pdb, .xtc)`` pair."""
        topology, _ = parse_pdb(pdb_text)
        return self.process_topology(topology, trajectory_blob)

    def process_topology(
        self, topology: Topology, trajectory_blob: bytes
    ) -> PreProcessResult:
        """Pre-process with an already-parsed structure."""
        label_map = self.categorizer.label(topology)
        trajectory = self.decompressor.decompress(trajectory_blob)
        return self._divide(label_map, trajectory, len(trajectory_blob))

    def process_chunk(
        self, label_map: LabelMap, trajectory_blob: bytes
    ) -> PreProcessResult:
        """Pre-process an *appended* chunk under an existing label map.

        Streaming ingestion: an MD engine keeps emitting ``.xtc`` segments
        for a structure ADA has already analyzed; only division is needed.
        """
        trajectory = self.decompressor.decompress(trajectory_blob)
        return self._divide(label_map, trajectory, len(trajectory_blob))

    def process_windows(
        self,
        label_map: LabelMap,
        trajectory_blob: bytes,
        window_frames: int,
        keep_coords: bool = False,
    ) -> Iterator[WindowResult]:
        """Pre-process an arriving stream one GOF-aligned window at a time.

        Lazily decodes, categorizes, and encodes ``window_frames``-frame
        windows (compressed streams round up to whole GOFs): each
        ``next()`` performs one window's CPU work, which is what the
        streaming ingest pipeline overlaps with backend dispatch of the
        previous windows.  Every subset byte across all windows equals a
        monolithic :meth:`process_chunk` split of the same blob.

        ``keep_coords=True`` additionally exposes each window's decoded
        coordinate array on :attr:`WindowResult.coords` -- the in-situ
        analysis stage consumes it without a second decompression pass.
        """
        for window in self.decompressor.iter_windows(
            trajectory_blob, window_frames
        ):
            yield WindowResult(
                index=window.index,
                start=window.start,
                stop=window.stop,
                subsets=self._encode_split(label_map, window.trajectory),
                raw_nbytes=window.raw_nbytes,
                coords=window.trajectory.coords if keep_coords else None,
            )

    def _encode_split(
        self, label_map: LabelMap, trajectory: Trajectory
    ) -> Dict[str, bytes]:
        """Categorize + encode one trajectory (or window) into subset blobs.

        With ``lod_precision`` configured, each base subset also encodes a
        coarse-quantized XTC sibling under its ``lod:`` tag -- same
        frames, same chunk cadence, a fraction of the bytes (see
        :mod:`repro.core.lod`) -- so every dispatch/index/cache mechanism
        downstream applies to the cheap tier unchanged.
        """
        encoder = SUBSET_ENCODERS[self.subset_format]
        split = self.categorizer.split(trajectory, label_map)
        parallel_xtc = self.subset_format == "xtc" and self._pool_size() > 1
        # out-tag -> zero-arg encode job, base tags first (the serial
        # baseline's chunk-claim order), then the LOD siblings.
        jobs: Dict[str, object] = {}
        for tag, sub in split.items():
            if parallel_xtc:
                jobs[tag] = lambda s=sub: encoder(
                    s, workers=self.workers, backend=self.codec_backend
                )
            else:
                jobs[tag] = lambda s=sub: encoder(s)
        if self.lod_precision is not None:
            for tag, sub in split.items():
                if parallel_xtc:
                    jobs[lod_tag(tag)] = lambda s=sub: encode_xtc(
                        s, precision=self.lod_precision,
                        workers=self.workers, backend=self.codec_backend,
                    )
                else:
                    jobs[lod_tag(tag)] = lambda s=sub: encode_xtc(
                        s, precision=self.lod_precision
                    )
        if parallel_xtc:
            # Parallelize inside each compressed encode (GOF fan-out on
            # the configured backend) rather than across tags: subset
            # sizes are wildly uneven, so per-GOF work units balance far
            # better than per-tag ones.
            return {tag: job() for tag, job in jobs.items()}
        nworkers = resolve_workers(self.workers, len(jobs))
        pool = self._pool() if nworkers > 1 else None
        if pool is not None:
            tags = list(jobs)
            blobs = pool.run(lambda t: jobs[t](), [(t,) for t in tags])
            return dict(zip(tags, blobs))
        return {tag: job() for tag, job in jobs.items()}

    def _divide(
        self, label_map: LabelMap, trajectory: Trajectory, compressed_nbytes: int
    ) -> PreProcessResult:
        subsets = self._encode_split(label_map, trajectory)
        return PreProcessResult(
            label_map=label_map,
            subsets=subsets,
            raw_nbytes=trajectory.nbytes,
            compressed_nbytes=compressed_nbytes,
            nframes=trajectory.nframes,
        )
