"""The data categorizer.

Splits a decoded trajectory into per-tag sub-trajectories using the label
map built from the ``.pdb`` structure.  Selection across all frames is one
vectorized fancy-index per tag (see :meth:`Trajectory.select_atoms`).
"""

from __future__ import annotations

from typing import Dict

from repro.core.labeler import LabelMap, build_label_map
from repro.core.tags import TagPolicy
from repro.errors import TopologyError
from repro.formats.topology import Topology
from repro.formats.trajectory import Trajectory

__all__ = ["Categorizer"]


class Categorizer:
    """Applies a :class:`TagPolicy` to structures and trajectories."""

    def __init__(self, policy: TagPolicy):
        self.policy = policy

    def label(self, topology: Topology) -> LabelMap:
        """Build the label map for a structure (Algorithm 1)."""
        return build_label_map(topology, self.policy)

    def split(
        self, trajectory: Trajectory, label_map: LabelMap
    ) -> Dict[str, Trajectory]:
        """Divide a trajectory into per-tag sub-trajectories.

        Every atom lands in exactly one subset; frame counts are preserved.
        """
        if trajectory.natoms != label_map.natoms:
            raise TopologyError(
                f"trajectory has {trajectory.natoms} atoms but label map "
                f"covers {label_map.natoms}"
            )
        return {
            tag: trajectory.select_atoms(label_map.indices(tag))
            for tag in label_map.tags
        }

    def split_topology(
        self, topology: Topology, label_map: LabelMap
    ) -> Dict[str, Topology]:
        """Per-tag structure subsets (for writing per-subset PDBs)."""
        if topology.natoms != label_map.natoms:
            raise TopologyError("topology/label-map atom count mismatch")
        return {
            tag: topology.select(label_map.indices(tag)) for tag in label_map.tags
        }
