"""The I/O dispatcher: routes tagged subsets to their backends.

"Coupled with the tags and target storage path passed from the data
pre-processor, the I/O dispatcher sends each data subset to an underlying
file system" (§3.3).  Built on the PLFS container layer so each backend
sees ordinary files (Fig. 6); the placement policy picks flash for active
tags and rotation for the rest.

Flash is small (the cluster's SSD pool totals 1.5 TB): when the preferred
backend is full, the dispatcher *spills* the subset to the inactive
backend instead of failing the ingest -- the dataset stays complete, just
slower, and the spill is recorded for operators.  Disable with
``spill_on_full=False`` to get the strict fail-fast behaviour.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.core.tags import PlacementPolicy
from repro.errors import StorageFullError
from repro.faults.retry import Retrier
from repro.fs.plfs import PLFS, IndexRecord
from repro.sim import AllOf, Simulator

__all__ = ["IODispatcher"]


class IODispatcher:
    """Writes per-tag subsets through PLFS according to a placement policy.

    Subset writes run under the retrier, so a transient backend failure is
    retried with backoff rather than failing the ingest.  ``StorageFullError``
    is *not* a fault -- it propagates straight to the spill logic.
    """

    def __init__(
        self,
        sim: Simulator,
        plfs: PLFS,
        placement: PlacementPolicy,
        spill_on_full: bool = True,
        retrier: Optional[Retrier] = None,
    ):
        self.sim = sim
        self.plfs = plfs
        self.placement = placement
        self.spill_on_full = spill_on_full
        self.retrier = retrier if retrier is not None else Retrier(sim)
        self.dispatched_bytes: Dict[str, float] = {}
        #: (logical, tag, preferred backend, actual backend) spill records.
        self.spills: List[Tuple[str, str, str, str]] = []

    def dispatch(
        self,
        logical: str,
        subsets: Dict[str, bytes],
        request_size: Optional[int] = None,
    ) -> Generator:
        """Process: write every subset to its backend, backends in parallel."""
        procs = []
        for tag in sorted(subsets):
            data = subsets[tag]
            procs.append(
                self.sim.process(
                    self._dispatch_one(logical, tag, data=data, nbytes=None,
                                       request_size=request_size),
                    name=f"dispatch:{logical}#{tag}",
                )
            )
        records = yield AllOf(self.sim, procs)
        return records

    def dispatch_virtual(
        self, logical: str, subset_sizes: Dict[str, int]
    ) -> Generator:
        """Process: dispatch size-only subsets (paper-scale modeled mode)."""
        procs = [
            self.sim.process(
                self._dispatch_one(logical, tag, data=None, nbytes=size,
                                   request_size=None),
                name=f"dispatch:{logical}#{tag}",
            )
            for tag, size in sorted(subset_sizes.items())
        ]
        records = yield AllOf(self.sim, procs)
        return records

    def backend_for(self, tag: str) -> str:
        return self.placement.backend_for(tag)

    def _dispatch_one(
        self,
        logical: str,
        tag: str,
        data: Optional[bytes],
        nbytes: Optional[int],
        request_size: Optional[int],
    ) -> Generator:
        preferred = self.placement.backend_for(tag)
        fallback = (
            self.placement.inactive_backend
            if self.spill_on_full and preferred != self.placement.inactive_backend
            else None
        )
        try:
            record: IndexRecord = yield from self.retrier.call(
                lambda: self.plfs.write_subset(
                    logical,
                    tag,
                    backend=preferred,
                    data=data,
                    nbytes=nbytes,
                    request_size=request_size,
                ),
                key=f"write:{logical}#{tag}",
            )
        except StorageFullError:
            if fallback is None:
                raise
            record = yield from self.retrier.call(
                lambda: self.plfs.write_subset(
                    logical,
                    tag,
                    backend=fallback,
                    data=data,
                    nbytes=nbytes,
                    request_size=request_size,
                ),
                key=f"spill:{logical}#{tag}",
            )
            self.spills.append((logical, tag, preferred, fallback))
        size = record.nbytes
        self.dispatched_bytes[tag] = self.dispatched_bytes.get(tag, 0.0) + size
        return record
