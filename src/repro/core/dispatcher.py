"""The I/O dispatcher: routes tagged subsets to their backends.

"Coupled with the tags and target storage path passed from the data
pre-processor, the I/O dispatcher sends each data subset to an underlying
file system" (§3.3).  Built on the PLFS container layer so each backend
sees ordinary files (Fig. 6); the placement policy picks flash for active
tags and rotation for the rest.

Flash is small (the cluster's SSD pool totals 1.5 TB): when the preferred
backend is full, the dispatcher *spills* the subset to the inactive
backend instead of failing the ingest -- the dataset stays complete, just
slower, and the spill is recorded for operators.  Disable with
``spill_on_full=False`` to get the strict fail-fast behaviour.

The streaming ingest pipeline drives :meth:`dispatch_run`: one window's
``(tag, data)`` entries arrive in deterministic tag order, stretches bound
for the same backend are written as one coalesced chunk run (one metadata
operation, one seek-amortized transfer -- the write-side mirror of the
retriever's request coalescing), and a ``StorageFullError`` spills the
*whole* run to the inactive backend.  Traffic counters live in the shared
:class:`MetricsRegistry`, so the write path shows up in the same
Prometheus/JSON exports as the read path.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.core.tags import PlacementPolicy
from repro.errors import StorageFullError
from repro.faults.retry import Retrier
from repro.fs.plfs import PLFS, IndexRecord
from repro.obs.metrics import Counter, MetricsRegistry, metric_view
from repro.obs.trace import span
from repro.sim import AllOf, Simulator

__all__ = ["IODispatcher"]


class IODispatcher:
    """Writes per-tag subsets through PLFS according to a placement policy.

    Subset writes run under the retrier, so a transient backend failure is
    retried with backoff rather than failing the ingest.  ``StorageFullError``
    is *not* a fault -- it propagates straight to the spill logic.
    """

    writes = metric_view("_metric_fields", key="writes")
    spill_count = metric_view("_metric_fields", key="spill_count")
    coalesced_runs = metric_view("_metric_fields", key="coalesced_runs")
    coalesced_chunks = metric_view("_metric_fields", key="coalesced_chunks")
    requests_saved = metric_view("_metric_fields", key="requests_saved")

    def __init__(
        self,
        sim: Simulator,
        plfs: PLFS,
        placement: PlacementPolicy,
        spill_on_full: bool = True,
        retrier: Optional[Retrier] = None,
        metrics: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Dict[str, str]] = None,
    ):
        self.sim = sim
        self.plfs = plfs
        self.placement = placement
        self.spill_on_full = spill_on_full
        self.retrier = retrier if retrier is not None else Retrier(sim)
        # Registry-backed accounting (mirrors the retriever): the views
        # above keep ``+=`` call sites working while the exporters see the
        # same numbers.  ``metric_labels`` keep per-dispatcher series
        # distinct when several dispatchers (shards) share one registry.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metric_labels = dict(metric_labels or {})
        extra = self.metric_labels
        self._metric_fields = {
            "writes": self.metrics.counter("dispatcher_writes_total", **extra),
            "spill_count": self.metrics.counter(
                "dispatcher_spills_total", **extra
            ),
            "coalesced_runs": self.metrics.counter(
                "dispatcher_coalesced_runs_total", **extra
            ),  # chunk runs written as one span
            "coalesced_chunks": self.metrics.counter(
                "dispatcher_coalesced_chunks_total", **extra
            ),  # chunks that rode in those spans
            "requests_saved": self.metrics.counter(
                "dispatcher_requests_saved_total", **extra
            ),  # backend requests coalescing removed
        }
        #: tag -> dispatcher_bytes_total counter (created on first dispatch).
        self._bytes_counters: Dict[str, Counter] = {}
        #: (logical, tag, preferred backend, actual backend) spill records.
        self.spills: List[Tuple[str, str, str, str]] = []

    @property
    def dispatched_bytes(self) -> Dict[str, int]:
        """Per-tag bytes successfully dispatched (a registry view).

        Values are exact ints -- byte counts, not measurements -- and each
        tag is counted once per chunk, *after* its write (and any spill)
        finally succeeds, so retried or spilled chunks never double-count.
        """
        return {
            tag: int(counter.value)
            for tag, counter in self._bytes_counters.items()
        }

    def _count_bytes(self, tag: str, nbytes: int) -> None:
        counter = self._bytes_counters.get(tag)
        if counter is None:
            counter = self.metrics.counter(
                "dispatcher_bytes_total", tag=tag, **self.metric_labels
            )
            self._bytes_counters[tag] = counter
        counter.inc(int(nbytes))

    def coalesce_stats(self) -> Dict[str, object]:
        return {
            "coalesced_runs": self.coalesced_runs,
            "coalesced_chunks": self.coalesced_chunks,
            "requests_saved": self.requests_saved,
        }

    def dispatch(
        self,
        logical: str,
        subsets: Dict[str, bytes],
        request_size: Optional[int] = None,
    ) -> Generator:
        """Process: write every subset to its backend, backends in parallel."""
        procs = []
        for tag in sorted(subsets):
            data = subsets[tag]
            procs.append(
                self.sim.process(
                    self._dispatch_one(logical, tag, data=data, nbytes=None,
                                       request_size=request_size),
                    name=f"dispatch:{logical}#{tag}",
                )
            )
        records = yield AllOf(self.sim, procs)
        return records

    def dispatch_sequential(
        self,
        logical: str,
        subsets: Dict[str, bytes],
        request_size: Optional[int] = None,
    ) -> Generator:
        """Process: write every subset one at a time, in tag order.

        The serial-ingest baseline: same chunk numbering and index records
        as :meth:`dispatch_run` over the same subsets (tags claim chunks
        in sorted order either way), but one uncoalesced backend write --
        and one index flush -- per chunk.
        """
        records = []
        for tag in sorted(subsets):
            record = yield from self._dispatch_one(
                logical, tag, data=subsets[tag], nbytes=None,
                request_size=request_size,
            )
            records.append(record)
        return records

    def dispatch_run(
        self,
        logical: str,
        entries: List[Tuple[str, bytes]],
        request_size: Optional[int] = None,
        coalesce: bool = True,
    ) -> Generator:
        """Process: write one window's ``(tag, data)`` entries as chunk runs.

        Consecutive entries whose tags place on the same backend form a
        *run* written via :meth:`PLFS.write_chunk_run` -- coalesced into a
        single span write when ``coalesce`` is set.  Runs go out
        sequentially (the write-behind consumer drains windows in order,
        which keeps index-record order deterministic); each run retries as
        a unit and spills as a unit on ``StorageFullError``.  Returns the
        :class:`IndexRecord` list in ``entries`` order.
        """
        if not entries:
            return []
        runs: List[Tuple[str, List[Tuple[str, bytes]]]] = []
        for tag, data in entries:
            backend = self.placement.backend_for(tag)
            if runs and runs[-1][0] == backend:
                runs[-1][1].append((tag, data))
            else:
                runs.append((backend, [(tag, data)]))
        records: List[IndexRecord] = []
        for backend, run_entries in runs:
            recs = yield from self._dispatch_chunk_run(
                logical, backend, run_entries, request_size, coalesce
            )
            records.extend(recs)
        return records

    def dispatch_virtual(
        self, logical: str, subset_sizes: Dict[str, int]
    ) -> Generator:
        """Process: dispatch size-only subsets (paper-scale modeled mode)."""
        procs = [
            self.sim.process(
                self._dispatch_one(logical, tag, data=None, nbytes=size,
                                   request_size=None),
                name=f"dispatch:{logical}#{tag}",
            )
            for tag, size in sorted(subset_sizes.items())
        ]
        records = yield AllOf(self.sim, procs)
        return records

    def backend_for(self, tag: str) -> str:
        return self.placement.backend_for(tag)

    def _fallback_for(self, preferred: str) -> Optional[str]:
        if self.spill_on_full and preferred != self.placement.inactive_backend:
            return self.placement.inactive_backend
        return None

    def _dispatch_one(
        self,
        logical: str,
        tag: str,
        data: Optional[bytes],
        nbytes: Optional[int],
        request_size: Optional[int],
    ) -> Generator:
        preferred = self.placement.backend_for(tag)
        fallback = self._fallback_for(preferred)
        try:
            record: IndexRecord = yield from self.retrier.call(
                lambda: self.plfs.write_subset(
                    logical,
                    tag,
                    backend=preferred,
                    data=data,
                    nbytes=nbytes,
                    request_size=request_size,
                ),
                key=f"write:{logical}#{tag}",
            )
        except StorageFullError:
            if fallback is None:
                raise
            record = yield from self.retrier.call(
                lambda: self.plfs.write_subset(
                    logical,
                    tag,
                    backend=fallback,
                    data=data,
                    nbytes=nbytes,
                    request_size=request_size,
                ),
                key=f"spill:{logical}#{tag}",
            )
            self.spills.append((logical, tag, preferred, fallback))
            self.spill_count += 1
        self.writes += 1
        self._count_bytes(record.tag, record.nbytes)
        return record

    def _dispatch_chunk_run(
        self,
        logical: str,
        preferred: str,
        entries: List[Tuple[str, bytes]],
        request_size: Optional[int],
        coalesce: bool,
    ) -> Generator:
        """Process: one retried, spillable write of a backend chunk run.

        Byte/chunk counters move only after the run's final landing spot
        accepts it, so a run that fails on the preferred backend and lands
        on the fallback is counted exactly once.
        """
        fallback = self._fallback_for(preferred)
        first, last = entries[0][0], entries[-1][0]
        tag_span = first if last == first else f"{first}-{last}"
        do_coalesce = coalesce and len(entries) > 1
        with span(
            self.sim, "dispatcher.write_run",
            logical=logical, tags=tag_span, chunks=len(entries),
            backend=preferred, coalesced=do_coalesce,
        ) as sp:
            try:
                recs: List[IndexRecord] = yield from self.retrier.call(
                    lambda: self.plfs.write_chunk_run(
                        logical,
                        entries,
                        backend=preferred,
                        request_size=request_size,
                        coalesce=do_coalesce,
                    ),
                    key=f"write:{logical}#{tag_span}:{len(entries)}",
                )
            except StorageFullError:
                if fallback is None:
                    raise
                recs = yield from self.retrier.call(
                    lambda: self.plfs.write_chunk_run(
                        logical,
                        entries,
                        backend=fallback,
                        request_size=request_size,
                        coalesce=do_coalesce,
                    ),
                    key=f"spill:{logical}#{tag_span}:{len(entries)}",
                )
                for tag in sorted({tag for tag, _ in entries}):
                    self.spills.append((logical, tag, preferred, fallback))
                    self.spill_count += 1
                sp.tag(spilled_to=fallback)
        self.writes += len(recs)
        if do_coalesce:
            self.coalesced_runs += 1
            self.coalesced_chunks += len(recs)
            self.requests_saved += len(recs) - 1
        for rec in recs:
            self._count_bytes(rec.tag, rec.nbytes)
        return recs
