"""The I/O determinator (paper §3.3): indexer + dispatcher + retriever.

"The core idea of the I/O determinator is to provide a way to judiciously
manage the I/O load of an application in storage nodes."  It is the
primary storage interface of ADA: writes go through the dispatcher to
policy-chosen backends; tag-selective reads resolve through the indexer
and stream through the retriever.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.core.dispatcher import IODispatcher
from repro.core.indexer import Indexer
from repro.core.retriever import IORetriever
from repro.core.tags import PlacementPolicy
from repro.faults.retry import Retrier, RetryPolicy, RetryStats
from repro.fs.base import StoredObject
from repro.fs.cache import BlockCache
from repro.fs.plfs import PLFS
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator

__all__ = ["IODeterminator"]


class IODeterminator:
    """ADA's storage interface, composed per Fig. 5.

    One :class:`Retrier` (and its :class:`RetryStats`) is shared by the
    dispatcher and retriever, so operators see a single set of counters for
    the determinator's I/O.
    """

    def __init__(
        self,
        sim: Simulator,
        plfs: PLFS,
        placement: PlacementPolicy,
        indexer_latency_s: float = 2e-3,
        retriever_request_size: Optional[int] = None,
        spill_on_full: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        retry_stats: Optional[RetryStats] = None,
        block_cache: Optional[BlockCache] = None,
        coalesce: bool = False,
        serial_requests: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Dict[str, str]] = None,
    ):
        self.sim = sim
        self.plfs = plfs
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metric_labels = dict(metric_labels or {})
        self.retry_stats = (
            retry_stats
            if retry_stats is not None
            else RetryStats(metrics=self.metrics,
                            metric_labels=self.metric_labels)
        )
        self.retrier = Retrier(sim, policy=retry_policy, stats=self.retry_stats)
        self.indexer = Indexer(sim, plfs, lookup_latency_s=indexer_latency_s)
        self.dispatcher = IODispatcher(
            sim, plfs, placement, spill_on_full=spill_on_full,
            retrier=self.retrier, metrics=self.metrics,
            metric_labels=self.metric_labels,
        )
        kwargs = {}
        if retriever_request_size is not None:
            kwargs["request_size"] = retriever_request_size
        self.retriever = IORetriever(
            sim, plfs, retrier=self.retrier, cache=block_cache,
            coalesce=coalesce, serial_requests=serial_requests,
            metrics=self.metrics, metric_labels=self.metric_labels, **kwargs,
        )

    # -- write path ---------------------------------------------------------

    def store(self, logical: str, subsets: Dict[str, bytes]) -> Generator:
        """Process: dispatch materialized subsets to their backends."""
        records = yield from self.dispatcher.dispatch(logical, subsets)
        return records

    def store_sequential(
        self, logical: str, subsets: Dict[str, bytes]
    ) -> Generator:
        """Process: dispatch subsets one at a time (serial-ingest baseline)."""
        records = yield from self.dispatcher.dispatch_sequential(logical, subsets)
        return records

    def store_run(
        self, logical: str, subsets: Dict[str, bytes], coalesce: bool = True
    ) -> Generator:
        """Process: dispatch one window's subsets as coalesced chunk runs.

        Tags go out in sorted order (the same chunk-claim order as the
        serial baseline), with backend-contiguous stretches batched into
        span writes.
        """
        entries = [(tag, subsets[tag]) for tag in sorted(subsets)]
        records = yield from self.dispatcher.dispatch_run(
            logical, entries, coalesce=coalesce
        )
        return records

    def store_virtual(self, logical: str, subset_sizes: Dict[str, int]) -> Generator:
        """Process: dispatch size-only subsets (modeled mode)."""
        records = yield from self.dispatcher.dispatch_virtual(logical, subset_sizes)
        return records

    # -- read path -----------------------------------------------------------

    def fetch(self, logical: str, tag: str) -> Generator:
        """Process: indexer lookup, then subset retrieval."""
        yield from self.indexer.lookup(logical, tag)
        obj: StoredObject = yield from self.retriever.retrieve(logical, tag)
        return obj

    def fetch_all(self, logical: str) -> Generator:
        """Process: retrieve every subset of a container concurrently."""
        yield from self.indexer.lookup_all(logical)
        objs = yield from self.retriever.retrieve_all(logical)
        return objs

    # -- metadata ---------------------------------------------------------------

    def tags(self, logical: str) -> list:
        return self.plfs.tags(logical)

    def subset_nbytes(self, logical: str, tag: str) -> int:
        return self.plfs.subset_nbytes(logical, tag)

    def container_nbytes(self, logical: str) -> int:
        return self.plfs.container_nbytes(logical)
