"""Tag and placement policies.

The paper's prototype uses two tags: ``p`` (protein, active) and ``m``
(MISC, inactive), with ``p`` placed on the SSD-backed file system and ``m``
on the HDD-backed one (§3.4).  Its stated future work -- "a dynamic data
categorizing and labeling interface through which a user can describe the
structure of his raw data in a configuration file" -- is implemented here:
:meth:`TagPolicy.from_config` builds a policy from a declarative mapping of
residue names and/or atom classes to tags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.formats.topology import AtomClass, Topology, classify_residue

__all__ = ["TagPolicy", "SelectionTagPolicy", "PlacementPolicy"]

#: Canonical single-letter tags per class for the fine-grained policy.
CLASS_TAGS: Dict[AtomClass, str] = {
    AtomClass.PROTEIN: "p",
    AtomClass.WATER: "w",
    AtomClass.LIPID: "l",
    AtomClass.ION: "i",
    AtomClass.LIGAND: "g",
    AtomClass.OTHER: "o",
}


@dataclass(frozen=True)
class TagPolicy:
    """Maps atoms to subset tags.

    ``class_tags`` assigns a tag per :class:`AtomClass`;
    ``resname_tags`` (optional) overrides by residue name, letting a
    scientist pull, say, cholesterol out of the lipid pool.
    """

    name: str
    class_tags: Mapping[AtomClass, str]
    resname_tags: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [c for c in AtomClass if c not in self.class_tags]
        if missing:
            raise ConfigurationError(
                f"policy {self.name!r} misses classes {missing}"
            )
        for tag in list(self.class_tags.values()) + list(self.resname_tags.values()):
            if not tag or "/" in tag or "." in tag:
                raise ConfigurationError(f"invalid tag {tag!r}")

    # -- constructors -----------------------------------------------------

    @classmethod
    def protein_vs_misc(cls) -> "TagPolicy":
        """The paper's prototype policy: ``p`` for protein, ``m`` for MISC."""
        tags = {c: "m" for c in AtomClass}
        tags[AtomClass.PROTEIN] = "p"
        return cls(name="protein-vs-misc", class_tags=tags)

    @classmethod
    def per_class(cls) -> "TagPolicy":
        """One tag per molecular class (the fine-grained-view extension)."""
        return cls(name="per-class", class_tags=dict(CLASS_TAGS))

    @classmethod
    def from_config(cls, config: Mapping) -> "TagPolicy":
        """Build a policy from a declarative configuration mapping.

        Expected shape::

            {"name": "my-policy",
             "classes": {"protein": "p", "water": "m", ...},   # optional
             "residues": {"CHL1": "c", ...},                   # optional
             "default": "m"}
        """
        default = config.get("default", "m")
        class_tags = {c: default for c in AtomClass}
        for key, tag in (config.get("classes") or {}).items():
            try:
                class_tags[AtomClass[key.upper()]] = tag
            except KeyError as exc:
                raise ConfigurationError(f"unknown atom class {key!r}") from exc
        resname_tags = {
            name.strip().upper(): tag
            for name, tag in (config.get("residues") or {}).items()
        }
        return cls(
            name=config.get("name", "custom"),
            class_tags=class_tags,
            resname_tags=resname_tags,
        )

    # -- application ----------------------------------------------------------

    def tag_of_class(self, atom_class: AtomClass) -> str:
        return self.class_tags[atom_class]

    def tag_of_residue(self, resname: str) -> str:
        override = self.resname_tags.get(resname.strip().upper())
        if override is not None:
            return override
        return self.class_tags[classify_residue(resname)]

    def atom_tags(self, topology: Topology) -> np.ndarray:
        """Per-atom tag array (vectorized over unique residue names)."""
        unique, inverse = np.unique(topology.resnames, return_inverse=True)
        lut = np.array([self.tag_of_residue(r) for r in unique], dtype="U8")
        return lut[inverse]

    def all_tags(self) -> FrozenSet[str]:
        return frozenset(self.class_tags.values()) | frozenset(
            self.resname_tags.values()
        )


class SelectionTagPolicy:
    """Tags driven by VMD selection expressions (ordered, first match wins).

    The richest form of the paper's future-work interface: a scientist
    describes subsets in the language they already use daily::

        SelectionTagPolicy("binding-study", [
            ("hot",  "protein or ligand"),
            ("ions", "ion"),
            ("cold", "all"),
        ])

    Duck-types :class:`TagPolicy` where the categorizer/labeler need it
    (``atom_tags`` / ``all_tags``); the final rule should cover ``all`` so
    every atom lands somewhere (validated at categorization time).
    """

    def __init__(self, name: str, rules):
        if not rules:
            raise ConfigurationError("selection policy needs at least one rule")
        self.name = name
        self.rules = [(str(tag), str(expr)) for tag, expr in rules]
        for tag, _ in self.rules:
            if not tag or "/" in tag or "." in tag:
                raise ConfigurationError(f"invalid tag {tag!r}")

    def atom_tags(self, topology: Topology) -> np.ndarray:
        from repro.vmd.selection import select_mask  # lazy: avoids cycle

        tags = np.full(topology.natoms, "", dtype="U8")
        unassigned = np.ones(topology.natoms, dtype=bool)
        for tag, expression in self.rules:
            mask = select_mask(topology, expression) & unassigned
            tags[mask] = tag
            unassigned &= ~mask
        if unassigned.any():
            raise ConfigurationError(
                f"policy {self.name!r} leaves {int(unassigned.sum())} atoms "
                "untagged; end with a catch-all rule like ('cold', 'all')"
            )
        return tags

    def all_tags(self) -> FrozenSet[str]:
        return frozenset(tag for tag, _ in self.rules)


@dataclass(frozen=True)
class PlacementPolicy:
    """Chooses a backend file system per tag (the dispatcher's routing).

    The paper's rule: active tags go to flash, everything else to rotation.
    """

    active_tags: FrozenSet[str]
    active_backend: str
    inactive_backend: str
    overrides: Mapping[str, str] = field(default_factory=dict)

    @classmethod
    def paper_default(
        cls, active_backend: str = "ssd", inactive_backend: str = "hdd"
    ) -> "PlacementPolicy":
        return cls(
            active_tags=frozenset({"p"}),
            active_backend=active_backend,
            inactive_backend=inactive_backend,
        )

    def backend_for(self, tag: str) -> str:
        override = self.overrides.get(tag)
        if override is not None:
            return override
        if tag.startswith("lod:"):
            # The coarse LOD sibling serves *interactive* reads, so it
            # rides wherever its base subset rides (an LOD of the active
            # protein subset belongs on flash, not behind HDD seeks).
            return self.backend_for(tag[len("lod:"):])
        if tag in self.active_tags:
            return self.active_backend
        return self.inactive_backend
