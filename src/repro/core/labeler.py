"""The labeler: Algorithm 1 of the paper.

Walks the atom table of a ``.pdb`` file once, collecting maximal runs of
consecutive atoms that share a tag into per-tag lists of half-open
``[begin, end)`` ranges, and persists the result as a *label file* "for
later I/O reference".  Tag metadata lives entirely outside the data subsets
("no additional information is injected to any of data subsets", §3.2).

The paper's pseudo-code mishandles the first and last runs (``begin`` is
reset from ``offset`` only on tag changes and the final run is never
flushed); we implement the evident intent and property-test the invariant
that the ranges exactly partition ``[0, natoms)``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import LabelIndexError, TagNotFoundError
from repro.formats.topology import Topology
from repro.core.tags import TagPolicy

__all__ = ["LabelMap", "build_label_map"]


@dataclass
class LabelMap:
    """Per-tag half-open atom-index ranges over one structure."""

    natoms: int
    ranges: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)

    # -- queries ------------------------------------------------------------

    @property
    def tags(self) -> List[str]:
        return sorted(self.ranges)

    def has_tag(self, tag: str) -> bool:
        return tag in self.ranges

    def _tag_ranges(self, tag: str) -> List[Tuple[int, int]]:
        try:
            return self.ranges[tag]
        except KeyError:
            raise TagNotFoundError(
                f"no tag {tag!r} in label map (available: {self.tags})"
            ) from None

    def atom_count(self, tag: str) -> int:
        return sum(e - b for b, e in self._tag_ranges(tag))

    def indices(self, tag: str) -> np.ndarray:
        """Sorted atom indices carrying ``tag`` (vectorized range expansion)."""
        ranges = self._tag_ranges(tag)
        if not ranges:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.arange(b, e, dtype=np.int64) for b, e in ranges])

    def fraction(self, tag: str) -> float:
        """Atom fraction of a tag -- equals its byte fraction of any frame."""
        return self.atom_count(tag) / max(self.natoms, 1)

    def run_count(self, tag: str) -> int:
        return len(self._tag_ranges(tag))

    def validate(self) -> None:
        """Check the partition invariant; raises on overlap or gaps."""
        spans = sorted(
            (b, e, t) for t, rs in self.ranges.items() for b, e in rs
        )
        cursor = 0
        for b, e, t in spans:
            if b != cursor or e <= b:
                raise LabelIndexError(
                    f"label ranges do not partition [0, {self.natoms}): "
                    f"run ({b}, {e}, {t!r}) at cursor {cursor}"
                )
            cursor = e
        if cursor != self.natoms:
            raise LabelIndexError(
                f"label ranges cover [0, {cursor}) of [0, {self.natoms})"
            )

    # -- persistence (the label_file of Algorithm 1, line 28) -------------------

    def to_bytes(self) -> bytes:
        payload = {
            "natoms": self.natoms,
            "ranges": {t: [list(r) for r in rs] for t, rs in self.ranges.items()},
        }
        return json.dumps(payload, sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "LabelMap":
        try:
            payload = json.loads(blob)
            label_map = cls(
                natoms=int(payload["natoms"]),
                ranges={
                    str(t): [(int(b), int(e)) for b, e in rs]
                    for t, rs in payload["ranges"].items()
                },
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise LabelIndexError(f"corrupt label file: {exc}") from exc
        label_map.validate()
        return label_map


def build_label_map(topology: Topology, policy: TagPolicy) -> LabelMap:
    """Algorithm 1: one pass over the atom table, run-length by tag.

    Vectorized equivalent of the paper's per-atom loop: tag-change points
    come from one ``np.diff`` over the per-atom tag codes.
    """
    n = topology.natoms
    label_map = LabelMap(natoms=n)
    if n == 0:
        return label_map
    tags = policy.atom_tags(topology)
    # Encode tags as ints to find run boundaries vectorized.
    unique, codes = np.unique(tags, return_inverse=True)
    change = np.flatnonzero(np.diff(codes)) + 1
    bounds = np.concatenate(([0], change, [n]))
    for begin, end in zip(bounds[:-1], bounds[1:]):
        tag = str(unique[codes[begin]])
        label_map.ranges.setdefault(tag, []).append((int(begin), int(end)))
    label_map.validate()
    return label_map
