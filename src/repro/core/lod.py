"""Precision tiers: the low-precision level-of-detail (LOD) layer.

The paper's insight is *tag*-selectivity -- ship only the protein bytes a
session needs.  This module extends it to *quality*-selectivity: at
ingest the pre-processor additionally encodes each subset at a coarse
quantization grid, stored as sibling PLFS chunks under the subset's
``lod:`` tag (``p`` -> ``lod:p``).  Because the cheap tier is just
another tag family, every existing mechanism -- per-chunk CRC, retries,
span coalescing, the block cache, consistent-hash sharding -- applies to
it unchanged, and the cache can never confuse tiers: the tag is part of
the block key.

Tier selection is a per-read knob, ``precision``:

* ``"full"`` -- exact bytes, always (pinned analyses);
* ``"lod"``  -- the coarse layer when the dataset has one (interactive
  scrubbing, thumbnails); falls back to full bytes otherwise;
* ``"auto"`` -- full under normal conditions, LOD while the serving
  stack is under pressure (block-cache occupancy at/over the prefetch
  watermark, fresh fault-layer degradation, or a backlogged scheduler).

The coarse layer is plain XTC at a reduced ``precision`` (quantization
steps per coordinate unit), so its error is the codec's quantization
bound: ``|x_lod - x| <= 0.5 / lod_precision`` per atom coordinate.  That
bound is advertised on every LOD read (``StoredObject.max_error``), which
is what the chaos suite asserts against.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_LOD_PRECISION",
    "LOD_PREFIX",
    "PRECISIONS",
    "base_tag",
    "base_tags",
    "is_lod_tag",
    "lod_max_error",
    "lod_tag",
    "validate_precision",
]

#: Tag-family prefix of the coarse tier's sibling subsets.
LOD_PREFIX = "lod:"

#: Default quantization grid of the coarse layer (steps per coordinate
#: unit).  The full tier's XTC default is 100.0 (0.005 max error); 12.5
#: is an 8x coarser grid -- deltas lose ~3 bits each, which lands the
#: payload around a quarter of the full tier's -- with a 0.04 max error,
#: far below a rendered pixel at interactive zoom levels.
DEFAULT_LOD_PRECISION = 12.5

#: The tier knob's accepted values.
PRECISIONS = ("full", "lod", "auto")

#: Relative slack folded into the advertised error bound: the grid-snap
#: bound (0.5/precision) holds in exact arithmetic, but encode/decode
#: round through float32, whose representation error at molecular
#: coordinate magnitudes is a few ulps.  0.1% covers it with room while
#: keeping the advertised bound essentially the quantization bound.
FLOAT32_SLACK = 1e-3


def validate_precision(precision: str) -> str:
    """Return the knob value or raise :class:`ConfigurationError`."""
    if precision not in PRECISIONS:
        raise ConfigurationError(
            f"unknown precision {precision!r}; expected one of {PRECISIONS}"
        )
    return precision


def lod_tag(tag: str) -> str:
    """The sibling LOD tag of a base subset tag (``p`` -> ``lod:p``)."""
    if tag.startswith(LOD_PREFIX):
        return tag
    return LOD_PREFIX + tag


def is_lod_tag(tag: str) -> bool:
    return tag.startswith(LOD_PREFIX)


def base_tag(tag: str) -> str:
    """The base subset tag behind a (possibly LOD) tag."""
    if tag.startswith(LOD_PREFIX):
        return tag[len(LOD_PREFIX):]
    return tag


def base_tags(tags: Iterable[str]) -> List[str]:
    """Filter a tag list down to the full-precision family.

    Whole-dataset paths (``fetch_all`` / ``fetch_merged`` / receipts)
    must never mix tiers -- merging a subset twice at two precisions
    would double-count its atoms.
    """
    return [t for t in tags if not is_lod_tag(t)]


def lod_max_error(lod_precision: float) -> float:
    """Per-atom, per-coordinate worst-case error of the coarse layer.

    XTC quantizes each coordinate to the nearest 1/precision grid point,
    so round-tripping through the LOD layer moves a coordinate by at most
    half a grid step (plus float32 representation slack; see
    :data:`FLOAT32_SLACK`).
    """
    if lod_precision <= 0:
        raise ConfigurationError(
            f"lod precision must be > 0, got {lod_precision!r}"
        )
    return (0.5 / float(lod_precision)) * (1.0 + FLOAT32_SLACK)
