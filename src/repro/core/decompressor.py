"""The data decompressor.

Wraps the XTC codec for ADA's storage-side use: "the data decompressor
will be invoked if the original data is compressed" (§3.1).  Pass-through
for raw containers, so the pre-processor accepts either representation.

Three performance knobs ride along with the codec's hot path:

* ``workers`` -- groups of frames decode concurrently (see
  :func:`repro.formats.xtc.resolve_workers`); results are bit-identical to
  a serial decode, so callers opt in freely.
* ``codec_backend`` -- ``"thread"``, ``"process"``, or ``"auto"``; the
  worker-pool flavour (see :mod:`repro.formats.codecexec`).  Process
  workers escape the GIL and fill a shared-memory coordinate array.
* a small :class:`~repro.formats.xtc.FrameIndex` cache -- repeated queries
  against the same blob (``frame_count`` then ``raw_nbytes`` then
  ``decompress``, the pre-processor's exact sequence) share one header
  scan instead of rescanning the stream each call.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import CodecError
from repro.formats.codecexec import CodecPool, resolve_backend
from repro.formats.dcd import (
    DCD_MAGIC,
    dcd_frame_count,
    decode_dcd,
    decode_dcd_range,
)
from repro.formats.trajectory import Trajectory
from repro.formats.trr import (
    TRR_MAGIC,
    decode_trr,
    decode_trr_range,
    trr_frame_count,
)
from repro.formats.xtc import (
    RAW_MAGIC,
    XTC_MAGIC,
    FrameIndex,
    decode_frame_range,
    decode_xtc,
    decode_raw,
)

__all__ = ["Decompressor", "TrajectoryWindow"]


@dataclass(frozen=True)
class TrajectoryWindow:
    """One decoded slice of an arriving trajectory stream.

    ``[start, stop)`` are frame indices into the full stream; for
    compressed streams the window is GOF-aligned (``start`` is a
    keyframe), so each window decodes independently and the concatenation
    of all windows is bit-identical to a whole-stream decode.
    """

    index: int
    start: int
    stop: int
    trajectory: Trajectory

    @property
    def nframes(self) -> int:
        return self.stop - self.start

    @property
    def raw_nbytes(self) -> int:
        return self.trajectory.nbytes


class Decompressor:
    """Format-sniffing trajectory decoder.

    ``workers`` is forwarded to :func:`repro.formats.xtc.decode_xtc` for
    group-of-frames parallel decode; ``codec_backend`` picks the worker
    pool flavour (``"thread"``/``"process"``/``"auto"``);
    ``index_cache_size`` bounds how many blobs keep a cached
    :class:`FrameIndex` (LRU, keyed by blob identity); ``metrics`` is the
    registry pool lifecycle lands in (ambient global by default).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        index_cache_size: int = 8,
        codec_backend: str = "auto",
        metrics=None,
    ):
        if index_cache_size < 0:
            raise CodecError("index_cache_size must be >= 0")
        resolve_backend(codec_backend)  # validate eagerly
        self.workers = workers
        self.codec_backend = codec_backend
        self.metrics = metrics
        self.index_cache_size = int(index_cache_size)
        # id(blob) -> (blob, FrameIndex).  Holding the blob keeps the id
        # stable (and the entry is verified by identity before use, so a
        # recycled id can never alias a different blob).
        self._index_cache: "OrderedDict[int, tuple[bytes, FrameIndex]]" = (
            OrderedDict()
        )
        # Same identity-keyed LRU idea for decoded *raw* containers: raw
        # decodes are zero-copy views, but a multi-container stream pays
        # one splice per decode -- windowed ingest slices the cached
        # trajectory instead of re-splicing per window.
        self._raw_cache: "OrderedDict[int, tuple[bytes, Trajectory]]" = (
            OrderedDict()
        )
        self.index_hits = 0
        self.index_misses = 0
        # Persistent codec pool: one pool for the life of the decompressor
        # instead of one per decode call (streaming ingest decodes a window
        # at a time -- per-call pool construction would dominate).
        self._executor: Optional[CodecPool] = None

    def _pool(self) -> Optional[CodecPool]:
        """The lazily-created persistent worker pool (None when serial)."""
        if self.workers is None:
            return None
        size = os.cpu_count() or 1 if self.workers == 0 else int(self.workers)
        if size <= 1:
            return None
        if self._executor is None:
            self._executor = CodecPool(
                size, backend=self.codec_backend, metrics=self.metrics
            )
        return self._executor

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "Decompressor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def sniff(data: bytes) -> str:
        """``'xtc'``, ``'raw'``, ``'dcd'``, or :class:`CodecError`."""
        if len(data) < 8:
            raise CodecError("stream too short to identify")
        magic = int.from_bytes(data[:4], "little", signed=True)
        if magic == XTC_MAGIC:
            return "xtc"
        if magic == RAW_MAGIC:
            return "raw"
        if magic == TRR_MAGIC:
            return "trr"
        if data[4:8] == DCD_MAGIC:
            return "dcd"
        raise CodecError(f"unknown container magic {magic}")

    def is_compressed(self, data: bytes) -> bool:
        return self.sniff(data) == "xtc"

    def frame_index(self, data: bytes) -> FrameIndex:
        """The (cached) :class:`FrameIndex` of an XTC blob.

        One header scan per blob: subsequent calls with the same object
        reuse the cached index, so ``frame_count`` / ``raw_nbytes`` /
        ``decompress`` sequences cost a single scan total.
        """
        key = id(data)
        entry = self._index_cache.get(key)
        if entry is not None and entry[0] is data:
            self.index_hits += 1
            self._index_cache.move_to_end(key)
            return entry[1]
        index = FrameIndex.build(data)
        self.index_misses += 1
        if self.index_cache_size:
            self._index_cache[key] = (data, index)
            self._index_cache.move_to_end(key)
            while len(self._index_cache) > self.index_cache_size:
                self._index_cache.popitem(last=False)
        return index

    def decompress(self, data: bytes) -> Trajectory:
        """Decode any supported container into an in-memory trajectory."""
        kind = self.sniff(data)
        if kind == "xtc":
            return decode_xtc(
                data,
                workers=self.workers,
                index=self.frame_index(data),
                executor=self._pool(),
            )
        if kind == "dcd":
            return decode_dcd(data)
        if kind == "trr":
            trajectory, _velocities = decode_trr(data)
            return trajectory
        return decode_raw(data)

    # -- streaming windows ------------------------------------------------

    def window_spans(
        self, data: bytes, window_frames: int
    ) -> List[Tuple[int, int]]:
        """``(start, stop)`` frame spans of the stream's ingest windows.

        For compressed streams every span boundary is a keyframe: whole
        GOFs are packed greedily until a window reaches ``window_frames``
        frames, so a window never needs decode state from its neighbours.
        Uncompressed containers have no inter-frame prediction and split
        at exact multiples of ``window_frames``.
        """
        if window_frames < 1:
            raise CodecError(
                f"window_frames must be >= 1, got {window_frames}"
            )
        if self.sniff(data) == "xtc":
            spans: List[Tuple[int, int]] = []
            start = None
            for gof_start, gof_stop in self.frame_index(data).gofs():
                if start is None:
                    start = gof_start
                if gof_stop - start >= window_frames:
                    spans.append((start, gof_stop))
                    start = None
            if start is not None:
                spans.append((start, self.frame_index(data).nframes))
            return spans
        nframes = self.frame_count(data)
        return [
            (s, min(s + window_frames, nframes))
            for s in range(0, nframes, window_frames)
        ]

    def decode_range(self, data: bytes, start: int, stop: int) -> Trajectory:
        """Decode frames ``[start, stop)`` only -- any supported format.

        The shared lazy-window primitive: XTC seeks via its
        :class:`FrameIndex`, TRR and DCD via fixed-frame-size header
        arithmetic, and raw slices its (cached) zero-copy view.  Bytes
        outside the range are never inflated for the seekable formats, so
        windowed ingest of a TRR or DCD stream peaks at one window of
        frames exactly like the XTC path.
        """
        kind = self.sniff(data)
        if kind == "xtc":
            return decode_frame_range(
                data,
                start,
                stop,
                index=self.frame_index(data),
                workers=self.workers,
                executor=self._pool(),
            )
        if kind == "trr":
            trajectory, _velocities = decode_trr_range(data, start, stop)
            return trajectory
        if kind == "dcd":
            return decode_dcd_range(data, start, stop)
        return self._raw_trajectory(data).slice_frames(start, stop)

    def iter_windows(
        self, data: bytes, window_frames: int
    ) -> Iterator[TrajectoryWindow]:
        """Decode an arriving stream one GOF-aligned window at a time.

        The streaming-ingest primitive: each yielded
        :class:`TrajectoryWindow` is decoded lazily on ``next()`` via
        :meth:`decode_range`, so peak memory is one window's frames (plus
        the encoded stream), not the whole raw dataset -- for XTC, TRR,
        and DCD alike.  Concatenating every window's frames is
        bit-identical to :meth:`decompress` of the full stream.
        """
        spans = self.window_spans(data, window_frames)
        for i, (start, stop) in enumerate(spans):
            yield TrajectoryWindow(
                index=i,
                start=start,
                stop=stop,
                trajectory=self.decode_range(data, start, stop),
            )

    def frame_count(self, data: bytes) -> int:
        """Frames in a stream without inflating coordinate payloads."""
        kind = self.sniff(data)
        if kind == "xtc":
            return self.frame_index(data).nframes
        if kind == "trr":
            return trr_frame_count(data)
        if kind == "dcd":
            return dcd_frame_count(data)
        return self._raw_trajectory(data).nframes

    def raw_nbytes(self, data: bytes) -> int:
        """Decompressed payload size (headers only for xtc)."""
        if self.sniff(data) == "xtc":
            return self.frame_index(data).raw_nbytes
        return self.decompress(data).nbytes

    def _raw_trajectory(self, data: bytes) -> Trajectory:
        """The (cached) decoded form of a raw container stream."""
        key = id(data)
        entry = self._raw_cache.get(key)
        if entry is not None and entry[0] is data:
            self._raw_cache.move_to_end(key)
            return entry[1]
        trajectory = decode_raw(data)
        if self.index_cache_size:
            self._raw_cache[key] = (data, trajectory)
            self._raw_cache.move_to_end(key)
            while len(self._raw_cache) > self.index_cache_size:
                self._raw_cache.popitem(last=False)
        return trajectory
