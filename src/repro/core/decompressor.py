"""The data decompressor.

Wraps the XTC codec for ADA's storage-side use: "the data decompressor
will be invoked if the original data is compressed" (§3.1).  Pass-through
for raw containers, so the pre-processor accepts either representation.

Two performance knobs ride along with the codec's hot path:

* ``workers`` -- groups of frames decode concurrently (see
  :func:`repro.formats.xtc.resolve_workers`); results are bit-identical to
  a serial decode, so callers opt in freely.
* a small :class:`~repro.formats.xtc.FrameIndex` cache -- repeated queries
  against the same blob (``frame_count`` then ``raw_nbytes`` then
  ``decompress``, the pre-processor's exact sequence) share one header
  scan instead of rescanning the stream each call.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import CodecError
from repro.formats.dcd import DCD_MAGIC, decode_dcd
from repro.formats.trajectory import Trajectory
from repro.formats.trr import TRR_MAGIC, decode_trr
from repro.formats.xtc import (
    RAW_MAGIC,
    XTC_MAGIC,
    FrameIndex,
    decode_raw,
    decode_xtc,
)

__all__ = ["Decompressor"]


class Decompressor:
    """Format-sniffing trajectory decoder.

    ``workers`` is forwarded to :func:`repro.formats.xtc.decode_xtc` for
    group-of-frames parallel decode; ``index_cache_size`` bounds how many
    blobs keep a cached :class:`FrameIndex` (LRU, keyed by blob identity).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        index_cache_size: int = 8,
    ):
        if index_cache_size < 0:
            raise CodecError("index_cache_size must be >= 0")
        self.workers = workers
        self.index_cache_size = int(index_cache_size)
        # id(blob) -> (blob, FrameIndex).  Holding the blob keeps the id
        # stable (and the entry is verified by identity before use, so a
        # recycled id can never alias a different blob).
        self._index_cache: "OrderedDict[int, tuple[bytes, FrameIndex]]" = (
            OrderedDict()
        )
        self.index_hits = 0
        self.index_misses = 0

    @staticmethod
    def sniff(data: bytes) -> str:
        """``'xtc'``, ``'raw'``, ``'dcd'``, or :class:`CodecError`."""
        if len(data) < 8:
            raise CodecError("stream too short to identify")
        magic = int.from_bytes(data[:4], "little", signed=True)
        if magic == XTC_MAGIC:
            return "xtc"
        if magic == RAW_MAGIC:
            return "raw"
        if magic == TRR_MAGIC:
            return "trr"
        if data[4:8] == DCD_MAGIC:
            return "dcd"
        raise CodecError(f"unknown container magic {magic}")

    def is_compressed(self, data: bytes) -> bool:
        return self.sniff(data) == "xtc"

    def frame_index(self, data: bytes) -> FrameIndex:
        """The (cached) :class:`FrameIndex` of an XTC blob.

        One header scan per blob: subsequent calls with the same object
        reuse the cached index, so ``frame_count`` / ``raw_nbytes`` /
        ``decompress`` sequences cost a single scan total.
        """
        key = id(data)
        entry = self._index_cache.get(key)
        if entry is not None and entry[0] is data:
            self.index_hits += 1
            self._index_cache.move_to_end(key)
            return entry[1]
        index = FrameIndex.build(data)
        self.index_misses += 1
        if self.index_cache_size:
            self._index_cache[key] = (data, index)
            self._index_cache.move_to_end(key)
            while len(self._index_cache) > self.index_cache_size:
                self._index_cache.popitem(last=False)
        return index

    def decompress(self, data: bytes) -> Trajectory:
        """Decode any supported container into an in-memory trajectory."""
        kind = self.sniff(data)
        if kind == "xtc":
            return decode_xtc(
                data, workers=self.workers, index=self.frame_index(data)
            )
        if kind == "dcd":
            return decode_dcd(data)
        if kind == "trr":
            trajectory, _velocities = decode_trr(data)
            return trajectory
        return decode_raw(data)

    def frame_count(self, data: bytes) -> int:
        """Frames in a compressed stream without inflating payloads."""
        if self.sniff(data) == "xtc":
            return self.frame_index(data).nframes
        return self.decompress(data).nframes

    def raw_nbytes(self, data: bytes) -> int:
        """Decompressed payload size (headers only for xtc)."""
        if self.sniff(data) == "xtc":
            return self.frame_index(data).raw_nbytes
        return self.decompress(data).nbytes
