"""The data decompressor.

Wraps the XTC codec for ADA's storage-side use: "the data decompressor
will be invoked if the original data is compressed" (§3.1).  Pass-through
for raw containers, so the pre-processor accepts either representation.
"""

from __future__ import annotations

from repro.errors import CodecError
from repro.formats.dcd import DCD_MAGIC, decode_dcd
from repro.formats.trajectory import Trajectory
from repro.formats.trr import TRR_MAGIC, decode_trr
from repro.formats.xtc import (
    RAW_MAGIC,
    XTC_MAGIC,
    count_frames,
    decode_raw,
    decode_xtc,
    iter_frame_infos,
)

__all__ = ["Decompressor"]


class Decompressor:
    """Format-sniffing trajectory decoder."""

    @staticmethod
    def sniff(data: bytes) -> str:
        """``'xtc'``, ``'raw'``, ``'dcd'``, or :class:`CodecError`."""
        if len(data) < 8:
            raise CodecError("stream too short to identify")
        magic = int.from_bytes(data[:4], "little", signed=True)
        if magic == XTC_MAGIC:
            return "xtc"
        if magic == RAW_MAGIC:
            return "raw"
        if magic == TRR_MAGIC:
            return "trr"
        if data[4:8] == DCD_MAGIC:
            return "dcd"
        raise CodecError(f"unknown container magic {magic}")

    def is_compressed(self, data: bytes) -> bool:
        return self.sniff(data) == "xtc"

    def decompress(self, data: bytes) -> Trajectory:
        """Decode any supported container into an in-memory trajectory."""
        kind = self.sniff(data)
        if kind == "xtc":
            return decode_xtc(data)
        if kind == "dcd":
            return decode_dcd(data)
        if kind == "trr":
            trajectory, _velocities = decode_trr(data)
            return trajectory
        return decode_raw(data)

    def frame_count(self, data: bytes) -> int:
        """Frames in a compressed stream without inflating payloads."""
        if self.sniff(data) == "xtc":
            return count_frames(data)
        return self.decompress(data).nframes

    def raw_nbytes(self, data: bytes) -> int:
        """Decompressed payload size (headers only for xtc)."""
        if self.sniff(data) == "xtc":
            return sum(info.raw_nbytes for info in iter_frame_infos(data))
        return self.decompress(data).nbytes
