"""Adaptive chunk prefetch: overlap the next window's I/O with decode.

Streaming-MD pipelines show that *overlap of fetch and decode*, not raw
device speed, dominates end-to-end trajectory throughput.  The
:class:`Prefetcher` provides that overlap for ADA's chunked read path: it
watches the chunk windows a playback consumer demands, and once the access
pattern is confirmed sequential (or strided -- skip-frame playback), it
speculatively reads the *next* window into the shared
:class:`~repro.fs.cache.BlockCache` as a background DES process while the
consumer decodes the current one.

Speculation is guarded by two watermarks:

* **cache pressure** -- when L1 occupancy crosses ``high_watermark`` the
  prefetcher stands down rather than evict blocks the consumer still
  wants (speculation must never worsen the demand hit rate);
* **fault degradation** -- when the retry layer reports new transient
  faults/timeouts/degraded reads since the last window, the backend is
  struggling; speculative load would compound the damage, so the
  prefetcher backs off until a clean window passes.

Prefetched blocks ride the same retry + per-chunk CRC path as demand
reads, so a chaos run with prefetch on remains bit-identical to one with
it off -- the property ``tests/faults`` asserts across seeds.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.retriever import IORetriever
from repro.errors import ConfigurationError, FaultError
from repro.obs.metrics import MetricsRegistry, metric_view
from repro.obs.trace import span as trace_span
from repro.sim import Process, Simulator

__all__ = ["Prefetcher"]


class _StreamState:
    """Per-(shard, tenant, logical, tag) access-pattern tracker.

    Two detectors run side by side: the exact-stride detector (two equal
    nonzero strides confirm; prediction extrapolates the stride, forward
    *or* backward) and a coarser direction detector (two consecutive
    same-sign strides of any magnitude confirm a playback direction --
    jumpy scrubbing towards one end of the trajectory).  Exact stride
    wins when both hold; sign-alternating access (rocking playback,
    random seeks) confirms neither, reproducing the paper's observation
    that random access defeats readahead.
    """

    __slots__ = (
        "last_start", "last_len", "stride", "confirmed",
        "last_sign", "direction",
    )

    def __init__(self) -> None:
        self.last_start: Optional[int] = None
        self.last_len = 0
        self.stride: Optional[int] = None
        self.confirmed = False
        self.last_sign = 0  # sign of the most recent nonzero stride
        self.direction = 0  # +1/-1 when two same-sign strides confirmed


class Prefetcher:
    """Stride-detecting, watermark-guarded block prefetcher.

    ``observe`` is called by the demand path after each window fetch; it
    never blocks the caller -- speculative reads run as independent sim
    processes whose only output is a warmer cache.
    """

    FIELDS = (
        "issued",  # speculative windows launched
        "issued_direction",  # of which: direction-only (jumpy scrub)
        "chunks_requested",
        "suppressed_pressure",
        "suppressed_degraded",
        "suppressed_pattern",  # no confirmed stride yet / random access
        "suppressed_inflight",
        "suppressed_eof",  # predicted chunks clamped at the subset's end
        "suppressed_budget",  # tenant's speculative-byte budget exhausted
        "failed",  # speculative reads that hit a permanent fault
    )

    issued = metric_view("_metric_fields", key="issued")
    issued_direction = metric_view("_metric_fields", key="issued_direction")
    chunks_requested = metric_view("_metric_fields", key="chunks_requested")
    suppressed_pressure = metric_view(
        "_metric_fields", key="suppressed_pressure"
    )
    suppressed_degraded = metric_view(
        "_metric_fields", key="suppressed_degraded"
    )
    suppressed_pattern = metric_view("_metric_fields", key="suppressed_pattern")
    suppressed_inflight = metric_view(
        "_metric_fields", key="suppressed_inflight"
    )
    suppressed_eof = metric_view("_metric_fields", key="suppressed_eof")
    suppressed_budget = metric_view("_metric_fields", key="suppressed_budget")
    failed = metric_view("_metric_fields", key="failed")

    def __init__(
        self,
        sim: Simulator,
        retriever: IORetriever,
        high_watermark: float = 0.85,
        degradation_source: Optional[Callable[[], float]] = None,
        max_inflight: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        tenant_source: Optional[Callable[[], Optional[str]]] = None,
        budget_source: Optional[Callable[[str], Optional[float]]] = None,
        metric_labels: Optional[Dict[str, str]] = None,
    ):
        if not 0.0 < high_watermark <= 1.0:
            raise ConfigurationError(
                f"prefetch watermark {high_watermark!r} outside (0, 1]"
            )
        self.sim = sim
        self.retriever = retriever
        self.high_watermark = float(high_watermark)
        self.degradation_source = degradation_source
        self.max_inflight = int(max_inflight)
        # Multi-tenant serving (repro.serve) wires these: ``tenant_source``
        # resolves the ambient tenant so stride state and the in-flight
        # cap become *per tenant* (two tenants interleaving sequential
        # scans on one dataset must not corrupt each other's pattern or
        # starve each other's speculation slot); ``budget_source`` maps a
        # tenant to its cap on resident speculative bytes.  Both default
        # to None, collapsing to the original single-tenant behavior.
        self.tenant_source = tenant_source
        self.budget_source = budget_source
        # Sharded deployments label each prefetcher (``{"shard": name}``):
        # the shard id becomes part of every stream key, so one logical
        # scan that touches datasets owned by different shards tracks an
        # independent stride per shard instead of looking like a broken
        # pattern to a single global detector.
        self.metric_labels = dict(metric_labels or {})
        self.shard_id: Optional[str] = self.metric_labels.get("shard")
        self._streams: Dict[
            Tuple[Optional[str], Optional[str], str, str], _StreamState
        ] = {}
        self._inflight: Dict[Optional[str], list] = {}
        self._last_degradation: Optional[float] = None
        # Registry-backed counters (the attributes above are views).
        self.metrics = (
            metrics if metrics is not None else retriever.metrics
        )
        self._metric_fields = {
            field: self.metrics.counter(
                f"prefetch_{field}_total", **self.metric_labels
            )
            for field in self.FIELDS
        }

    # -- the demand-path hook ------------------------------------------------

    def observe(
        self, logical: str, tag: str, chunks: Sequence[int]
    ) -> Optional[Process]:
        """Record a demand window; maybe launch the next window's prefetch.

        Returns the background :class:`Process` when one was launched
        (callers never need to wait on it) or ``None`` when speculation
        was suppressed.
        """
        if not chunks:
            return None
        tenant = self.tenant_source() if self.tenant_source is not None else None
        start, span = min(chunks), len(chunks)
        state = self._streams.setdefault(
            (self.shard_id, tenant, logical, tag), _StreamState()
        )
        self._advance_pattern(state, start, span)
        if not state.confirmed and not state.direction:
            self.suppressed_pattern += 1
            return None
        if self._degraded():
            self.suppressed_degraded += 1
            return None
        cache = self.retriever.cache
        if cache is None or cache.pressure() >= self.high_watermark:
            self.suppressed_pressure += 1
            return None
        inflight = self._inflight.setdefault(tenant, [])
        inflight[:] = [p for p in inflight if p.is_alive]
        if len(inflight) >= self.max_inflight:
            self.suppressed_inflight += 1
            return None
        if state.confirmed:
            # Exact stride (forward or backward playback, skip-frame):
            # extrapolate the stride itself.
            next_start = start + state.stride
            predicted = range(next_start, next_start + span)
        else:
            # Direction-only (jumpy scrub towards one end): magnitudes
            # don't repeat, so the best prediction is the window adjacent
            # to the current one in the playback direction.
            if state.direction > 0:
                predicted = range(start + span, start + 2 * span)
            else:
                predicted = range(start - span, start)
            next_start = predicted.start
        # Clamp the predicted window to the chunks the index actually has:
        # speculation past chunk 0 *or* past the subset's last chunk would
        # only spawn doomed no-op processes and inflate the issue counters.
        records = list(self.retriever.plfs.subset_records(logical, tag))
        last_chunk = max((r.chunk for r in records), default=-1)
        targets = [c for c in predicted if 0 <= c <= last_chunk]
        clamped = span - len(targets)
        if clamped:
            self.suppressed_eof += clamped
        if not targets:
            return None
        if not self._within_budget(tenant, cache, records, targets):
            self.suppressed_budget += 1
            return None
        self.issued += 1
        if not state.confirmed:
            self.issued_direction += 1
        self.chunks_requested += len(targets)
        proc = self.sim.process(
            self._prefetch(logical, tag, targets),
            name=f"prefetch:{logical}#{tag}:{next_start}",
        )
        inflight.append(proc)
        return proc

    def stats(self) -> Dict[str, object]:
        return {field: getattr(self, field) for field in self.FIELDS}

    # -- internals -----------------------------------------------------------

    def _advance_pattern(
        self, state: _StreamState, start: int, span: int
    ) -> None:
        """Sequential/strided detection over successive window starts.

        Two same-stride steps confirm a pattern; any break (rocking
        playback, random seeks) resets confirmation, reproducing the
        paper's observation that random access defeats readahead.
        """
        if state.last_start is not None:
            stride = start - state.last_start
            if stride != 0 and stride == state.stride:
                state.confirmed = True
            else:
                state.confirmed = False
                state.stride = stride if stride != 0 else None
            sign = (stride > 0) - (stride < 0)
            state.direction = sign if sign and sign == state.last_sign else 0
            state.last_sign = sign
        state.last_start = start
        state.last_len = span

    def _within_budget(self, tenant, cache, records, targets) -> bool:
        """Would this window keep the tenant's speculative bytes capped?

        The budget counts *resident prefetched-but-unused* bytes, so it is
        naturally reclaimable: demand consumption clears the block's
        ``prefetched`` flag and frees budget for the next window.
        """
        if tenant is None or self.budget_source is None:
            return True
        budget = self.budget_source(tenant)
        if budget is None:
            return True
        resident_fn = getattr(cache, "prefetched_bytes", None)
        resident = float(resident_fn(tenant)) if resident_fn is not None else 0.0
        wanted = set(targets)
        window_bytes = sum(r.nbytes for r in records if r.chunk in wanted)
        return resident + window_bytes <= float(budget)

    def _degraded(self) -> bool:
        """Has the fault layer reported new trouble since the last look?"""
        if self.degradation_source is None:
            return False
        level = float(self.degradation_source())
        previous, self._last_degradation = self._last_degradation, level
        return previous is not None and level > previous

    def _prefetch(self, logical: str, tag: str, targets: Sequence[int]):
        """Process: the speculative read itself; absorbs 'chunk gone'.

        The window prediction can run past the end of the subset (or race
        a concurrent ``remove``); that is an expected miss, not an error,
        so the process filters to chunks that exist and swallows nothing
        else -- fault errors propagate through the retriever's retry
        machinery exactly as demand reads do.
        """
        existing = {
            r.chunk for r in self.retriever.plfs.subset_records(logical, tag)
        }
        targets = [c for c in targets if c in existing]
        if not targets:
            return 0
        with trace_span(
            self.sim, "prefetch.window",
            logical=logical, tag=tag,
            chunks=",".join(str(c) for c in targets),
        ) as sp:
            try:
                count = yield from self.retriever.prefetch_chunks(
                    logical, tag, targets
                )
            except FaultError:
                # Speculation is best-effort: a permanent failure here must
                # not crash anything -- the demand read will surface it (or
                # route around it via graceful degradation) when it actually
                # matters.
                self.failed += 1
                sp.tag(failed=True)
                return 0
            sp.tag(admitted=count)
            return count
