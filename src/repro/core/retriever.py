"""The I/O retriever: fetches requested subsets from the backends.

"The I/O retriever obtains the requested datasets by triggering file read
via the dataset paths that are passed by the indexer" (§3.3).  Reads use
bulk (multi-megabyte) requests: ADA's subset files are log-structured and
contiguous, so the retriever does not pay the per-small-request tax a
frame-by-frame reader incurs on a striped file system.

The pipelined read path adds two opt-in accelerators on top of PR 2's
retry/CRC machinery:

* a **tiered block cache** (:class:`~repro.fs.cache.BlockCache`): chunks
  are keyed ``(logical, tag, chunk)``; hits serve at memory (L1) or
  SSD-class (L2) speed and verified backend reads are admitted on the way
  out, so every consumer -- ``fetch``, ``fetch_all``, ``fetch_merged``,
  the prefetcher -- shares one working set;
* **request coalescing**: chunk records that are adjacent on the same
  backend merge into a single span read (one metadata op, one
  seek-amortized transfer).  Retry and CRC semantics are preserved *per
  coalesced range*: each chunk inside a span is checksummed individually
  and a mismatch re-reads only that span.

Both default off, leaving the calibrated figure scenarios byte-for-byte
(and second-for-second) unchanged; ``ADA`` enables them when configured
with a block cache.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence

from repro.errors import ContainerError, FaultError
from repro.faults.retry import Retrier
from repro.fs.base import StoredObject
from repro.fs.cache import DERIVED_SUBSET, BlockCache, BlockKey
from repro.fs.plfs import PLFS, IndexRecord
from repro.obs.metrics import MetricsRegistry, SIZE_BUCKETS, metric_view
from repro.obs.trace import span
from repro.sim import AllOf, Process, Simulator
from repro.units import MiB

__all__ = ["IORetriever", "BULK_REQUEST_SIZE"]

#: ADA reads subset files in large sequential requests.
BULK_REQUEST_SIZE = 4 * MiB


class IORetriever:
    """Reads subset chunks through PLFS with bulk request sizing.

    Every retrieval runs under the retrier: a transient backend failure --
    including a checksum mismatch detected by PLFS, since corruption is
    injected in flight -- triggers a backed-off re-read.  With coalescing
    enabled the retry unit is the coalesced run, not the whole subset.

    ``serial_requests`` forces one synchronous chunk request at a time
    (no per-chunk concurrency, no coalescing) -- the pre-pipelining
    baseline the ``bench-pipeline`` harness measures against.
    """

    retrieved_bytes = metric_view(
        "_metric_fields", key="retrieved_bytes", cast=float
    )
    cache_served_bytes = metric_view(
        "_metric_fields", key="cache_served_bytes", cast=float
    )
    coalesced_runs = metric_view("_metric_fields", key="coalesced_runs")
    coalesced_chunks = metric_view("_metric_fields", key="coalesced_chunks")
    requests_saved = metric_view("_metric_fields", key="requests_saved")
    prefetched_chunks = metric_view("_metric_fields", key="prefetched_chunks")
    dedup_waits = metric_view("_metric_fields", key="dedup_waits")

    def __init__(
        self,
        sim: Simulator,
        plfs: PLFS,
        request_size: int = BULK_REQUEST_SIZE,
        retrier: Optional[Retrier] = None,
        cache: Optional[BlockCache] = None,
        coalesce: bool = False,
        serial_requests: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Dict[str, str]] = None,
    ):
        self.sim = sim
        self.plfs = plfs
        self.request_size = int(request_size)
        self.retrier = retrier if retrier is not None else Retrier(sim)
        self.cache = cache
        self.coalesce = coalesce
        self.serial_requests = serial_requests
        # Registry-backed accounting: the traffic counters above are
        # views, so ``coalesce_stats()`` and ``ADA.stats()`` read exactly
        # what the Prometheus/JSON exporters see.  ``metric_labels``
        # (e.g. ``{"shard": name}``) keep per-retriever series distinct
        # when several retrievers share one registry.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metric_labels = dict(metric_labels or {})
        extra = self.metric_labels
        self._metric_fields = {
            "retrieved_bytes": self.metrics.counter(
                "retriever_bytes_total", **extra
            ),
            "cache_served_bytes": self.metrics.counter(
                "retriever_cache_served_bytes_total", **extra
            ),
            "coalesced_runs": self.metrics.counter(
                "retriever_coalesced_runs_total", **extra
            ),  # spans issued with > 1 chunk
            "coalesced_chunks": self.metrics.counter(
                "retriever_coalesced_chunks_total", **extra
            ),  # chunks that rode in those spans
            "requests_saved": self.metrics.counter(
                "retriever_requests_saved_total", **extra
            ),  # backend requests coalescing removed
            "prefetched_chunks": self.metrics.counter(
                "retriever_prefetched_chunks_total", **extra
            ),  # chunks admitted speculatively
            "dedup_waits": self.metrics.counter(
                "retriever_dedup_waits_total", **extra
            ),  # demand reads that joined an in-flight read
        }
        self._run_bytes = self.metrics.histogram(
            "retriever_run_bytes", bounds=SIZE_BUCKETS, **extra
        )
        #: Chunk reads currently in flight, so a demand read overlapping a
        #: prefetch (or a concurrent consumer) joins the existing read
        #: instead of double-issuing it on the device queue.
        self._inflight: Dict[BlockKey, Process] = {}
        self.metrics.gauge(
            "retriever_inflight_reads", fn=self._inflight_live, **extra
        )

    def _inflight_live(self) -> int:
        return sum(1 for p in self._inflight.values() if p.is_alive)

    @property
    def pipelined(self) -> bool:
        """Is any pipelined-read feature (cache/coalescing) active?"""
        return self.cache is not None or self.coalesce

    def coalesce_stats(self) -> Dict[str, object]:
        return {
            "enabled": self.coalesce,
            "coalesced_runs": self.coalesced_runs,
            "coalesced_chunks": self.coalesced_chunks,
            "requests_saved": self.requests_saved,
        }

    # -- subset retrieval ---------------------------------------------------

    def retrieve(self, logical: str, tag: str) -> Generator:
        """Process: read one tagged subset; returns a :class:`StoredObject`."""
        with span(
            self.sim, "retriever.retrieve", logical=logical, tag=tag
        ) as sp:
            if not self.pipelined and not self.serial_requests:
                # Legacy path: identical timing to the pre-pipeline reader.
                obj: StoredObject = yield from self.retrier.call(
                    lambda: self.plfs.read_subset(
                        logical, tag, request_size=self.request_size
                    ),
                    key=f"read:{logical}#{tag}",
                )
                self.retrieved_bytes += obj.nbytes
                return obj
            if self.cache is not None:
                # Derived whole-subset entry: a repeat fetch of a multi-chunk
                # subset serves one assembled block instead of re-walking (and
                # re-joining) every chunk.  ``ingest_append`` invalidates these.
                derived = yield from self.cache.lookup(
                    (logical, tag, DERIVED_SUBSET)
                )
                if derived is not None:
                    self.retrieved_bytes += derived.nbytes
                    self.cache_served_bytes += derived.nbytes
                    sp.tag(cache_hit=True)
                    return StoredObject(
                        path=f"{logical}#{tag}",
                        nbytes=derived.nbytes,
                        data=derived.data,
                    )
            objs = yield from self.retrieve_chunks(logical, tag)
            total = sum(o.nbytes for o in objs)
            if any(o.is_virtual for o in objs):
                data = None
            elif len(objs) == 1:
                data = objs[0].data  # zero-copy: no join for single-chunk subsets
            else:
                data = b"".join(o.data for o in objs)
            if self.cache is not None and len(objs) > 1:
                self.cache.admit((logical, tag, DERIVED_SUBSET), total, data=data)
            self.retrieved_bytes += total
            return StoredObject(path=f"{logical}#{tag}", nbytes=total, data=data)

    def retrieve_all(self, logical: str) -> Generator:
        """Process: read every subset concurrently; returns ``{tag: obj}``."""
        tags = self.plfs.tags(logical)
        procs = [
            self.sim.process(
                self.retrieve(logical, tag), name=f"retrieve:{logical}#{tag}"
            )
            for tag in tags
        ]
        objs = yield AllOf(self.sim, procs)
        return dict(zip(tags, objs))

    # -- chunk-granular retrieval (the pipelined primitive) -----------------

    def retrieve_chunks(
        self,
        logical: str,
        tag: str,
        chunks: Optional[Sequence[int]] = None,
        prefetched: bool = False,
    ) -> Generator:
        """Process: read selected chunks of one subset, cache-aware.

        ``chunks=None`` means every chunk.  Cache hits pay their tier's
        service time; misses are grouped into backend-contiguous runs,
        each read (coalesced when enabled) under its own retry key, CRC
        verified per chunk, and admitted into the cache.  Returns the
        per-chunk :class:`StoredObject` list in chunk order -- callers
        that need the subset as one buffer join it themselves, callers
        that decode per chunk (``fetch_merged``, streaming playback)
        consume the buffers zero-copy.
        """
        records = self.plfs.subset_records(logical, tag)
        if chunks is not None:
            wanted = set(chunks)
            records = [r for r in records if r.chunk in wanted]
            missing = wanted - {r.chunk for r in records}
            if missing:
                raise ContainerError(
                    f"{logical}#{tag}: no chunk(s) {sorted(missing)}"
                )
        with span(
            self.sim, "retriever.retrieve_chunks",
            logical=logical, tag=tag, chunks=len(records),
            prefetched=prefetched,
        ) as sp:
            out: List[Optional[StoredObject]] = [None] * len(records)
            to_read: List[int] = []  # positions in `records` that missed
            waits: Dict[int, Process] = {}  # positions someone else is reading
            for pos, record in enumerate(records):
                if self.cache is None:
                    to_read.append(pos)
                    continue
                block = yield from self.cache.lookup(
                    (logical, tag, record.chunk)
                )
                if block is not None:
                    out[pos] = StoredObject(
                        path=record.path, nbytes=block.nbytes, data=block.data
                    )
                    self.cache_served_bytes += block.nbytes
                    continue
                inflight = self._inflight.get((logical, tag, record.chunk))
                if inflight is not None and inflight.is_alive:
                    waits[pos] = inflight
                else:
                    to_read.append(pos)
            sp.tag(
                cache_hits=len(records) - len(to_read) - len(waits),
                joined=len(waits),
            )
            runs = self._runs(records, to_read)
            if self.serial_requests:
                for run in runs:
                    objs = yield from self._read_run(
                        logical, tag, records, run, prefetched
                    )
                    for pos, obj in zip(run, objs):
                        out[pos] = obj
            else:
                procs: List[Process] = []
                for run in runs:
                    proc = self.sim.process(
                        self._read_run(logical, tag, records, run, prefetched),
                        name=f"retrieve:{logical}#{tag}:{records[run[0]].chunk}",
                    )
                    for pos in run:
                        self._inflight[(logical, tag, records[pos].chunk)] = proc
                    procs.append(proc)
                try:
                    results = yield AllOf(self.sim, procs)
                except BaseException:
                    # A failed run (FaultError escaping the AllOf barrier)
                    # must not leave dead Process objects in the dedup map:
                    # later demand reads would "join" a corpse and every
                    # entry would leak for the life of the retriever.
                    results = None
                    raise
                finally:
                    for run, proc in zip(runs, procs):
                        for pos in run:
                            key = (logical, tag, records[pos].chunk)
                            if self._inflight.get(key) is proc:
                                del self._inflight[key]
                for run, objs in zip(runs, results):
                    for pos, obj in zip(run, objs):
                        out[pos] = obj
            if waits:
                yield from self._join_inflight(logical, tag, records, waits, out)
            return list(out)

    def _join_inflight(
        self,
        logical: str,
        tag: str,
        records: List[IndexRecord],
        waits: Dict[int, Process],
        out: List[Optional[StoredObject]],
    ) -> Generator:
        """Process: ride out another consumer's in-flight reads.

        A demand read overlapping a prefetch of the same chunks waits for
        that read to finish and serves from the freshly admitted blocks --
        a failed or evicted in-flight read degrades to a private re-read,
        so the wait can only ever save device traffic, never lose data.
        """
        self.dedup_waits += len(waits)
        with span(
            self.sim, "retriever.dedup_join",
            logical=logical, tag=tag, joined=len(waits),
            chunks=",".join(str(records[pos].chunk) for pos in sorted(waits)),
        ) as sp:
            pending = [p for p in set(waits.values()) if p.is_alive]
            if pending:
                try:
                    yield AllOf(self.sim, pending)
                except FaultError:
                    pass  # the owner saw the failure; we re-read below
            reread = 0
            for pos in waits:
                if out[pos] is not None:
                    continue
                record = records[pos]
                block = yield from self.cache.lookup((logical, tag, record.chunk))
                if block is not None:
                    out[pos] = StoredObject(
                        path=record.path, nbytes=block.nbytes, data=block.data
                    )
                    self.cache_served_bytes += block.nbytes
                else:
                    reread += 1
                    objs = yield from self._read_run(
                        logical, tag, records, [pos], False
                    )
                    out[pos] = objs[0]
            sp.tag(rereads=reread)

    def prefetch_chunks(
        self, logical: str, tag: str, chunks: Sequence[int]
    ) -> Generator:
        """Process: warm the block cache with chunks not yet resident.

        The speculative read path of the adaptive prefetcher: it pays the
        same backend costs as demand reads (same retry/CRC semantics) but
        marks admitted blocks ``prefetched`` so the cache can account for
        useful vs. wasted speculation.
        """
        if self.cache is None:
            return 0
        records = self.plfs.subset_records(logical, tag)
        wanted = set(chunks)
        cold = [
            r.chunk
            for r in records
            if r.chunk in wanted and not self.cache.peek((logical, tag, r.chunk))
        ]
        if not cold:
            return 0
        objs = yield from self.retrieve_chunks(
            logical, tag, chunks=cold, prefetched=True
        )
        self.prefetched_chunks += len(objs)
        return len(objs)

    # -- internals ----------------------------------------------------------

    def _runs(
        self, records: List[IndexRecord], positions: List[int]
    ) -> List[List[int]]:
        """Group missed positions into coalescible runs.

        A run is a maximal stretch of positions that are consecutive in
        the subset's chunk order and whose chunks live on one backend --
        exactly the stretches that are adjacent in the backend's
        log-structured layout.  Without coalescing (or in serial mode)
        every chunk is its own run.
        """
        if not self.coalesce or self.serial_requests:
            return [[pos] for pos in positions]
        runs: List[List[int]] = []
        for pos in positions:
            if (
                runs
                and pos == runs[-1][-1] + 1
                and records[pos].backend == records[runs[-1][-1]].backend
            ):
                runs[-1].append(pos)
            else:
                runs.append([pos])
        return runs

    def _read_run(
        self,
        logical: str,
        tag: str,
        records: List[IndexRecord],
        run: List[int],
        prefetched: bool,
    ) -> Generator:
        """Process: one retried, CRC-verified read of a chunk run.

        Verified blocks are admitted into the cache *here*, before the
        run's process completes -- so a consumer that joined this read
        via :attr:`_inflight` finds them resident the moment it resumes.
        """
        run_records = [records[pos] for pos in run]
        first, last = run_records[0].chunk, run_records[-1].chunk
        key = f"read:{logical}#{tag}:{first}" + (
            f"-{last}" if last != first else ""
        )
        coalesced = self.coalesce and len(run_records) > 1
        with span(
            self.sim, "retriever.read_run",
            logical=logical, tag=tag,
            chunk=first if last == first else f"{first}-{last}",
            coalesced=coalesced, prefetched=prefetched,
        ) as sp:
            objs = yield from self.retrier.call(
                lambda: self.plfs.read_chunk_run(
                    run_records,
                    request_size=self.request_size,
                    coalesce=coalesced,
                ),
                key=key,
            )
            nbytes = sum(obj.nbytes for obj in objs)
            sp.tag(nbytes=nbytes)
            self._run_bytes.observe(nbytes)
        if coalesced:
            self.coalesced_runs += 1
            self.coalesced_chunks += len(run_records)
            self.requests_saved += len(run_records) - 1
        if self.cache is not None:
            for record, obj in zip(run_records, objs):
                self.cache.admit(
                    (logical, tag, record.chunk),
                    obj.nbytes,
                    data=obj.data,
                    prefetched=prefetched,
                )
        return objs
