"""The I/O retriever: fetches requested subsets from the backends.

"The I/O retriever obtains the requested datasets by triggering file read
via the dataset paths that are passed by the indexer" (§3.3).  Reads use
bulk (multi-megabyte) requests: ADA's subset files are log-structured and
contiguous, so the retriever does not pay the per-small-request tax a
frame-by-frame reader incurs on a striped file system.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.faults.retry import Retrier
from repro.fs.base import StoredObject
from repro.fs.plfs import PLFS
from repro.sim import AllOf, Simulator
from repro.units import MiB

__all__ = ["IORetriever", "BULK_REQUEST_SIZE"]

#: ADA reads subset files in large sequential requests.
BULK_REQUEST_SIZE = 4 * MiB


class IORetriever:
    """Reads subset chunks through PLFS with bulk request sizing.

    Every retrieval runs under the retrier: a transient backend failure --
    including a checksum mismatch detected by PLFS, since corruption is
    injected in flight -- triggers a backed-off re-read of the subset.
    """

    def __init__(
        self,
        sim: Simulator,
        plfs: PLFS,
        request_size: int = BULK_REQUEST_SIZE,
        retrier: Optional[Retrier] = None,
    ):
        self.sim = sim
        self.plfs = plfs
        self.request_size = int(request_size)
        self.retrier = retrier if retrier is not None else Retrier(sim)
        self.retrieved_bytes = 0.0

    def retrieve(self, logical: str, tag: str) -> Generator:
        """Process: read one tagged subset; returns a :class:`StoredObject`."""
        obj: StoredObject = yield from self.retrier.call(
            lambda: self.plfs.read_subset(
                logical, tag, request_size=self.request_size
            ),
            key=f"read:{logical}#{tag}",
        )
        self.retrieved_bytes += obj.nbytes
        return obj

    def retrieve_all(self, logical: str) -> Generator:
        """Process: read every subset concurrently; returns ``{tag: obj}``."""
        tags = self.plfs.tags(logical)
        procs = [
            self.sim.process(
                self.retrieve(logical, tag), name=f"retrieve:{logical}#{tag}"
            )
            for tag in tags
        ]
        objs = yield AllOf(self.sim, procs)
        return dict(zip(tags, objs))
