"""The indexer: tag -> dataset paths on the underlying file systems.

"When users send data queries for certain groups of datasets, the indexer
uses tags from the queries to look for paths of datasets on the underlying
file systems and passes them to the I/O retriever" (§3.2).  The lookup has
a small but real cost -- it is why D-ADA(all) retrieval trails D-ext4
slightly in Fig. 7a -- charged as simulated time per query.
"""

from __future__ import annotations

from typing import Generator, List

from repro.fs.plfs import PLFS, IndexRecord
from repro.sim import Simulator

__all__ = ["Indexer"]


class Indexer:
    """Resolves tag queries against PLFS container indexes."""

    def __init__(self, sim: Simulator, plfs: PLFS, lookup_latency_s: float = 2e-3):
        self.sim = sim
        self.plfs = plfs
        self.lookup_latency_s = lookup_latency_s
        self.lookups = 0

    def lookup(self, logical: str, tag: str) -> Generator:
        """Process: resolve one tag to its chunk records (charges latency)."""
        yield self.sim.timeout(self.lookup_latency_s)
        self.lookups += 1
        return self.plfs.subset_records(logical, tag)

    def lookup_all(self, logical: str) -> Generator:
        """Process: resolve every tag of a container."""
        yield self.sim.timeout(self.lookup_latency_s)
        self.lookups += 1
        return {
            tag: self.plfs.subset_records(logical, tag)
            for tag in self.plfs.tags(logical)
        }

    # -- cost-free metadata (for planning, not on the data path) ------------

    def tags(self, logical: str) -> List[str]:
        return self.plfs.tags(logical)

    def subset_nbytes(self, logical: str, tag: str) -> int:
        return self.plfs.subset_nbytes(logical, tag)
