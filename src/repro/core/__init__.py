"""ADA: the application-conscious data acquirer (the paper's contribution).

Two major components, mirroring Fig. 4:

* the **data pre-processor** (:mod:`categorizer`, :mod:`labeler`,
  :mod:`decompressor`, composed in :mod:`preprocessor`) runs on storage
  nodes: it decompresses an arriving dataset once, categorizes atoms by the
  structure learned from the ``.pdb`` file, and splits the trajectory into
  tagged subsets; and
* the **I/O determinator** (:mod:`indexer`, :mod:`dispatcher`,
  :mod:`retriever`, composed in :mod:`determinator`) places each tagged
  subset on a policy-chosen backend through the PLFS container layer and
  serves tag-selective reads.

:class:`~repro.core.middleware.ADA` is the middleware facade applications
(our VMD front end) talk to.
"""

from repro.core.tags import PlacementPolicy, SelectionTagPolicy, TagPolicy
from repro.core.categorizer import Categorizer
from repro.core.generic import FieldSpec, GenericPreProcessor, RecordStructure
from repro.core.labeler import LabelMap, build_label_map
from repro.core.decompressor import Decompressor, TrajectoryWindow
from repro.core.preprocessor import (
    DataPreProcessor,
    PreProcessResult,
    WindowResult,
)
from repro.core.indexer import Indexer
from repro.core.dispatcher import IODispatcher
from repro.core.ingest import IngestPipeline, IngestPipelineConfig
from repro.core.retriever import IORetriever
from repro.core.determinator import IODeterminator
from repro.core.middleware import ADA

__all__ = [
    "ADA",
    "Categorizer",
    "DataPreProcessor",
    "Decompressor",
    "FieldSpec",
    "GenericPreProcessor",
    "Indexer",
    "IngestPipeline",
    "IngestPipelineConfig",
    "RecordStructure",
    "IODeterminator",
    "IODispatcher",
    "IORetriever",
    "LabelMap",
    "PlacementPolicy",
    "PreProcessResult",
    "SelectionTagPolicy",
    "TagPolicy",
    "TrajectoryWindow",
    "WindowResult",
    "build_label_map",
]
