"""Generic application support: ADA beyond VMD.

"Although ADA is built for VMD, its framework can be extended to support
other computational science applications ... As long as an application can
provide the structure of its raw data in a file format, ADA can acquire an
understanding of this structure through analyzing the structure file"
(paper §1); §3.1 sketches the canonical case -- "a scientific raw dataset
representing different levels of precision will be divided into a few
groups".

This module is that extension.  A :class:`RecordStructure` is the
structure file: an ordered list of fixed-size fields per record, each
carrying a tag.  :class:`GenericPreProcessor` splits a binary table of
such records column-group-wise into per-tag subsets (a tag-tiered column
store), and reassembles records from any subset combination.  The
determinator/dispatcher/retriever machinery is reused unchanged -- only
the categorizer is application-specific, exactly as Fig. 4 promises.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError, TopologyError

__all__ = ["FieldSpec", "RecordStructure", "GenericPreProcessor"]


@dataclass(frozen=True)
class FieldSpec:
    """One field of a record: name, numpy dtype string, and its tag."""

    name: str
    dtype: str
    tag: str

    def __post_init__(self) -> None:
        try:
            np.dtype(self.dtype)
        except TypeError as exc:
            raise ConfigurationError(f"bad dtype {self.dtype!r}") from exc
        if not self.name or not self.tag:
            raise ConfigurationError("field name and tag must be non-empty")

    @property
    def itemsize(self) -> int:
        return int(np.dtype(self.dtype).itemsize)


class RecordStructure:
    """An application's structure file: ordered fields with tags."""

    def __init__(self, fields: Sequence[FieldSpec]):
        if not fields:
            raise ConfigurationError("a record needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate field names in {names}")
        self.fields = list(fields)

    @property
    def record_nbytes(self) -> int:
        return sum(f.itemsize for f in self.fields)

    @property
    def tags(self) -> List[str]:
        return sorted({f.tag for f in self.fields})

    def numpy_dtype(self) -> np.dtype:
        return np.dtype([(f.name, f.dtype) for f in self.fields])

    def fields_for(self, tag: str) -> List[FieldSpec]:
        out = [f for f in self.fields if f.tag == tag]
        if not out:
            raise ConfigurationError(
                f"no fields tagged {tag!r} (have {self.tags})"
            )
        return out

    def tag_fraction(self, tag: str) -> float:
        """Byte share of one tag per record."""
        return sum(f.itemsize for f in self.fields_for(tag)) / self.record_nbytes

    # -- the structure file itself ------------------------------------------

    def to_bytes(self) -> bytes:
        payload = [
            {"name": f.name, "dtype": f.dtype, "tag": f.tag} for f in self.fields
        ]
        return json.dumps(payload, sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RecordStructure":
        try:
            payload = json.loads(blob)
            return cls([FieldSpec(**entry) for entry in payload])
        except (ValueError, TypeError) as exc:
            raise ConfigurationError(f"corrupt structure file: {exc}") from exc


class GenericPreProcessor:
    """Splits binary record tables by tag -- the generic categorizer."""

    def __init__(self, structure: RecordStructure):
        self.structure = structure

    def split(self, table: bytes) -> Dict[str, bytes]:
        """Divide a record table into per-tag column-group subsets."""
        dtype = self.structure.numpy_dtype()
        if len(table) % dtype.itemsize:
            raise TopologyError(
                f"table size {len(table)} is not a whole number of "
                f"{dtype.itemsize}-byte records"
            )
        records = np.frombuffer(table, dtype=dtype)
        out: Dict[str, bytes] = {}
        for tag in self.structure.tags:
            names = [f.name for f in self.structure.fields_for(tag)]
            sub_dtype = np.dtype(
                [(f.name, f.dtype) for f in self.structure.fields_for(tag)]
            )
            sub = np.empty(records.shape[0], dtype=sub_dtype)
            for name in names:
                sub[name] = records[name]
            out[tag] = sub.tobytes()
        return out

    def merge(self, subsets: Dict[str, bytes]) -> bytes:
        """Reassemble full records from every tag's subset."""
        dtype = self.structure.numpy_dtype()
        columns: Dict[str, np.ndarray] = {}
        nrecords = None
        for tag in self.structure.tags:
            if tag not in subsets:
                raise TopologyError(f"merge is missing subset {tag!r}")
            sub_dtype = np.dtype(
                [(f.name, f.dtype) for f in self.structure.fields_for(tag)]
            )
            sub = np.frombuffer(subsets[tag], dtype=sub_dtype)
            if nrecords is None:
                nrecords = sub.shape[0]
            elif sub.shape[0] != nrecords:
                raise TopologyError("subset record counts disagree")
            for name in sub.dtype.names:
                columns[name] = sub[name]
        full = np.empty(nrecords, dtype=dtype)
        for name in dtype.names:
            full[name] = columns[name]
        return full.tobytes()

    def project(self, subset: bytes, tag: str) -> np.ndarray:
        """View one tag's subset as a structured numpy array."""
        sub_dtype = np.dtype(
            [(f.name, f.dtype) for f in self.structure.fields_for(tag)]
        )
        return np.frombuffer(subset, dtype=sub_dtype)
