"""The streaming ingest pipeline: windowed pre-processing overlapped with
write-behind dispatch and (optionally) fused in-situ analysis.

The monolithic ingest path (:meth:`ADA.ingest`) decompresses and
categorizes the *entire* arriving trajectory on the storage CPU, then
dispatches every subset -- peak memory is the whole raw dataset and the
backends sit idle while the CPU works (and vice versa).  This module
pipelines the stages:

* the **producer** pulls GOF-aligned windows from
  :meth:`DataPreProcessor.process_windows`, pays the storage-CPU charge
  for each, and pushes the encoded per-tag blobs into a bounded
  write-behind queue;
* the optional **analyzer** runs the fused in-situ analysis hook on each
  window's decoded coordinates *before* the window's buffers are
  released -- the online operators see every frame exactly once without
  a second decompression pass;
* the **consumer** drains the queue in arrival order and dispatches each
  window's subsets as coalesced chunk runs
  (:meth:`IODispatcher.dispatch_run`).

Because the storage CPU, the analysis slot, and the backend devices are
independent simulated resources, window *k*'s categorize/encode overlaps
window *k-1*'s analysis which overlaps window *k-2*'s device writes.  The
buffer is bounded by ``depth`` windows and (optionally)
``max_buffered_bytes``, so peak buffered memory is O(window x depth), not
O(raw dataset); a full queue *backpressures* the producer, which is how a
slow tier throttles a fast simulation stream instead of ballooning the
buffer.  An empty buffer always admits one window, so a single oversized
window can never deadlock the pipeline.

Determinism: the consumer dispatches windows strictly in arrival order
and each window's tags go out sorted, so chunk numbering -- and therefore
every stored path, CRC, and index record -- is identical to the serial
(``pipelined=False``) schedule over the same windows, with or without an
analysis stage.  The pipeline only moves *when* bytes hit the backends,
never *which* bytes.

Abandonment: a caller that abandons the driving generator mid-stream
(``close()`` / ``GeneratorExit``) -- or any stage failure -- tears the
run down through :meth:`IngestPipeline._abort`: the still-alive stages
are interrupted, the window iterator is closed, and every buffered
window's accounting is returned, so a shared pipeline (and its
``ingest_buffered_bytes`` gauge) is clean for the next stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Generator, Iterable, List, Optional

from repro.core.preprocessor import WindowResult
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry, metric_view
from repro.obs.trace import span
from repro.sim import AllOf, Event, Interrupt, Process, Simulator

__all__ = ["IngestPipeline", "IngestPipelineConfig"]

#: Frames per ingest window when the caller does not choose (compressed
#: streams round up to whole GOFs, so the effective window may be larger).
DEFAULT_WINDOW_FRAMES = 64


@dataclass(frozen=True)
class IngestPipelineConfig:
    """Tuning knobs for the streaming ingest path.

    ``depth`` bounds how many pre-processed windows may be buffered
    (queued plus in analysis or dispatch) at once; ``max_buffered_bytes``
    adds a byte watermark on top.  ``pipelined=False`` runs the identical
    windowed schedule with no overlap and no coalescing -- the serial
    baseline the ``bench-ingest`` harness measures against.

    ``analysis`` optionally carries a default in-situ analysis hook (an
    object with ``consume(start, stop, coords)`` /``results()``, e.g.
    :class:`repro.analysis.online.InSituAnalysis`) applied to every
    stream ingested under this config; a per-call
    ``ADA.ingest_stream(analysis=...)`` hook wins.
    """

    window_frames: int = DEFAULT_WINDOW_FRAMES
    depth: int = 4
    max_buffered_bytes: Optional[int] = None
    coalesce: bool = True
    pipelined: bool = True
    analysis: Optional[object] = None

    def __post_init__(self) -> None:
        if self.window_frames < 1:
            raise ConfigurationError(
                f"window_frames must be >= 1, got {self.window_frames}"
            )
        if self.depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {self.depth}")
        if self.max_buffered_bytes is not None and self.max_buffered_bytes < 1:
            raise ConfigurationError(
                f"max_buffered_bytes must be >= 1, got {self.max_buffered_bytes}"
            )
        if self.analysis is not None and not callable(
            getattr(self.analysis, "consume", None)
        ):
            raise ConfigurationError(
                "analysis hook must provide consume(start, stop, coords)"
            )


class IngestPipeline:
    """Producer/analyzer/consumer overlap of per-window CPU work,
    in-situ analysis, and dispatch.

    One instance may :meth:`run` several streams; counters accumulate in
    the shared :class:`MetricsRegistry` (``ingest_*`` families), so the
    write path's queue depth, buffered bytes, and backpressure stalls are
    visible in the same exports as the read path's cache and coalescing
    counters.
    """

    windows = metric_view("_metric_fields", key="windows")
    backpressure_waits = metric_view("_metric_fields", key="backpressure_waits")
    backpressure_seconds = metric_view(
        "_metric_fields", key="backpressure_seconds", cast=float
    )
    cpu_seconds = metric_view("_metric_fields", key="cpu_seconds", cast=float)
    dispatch_seconds = metric_view(
        "_metric_fields", key="dispatch_seconds", cast=float
    )
    analysis_seconds = metric_view(
        "_metric_fields", key="analysis_seconds", cast=float
    )

    def __init__(
        self,
        sim: Simulator,
        config: Optional[IngestPipelineConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Dict[str, str]] = None,
    ):
        self.sim = sim
        self.config = config or IngestPipelineConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metric_labels = dict(metric_labels or {})
        extra = self.metric_labels
        self._metric_fields = {
            "windows": self.metrics.counter("ingest_windows_total", **extra),
            "backpressure_waits": self.metrics.counter(
                "ingest_backpressure_waits_total", **extra
            ),  # producer stalls on a full queue
            "backpressure_seconds": self.metrics.counter(
                "ingest_backpressure_seconds_total", **extra
            ),  # simulated seconds spent stalled
            "cpu_seconds": self.metrics.counter(
                "ingest_cpu_seconds_total", **extra
            ),
            "dispatch_seconds": self.metrics.counter(
                "ingest_dispatch_seconds_total", **extra
            ),
            "analysis_seconds": self.metrics.counter(
                "ingest_analysis_seconds_total", **extra
            ),  # simulated seconds in the fused in-situ stage
        }
        #: Windows currently buffered: queued plus in analysis/dispatch.
        self._held = 0
        self._buffered_bytes = 0
        self.queue_depth_peak = 0
        self.buffered_bytes_peak = 0
        self.metrics.gauge("ingest_queue_depth", fn=lambda: self._held, **extra)
        self.metrics.gauge(
            "ingest_buffered_bytes", fn=lambda: self._buffered_bytes, **extra
        )
        self._peak_depth_gauge = self.metrics.gauge(
            "ingest_queue_depth_peak", **extra
        )
        self._peak_bytes_gauge = self.metrics.gauge(
            "ingest_buffered_bytes_peak", **extra
        )
        self._space_event: Optional[Event] = None
        self._feed_event: Optional[Event] = None
        self._data_event: Optional[Event] = None
        self.last_elapsed_s = 0.0

    # -- entry point --------------------------------------------------------

    def run(
        self,
        windows: Iterable[WindowResult],
        cpu_charge: Callable[[int], Generator],
        dispatch_window: Callable[[WindowResult], Generator],
        analyze_window: Optional[Callable[[WindowResult], Generator]] = None,
    ) -> Generator:
        """Process: drive a window stream through pre-process (+ analysis)
        + dispatch.

        ``cpu_charge(raw_nbytes)`` is the storage-CPU cost of one window
        (a DES process); ``analyze_window(result)``, when given, runs the
        fused in-situ analysis pass on one window (a DES process) before
        that window may dispatch; ``dispatch_window(result)`` writes one
        window's subsets and returns its index records.  Returns the
        per-window record lists in window order.
        """
        started = self.sim.now
        records: List[list] = []
        if not self.config.pipelined:
            try:
                for result in windows:
                    t0 = self.sim.now
                    yield from cpu_charge(result.raw_nbytes)
                    self.cpu_seconds += self.sim.now - t0
                    if analyze_window is not None:
                        t0 = self.sim.now
                        yield from analyze_window(result)
                        self.analysis_seconds += self.sim.now - t0
                    t0 = self.sim.now
                    recs = yield from dispatch_window(result)
                    self.dispatch_seconds += self.sim.now - t0
                    records.append(recs)
                    self.windows += 1
                self.last_elapsed_s = self.sim.now - started
                return records
            finally:
                self._close_windows(windows)
        state: Dict[str, object] = {
            "produced": False,
            "analyzed": False,
            "error": None,
            "abort": False,
        }
        pending: Deque[WindowResult] = deque()  # encoded, awaiting analysis
        ready: Deque[WindowResult] = deque()  # analyzed, awaiting dispatch
        fused = analyze_window is not None
        procs: List[Process] = [
            self.sim.process(
                self._produce(
                    windows, cpu_charge, pending if fused else ready,
                    state, fused,
                ),
                name="ingest:producer",
            )
        ]
        if fused:
            procs.append(
                self.sim.process(
                    self._analyze(analyze_window, pending, ready, state),
                    name="ingest:analyzer",
                )
            )
        procs.append(
            self.sim.process(
                self._consume(dispatch_window, ready, state, records),
                name="ingest:consumer",
            )
        )
        try:
            yield AllOf(self.sim, procs)
        except BaseException:
            self._abort(procs, windows, (pending, ready), state)
            raise
        finally:
            self.last_elapsed_s = self.sim.now - started
        return records

    # -- the stages ---------------------------------------------------------

    def _produce(
        self,
        windows: Iterable[WindowResult],
        cpu_charge: Callable[[int], Generator],
        queue: Deque[WindowResult],
        state: Dict[str, object],
        fused: bool,
    ) -> Generator:
        """Process: pre-process windows, enqueue under backpressure."""
        try:
            for result in windows:
                t0 = self.sim.now
                yield from cpu_charge(result.raw_nbytes)
                self.cpu_seconds += self.sim.now - t0
                while (
                    state["error"] is None
                    and not state["abort"]
                    and not self._admits(result)
                ):
                    self.backpressure_waits += 1
                    with span(
                        self.sim, "ingest.backpressure",
                        window=result.index, depth=self._held,
                        buffered=self._buffered_bytes,
                    ):
                        t0 = self.sim.now
                        event = self.sim.event()
                        self._space_event = event
                        yield event
                        self.backpressure_seconds += self.sim.now - t0
                if state["abort"]:
                    return
                if state["error"] is not None:
                    # A downstream stage already failed; surface its error
                    # here too so the AllOf barrier cannot hang on us.
                    raise state["error"]  # type: ignore[misc]
                queue.append(result)
                self._held += 1
                self._buffered_bytes += result.nbytes
                if self._held > self.queue_depth_peak:
                    self.queue_depth_peak = self._held
                    self._peak_depth_gauge.set(self._held)
                if self._buffered_bytes > self.buffered_bytes_peak:
                    self.buffered_bytes_peak = self._buffered_bytes
                    self._peak_bytes_gauge.set(self._buffered_bytes)
                self._wake(which="feed" if fused else "data")
        except Interrupt:
            if not state["abort"]:
                raise
        finally:
            state["produced"] = True
            self._wake(which="feed")
            if not fused:
                state["analyzed"] = True
                self._wake(which="data")

    def _analyze(
        self,
        analyze_window: Callable[[WindowResult], Generator],
        pending: Deque[WindowResult],
        ready: Deque[WindowResult],
        state: Dict[str, object],
    ) -> Generator:
        """Process: run the fused in-situ pass on each buffered window.

        Sits between producer and consumer so a window's decoded
        coordinates are analyzed exactly once, before its buffers are
        released; the window stays *held* (for backpressure accounting)
        until dispatch completes.
        """
        try:
            while True:
                if state["abort"]:
                    return
                if not pending:
                    if state["produced"]:
                        return
                    event = self.sim.event()
                    self._feed_event = event
                    yield event
                    continue
                result = pending.popleft()
                t0 = self.sim.now
                try:
                    yield from analyze_window(result)
                except BaseException as exc:
                    if not (isinstance(exc, Interrupt) and state["abort"]):
                        state["error"] = exc
                    raise
                finally:
                    self.analysis_seconds += self.sim.now - t0
                ready.append(result)
                self._wake(which="data")
        except Interrupt:
            if not state["abort"]:
                raise
        finally:
            state["analyzed"] = True
            self._wake(which="data")
            self._wake(which="space")

    def _consume(
        self,
        dispatch_window: Callable[[WindowResult], Generator],
        ready: Deque[WindowResult],
        state: Dict[str, object],
        records: List[list],
    ) -> Generator:
        """Process: drain windows in arrival order, dispatching each."""
        try:
            while True:
                if state["abort"]:
                    return
                if not ready:
                    if state["analyzed"]:
                        return
                    event = self.sim.event()
                    self._data_event = event
                    yield event
                    continue
                result = ready.popleft()
                t0 = self.sim.now
                try:
                    recs = yield from dispatch_window(result)
                except BaseException as exc:
                    if not (isinstance(exc, Interrupt) and state["abort"]):
                        state["error"] = exc
                    raise
                finally:
                    self.dispatch_seconds += self.sim.now - t0
                    self._held -= 1
                    self._buffered_bytes -= result.nbytes
                    self._wake(which="space")
                records.append(recs)
                self.windows += 1
        except Interrupt:
            if not state["abort"]:
                raise

    # -- internals ----------------------------------------------------------

    def _abort(
        self,
        procs: List[Process],
        windows: Iterable[WindowResult],
        queues: Iterable[Deque[WindowResult]],
        state: Dict[str, object],
    ) -> None:
        """Tear down a failed or abandoned run without leaking buffers.

        Called when the stage barrier raises -- a stage failed, or the
        driving generator was abandoned mid-stream (``close()`` /
        ``GeneratorExit``).  Marks the run aborted so the stage loops
        exit cleanly at their next resume, interrupts the still-alive
        stages, closes the window iterator (releasing the decoder), and
        returns every queued window's accounting, so this (shared)
        pipeline and its ``ingest_queue_depth`` / ``ingest_buffered_bytes``
        gauges are clean for the next stream.
        """
        state["abort"] = True
        self._close_windows(windows)
        for proc in procs:
            if proc.is_alive:
                proc.interrupt("ingest aborted")
        for queue in queues:
            while queue:
                result = queue.popleft()
                self._held -= 1
                self._buffered_bytes -= result.nbytes
        self._space_event = None
        self._feed_event = None
        self._data_event = None

    @staticmethod
    def _close_windows(windows: Iterable[WindowResult]) -> None:
        close = getattr(windows, "close", None)
        if close is not None:
            close()

    def _admits(self, result: WindowResult) -> bool:
        """May one more window enter the write-behind buffer?

        An empty buffer always admits (no-deadlock invariant); otherwise
        both the depth bound and the byte watermark must hold.
        """
        if self._held == 0:
            return True
        if self._held >= self.config.depth:
            return False
        limit = self.config.max_buffered_bytes
        return limit is None or self._buffered_bytes + result.nbytes <= limit

    def _wake(self, which: str) -> None:
        if which == "space":
            event, self._space_event = self._space_event, None
        elif which == "feed":
            event, self._feed_event = self._feed_event, None
        else:
            event, self._data_event = self._data_event, None
        if event is not None and not event.triggered:
            event.succeed()

    def stats(self) -> Dict[str, object]:
        """Operational snapshot of the pipeline's registry counters.

        ``overlap_ratio`` is the fraction of the *overlappable* work that
        actually overlapped in the last run: with CPU time C, analysis
        time A, dispatch time D, and wall time W, overlap is
        ``C + A + D - W`` and the achievable maximum is
        ``C + A + D - max(C, A, D)`` (with no analysis stage this reduces
        to the two-stage ``min(C, D)``).  Serial runs report 0.
        """
        cpu = self.cpu_seconds
        io = self.dispatch_seconds
        ana = self.analysis_seconds
        wall = self.last_elapsed_s
        bound = cpu + ana + io - max(cpu, ana, io)
        overlap = max(0.0, cpu + ana + io - wall) / bound if bound > 0 else 0.0
        return {
            "enabled": True,
            "pipelined": self.config.pipelined,
            "window_frames": self.config.window_frames,
            "depth": self.config.depth,
            "max_buffered_bytes": self.config.max_buffered_bytes,
            "windows": self.windows,
            "backpressure_waits": self.backpressure_waits,
            "backpressure_seconds": self.backpressure_seconds,
            "cpu_seconds": cpu,
            "analysis_seconds": ana,
            "dispatch_seconds": io,
            "elapsed_seconds": wall,
            "overlap_ratio": min(1.0, overlap),
            "queue_depth_peak": self.queue_depth_peak,
            "buffered_bytes_peak": self.buffered_bytes_peak,
        }
