"""Per-tenant session handles and admission control.

:class:`SessionManager` owns the tenant registry and the admission
gate: each tenant is bounded by a maximum number of in-flight requests
and (optionally) a budget on *outstanding estimated bytes* -- admitted
but not yet completed work.  A breach raises the typed
:class:`~repro.errors.AdmissionRejected` synchronously at submit time,
so a misbehaving tenant cannot even grow the scheduler's queues, let
alone another tenant's latency.

:class:`Session` is the handle the front end returns from
``register()``: thin DES-generator wrappers (``fetch_chunks`` /
``fetch`` / ``fetch_merged`` / ``ingest_stream``) around submit+wait,
plus a fire-and-forget ``submit`` for open-loop traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.core.lod import validate_precision
from repro.errors import AdmissionRejected, ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span
from repro.serve.scheduler import NICE_MAX, NICE_MIN, ServeRequest, nice_weight

__all__ = ["TenantConfig", "TenantState", "SessionManager", "Session"]


@dataclass
class TenantConfig:
    """Admission limits, scheduling weight, and cache shares for one tenant."""

    name: str
    nice: int = 0
    max_inflight: int = 8
    byte_budget: Optional[int] = None  # outstanding estimated bytes
    cache_quota_bytes: Optional[int] = None  # reserved L1 share
    prefetch_budget_bytes: Optional[int] = None  # speculative-byte cap
    #: Default read tier for this tenant's requests ("full"/"lod"/"auto");
    #: a per-request ``precision`` payload key overrides it.  Interactive
    #: viewers register "auto" (cheap frames under load), pinned analyses
    #: keep the "full" default (exact bytes, always).
    precision: str = "full"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        validate_precision(self.precision)
        if not NICE_MIN <= int(self.nice) <= NICE_MAX:
            raise ConfigurationError(
                f"nice level {self.nice} outside [{NICE_MIN}, {NICE_MAX}]"
            )
        if int(self.max_inflight) < 1:
            raise ConfigurationError(
                f"max_inflight {self.max_inflight} must be >= 1"
            )
        if self.byte_budget is not None and int(self.byte_budget) < 1:
            raise ConfigurationError(
                f"byte budget {self.byte_budget} must be >= 1"
            )

    @property
    def weight(self) -> float:
        return nice_weight(self.nice)


class TenantState:
    """Live admission accounting for one registered tenant."""

    __slots__ = (
        "config", "inflight", "outstanding_bytes",
        "admitted", "rejected", "completed",
    )

    def __init__(self, config: TenantConfig):
        self.config = config
        self.inflight = 0
        self.outstanding_bytes = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0


class SessionManager:
    """Tenant registry plus the synchronous admission gate."""

    def __init__(self, sim, metrics: Optional[MetricsRegistry] = None):
        self.sim = sim
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tenants: Dict[str, TenantState] = {}

    def register(self, config: TenantConfig) -> TenantState:
        if config.name in self._tenants:
            raise ConfigurationError(
                f"tenant {config.name!r} already registered"
            )
        state = TenantState(config)
        self._tenants[config.name] = state
        self.metrics.gauge(
            "serve_inflight",
            fn=lambda s=state: float(s.inflight),
            tenant=config.name,
        )
        self.metrics.gauge(
            "serve_outstanding_bytes",
            fn=lambda s=state: float(s.outstanding_bytes),
            tenant=config.name,
        )
        return state

    def get(self, tenant: str) -> TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            raise ConfigurationError(f"unknown tenant {tenant!r}")
        return state

    @property
    def tenants(self) -> Dict[str, TenantState]:
        return dict(self._tenants)

    @property
    def total_inflight(self) -> int:
        return sum(s.inflight for s in self._tenants.values())

    def admit(self, tenant: str, cost_bytes: int) -> None:
        """Charge one request against the tenant's limits or reject it."""
        state = self.get(tenant)
        config = state.config
        with span(
            self.sim, "serve.admit", tenant=tenant, cost_bytes=cost_bytes,
        ) as sp:
            if state.inflight + 1 > config.max_inflight:
                state.rejected += 1
                self.metrics.counter(
                    "serve_rejected_total", tenant=tenant, reason="inflight"
                ).inc()
                sp.tag(admitted=False, reason="inflight")
                raise AdmissionRejected(
                    tenant, "in-flight requests",
                    config.max_inflight, state.inflight + 1,
                )
            budget = config.byte_budget
            if (
                budget is not None
                and state.inflight > 0
                and state.outstanding_bytes + cost_bytes > budget
            ):
                # An idle tenant's first request always admits, however
                # large -- a budget smaller than one request must degrade
                # to serialization, not a permanent lockout.
                state.rejected += 1
                self.metrics.counter(
                    "serve_rejected_total", tenant=tenant, reason="bytes"
                ).inc()
                sp.tag(admitted=False, reason="bytes")
                raise AdmissionRejected(
                    tenant, "outstanding bytes",
                    budget, state.outstanding_bytes + cost_bytes,
                )
            state.inflight += 1
            state.outstanding_bytes += int(cost_bytes)
            state.admitted += 1
            self.metrics.counter("serve_admitted_total", tenant=tenant).inc()
            sp.tag(admitted=True)

    def release(self, tenant: str, cost_bytes: int) -> None:
        """Return one completed (or failed) request's admission charge."""
        state = self.get(tenant)
        state.inflight = max(0, state.inflight - 1)
        state.outstanding_bytes = max(
            0, state.outstanding_bytes - int(cost_bytes)
        )
        state.completed += 1

    def stats(self) -> Dict[str, object]:
        return {
            name: {
                "nice": state.config.nice,
                "weight": state.config.weight,
                "max_inflight": state.config.max_inflight,
                "byte_budget": state.config.byte_budget,
                "precision": state.config.precision,
                "inflight": state.inflight,
                "outstanding_bytes": state.outstanding_bytes,
                "admitted": state.admitted,
                "rejected": state.rejected,
                "completed": state.completed,
            }
            for name, state in sorted(self._tenants.items())
        }


class Session:
    """One tenant's handle onto the serving front end."""

    def __init__(self, front, state: TenantState):
        self._front = front
        self.state = state
        self.name = state.config.name

    # -- fire-and-forget (open-loop traffic) --------------------------------

    def submit(
        self, kind: str, nice: Optional[int] = None, **payload
    ) -> ServeRequest:
        """Admit + enqueue; returns the request whose ``done`` event fires
        on completion.  Raises :class:`AdmissionRejected` synchronously."""
        return self._front.submit(self.name, kind, payload, nice=nice)

    # -- submit-and-wait conveniences (closed-loop traffic) ------------------

    def fetch_chunks(
        self, logical: str, tag: str, chunks,
        nice: Optional[int] = None, precision: Optional[str] = None,
    ) -> Generator:
        request = self.submit(
            "fetch_chunks", nice=nice,
            logical=logical, tag=tag, chunks=list(chunks),
            precision=precision,
        )
        result = yield request.done
        return result

    def fetch(
        self, logical: str, tag: str,
        nice: Optional[int] = None, precision: Optional[str] = None,
    ) -> Generator:
        request = self.submit(
            "fetch", nice=nice, logical=logical, tag=tag, precision=precision,
        )
        result = yield request.done
        return result

    def fetch_merged(
        self, logical: str,
        nice: Optional[int] = None, precision: Optional[str] = None,
    ) -> Generator:
        request = self.submit(
            "fetch_merged", nice=nice, logical=logical, precision=precision,
        )
        result = yield request.done
        return result

    def ingest_stream(
        self,
        logical: str,
        blob: bytes,
        pdb_text: Optional[str] = None,
        nice: Optional[int] = None,
    ) -> Generator:
        request = self.submit(
            "ingest_stream", nice=nice,
            logical=logical, blob=blob, pdb_text=pdb_text,
        )
        result = yield request.done
        return result
