"""The in-process multi-tenant serving front end.

:class:`ServeFront` composes one shared :class:`~repro.core.ADA`
middleware with the serving-layer pieces::

    Session.submit --> SessionManager.admit (typed rejection)
                   --> RequestScheduler     (WFQ, nice-levels)
                   --> per-tenant fault gate + bounded retries
                   --> ADA.fetch_chunks / fetch / fetch_merged / ingest_stream

Tenant attribution is ambient: the scheduler wraps every execution in a
``serve.request`` span tagged with the tenant, and the front wires a
span-walking tenant source into the :class:`TenantBlockCache` and the
prefetcher, so *every* cache admission and speculative read deep inside
the middleware is billed to the right tenant -- including background
prefetch processes, which inherit the demand fetch's span context.

Per-tenant device faults are modeled at the serving boundary: when a
:class:`~repro.faults.FaultPlan` is supplied, every dispatched request
first consults the ``serve:<tenant>`` site, paying injected latency and
transient errors through a bounded :class:`~repro.faults.Retrier`.
Because the retries run *inside the faulty tenant's concurrency slot and
WFQ flow*, a misbehaving tenant burns only its own share -- the
non-monopolization property the chaos suite pins.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.core.lod import validate_precision
from repro.core.middleware import ADA
from repro.errors import ConfigurationError, ReproError
from repro.faults.plan import FaultPlan, raise_fault
from repro.faults.retry import Retrier, RetryPolicy
from repro.obs.trace import Tracer
from repro.serve.fairshare import TenantBlockCache, span_tenant_source
from repro.serve.scheduler import RequestScheduler, ServeRequest
from repro.serve.session import Session, SessionManager, TenantConfig

__all__ = ["ServeFront"]

#: Request kinds the dispatcher understands (one per ADA read/write path).
KINDS = ("fetch_chunks", "fetch", "fetch_merged", "ingest_stream")


class ServeFront:
    """Multiplexes N tenant sessions over one shared ADA middleware."""

    def __init__(
        self,
        ada: ADA,
        concurrency: int = 4,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        lod_backlog: Optional[int] = None,
    ):
        self.ada = ada
        # The serving layer's own degradation signal for "auto" reads: a
        # WFQ backlog deeper than this many queued requests means demand
        # outruns the slots, so auto-tier tenants drop to the cheap LOD
        # layer until the queues drain.  Defaults to 2x the slot count.
        self.lod_backlog = (
            2 * int(concurrency) if lod_backlog is None else int(lod_backlog)
        )
        self.sim = ada.sim
        self.metrics = ada.metrics
        # Ambient tenant context rides the span chain, so serving always
        # runs traced (a no-op-cheap tracer if none was attached).
        self.tracer = Tracer.for_sim(self.sim)
        self.tenant_source = span_tenant_source(self.sim)
        cache = ada.block_cache
        if isinstance(cache, TenantBlockCache) and cache.tenant_source is None:
            cache.set_tenant_source(self.tenant_source)
        prefetcher = ada.prefetcher
        if prefetcher is not None:
            if prefetcher.tenant_source is None:
                prefetcher.tenant_source = self.tenant_source
            if prefetcher.budget_source is None:
                prefetcher.budget_source = self._prefetch_budget
        self.sessions = SessionManager(self.sim, self.metrics)
        self.scheduler = RequestScheduler(
            self.sim,
            dispatch=self._dispatch,
            concurrency=concurrency,
            metrics=self.metrics,
        )
        self.fault_plan = fault_plan
        self._retrier = (
            Retrier(self.sim, policy=retry_policy)
            if fault_plan is not None
            else None
        )

    # -- tenant lifecycle ---------------------------------------------------

    def register(
        self,
        name: str,
        nice: int = 0,
        max_inflight: int = 8,
        byte_budget: Optional[int] = None,
        cache_quota_bytes: Optional[int] = None,
        prefetch_budget_bytes: Optional[int] = None,
        precision: str = "full",
    ) -> Session:
        """Register a tenant and return its session handle."""
        config = TenantConfig(
            name=name,
            nice=nice,
            max_inflight=max_inflight,
            byte_budget=byte_budget,
            cache_quota_bytes=cache_quota_bytes,
            prefetch_budget_bytes=prefetch_budget_bytes,
            precision=precision,
        )
        state = self.sessions.register(config)
        cache = self.ada.block_cache
        if cache_quota_bytes is not None:
            if isinstance(cache, TenantBlockCache):
                cache.set_quota(name, cache_quota_bytes)
            else:
                raise ConfigurationError(
                    "cache_quota_bytes needs a TenantBlockCache; "
                    f"the deployment has {type(cache).__name__!r}"
                )
        return Session(self, state)

    def session(self, name: str) -> Session:
        """A (new) handle onto an already-registered tenant."""
        return Session(self, self.sessions.get(name))

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        tenant: str,
        kind: str,
        payload: Dict[str, object],
        nice: Optional[int] = None,
    ) -> ServeRequest:
        """Admission-check and enqueue one request (synchronous)."""
        if kind not in KINDS:
            raise ConfigurationError(
                f"unknown serve request kind {kind!r}; expected one of {KINDS}"
            )
        state = self.sessions.get(tenant)
        cost = self._estimate_cost(kind, payload)
        self.sessions.admit(tenant, cost)  # raises AdmissionRejected
        request = ServeRequest(
            tenant=tenant,
            kind=kind,
            payload=dict(payload),
            nice=state.config.nice if nice is None else int(nice),
            cost_bytes=cost,
            on_complete=lambda req, t=tenant, c=cost: self.sessions.release(
                t, c
            ),
        )
        return self.scheduler.submit(request)

    def _estimate_cost(self, kind: str, payload: Dict[str, object]) -> int:
        """Byte estimate used for admission budgets and WFQ cost.

        Index metadata is synchronous bookkeeping in this repo's
        convention, so sizing from the subset records is free; unknown
        datasets fall back to cost 1 and fail inside dispatch instead.
        """
        try:
            if kind == "fetch_chunks":
                sizes = {
                    r.chunk: r.nbytes
                    for r in self.ada.plfs.subset_records(
                        payload["logical"], payload["tag"]
                    )
                }
                wanted = payload.get("chunks") or ()
                return max(1, int(sum(sizes.get(c, 0) for c in wanted)))
            if kind == "fetch":
                return max(
                    1,
                    int(
                        self.ada.subset_nbytes(
                            payload["logical"], payload["tag"]
                        )
                    ),
                )
            if kind == "fetch_merged":
                return max(
                    1, int(self.ada.container_nbytes(payload["logical"]))
                )
            if kind == "ingest_stream":
                return max(1, len(payload["blob"]))
        except ReproError:
            return 1
        return 1

    # -- dispatch (runs inside the scheduler's serve.request span) ----------

    def _dispatch(self, request: ServeRequest) -> Generator:
        if self.fault_plan is None:
            result = yield from self._attempt(request)
            return result
        result = yield from self._retrier.call(
            lambda: self._attempt(request),
            key=f"serve:{request.tenant}:{request.seq}",
        )
        return result

    def _attempt(self, request: ServeRequest) -> Generator:
        if self.fault_plan is not None:
            # The tenant's "device": faults at the serving boundary hit
            # every request of this tenant and nobody else's.
            site = f"serve:{request.tenant}"
            decision = self.fault_plan.decide(site, request.kind)
            if decision.latency_s:
                yield self.sim.timeout(decision.latency_s)
            if decision.error is not None:
                raise_fault(decision.error, site, request.kind)
        result = yield from self._execute_kind(request)
        return result

    def _resolve_precision(self, request: ServeRequest) -> str:
        """The request's read tier: payload override, else tenant policy.

        ``"auto"`` additionally folds in the serving layer's own pressure
        signal -- a WFQ backlog past :attr:`lod_backlog` resolves auto
        straight to the LOD tier; otherwise the middleware's cache and
        fault watermarks decide (see :meth:`ADA._resolve_tier`).
        """
        precision = request.payload.get("precision")
        if precision is None:
            precision = self.sessions.get(request.tenant).config.precision
        precision = validate_precision(precision)
        if precision == "auto" and self.scheduler.backlog > self.lod_backlog:
            self.metrics.counter(
                "serve_lod_backlog_total", tenant=request.tenant
            ).inc()
            return "lod"
        return precision

    def _execute_kind(self, request: ServeRequest) -> Generator:
        payload = request.payload
        if request.kind != "ingest_stream":
            precision = self._resolve_precision(request)
        if request.kind == "fetch_chunks":
            objs = yield from self.ada.fetch_chunks(
                payload["logical"], payload["tag"], payload["chunks"],
                precision=precision,
            )
            request.served_bytes = int(sum(o.nbytes for o in objs))
            return objs
        if request.kind == "fetch":
            obj = yield from self.ada.fetch(
                payload["logical"], payload["tag"], precision=precision
            )
            request.served_bytes = int(obj.nbytes)
            return obj
        if request.kind == "fetch_merged":
            obj = yield from self.ada.fetch_merged(
                payload["logical"], precision=precision
            )
            request.served_bytes = int(obj.nbytes)
            return obj
        # Guarded in submit(); only ingest_stream remains.
        result = yield from self.ada.ingest_stream(
            payload["logical"],
            payload["blob"],
            pdb_text=payload.get("pdb_text"),
        )
        request.served_bytes = len(payload["blob"])
        return result

    # -- wiring helpers ------------------------------------------------------

    def _prefetch_budget(self, tenant: str) -> Optional[float]:
        try:
            state = self.sessions.get(tenant)
        except ConfigurationError:
            return None
        budget = state.config.prefetch_budget_bytes
        return None if budget is None else float(budget)

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        out = {
            "scheduler": self.scheduler.stats(),
            "sessions": self.sessions.stats(),
        }
        if self._retrier is not None:
            out["serve_retry"] = self._retrier.stats.as_dict()
        return out
