"""Multi-tenant serving layer: sessions, QoS scheduling, fair shares.

One :class:`~repro.core.ADA` middleware, many concurrent VMD sessions:

* :mod:`repro.serve.session` -- per-tenant handles and admission control
  (:class:`SessionManager`, typed :class:`~repro.errors.AdmissionRejected`);
* :mod:`repro.serve.scheduler` -- weighted fair queuing with nice-levels
  (:class:`RequestScheduler`), deterministic under the sim clock;
* :mod:`repro.serve.fairshare` -- per-tenant block-cache quotas over a
  reclaimable shared pool (:class:`TenantBlockCache`);
* :mod:`repro.serve.front` -- :class:`ServeFront`, the composition that
  threads tenant context, faults, and observability through the stack;
* :mod:`repro.serve.traffic` -- deterministic closed/open-loop Zipf
  traffic for the fairness/latency benchmarks.
"""

from repro.serve.fairshare import TenantBlockCache, span_tenant_source
from repro.serve.front import ServeFront
from repro.serve.scheduler import (
    NICE_MAX,
    NICE_MIN,
    RequestScheduler,
    ServeRequest,
    nice_weight,
)
from repro.serve.session import (
    Session,
    SessionManager,
    TenantConfig,
    TenantState,
)
from repro.serve.traffic import (
    DatasetRef,
    TenantRunStats,
    TrafficConfig,
    TrafficGenerator,
)

__all__ = [
    "DatasetRef",
    "NICE_MAX",
    "NICE_MIN",
    "RequestScheduler",
    "ServeFront",
    "ServeRequest",
    "Session",
    "SessionManager",
    "TenantBlockCache",
    "TenantConfig",
    "TenantRunStats",
    "TenantState",
    "TrafficConfig",
    "TrafficGenerator",
    "nice_weight",
    "span_tenant_source",
]
