"""Weighted fair queuing request scheduler with nice-levels.

The serving front end multiplexes many tenants over one middleware; this
module decides *who goes next*.  The shape follows the ActionManager
queue-with-nice-levels pattern (a priority queue drained by a scheduler
process, lower nice served sooner), hardened into start-time fair queuing
(SFQ) so priority is a *share*, not a lockout:

* each tenant is one WFQ flow with weight ``2 ** (-nice / 2)`` -- every
  two nice levels halve the share, mirroring CPU-scheduler convention;
* a submitted request is stamped with virtual start/finish tags
  ``start = max(V, flow_finish)``, ``finish = start + cost / weight``
  where ``cost`` is the request's byte estimate, so fairness is
  *byte-weighted*, not request-counted;
* dispatch always picks the backlogged request with the smallest finish
  tag, tie-broken deterministically by ``(finish, tenant, seq)`` -- under
  the sim clock two identical runs schedule identically;
* the virtual clock ``V`` advances to the start tag of the dispatched
  request, which bounds how far a backlogged flow can run ahead and
  yields the textbook starvation-freedom guarantee: every admitted
  request's finish tag is finite, and tags of competing flows must pass
  it after a bounded number of bytes.

``concurrency`` slots (a :class:`~repro.sim.resources.Resource`) bound
how many requests execute at once; the execution itself is an injectable
``dispatch`` callable returning a DES generator, so property tests can
drive the scheduler with a stub executor and the serving front end plugs
in the real ADA paths.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Generator, List, Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry, TIME_BUCKETS
from repro.obs.trace import span
from repro.sim import Event, Process, Resource, Simulator

__all__ = ["NICE_MIN", "NICE_MAX", "nice_weight", "ServeRequest", "RequestScheduler"]

#: Nice levels follow the CPU-scheduler convention: lower is more urgent.
NICE_MIN = -8
NICE_MAX = 8


def nice_weight(nice: int) -> float:
    """WFQ weight for a nice level: every +2 nice halves the share."""
    nice = int(nice)
    if not NICE_MIN <= nice <= NICE_MAX:
        raise ConfigurationError(
            f"nice level {nice} outside [{NICE_MIN}, {NICE_MAX}]"
        )
    return 2.0 ** (-nice / 2.0)


@dataclass
class ServeRequest:
    """One queued unit of tenant work, stamped with its WFQ tags.

    ``payload`` is opaque to the scheduler; the injected ``dispatch``
    callable interprets it.  ``done`` fires with the dispatch result (or
    fails with its exception) when execution completes.
    """

    tenant: str
    kind: str
    payload: Dict[str, object] = field(default_factory=dict)
    nice: int = 0
    cost_bytes: int = 1
    weight: Optional[float] = None  # derived from ``nice`` when None
    seq: int = -1
    submitted_s: float = 0.0
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    start_tag: float = 0.0
    finish_tag: float = 0.0
    served_bytes: int = 0
    error: Optional[BaseException] = None
    done: Optional[Event] = None
    on_complete: Optional[Callable[["ServeRequest"], None]] = None

    @property
    def wait_s(self) -> float:
        started = self.started_s if self.started_s is not None else self.submitted_s
        return started - self.submitted_s

    @property
    def latency_s(self) -> Optional[float]:
        if self.finished_s is None:
            return None
        return self.finished_s - self.submitted_s

    @property
    def ok(self) -> bool:
        return self.finished_s is not None and self.error is None


class RequestScheduler:
    """Drains per-tenant FIFO queues in weighted-fair finish-tag order."""

    def __init__(
        self,
        sim: Simulator,
        dispatch: Callable[[ServeRequest], Generator],
        concurrency: int = 4,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if int(concurrency) < 1:
            raise ConfigurationError(
                f"scheduler concurrency {concurrency} must be >= 1"
            )
        self.sim = sim
        self.dispatch = dispatch
        self.concurrency = int(concurrency)
        self.slots = Resource(sim, capacity=self.concurrency, name="serve.slots")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queues: Dict[str, Deque[ServeRequest]] = {}
        self._flow_finish: Dict[str, float] = {}
        self._vtime = 0.0
        self._seq = itertools.count()
        self._wake: Optional[Event] = None
        #: Completed (ok or failed) requests per tenant, in finish order.
        self.completed: Dict[str, List[ServeRequest]] = {}
        self._tenant_metrics: Dict[str, Dict[str, object]] = {}
        # The drain loop starts idle and parks on a wake event; it is
        # spawned eagerly so its trace context is the (empty) construction
        # scope, never some tenant's open span.
        self._loop: Process = self.sim.process(self._run(), name="serve.scheduler")

    # -- submission ---------------------------------------------------------

    @property
    def backlog(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def vtime(self) -> float:
        return self._vtime

    def submit(self, request: ServeRequest) -> ServeRequest:
        """Stamp, enqueue, and (eventually) execute one request.

        Synchronous bookkeeping: the caller gets the request back with
        ``done`` armed; waiting on it is optional (open-loop tenants fire
        and forget, closed-loop tenants ``yield request.done``).
        """
        request.seq = next(self._seq)
        request.submitted_s = self.sim.now
        request.done = Event(self.sim)
        if request.weight is None:
            request.weight = nice_weight(request.nice)
        if request.weight <= 0:
            raise ConfigurationError(
                f"request weight {request.weight!r} must be positive"
            )
        cost = max(1, int(request.cost_bytes))
        start = max(self._vtime, self._flow_finish.get(request.tenant, 0.0))
        request.start_tag = start
        request.finish_tag = start + cost / request.weight
        self._flow_finish[request.tenant] = request.finish_tag
        self._queues.setdefault(request.tenant, deque()).append(request)
        self._metrics_for(request.tenant)["queued"].inc()
        self._kick()
        return request

    # -- the drain loop -----------------------------------------------------

    def _kick(self) -> None:
        wake, self._wake = self._wake, None
        if wake is not None and not wake.triggered:
            wake.succeed(None)

    def _run(self) -> Generator:
        while True:
            if not self.backlog:
                self._wake = Event(self.sim)
                yield self._wake
                continue
            grant = self.slots.request()
            yield grant
            # Pop at *grant* time, not request time: requests that arrived
            # while we waited for a slot compete for this dispatch.
            request = self._pop_next()
            if request is None:
                grant.release()
                continue
            self.sim.process(
                self._execute(request, grant),
                name=f"serve.exec:{request.tenant}:{request.seq}",
            )

    def _pop_next(self) -> Optional[ServeRequest]:
        best_tenant: Optional[str] = None
        best_key = None
        for tenant in sorted(self._queues):
            queue = self._queues[tenant]
            if not queue:
                continue
            head = queue[0]
            key = (head.finish_tag, tenant, head.seq)
            if best_key is None or key < best_key:
                best_key, best_tenant = key, tenant
        if best_tenant is None:
            return None
        request = self._queues[best_tenant].popleft()
        self._vtime = max(self._vtime, request.start_tag)
        return request

    def _execute(self, request: ServeRequest, grant) -> Generator:
        request.started_s = self.sim.now
        tm = self._metrics_for(request.tenant)
        tm["wait"].observe(request.started_s - request.submitted_s)
        # Zero-duration marker span recording the dispatch decision.
        with span(
            self.sim, "serve.schedule",
            tenant=request.tenant, seq=request.seq, nice=request.nice,
            finish_tag=round(request.finish_tag, 6),
            wait_s=round(request.started_s - request.submitted_s, 9),
        ):
            pass
        result = None
        try:
            with span(
                self.sim, "serve.request",
                tenant=request.tenant, kind=request.kind, seq=request.seq,
            ) as sp:
                result = yield from self.dispatch(request)
                sp.tag(served_bytes=request.served_bytes)
        except Exception as exc:  # noqa: BLE001 - delivered to the waiter
            request.error = exc
        request.finished_s = self.sim.now
        tm["latency"].observe(request.finished_s - request.submitted_s)
        if request.error is None:
            tm["completed"].inc()
            tm["bytes"].inc(request.served_bytes)
        else:
            tm["failed"].inc()
        self.completed.setdefault(request.tenant, []).append(request)
        if request.on_complete is not None:
            request.on_complete(request)
        grant.release()
        self._kick()
        if request.error is None:
            request.done.succeed(result)
        else:
            # Failing an event nobody waits on is silent by design: an
            # open-loop tenant learns about failures from the counters.
            request.done.fail(request.error)

    # -- reporting ----------------------------------------------------------

    def _metrics_for(self, tenant: str) -> Dict[str, object]:
        tm = self._tenant_metrics.get(tenant)
        if tm is None:
            tm = {
                "queued": self.metrics.counter(
                    "serve_requests_total", tenant=tenant
                ),
                "completed": self.metrics.counter(
                    "serve_completed_total", tenant=tenant
                ),
                "failed": self.metrics.counter(
                    "serve_failed_total", tenant=tenant
                ),
                "bytes": self.metrics.counter(
                    "serve_served_bytes_total", tenant=tenant
                ),
                "wait": self.metrics.histogram(
                    "serve_wait_seconds", TIME_BUCKETS, tenant=tenant
                ),
                "latency": self.metrics.histogram(
                    "serve_latency_seconds", TIME_BUCKETS, tenant=tenant
                ),
            }
            self.metrics.gauge(
                "serve_queue_depth",
                fn=lambda t=tenant: float(len(self._queues.get(t) or ())),
                tenant=tenant,
            )
            self._tenant_metrics[tenant] = tm
        return tm

    def stats(self) -> Dict[str, object]:
        tenants: Dict[str, Dict[str, object]] = {}
        for tenant in sorted(set(self._queues) | set(self.completed)):
            done = self.completed.get(tenant, [])
            ok = [r for r in done if r.error is None]
            waits = [r.wait_s for r in done]
            tenants[tenant] = {
                "queued": len(self._queues.get(tenant) or ()),
                "completed": len(ok),
                "failed": len(done) - len(ok),
                "served_bytes": int(sum(r.served_bytes for r in ok)),
                "mean_wait_s": (sum(waits) / len(waits)) if waits else 0.0,
            }
        return {
            "concurrency": self.concurrency,
            "backlog": self.backlog,
            "vtime": self._vtime,
            "tenants": tenants,
        }
