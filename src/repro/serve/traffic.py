"""Synthetic multi-tenant traffic: closed/open loops over Zipf-hot data.

The serving benchmarks need workloads that look like a fleet of VMD
users, not a single scripted reader:

* **closed loop** -- each tenant is one interactive user: issue a
  playback window, wait for it, think, repeat.  Offered load adapts to
  service rate (the classic interactive model);
* **open loop** -- requests arrive by a seeded Poisson process whether
  or not earlier ones finished, so queues (and the admission gate) are
  actually exercised;
* **Zipf-hot popularity** -- dataset choice follows a Zipf(s) rank
  distribution shared by all tenants, so a few hot trajectories
  dominate and tenants *contend* for the same cache lines, which is
  what makes fairness worth measuring.

Every random draw comes from a per-tenant ``random.Random`` seeded from
``(seed, tenant)``: a tenant's request sequence is identical whether it
runs alone or against seven neighbors -- the property the isolation
suite turns into a bit-identity assertion.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence

from repro.errors import AdmissionRejected, ConfigurationError, FaultError
from repro.serve.session import Session

__all__ = ["DatasetRef", "TrafficConfig", "TenantRunStats", "TrafficGenerator"]


@dataclass(frozen=True)
class DatasetRef:
    """One fetchable subset: dataset, tag, and how many chunks it has."""

    logical: str
    tag: str
    nchunks: int


@dataclass
class TrafficConfig:
    mode: str = "closed"  # "closed" | "open"
    requests_per_tenant: int = 32
    window_chunks: int = 4  # chunks per playback window
    think_s: float = 0.0  # closed-loop think time between requests
    arrival_rate_hz: float = 200.0  # open-loop per-tenant Poisson rate
    zipf_s: float = 1.1  # popularity skew across the catalog
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ConfigurationError(f"traffic mode {self.mode!r} unknown")
        if self.requests_per_tenant < 1 or self.window_chunks < 1:
            raise ConfigurationError(
                "requests_per_tenant and window_chunks must be >= 1"
            )
        if self.arrival_rate_hz <= 0 or self.think_s < 0 or self.zipf_s < 0:
            raise ConfigurationError("invalid traffic rate/think/zipf")


@dataclass
class TenantRunStats:
    """What one tenant's loop observed (service data, not scheduling)."""

    tenant: str
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    served_bytes: int = 0
    digest: "hashlib._Hash" = field(default_factory=hashlib.sha256)

    def record_objs(self, objs) -> None:
        self.completed += 1
        for obj in objs:
            self.served_bytes += int(obj.nbytes)
            self.digest.update(obj.data if obj.data is not None else b"")

    def hexdigest(self) -> str:
        return self.digest.hexdigest()


class TrafficGenerator:
    """Drives registered sessions with deterministic synthetic traffic."""

    def __init__(self, catalog: Sequence[DatasetRef], config: TrafficConfig):
        if not catalog:
            raise ConfigurationError("traffic needs a non-empty catalog")
        self.catalog = list(catalog)
        self.config = config
        # Zipf(s) over catalog rank: weight 1/(rank+1)^s, cumulative table.
        weights = [
            1.0 / (rank + 1) ** config.zipf_s
            for rank in range(len(self.catalog))
        ]
        total = sum(weights)
        cumulative, acc = [], 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        self._cumulative = cumulative

    # -- request-sequence generation ----------------------------------------

    def _rng(self, tenant: str) -> random.Random:
        return random.Random(f"{self.config.seed}/{tenant}")

    def _pick(self, rng: random.Random) -> DatasetRef:
        u = rng.random()
        for index, edge in enumerate(self._cumulative):
            if u <= edge:
                return self.catalog[index]
        return self.catalog[-1]

    def _window(
        self, positions: Dict[str, int], ref: DatasetRef
    ) -> List[int]:
        """Next sequential playback window on ``ref`` (wraps at EOF).

        Sequential per (tenant, dataset) -- like a user scrubbing forward
        -- so the stride detector can earn its keep under contention.
        """
        size = min(self.config.window_chunks, ref.nchunks)
        start = positions.get(ref.logical, 0)
        if start + size > ref.nchunks:
            start = 0
        positions[ref.logical] = start + size
        return list(range(start, start + size))

    def plan(self, tenant: str) -> List[List[object]]:
        """The tenant's full deterministic request sequence (for tests)."""
        rng = self._rng(tenant)
        positions: Dict[str, int] = {}
        out = []
        for _ in range(self.config.requests_per_tenant):
            ref = self._pick(rng)
            out.append([ref, self._window(positions, ref)])
        return out

    # -- the tenant loops ----------------------------------------------------

    def tenant_loop(self, session: Session) -> Generator:
        """DES process: run one tenant's traffic to completion.

        Returns the tenant's :class:`TenantRunStats`.
        """
        if self.config.mode == "closed":
            stats = yield from self._closed_loop(session)
        else:
            stats = yield from self._open_loop(session)
        return stats

    def _closed_loop(self, session: Session) -> Generator:
        sim = session._front.sim
        stats = TenantRunStats(tenant=session.name)
        for ref, window in self.plan(session.name):
            try:
                objs = yield from session.fetch_chunks(
                    ref.logical, ref.tag, window
                )
                stats.record_objs(objs)
            except AdmissionRejected:
                stats.rejected += 1
            except FaultError:
                stats.failed += 1
            if self.config.think_s:
                yield sim.timeout(self.config.think_s)
        return stats

    def _open_loop(self, session: Session) -> Generator:
        sim = session._front.sim
        rng = self._rng(session.name + "/arrivals")
        stats = TenantRunStats(tenant=session.name)
        outstanding = []
        for ref, window in self.plan(session.name):
            yield sim.timeout(rng.expovariate(self.config.arrival_rate_hz))
            try:
                outstanding.append(
                    session.submit(
                        "fetch_chunks",
                        logical=ref.logical, tag=ref.tag, chunks=window,
                    )
                )
            except AdmissionRejected:
                stats.rejected += 1
        for request in outstanding:
            try:
                objs = yield request.done
                stats.record_objs(objs)
            except FaultError:
                stats.failed += 1
        return stats
