"""Fair-share partitioning of the block cache across tenants.

:class:`TenantBlockCache` extends the tiered
:class:`~repro.fs.cache.BlockCache` with per-tenant L1 byte accounting:

* each tenant may hold a **reserved quota** of L1 bytes; the remainder of
  L1 is a **shared pool** that any tenant (and cross-tenant community
  blocks) may use;
* the pool is **reclaimable**: nothing is wasted while the cache is
  uncontended -- a lone tenant can fill all of L1 -- but when eviction
  pressure arrives, victims are chosen first among blocks whose holder is
  *over its allocation* (a tenant beyond its reservation, a tenant with
  no reservation, or the shared pool beyond its capacity), in LRU order.
  A tenant's within-quota working set therefore survives another
  tenant's scan;
* **charge follows use**: a block that a second tenant hits is re-charged
  to the shared pool (owner ``None``).  This is the fix for the two
  accounting-leak classes the multi-tenant suite exposed -- derived
  whole-subset entries billed forever to whichever tenant assembled them
  first, and in-flight dedup joins where the joining tenant consumed a
  block only the issuing tenant was charged for.

Tenant attribution is ambient: :func:`span_tenant_source` resolves the
current tenant by walking the open trace-span chain for a ``tenant`` tag,
which the scheduler's ``serve.request`` span carries.  Because spawned
processes inherit their parent's span context, background prefetches are
attributed to the tenant whose demand window triggered them.  Outside any
tenant-tagged span (direct ADA use, tier-1 tests) the source returns
``None`` and the cache behaves exactly like its parent class.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.fs.cache import BlockCache, BlockKey, CachedBlock
from repro.obs.metrics import MetricsRegistry

__all__ = ["TenantBlockCache", "span_tenant_source"]


def span_tenant_source(sim) -> Callable[[], Optional[str]]:
    """Ambient tenant resolver: nearest ``tenant`` tag up the span chain."""

    def current() -> Optional[str]:
        tracer = getattr(sim, "tracer", None)
        if tracer is None:
            return None
        sp = tracer.current()
        while sp is not None:
            tenant = sp.tags.get("tenant")
            if tenant is not None:
                return str(tenant)
            sp = sp.parent
        return None

    return current


class TenantBlockCache(BlockCache):
    """Two-tier block cache with per-tenant L1 quotas over a shared pool."""

    def __init__(
        self,
        sim,
        quotas: Optional[Dict[str, float]] = None,
        tenant_source: Optional[Callable[[], Optional[str]]] = None,
        **kwargs,
    ):
        # Accounting state must exist before ``super().__init__`` runs:
        # it calls ``bind_metrics``, which our override extends.
        self._owner: Dict[BlockKey, Optional[str]] = {}
        self._l1_charged: Dict[Optional[str], float] = {}
        self._quotas: Dict[str, float] = {}
        self.tenant_source = tenant_source
        super().__init__(sim, **kwargs)
        for tenant, nbytes in (quotas or {}).items():
            self.set_quota(tenant, nbytes)

    # -- configuration ------------------------------------------------------

    def set_tenant_source(
        self, source: Optional[Callable[[], Optional[str]]]
    ) -> None:
        self.tenant_source = source

    def set_quota(self, tenant: str, nbytes: float) -> None:
        """Reserve ``nbytes`` of L1 for ``tenant`` (0 removes protection)."""
        self._quotas[str(tenant)] = max(0.0, float(nbytes))

    def quota_bytes(self, tenant: str) -> float:
        return self._quotas.get(str(tenant), 0.0)

    def shared_capacity_bytes(self) -> float:
        """L1 bytes not reserved by any tenant (the reclaimable pool)."""
        return max(0.0, self.l1_capacity_bytes - sum(self._quotas.values()))

    # -- metrics ------------------------------------------------------------

    def bind_metrics(
        self,
        metrics: MetricsRegistry,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        previous = getattr(self, "_metric_fields", None)
        super().bind_metrics(metrics, labels=labels)
        extra = self.metric_labels
        for name, field in (
            ("block_cache_cross_tenant_hits_total", "cross_tenant_hits"),
            ("block_cache_quota_evictions_total", "quota_evictions"),
        ):
            self._metric_fields[field] = metrics.counter(name, **extra)
            if previous is not None and field in previous:
                if previous[field].value:
                    self._metric_fields[field].set(previous[field].value)
        metrics.gauge(
            "block_cache_shared_pool_bytes",
            fn=lambda: self._l1_charged.get(None, 0.0),
            **extra,
        )

    @property
    def cross_tenant_hits(self) -> int:
        return int(self._metric_fields["cross_tenant_hits"].value)

    @cross_tenant_hits.setter
    def cross_tenant_hits(self, value: int) -> None:
        self._metric_fields["cross_tenant_hits"].set(value)

    @property
    def quota_evictions(self) -> int:
        return int(self._metric_fields["quota_evictions"].value)

    @quota_evictions.setter
    def quota_evictions(self, value: int) -> None:
        self._metric_fields["quota_evictions"].set(value)

    # -- accounting queries --------------------------------------------------

    def owner(self, key: BlockKey) -> Optional[str]:
        """Who the block is charged to (``None`` = shared pool / unknown)."""
        return self._owner.get(key)

    def charged_bytes(self, tenant: Optional[str]) -> float:
        """L1 bytes currently billed to ``tenant`` (``None`` = shared)."""
        return self._l1_charged.get(tenant, 0.0)

    def prefetched_bytes(self, tenant: Optional[str]) -> float:
        """Resident speculative (prefetched, unused) bytes billed to
        ``tenant`` -- what the prefetcher's per-tenant budget caps."""
        total = 0.0
        for lru in (self._l1, self._l2):
            for key, block in lru.items():
                if block.prefetched and self._owner.get(key) == tenant:
                    total += block.nbytes
        return total

    # -- data path overrides -------------------------------------------------

    def _current_tenant(self) -> Optional[str]:
        source = self.tenant_source
        if source is None:
            return None
        tenant = source()
        return None if tenant is None else str(tenant)

    def admit(
        self,
        key: BlockKey,
        nbytes: int,
        data: Optional[bytes] = None,
        prefetched: bool = False,
    ) -> None:
        tenant = self._current_tenant()
        if key not in self:
            self._owner[key] = tenant
        elif self._owner.get(key) != tenant:
            # Re-admitted by a different tenant: community block.
            self._transfer(key, None)
        super().admit(key, nbytes, data=data, prefetched=prefetched)
        if key not in self:
            # Bypassed (larger than L1): never leave a dangling owner.
            self._owner.pop(key, None)

    def lookup(self, key: BlockKey):
        block = yield from super().lookup(key)
        if block is not None:
            owner = self._owner.get(key)
            tenant = self._current_tenant()
            if tenant is not None and owner is not None and tenant != owner:
                self.cross_tenant_hits += 1
                self._transfer(key, None)
        return block

    # -- hook implementations ------------------------------------------------

    def _on_l1_insert(self, key: BlockKey, block: CachedBlock) -> None:
        owner = self._owner.get(key)
        self._l1_charged[owner] = (
            self._l1_charged.get(owner, 0.0) + block.nbytes
        )

    def _on_l1_remove(self, key: BlockKey, block: CachedBlock) -> None:
        owner = self._owner.get(key)
        remaining = self._l1_charged.get(owner, 0.0) - block.nbytes
        if remaining > 0.0:
            self._l1_charged[owner] = remaining
        else:
            self._l1_charged.pop(owner, None)

    def _on_removed(self, key: BlockKey, block: CachedBlock) -> None:
        self._owner.pop(key, None)

    def _transfer(self, key: BlockKey, new_owner: Optional[str]) -> None:
        old_owner = self._owner.get(key)
        if old_owner == new_owner:
            return
        block = self._l1.get(key)
        if block is not None:
            remaining = self._l1_charged.get(old_owner, 0.0) - block.nbytes
            if remaining > 0.0:
                self._l1_charged[old_owner] = remaining
            else:
                self._l1_charged.pop(old_owner, None)
            self._l1_charged[new_owner] = (
                self._l1_charged.get(new_owner, 0.0) + block.nbytes
            )
        self._owner[key] = new_owner

    def _over_allocation(self, owner: Optional[str]) -> bool:
        """Is this holder using more L1 than it is entitled to keep?"""
        charged = self._l1_charged.get(owner, 0.0)
        if owner is None:
            return charged > self.shared_capacity_bytes()
        quota = self._quotas.get(owner)
        if quota is None:
            return True  # no reservation: always reclaimable
        return charged > quota

    def _pick_l1_victim(self) -> BlockKey:
        fallback = None
        for key in self._l1:
            if fallback is None:
                fallback = key
            if self._over_allocation(self._owner.get(key)):
                self.quota_evictions += 1
                return key
        return fallback

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        stats = super().stats()
        stats["shared_capacity_bytes"] = self.shared_capacity_bytes()
        stats["shared_l1_bytes"] = self.charged_bytes(None)
        stats["cross_tenant_hits"] = self.cross_tenant_hits
        stats["quota_evictions"] = self.quota_evictions
        stats["tenants"] = {
            tenant: {
                "quota_bytes": self._quotas.get(tenant, 0.0),
                "l1_bytes": self.charged_bytes(tenant),
            }
            for tenant in sorted(
                set(self._quotas)
                | {o for o in self._l1_charged if o is not None}
            )
        }
        return stats
