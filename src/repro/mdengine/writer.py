"""Chunked trajectory output: how MD engines actually emit data.

A real engine appends to its ``.xtc`` every ``nstxout`` steps and rolls to
a new file per phase (equilibration, production-1, production-2, ...).
:class:`ChunkedXtcWriter` buffers frames and flushes fixed-size compressed
segments; :class:`SimulationCampaign` runs several phases against one
structure, reproducing the paper's layout where "one .pdb file can guide
multiple .xtc files, which represent different atom motion phases".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.formats.trajectory import Frame, Trajectory
from repro.formats.xtc import encode_xtc
from repro.mdengine.engine import LangevinEngine

__all__ = ["ChunkedXtcWriter", "SimulationCampaign"]


class ChunkedXtcWriter:
    """Buffers frames; emits an ``.xtc`` segment every ``chunk_frames``.

    ``on_chunk(name, blob)`` fires per flushed segment -- wire it to
    ``ADA.ingest_append`` to stream a running simulation straight into the
    middleware.
    """

    def __init__(
        self,
        basename: str = "traj",
        chunk_frames: int = 100,
        on_chunk: Optional[Callable[[str, bytes], None]] = None,
        precision: float = None,
    ):
        if chunk_frames < 1:
            raise ConfigurationError("chunk_frames must be >= 1")
        self.basename = basename
        self.chunk_frames = int(chunk_frames)
        self.on_chunk = on_chunk
        self.precision = precision
        self._buffer: List[Frame] = []
        self.chunks: Dict[str, bytes] = {}
        self.frames_written = 0

    def _chunk_name(self) -> str:
        return f"{self.basename}.part{len(self.chunks):04d}.xtc"

    def add_frame(self, frame: Frame) -> Optional[str]:
        """Buffer one frame; returns the chunk name if a flush happened."""
        self._buffer.append(frame)
        self.frames_written += 1
        if len(self._buffer) >= self.chunk_frames:
            return self.flush()
        return None

    def flush(self) -> Optional[str]:
        """Compress and emit the buffered frames (no-op when empty)."""
        if not self._buffer:
            return None
        trajectory = Trajectory.from_frames(self._buffer)
        kwargs = {} if self.precision is None else {"precision": self.precision}
        blob = encode_xtc(trajectory, **kwargs)
        name = self._chunk_name()
        self.chunks[name] = blob
        self._buffer.clear()
        if self.on_chunk is not None:
            self.on_chunk(name, blob)
        return name

    @property
    def total_nbytes(self) -> int:
        return sum(len(b) for b in self.chunks.values())


@dataclass
class SimulationCampaign:
    """Several motion phases over one structure -> several ``.xtc`` files."""

    engine: LangevinEngine
    writer_factory: Callable[[str], ChunkedXtcWriter] = field(
        default=lambda name: ChunkedXtcWriter(basename=name)
    )
    phases: Dict[str, bytes] = field(default_factory=dict)

    def run_phase(
        self, name: str, nframes: int, stride: int = 50
    ) -> ChunkedXtcWriter:
        """Integrate one phase, writing chunked output; returns its writer."""
        writer = self.writer_factory(name)
        for frame in self.engine.sample(nframes, stride=stride):
            writer.add_frame(frame)
        writer.flush()
        self.phases[name] = b"".join(
            writer.chunks[k] for k in sorted(writer.chunks)
        )
        return writer

    def phase_blob(self, name: str) -> bytes:
        """One phase's full ``.xtc`` stream (chunks concatenated)."""
        return self.phases[name]
