"""Langevin dynamics with harmonic structure restraints.

Not a force field -- a *data producer* with the right statistics: each atom
is tethered to its reference position with a class-dependent spring (stiff
for folded protein, soft for bulk water) and integrated with the BAOAB
Langevin scheme.  The stationary distribution reproduces the per-class
fluctuation amplitudes of :mod:`repro.datagen.motion`, but frames now come
from an actual integrator the way an MD engine emits them: step by step,
sampled every ``stride`` steps.

Everything is vectorized over atoms; the per-step cost is a handful of
numpy ufunc sweeps.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.datagen.motion import CLASS_AMPLITUDE
from repro.datagen.system import MolecularSystem
from repro.errors import ConfigurationError
from repro.formats.trajectory import Frame, Trajectory

__all__ = ["LangevinEngine"]


class LangevinEngine:
    """BAOAB Langevin integrator over a harmonically restrained system."""

    def __init__(
        self,
        system: MolecularSystem,
        dt_ps: float = 0.002,
        friction_per_ps: float = 1.0,
        kt: float = 1.0,
        seed: Optional[int] = None,
    ):
        if dt_ps <= 0 or friction_per_ps <= 0 or kt <= 0:
            raise ConfigurationError("dt, friction, and kT must be positive")
        self.system = system
        self.dt = float(dt_ps)
        self.friction = float(friction_per_ps)
        self.kt = float(kt)
        self.rng = np.random.default_rng(
            system.seed if seed is None else seed
        )

        n = system.natoms
        self.reference = system.coords.astype(np.float64)
        self.positions = self.reference.copy()
        self.velocities = np.zeros((n, 3))
        self.step_count = 0

        # Spring constants chosen so the stationary RMS fluctuation per
        # class matches CLASS_AMPLITUDE: <x^2> = kT / k  =>  k = kT / amp^2.
        amp = np.empty(n)
        for cls, value in CLASS_AMPLITUDE.items():
            amp[system.topology.class_mask(cls)] = value
        self.spring = (self.kt / amp**2)[:, None]
        # Per-axis thermal velocity (unit masses).
        self._ou_decay = np.exp(-self.friction * self.dt)
        self._ou_noise = np.sqrt(self.kt * (1.0 - self._ou_decay**2))

    @property
    def natoms(self) -> int:
        return self.system.natoms

    @property
    def time_ps(self) -> float:
        return self.step_count * self.dt

    def forces(self) -> np.ndarray:
        """Harmonic restraint forces toward the reference structure."""
        return -self.spring * (self.positions - self.reference)

    def step(self, nsteps: int = 1) -> None:
        """Advance the integrator ``nsteps`` BAOAB steps."""
        half = 0.5 * self.dt
        for _ in range(nsteps):
            self.velocities += half * self.forces()          # B
            self.positions += half * self.velocities          # A
            self.velocities = (                               # O
                self._ou_decay * self.velocities
                + self._ou_noise * self.rng.standard_normal((self.natoms, 3))
            )
            self.positions += half * self.velocities          # A
            self.velocities += half * self.forces()           # B
            self.step_count += 1

    def current_frame(self) -> Frame:
        return Frame(
            coords=self.positions.astype(np.float32),
            step=self.step_count,
            time_ps=self.time_ps,
        )

    def sample(self, nframes: int, stride: int = 50) -> Iterator[Frame]:
        """Yield ``nframes`` frames, integrating ``stride`` steps between
        samples -- the output cadence of a real engine's ``nstxout``."""
        if nframes < 1 or stride < 1:
            raise ConfigurationError("nframes and stride must be >= 1")
        for _ in range(nframes):
            self.step(stride)
            yield self.current_frame()

    def run(self, nframes: int, stride: int = 50) -> Trajectory:
        """Integrate and collect a whole trajectory."""
        return Trajectory.from_frames(self.sample(nframes, stride))

    def temperature_estimate(self) -> float:
        """Instantaneous kinetic temperature (in units of kT, unit mass)."""
        return float((self.velocities**2).mean())
