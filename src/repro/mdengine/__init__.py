"""A toy molecular-dynamics engine: the upstream producer of ADA's data.

The paper's pipeline starts with an MD application (GROMACS/NAMD/LAMMPS)
"generating a huge amount of simulation data for a visualization tool like
VMD".  This package closes that loop: a vectorized Langevin integrator
with harmonic structure restraints produces physically-flavored frames,
and a chunked writer emits them as ``.xtc`` segments -- including the
paper's multi-phase layout where "one .pdb file can guide multiple .xtc
files, which represent different atom motion phases".
"""

from repro.mdengine.engine import LangevinEngine
from repro.mdengine.writer import ChunkedXtcWriter, SimulationCampaign

__all__ = ["ChunkedXtcWriter", "LangevinEngine", "SimulationCampaign"]
