"""Command-line interface: regenerate any paper table/figure directly.

Usage::

    python -m repro list                # what can be regenerated
    python -m repro fig7                # one figure to stdout
    python -m repro fig10 -o out.txt    # ... or to a file
    python -m repro all -d results/     # everything into a directory

The same code paths the benchmark suite drives, minus pytest.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Callable, Dict

from repro.harness import (
    fat_node,
    measure_calibration,
    run_sweep,
    series_pivot,
    small_cluster,
    ssd_server,
)
from repro.harness.profilecpu import measured_cpu_profile, modeled_cpu_profile
from repro.harness.report import Table
from repro.units import to_gb, to_mb
from repro.workloads import (
    CLUSTER_FRAME_COUNTS,
    FAT_NODE_FRAME_COUNTS,
    SSD_SERVER_FRAME_COUNTS,
    SizingModel,
)

__all__ = ["main", "GENERATORS"]


def _gen_table2() -> str:
    model = SizingModel.paper()
    table = Table(
        ["frames", "ext4 (compressed, MB)", "ADA (protein, MB)", "raw (MB)"],
        title="Table 2: data size comparisons (ext4 vs ADA)",
    )
    for nframes in SSD_SERVER_FRAME_COUNTS:
        d = model.dataset(nframes)
        table.add_row(
            f"{nframes:,}",
            f"{to_mb(d.compressed_nbytes):,.0f}",
            f"{to_mb(d.protein_nbytes):,.0f}",
            f"{to_mb(d.raw_nbytes):,.0f}",
        )
    return table.render()


def _gen_table6() -> str:
    model = SizingModel.paper()
    table = Table(
        ["frames", "XFS (compressed, GB)", "ADA (protein, GB)", "raw (GB)"],
        title="Table 6: data size comparisons (XFS vs ADA)",
    )
    for nframes in FAT_NODE_FRAME_COUNTS:
        d = model.dataset(nframes)
        table.add_row(
            f"{nframes:,}",
            f"{to_gb(d.compressed_nbytes):,.1f}",
            f"{to_gb(d.protein_nbytes):,.1f}",
            f"{to_gb(d.raw_nbytes):,.1f}",
        )
    return table.render()


def _gen_fig7() -> str:
    results = run_sweep(ssd_server, SSD_SERVER_FRAME_COUNTS)
    panels = [
        series_pivot(results, metric, fs_label="ext4").render()
        for metric in ("retrieval", "turnaround", "memory")
    ]
    return "\n\n".join(panels)


def _gen_fig8() -> str:
    parts = []
    for pipeline in ("C-trad", "D-trad", "D-ada-p"):
        profile = modeled_cpu_profile(5_006, pipeline=pipeline)
        table = Table(
            ["phase", "seconds", "share"],
            title=f"Fig. 8 (modeled): CPU burst, {pipeline}",
        )
        for phase, seconds, pct in profile.rows():
            table.add_row(phase, f"{seconds:.2f}", f"{pct:.1f}%")
        parts.append(table.render())
    live = measured_cpu_profile(pipeline="C-trad")
    table = Table(
        ["phase", "seconds", "share"],
        title="Fig. 8 (measured on live Python pipeline): C path",
    )
    for phase, seconds, pct in live.rows():
        table.add_row(phase, f"{seconds:.4f}", f"{pct:.1f}%")
    parts.append(table.render())
    return "\n\n".join(parts)


def _gen_fig9() -> str:
    params = Table(["parameter", "value"], title="Table 4: system parameters")
    for name, value in small_cluster().parameters():
        params.add_row(name, value)
    results = run_sweep(small_cluster, CLUSTER_FRAME_COUNTS)
    panels = [params.render()] + [
        series_pivot(results, metric, fs_label="PVFS").render()
        for metric in ("retrieval", "turnaround", "memory")
    ]
    return "\n\n".join(panels)


def _gen_fig10() -> str:
    params = Table(["parameter", "value"], title="Table 5: fat-node parameters")
    for name, value in fat_node().parameters():
        params.add_row(name, value)
    results = run_sweep(
        fat_node, FAT_NODE_FRAME_COUNTS,
        scenario_keys=("C-trad", "D-ada-all", "D-ada-p"),
    )
    panels = [params.render()] + [
        series_pivot(results, metric, fs_label="XFS").render()
        for metric in ("retrieval", "turnaround", "memory", "energy")
    ]
    return "\n\n".join(panels)


def _gen_calibration() -> str:
    report = measure_calibration()
    table = Table(
        ["constant", "paper", "measured"],
        title="Calibration: paper constants vs live generator + codec",
    )
    for row in report.rows():
        table.add_row(*row)
    return table.render()


def _gen_csv(platform_factory, frame_counts, fs_label, scenario_keys=None):
    from repro.harness.figdata import results_to_csv

    results = run_sweep(platform_factory, frame_counts, scenario_keys=scenario_keys)
    return results_to_csv(results, fs_label=fs_label).rstrip()


GENERATORS: Dict[str, Callable[[], str]] = {
    "table2": _gen_table2,
    "table6": _gen_table6,
    "fig7": _gen_fig7,
    "fig8": _gen_fig8,
    "fig9": _gen_fig9,
    "fig10": _gen_fig10,
    "calibration": _gen_calibration,
    "fig7-csv": lambda: _gen_csv(ssd_server, SSD_SERVER_FRAME_COUNTS, "ext4"),
    "fig9-csv": lambda: _gen_csv(small_cluster, CLUSTER_FRAME_COUNTS, "PVFS"),
    "fig10-csv": lambda: _gen_csv(
        fat_node, FAT_NODE_FRAME_COUNTS, "XFS",
        scenario_keys=("C-trad", "D-ada-all", "D-ada-p"),
    ),
    "scorecard": lambda: __import__(
        "repro.harness.scorecard", fromlist=["render_scorecard"]
    ).render_scorecard(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the ADA paper (ICPP 2021).",
    )
    parser.add_argument(
        "target",
        choices=sorted(GENERATORS)
        + ["all", "bench-codec", "bench-cluster", "bench-ingest",
           "bench-insitu", "bench-lod", "bench-pipeline", "bench-serve",
           "chaos", "metrics", "trace", "list"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "-o", "--output", type=pathlib.Path, default=None,
        help="write to this file instead of stdout",
    )
    parser.add_argument(
        "-d", "--directory", type=pathlib.Path, default=None,
        help="(with 'all') directory to write one file per artifact",
    )
    bench = parser.add_argument_group("bench-codec options")
    bench.add_argument(
        "--json", action="store_true",
        help="(bench-codec/bench-ingest/bench-pipeline/chaos) write the "
             "JSON record instead of text",
    )
    bench.add_argument("--workers", type=int, default=0,
                       help="host-side codec workers: GOF codec workers "
                            "(bench-codec) and the ingest pre-processor's "
                            "persistent pools (bench-ingest); "
                            "0 = one per CPU")
    bench.add_argument("--codec-backend", default="auto",
                       choices=["auto", "thread", "process"],
                       help="codec worker-pool flavour: 'process' escapes "
                            "the GIL via shared-memory GOF workers, "
                            "'thread' shares the interpreter, 'auto' picks "
                            "per host (bench-codec/bench-ingest)")
    bench.add_argument("--natoms", type=int, default=None,
                       help="(bench-codec/bench-ingest) atoms in the "
                            "generated system")
    bench.add_argument("--nframes", type=int, default=None,
                       help="(bench-codec/bench-ingest) trajectory frames")
    bench.add_argument("--keyframe-interval", type=int, default=None,
                       help="(bench-codec/bench-ingest) frames per GOF")
    bench.add_argument("--repeats", type=int, default=3,
                       help="(bench-codec) best-of-N timing repeats")
    pipe = parser.add_argument_group("bench-pipeline options")
    pipe.add_argument("--nchunks", type=int, default=96,
                      help="(bench-pipeline) PLFS chunks in the dataset")
    pipe.add_argument("--frames-per-chunk", type=int, default=80,
                      help="(bench-pipeline) trajectory frames per chunk")
    pipe.add_argument("--window-chunks", type=int, default=8,
                      help="(bench-pipeline) chunks per playback window")
    ingest = parser.add_argument_group("bench-ingest options")
    ingest.add_argument("--window-frames", type=int, default=8,
                        help="(bench-ingest/bench-insitu) frames per "
                             "ingest window")
    ingest.add_argument("--depth", type=int, default=4,
                        help="(bench-ingest/bench-insitu) write-behind "
                             "queue depth in windows")
    serve = parser.add_argument_group("bench-serve options")
    serve.add_argument("--tenants", type=int, default=8,
                       help="(bench-serve) concurrent tenant sessions")
    serve.add_argument("--requests-per-tenant", type=int, default=24,
                       help="(bench-serve) closed/open-loop requests each "
                            "tenant issues")
    serve.add_argument("--concurrency", type=int, default=4,
                       help="(bench-serve) scheduler execution slots")
    serve.add_argument("--ndatasets", type=int, default=4,
                       help="(bench-serve) trajectories in the Zipf catalog")
    serve.add_argument("--zipf", type=float, default=1.1,
                       help="(bench-serve) Zipf skew of dataset popularity")
    lod = parser.add_argument_group("bench-lod options")
    lod.add_argument("--precision", default="both",
                     choices=["full", "lod", "both"],
                     help="(bench-lod) which precision tier(s) to replay; "
                          "the comparative floors only gate a 'both' run")
    lod.add_argument("--lod-precision", type=float, default=None,
                     help="(bench-lod) coarse-tier quantization precision "
                          "(positions per nm; default 12.5 = 0.04 nm bound)")
    cluster = parser.add_argument_group("bench-cluster options")
    cluster.add_argument("--nodes", type=str, default="1,2,4,8",
                         help="(bench-cluster) comma-separated node counts "
                              "to sweep (must include 1)")
    cluster.add_argument("--replicas", type=int, default=3,
                         help="(bench-cluster) replica count for the hot "
                              "playback tag")
    chaos = parser.add_argument_group("chaos options")
    chaos.add_argument("--seed", type=int, default=0,
                       help="(chaos) fault-plan / workload seed")
    chaos.add_argument("--rate", type=float, default=0.05,
                       help="(chaos) transient fault rate per operation")
    chaos.add_argument("--rounds", type=int, default=3,
                       help="(chaos) read rounds after ingest")
    obs = parser.add_argument_group("metrics / trace options")
    obs.add_argument("--selftest", action="store_true",
                     help="(metrics) exercise the registry + both exporters "
                          "through their parsers and exit")
    obs.add_argument("--logical", default=None,
                     help="(trace) filter timelines to this dataset")
    obs.add_argument("--tag", default=None,
                     help="(trace) filter timelines to this subset tag")
    return parser


def _run_chaos(args) -> int:
    from repro.harness.chaos import render_chaos, run_chaos

    report = run_chaos(
        seed=args.seed, transient_rate=args.rate, rounds=args.rounds
    )
    if args.json:
        path = args.output or pathlib.Path("CHAOS_report.json")
        path.write_text(json.dumps(report.as_dict(), indent=2) + "\n")
        print(f"wrote {path}", file=sys.stderr)
    else:
        text = render_chaos(report)
        if args.output is not None:
            args.output.write_text(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
    if not report.identical:
        print("repro: chaos run diverged from fault-free baseline",
              file=sys.stderr)
        return 1
    return 0


#: Canonical location of the bench-pipeline JSON record.  There is
#: exactly one copy; override with ``-o/--output`` to write elsewhere.
BENCH_PIPELINE_JSON = pathlib.Path("benchmarks/results/BENCH_pipeline.json")

#: Canonical location of the bench-ingest JSON record.
BENCH_INGEST_JSON = pathlib.Path("benchmarks/results/BENCH_ingest.json")

#: Canonical location of the bench-insitu JSON record.
BENCH_INSITU_JSON = pathlib.Path("benchmarks/results/BENCH_insitu.json")

#: Canonical location of the bench-codec JSON record.
BENCH_CODEC_JSON = pathlib.Path("benchmarks/results/BENCH_codec.json")

#: Canonical location of the bench-serve JSON record.
BENCH_SERVE_JSON = pathlib.Path("benchmarks/results/BENCH_serve.json")

#: Canonical location of the bench-cluster JSON record.
BENCH_CLUSTER_JSON = pathlib.Path("benchmarks/results/BENCH_cluster.json")

#: Canonical location of the bench-lod JSON record.
BENCH_LOD_JSON = pathlib.Path("benchmarks/results/BENCH_lod.json")


def _run_bench_ingest(args) -> int:
    from repro.harness.benchingest import (
        render_ingest_bench,
        run_ingest_bench,
    )

    result = run_ingest_bench(
        natoms=args.natoms if args.natoms is not None else 4000,
        nframes=args.nframes if args.nframes is not None else 160,
        keyframe_interval=(
            args.keyframe_interval
            if args.keyframe_interval is not None else 8
        ),
        window_frames=args.window_frames,
        depth=args.depth,
        seed=args.seed if args.seed else 7,
        workers=args.workers,
        codec_backend=args.codec_backend,
    )
    if args.json:
        path = args.output or BENCH_INGEST_JSON
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {path}", file=sys.stderr)
    else:
        text = render_ingest_bench(result)
        if args.output is not None:
            args.output.write_text(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
    if not result["pass"]:
        print("repro: bench-ingest below its floors", file=sys.stderr)
        return 1
    return 0


def _run_bench_insitu(args) -> int:
    from repro.harness.benchinsitu import (
        render_insitu_bench,
        run_insitu_bench,
    )

    result = run_insitu_bench(
        natoms=args.natoms if args.natoms is not None else 1000,
        nframes=args.nframes if args.nframes is not None else 160,
        keyframe_interval=(
            args.keyframe_interval
            if args.keyframe_interval is not None else 8
        ),
        window_frames=args.window_frames,
        depth=args.depth,
        seed=args.seed if args.seed else 7,
    )
    if args.json:
        path = args.output or BENCH_INSITU_JSON
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {path}", file=sys.stderr)
    else:
        text = render_insitu_bench(result)
        if args.output is not None:
            args.output.write_text(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
    if not result["pass"]:
        print("repro: bench-insitu below its floors", file=sys.stderr)
        return 1
    return 0


def _run_bench_pipeline(args) -> int:
    from repro.harness.benchpipeline import (
        render_pipeline_bench,
        run_pipeline_bench,
    )

    result = run_pipeline_bench(
        nchunks=args.nchunks,
        frames_per_chunk=args.frames_per_chunk,
        window_chunks=args.window_chunks,
        seed=args.seed,
    )
    if args.json:
        path = args.output or BENCH_PIPELINE_JSON
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {path}", file=sys.stderr)
    else:
        text = render_pipeline_bench(result)
        if args.output is not None:
            args.output.write_text(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
    if not result["pass"]:
        print("repro: bench-pipeline below its floors", file=sys.stderr)
        return 1
    return 0


def _run_bench_lod(args) -> int:
    from repro.core.lod import DEFAULT_LOD_PRECISION
    from repro.harness.benchlod import render_lod_bench, run_lod_bench

    result = run_lod_bench(
        natoms=args.natoms if args.natoms is not None else 1200,
        nchunks=args.nchunks,
        frames_per_chunk=args.frames_per_chunk,
        window_chunks=args.window_chunks,
        seed=args.seed if args.seed else 7,
        lod_precision=(
            args.lod_precision
            if args.lod_precision is not None else DEFAULT_LOD_PRECISION
        ),
        precision=args.precision,
    )
    if args.json:
        path = args.output or BENCH_LOD_JSON
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {path}", file=sys.stderr)
    else:
        text = render_lod_bench(result)
        if args.output is not None:
            args.output.write_text(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
    if not result["pass"]:
        print("repro: bench-lod below its floors", file=sys.stderr)
        return 1
    return 0


def _run_bench_serve(args) -> int:
    from repro.harness.benchserve import (
        render_serve_bench,
        run_serve_bench,
    )

    result = run_serve_bench(
        ntenants=args.tenants,
        ndatasets=args.ndatasets,
        natoms=args.natoms if args.natoms is not None else 600,
        requests_per_tenant=args.requests_per_tenant,
        concurrency=args.concurrency,
        zipf_s=args.zipf,
        seed=args.seed if args.seed else 7,
    )
    if args.json:
        path = args.output or BENCH_SERVE_JSON
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {path}", file=sys.stderr)
    else:
        text = render_serve_bench(result)
        if args.output is not None:
            args.output.write_text(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
    if not result["pass"]:
        print("repro: bench-serve below its floors", file=sys.stderr)
        return 1
    return 0


def _run_bench_cluster(args) -> int:
    from repro.harness.benchcluster import (
        render_cluster_bench,
        run_cluster_bench,
    )

    try:
        node_counts = tuple(
            int(part) for part in args.nodes.split(",") if part.strip()
        )
    except ValueError:
        print(f"repro: bad --nodes value {args.nodes!r}", file=sys.stderr)
        return 2
    result = run_cluster_bench(
        node_counts=node_counts,
        requests_per_tenant=args.requests_per_tenant,
        replicas=args.replicas,
        zipf_s=args.zipf,
        seed=args.seed if args.seed else 7,
    )
    if args.json:
        path = args.output or BENCH_CLUSTER_JSON
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {path}", file=sys.stderr)
    else:
        text = render_cluster_bench(result)
        if args.output is not None:
            args.output.write_text(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
    if not result["pass"]:
        print("repro: bench-cluster below its floors", file=sys.stderr)
        return 1
    return 0


def _metrics_selftest() -> int:
    """Exercise the registry and both exporters through their parsers."""
    from repro.obs.export import parse_metrics_json, parse_prometheus
    from repro.obs.metrics import MetricsRegistry, TIME_BUCKETS

    registry = MetricsRegistry()
    registry.counter("selftest_ops_total", op="read").inc(3)
    registry.counter("selftest_ops_total", op="write").inc()
    registry.gauge("selftest_inflight").set(2)
    histogram = registry.histogram("selftest_seconds", bounds=TIME_BUCKETS)
    for value in (2e-6, 5e-4, 0.25):
        histogram.observe(value)

    prom = parse_prometheus(registry.to_prometheus())
    record = parse_metrics_json(json.dumps(registry.to_json()))
    by_name = {family["name"]: family for family in record["families"]}
    checks = (
        prom["selftest_ops_total"][(("op", "read"),)] == 3.0,
        prom["selftest_ops_total"][(("op", "write"),)] == 1.0,
        prom["selftest_inflight"][()] == 2.0,
        prom["selftest_seconds_count"][()] == 3.0,
        by_name["selftest_ops_total"]["kind"] == "counter",
        by_name["selftest_seconds"]["metrics"][0]["count"] == 3,
    )
    if not all(checks):
        print("repro: metrics selftest FAILED", file=sys.stderr)
        return 1
    print("metrics selftest: OK "
          f"({len(registry)} metrics round-tripped both exporters)")
    return 0


def _run_metrics(args) -> int:
    """Export the trace-demo run's registry (or run the selftest)."""
    if args.selftest:
        return _metrics_selftest()
    from repro.harness.tracedemo import run_trace_demo

    ada, _ = run_trace_demo(seed=args.seed if args.seed else 11)
    if args.json:
        text = json.dumps(ada.metrics.to_json(), indent=2, sort_keys=True)
    else:
        text = ada.metrics.to_prometheus().rstrip("\n")
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _run_trace(args) -> int:
    """Render the trace-demo timelines (demand read overlapping prefetch)."""
    from repro.harness.tracedemo import run_trace_demo
    from repro.obs.trace import render_trace

    _, tracer = run_trace_demo(seed=args.seed if args.seed else 11)
    if args.json:
        text = tracer.to_json(logical=args.logical, tag=args.tag)
    else:
        roots = tracer.traces(logical=args.logical, tag=args.tag)
        text = render_trace(roots)
        if not text:
            text = "(no matching timelines)"
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _run_bench_codec(args) -> int:
    from repro.errors import CodecError
    from repro.harness.benchcodec import render_codec_bench, run_codec_bench

    try:
        result = run_codec_bench(
            natoms=args.natoms if args.natoms is not None else 8000,
            nframes=args.nframes if args.nframes is not None else 384,
            keyframe_interval=(
                args.keyframe_interval
                if args.keyframe_interval is not None else 12
            ),
            workers=args.workers,
            repeats=args.repeats,
            backend=args.codec_backend,
        )
    except CodecError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        path = args.output or BENCH_CODEC_JSON
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {path}", file=sys.stderr)
    else:
        text = render_codec_bench(result)
        if args.output is not None:
            args.output.write_text(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
    if not result["pass"]:
        print("repro: bench-codec below its floors", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.target == "list":
        for name in sorted(GENERATORS):
            print(name)
        print("bench-codec")
        print("bench-cluster")
        print("bench-ingest")
        print("bench-insitu")
        print("bench-lod")
        print("bench-pipeline")
        print("bench-serve")
        print("chaos")
        print("metrics")
        print("trace")
        return 0
    if args.target == "bench-codec":
        return _run_bench_codec(args)
    if args.target == "bench-cluster":
        return _run_bench_cluster(args)
    if args.target == "bench-ingest":
        return _run_bench_ingest(args)
    if args.target == "bench-insitu":
        return _run_bench_insitu(args)
    if args.target == "bench-lod":
        return _run_bench_lod(args)
    if args.target == "bench-pipeline":
        return _run_bench_pipeline(args)
    if args.target == "bench-serve":
        return _run_bench_serve(args)
    if args.target == "chaos":
        return _run_chaos(args)
    if args.target == "metrics":
        return _run_metrics(args)
    if args.target == "trace":
        return _run_trace(args)
    if args.target == "all":
        directory = args.directory or pathlib.Path("results")
        directory.mkdir(parents=True, exist_ok=True)
        for name, gen in sorted(GENERATORS.items()):
            path = directory / f"{name}.txt"
            path.write_text(gen() + "\n")
            print(f"wrote {path}", file=sys.stderr)
        return 0
    text = GENERATORS[args.target]()
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
