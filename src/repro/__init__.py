"""repro: a reproduction of *ADA: An Application-Conscious Data Acquirer
for Visual Molecular Dynamics* (ICPP 2021).

Public API tour
---------------

Data path (real bytes)::

    from repro import build_workload, ADA, VMDSession

    workload = build_workload(natoms=5000, nframes=20)   # synthetic GPCR
    # ... wire ADA over two backend file systems, ingest, then:
    session.mol_addfile_tag("bar.xtc", "p")              # protein-only load

Paper-scale experiments (modeled)::

    from repro import run_sweep, ssd_server, SSD_SERVER_FRAME_COUNTS
    results = run_sweep(ssd_server, SSD_SERVER_FRAME_COUNTS)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    ADA,
    Categorizer,
    DataPreProcessor,
    Decompressor,
    IODeterminator,
    LabelMap,
    PlacementPolicy,
    TagPolicy,
    build_label_map,
)
from repro.datagen import build_gpcr_system, generate_trajectory
from repro.formats import (
    AtomClass,
    Topology,
    Trajectory,
    decode_xtc,
    encode_xtc,
    parse_pdb,
    write_pdb,
)
from repro.fs import PLFS, PVFS, LocalFS, ObjectStore, StorageTarget
from repro.harness import (
    SCENARIOS,
    RunResult,
    fat_node,
    measure_calibration,
    run_point,
    run_sweep,
    series_pivot,
    small_cluster,
    ssd_server,
)
from repro.sim import Simulator
from repro.vmd import Animator, GeometryBuilder, Molecule, VMDSession
from repro.workloads import (
    CLUSTER_FRAME_COUNTS,
    FAT_NODE_FRAME_COUNTS,
    SSD_SERVER_FRAME_COUNTS,
    SizingModel,
    VirtualDataset,
    build_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ADA",
    "Animator",
    "AtomClass",
    "CLUSTER_FRAME_COUNTS",
    "Categorizer",
    "DataPreProcessor",
    "Decompressor",
    "FAT_NODE_FRAME_COUNTS",
    "GeometryBuilder",
    "IODeterminator",
    "LabelMap",
    "LocalFS",
    "Molecule",
    "ObjectStore",
    "PLFS",
    "PVFS",
    "PlacementPolicy",
    "RunResult",
    "SCENARIOS",
    "SSD_SERVER_FRAME_COUNTS",
    "Simulator",
    "SizingModel",
    "StorageTarget",
    "TagPolicy",
    "Topology",
    "Trajectory",
    "VMDSession",
    "VirtualDataset",
    "build_gpcr_system",
    "build_label_map",
    "build_workload",
    "decode_xtc",
    "encode_xtc",
    "fat_node",
    "generate_trajectory",
    "measure_calibration",
    "parse_pdb",
    "run_point",
    "run_sweep",
    "series_pivot",
    "small_cluster",
    "ssd_server",
    "write_pdb",
]
