"""Structure superposition (Kabsch algorithm).

RMSD over a trajectory is only meaningful after removing rigid-body
motion; the Kabsch algorithm finds the optimal rotation in one SVD.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import TopologyError

__all__ = ["kabsch_rotation", "superpose"]


def _validate_pair(mobile: np.ndarray, reference: np.ndarray) -> None:
    if mobile.shape != reference.shape or mobile.ndim != 2 or mobile.shape[1] != 3:
        raise TopologyError(
            f"superposition needs matching (N, 3) arrays, got "
            f"{mobile.shape} vs {reference.shape}"
        )


def kabsch_rotation(mobile: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Optimal rotation matrix aligning centered ``mobile`` onto centered
    ``reference`` (proper rotation: reflections are corrected)."""
    _validate_pair(mobile, reference)
    m = mobile - mobile.mean(axis=0)
    r = reference - reference.mean(axis=0)
    h = m.T @ r
    u, _s, vt = np.linalg.svd(h)
    d = np.sign(np.linalg.det(u @ vt))
    correction = np.diag([1.0, 1.0, d])
    return u @ correction @ vt


def superpose(
    mobile: np.ndarray, reference: np.ndarray
) -> Tuple[np.ndarray, float]:
    """Align ``mobile`` onto ``reference``; returns ``(aligned, rmsd)``."""
    _validate_pair(mobile, reference)
    rotation = kabsch_rotation(mobile, reference)
    centered = mobile - mobile.mean(axis=0)
    aligned = centered @ rotation + reference.mean(axis=0)
    delta = aligned - reference
    value = float(np.sqrt((delta**2).sum(axis=1).mean()))
    return aligned, value
