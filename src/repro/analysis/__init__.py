"""Trajectory analysis: the "analyze" half of VMD's charter.

The paper's motivation is biologists who "repeatedly study the behaviors
of proteins" -- playback plus quantitative analysis over the active
subset.  This package provides the standard observables those studies
compute (all vectorized over frames), so the examples and benches can
exercise a realistic analysis workload downstream of an ADA tag-selective
load.
"""

from repro.analysis.align import kabsch_rotation, superpose
from repro.analysis.contacts import (
    contact_count,
    contact_map,
    frame_contact_counts,
    native_contact_fraction,
)
from repro.analysis.online import (
    STATS_ATOL,
    STATS_RTOL,
    InSituAnalysis,
    OnlineContacts,
    OnlineObservables,
    OnlineRMSD,
    OnlineStats,
)
from repro.analysis.observables import (
    center_of_mass,
    end_to_end_distance,
    gyration_radius,
    mean_square_displacement,
)
from repro.analysis.rmsd import pairwise_rmsd, rmsd, rmsd_trajectory, rmsf
from repro.analysis.timeseries import (
    BlockResult,
    autocorrelation,
    block_average,
    integrated_act,
)

__all__ = [
    "BlockResult",
    "InSituAnalysis",
    "OnlineContacts",
    "OnlineObservables",
    "OnlineRMSD",
    "OnlineStats",
    "STATS_ATOL",
    "STATS_RTOL",
    "autocorrelation",
    "frame_contact_counts",
    "block_average",
    "integrated_act",
    "center_of_mass",
    "contact_count",
    "contact_map",
    "end_to_end_distance",
    "gyration_radius",
    "kabsch_rotation",
    "mean_square_displacement",
    "native_contact_fraction",
    "pairwise_rmsd",
    "rmsd",
    "rmsd_trajectory",
    "rmsf",
    "superpose",
]
