"""Residue/atom contact analysis.

Contact maps and native-contact fractions are the observables GPCR papers
actually report (the CB1 activation studies the paper's datasets come
from track helix-helix contacts).  Distance computation is blocked so
memory stays bounded on large selections.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.formats.trajectory import Trajectory

__all__ = ["contact_map", "contact_count", "native_contact_fraction"]

_BLOCK = 512


def _pairwise_within(coords: np.ndarray, cutoff: float) -> np.ndarray:
    """Boolean (N, N) contact matrix, diagonal False, blocked in rows."""
    n = coords.shape[0]
    out = np.zeros((n, n), dtype=bool)
    c2 = cutoff * cutoff
    pts = coords.astype(np.float64)
    for start in range(0, n, _BLOCK):
        stop = min(start + _BLOCK, n)
        delta = pts[start:stop, None, :] - pts[None, :, :]
        d2 = (delta**2).sum(axis=2)
        out[start:stop] = d2 < c2
    np.fill_diagonal(out, False)
    return out


def contact_map(
    frame_coords: np.ndarray,
    cutoff: float = 8.0,
    selection: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Symmetric boolean contact matrix for one frame."""
    coords = np.asarray(frame_coords)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise TopologyError(f"frame coords shape {coords.shape} invalid")
    if cutoff <= 0:
        raise TopologyError("cutoff must be positive")
    if selection is not None:
        coords = coords[np.asarray(selection)]
    return _pairwise_within(coords, cutoff)


def contact_count(
    trajectory: Trajectory,
    cutoff: float = 8.0,
    selection: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-frame number of (unordered) contacts."""
    counts = np.empty(trajectory.nframes, dtype=np.int64)
    for i in range(trajectory.nframes):
        counts[i] = contact_map(
            trajectory.coords[i], cutoff=cutoff, selection=selection
        ).sum() // 2
    return counts


def native_contact_fraction(
    trajectory: Trajectory,
    reference_frame: int = 0,
    cutoff: float = 8.0,
    selection: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Q(t): fraction of the reference frame's contacts present per frame.

    The classic folding/activation order parameter.
    """
    if not 0 <= reference_frame < trajectory.nframes:
        raise TopologyError(f"reference frame {reference_frame} out of range")
    native = contact_map(
        trajectory.coords[reference_frame], cutoff=cutoff, selection=selection
    )
    n_native = native.sum()
    if n_native == 0:
        raise TopologyError("reference frame has no contacts at this cutoff")
    q = np.empty(trajectory.nframes)
    for i in range(trajectory.nframes):
        current = contact_map(
            trajectory.coords[i], cutoff=cutoff, selection=selection
        )
        q[i] = (current & native).sum() / n_native
    return q
