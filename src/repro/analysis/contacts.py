"""Residue/atom contact analysis.

Contact maps and native-contact fractions are the observables GPCR papers
actually report (the CB1 activation studies the paper's datasets come
from track helix-helix contacts).  Distance computation is blocked so
memory stays bounded on large selections.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.formats.trajectory import Trajectory

__all__ = [
    "contact_map",
    "contact_count",
    "frame_contact_counts",
    "native_contact_fraction",
]

_BLOCK = 512

#: Element budget for the (nframes, block, natoms) distance tensor of the
#: batched frame path -- keeps transient memory in the same ballpark as
#: the single-frame path's (512, natoms) blocks.
_BATCH_ELEMENTS = 2 * 1024 * 1024


def _pairwise_within(coords: np.ndarray, cutoff: float) -> np.ndarray:
    """Boolean (N, N) contact matrix, diagonal False, blocked in rows."""
    n = coords.shape[0]
    out = np.zeros((n, n), dtype=bool)
    c2 = cutoff * cutoff
    pts = coords.astype(np.float64)
    for start in range(0, n, _BLOCK):
        stop = min(start + _BLOCK, n)
        delta = pts[start:stop, None, :] - pts[None, :, :]
        d2 = (delta**2).sum(axis=2)
        out[start:stop] = d2 < c2
    np.fill_diagonal(out, False)
    return out


def contact_map(
    frame_coords: np.ndarray,
    cutoff: float = 8.0,
    selection: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Symmetric boolean contact matrix for one frame."""
    coords = np.asarray(frame_coords)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise TopologyError(f"frame coords shape {coords.shape} invalid")
    if cutoff <= 0:
        raise TopologyError("cutoff must be positive")
    if selection is not None:
        coords = coords[np.asarray(selection)]
    return _pairwise_within(coords, cutoff)


def frame_contact_counts(
    coords: np.ndarray,
    cutoff: float,
    native: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Per-frame contact-matrix sums for an ``(F, N, 3)`` stack.

    Returns ``(counts, overlap)``: ``counts[i]`` is frame *i*'s full
    (both-orders) contact-matrix sum -- halve it for unordered pairs --
    and, when a boolean ``native`` map is given, ``overlap[i]`` is the
    count of native contacts present in frame *i*.  The frame loop is
    batched (all frames share one row-blocked distance pass) but every
    element goes through the same float64 subtract/square/sum/compare as
    the single-frame :func:`contact_map`, so the results are bit-identical
    to the per-frame loop they replaced.
    """
    stack = np.asarray(coords)
    if stack.ndim != 3 or stack.shape[2] != 3:
        raise TopologyError(f"frame stack shape {stack.shape} invalid")
    if cutoff <= 0:
        raise TopologyError("cutoff must be positive")
    nframes, natoms = stack.shape[0], stack.shape[1]
    c2 = cutoff * cutoff
    pts = stack.astype(np.float64)
    counts = np.zeros(nframes, dtype=np.int64)
    overlap = np.zeros(nframes, dtype=np.int64) if native is not None else None
    # Row-block so the (F, block, N) distance tensor stays within the
    # element budget (matching the single-frame path's bounded memory).
    block = max(1, min(_BLOCK, _BATCH_ELEMENTS // max(1, nframes * natoms)))
    for start in range(0, natoms, block):
        stop = min(start + block, natoms)
        delta = pts[:, start:stop, None, :] - pts[:, None, :, :]
        d2 = (delta**2).sum(axis=3)
        mask = d2 < c2
        mask[:, np.arange(stop - start), np.arange(start, stop)] = False
        counts += mask.sum(axis=(1, 2))
        if native is not None:
            overlap += (mask & native[start:stop]).sum(axis=(1, 2))
    return counts, overlap


def contact_count(
    trajectory: Trajectory,
    cutoff: float = 8.0,
    selection: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-frame number of (unordered) contacts."""
    coords = trajectory.coords
    if selection is not None:
        coords = coords[:, np.asarray(selection)]
    counts, _ = frame_contact_counts(coords, cutoff)
    return counts // 2


def native_contact_fraction(
    trajectory: Trajectory,
    reference_frame: int = 0,
    cutoff: float = 8.0,
    selection: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Q(t): fraction of the reference frame's contacts present per frame.

    The classic folding/activation order parameter.  The reference map is
    computed once and shared across the batched frame pass.
    """
    if not 0 <= reference_frame < trajectory.nframes:
        raise TopologyError(f"reference frame {reference_frame} out of range")
    native = contact_map(
        trajectory.coords[reference_frame], cutoff=cutoff, selection=selection
    )
    n_native = native.sum()
    if n_native == 0:
        raise TopologyError("reference frame has no contacts at this cutoff")
    coords = trajectory.coords
    if selection is not None:
        coords = coords[:, np.asarray(selection)]
    _, overlap = frame_contact_counts(coords, cutoff, native=native)
    return overlap / n_native
