"""Time-series statistics for MD observables.

Correlated trajectories make naive error bars lie; the standard remedies
are block averaging (Flyvbjerg-Petersen) and integrated autocorrelation
times.  These are the tools a study built on this library would use to
decide whether a production phase is long enough.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TopologyError

__all__ = ["autocorrelation", "integrated_act", "block_average", "BlockResult"]


def autocorrelation(
    series: np.ndarray, max_lag: Optional[int] = None
) -> np.ndarray:
    """Normalized autocorrelation function C(tau), C(0) = 1.

    FFT-free direct estimator; adequate for the series lengths MD
    observables produce per study.  ``max_lag`` must be a non-negative
    integer (clamped to ``len(series) - 1``); ``None`` means half the
    series length.
    """
    x = np.asarray(series, dtype=np.float64)
    if x.ndim != 1 or x.size < 2:
        raise TopologyError("autocorrelation needs a 1-D series of length >= 2")
    n = x.size
    if max_lag is None:
        max_lag = n // 2
    else:
        if not isinstance(max_lag, (int, np.integer)) or isinstance(
            max_lag, bool
        ):
            raise TopologyError(
                f"max_lag must be a non-negative int, got {max_lag!r}"
            )
        if max_lag < 0:
            raise TopologyError(
                f"max_lag must be a non-negative int, got {max_lag}"
            )
    max_lag = min(max_lag, n - 1)
    x = x - x.mean()
    var = float((x * x).mean())
    if var == 0.0:
        out = np.zeros(max_lag + 1)
        out[0] = 1.0
        return out
    out = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        out[lag] = (x[: n - lag] * x[lag:]).mean() / var
    return out


def integrated_act(series: np.ndarray, window_factor: float = 5.0) -> float:
    """Integrated autocorrelation time with an adaptive window cutoff.

    Sums C(tau) until ``tau > window_factor * tau_int`` (the standard
    self-consistent window); returns at least 0.5 (uncorrelated data).
    """
    c = autocorrelation(series)
    tau = 0.5
    for lag in range(1, len(c)):
        tau += c[lag]
        if lag > window_factor * tau:
            break
    return max(tau, 0.5)


@dataclass(frozen=True)
class BlockResult:
    """One row of a block-averaging analysis."""

    block_size: int
    nblocks: int
    mean: float
    stderr: float


def block_average(series: np.ndarray, min_blocks: int = 4) -> list:
    """Flyvbjerg-Petersen block averaging.

    Returns :class:`BlockResult` rows for block sizes 1, 2, 4, ... while at
    least ``min_blocks`` blocks remain.  The standard error plateaus once
    blocks exceed the correlation time; the last row is the honest error
    bar.
    """
    x = np.asarray(series, dtype=np.float64)
    if x.ndim != 1 or x.size < min_blocks:
        raise TopologyError(f"need a 1-D series of at least {min_blocks} points")
    results = []
    size = 1
    while x.size // size >= min_blocks:
        nblocks = x.size // size
        blocks = x[: nblocks * size].reshape(nblocks, size).mean(axis=1)
        stderr = float(blocks.std(ddof=1) / np.sqrt(nblocks))
        results.append(
            BlockResult(
                block_size=size,
                nblocks=nblocks,
                mean=float(blocks.mean()),
                stderr=stderr,
            )
        )
        size *= 2
    return results
