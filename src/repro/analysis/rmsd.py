"""RMSD / RMSF: the workhorse observables of protein trajectory studies."""

from __future__ import annotations

import numpy as np

from repro.analysis.align import superpose
from repro.errors import TopologyError
from repro.formats.trajectory import Trajectory

__all__ = ["rmsd", "rmsd_trajectory", "rmsf", "pairwise_rmsd"]


def rmsd(a: np.ndarray, b: np.ndarray, align: bool = True) -> float:
    """RMSD between two conformations (optionally after superposition)."""
    if align:
        _, value = superpose(a, b)
        return value
    if a.shape != b.shape:
        raise TopologyError(f"shape mismatch {a.shape} vs {b.shape}")
    delta = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return float(np.sqrt((delta**2).sum(axis=1).mean()))


def rmsd_trajectory(
    trajectory: Trajectory, reference_frame: int = 0, align: bool = True
) -> np.ndarray:
    """Per-frame RMSD against one reference frame."""
    if not 0 <= reference_frame < trajectory.nframes:
        raise TopologyError(f"reference frame {reference_frame} out of range")
    reference = trajectory.coords[reference_frame].astype(np.float64)
    return np.array(
        [rmsd(trajectory.coords[i], reference, align=align)
         for i in range(trajectory.nframes)]
    )


def rmsf(trajectory: Trajectory) -> np.ndarray:
    """Per-atom root-mean-square fluctuation around the mean structure.

    Fully vectorized: one mean over frames, one reduction.
    """
    coords = trajectory.coords.astype(np.float64)
    mean = coords.mean(axis=0, keepdims=True)
    return np.sqrt(((coords - mean) ** 2).sum(axis=2).mean(axis=0))


def pairwise_rmsd(trajectory: Trajectory, align: bool = False) -> np.ndarray:
    """Frame-by-frame RMSD matrix (the clustering input of MD studies).

    The unaligned case is vectorized over all pairs via broadcasting.
    """
    coords = trajectory.coords.astype(np.float64)
    if not align:
        diff = coords[:, None, :, :] - coords[None, :, :, :]
        return np.sqrt((diff**2).sum(axis=3).mean(axis=2))
    n = trajectory.nframes
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            out[i, j] = out[j, i] = rmsd(coords[i], coords[j], align=True)
    return out
