"""Incremental (online) analysis operators for in-situ streaming ingest.

The streaming-MD and in-situ protein-folding literature argue that
observables should be computed *while* trajectory data lands, not in a
second decompress-everything pass afterwards.  This module provides
incremental forms of the batch operators in :mod:`repro.analysis` -- each
consumes one ingest-window-sized slab of frames at a time and maintains
running state, so a full analysis is available the moment the last window
is dispatched:

* :class:`OnlineRMSD`      -- per-frame RMSD vs. a fixed reference
  (superposed), incremental form of
  :func:`repro.analysis.rmsd.rmsd_trajectory`;
* :class:`OnlineContacts`  -- per-frame contact counts and
  native-contact fraction Q(t) vs. a reference frame, incremental form of
  :func:`repro.analysis.contacts.contact_count` /
  :func:`~repro.analysis.contacts.native_contact_fraction`;
* :class:`OnlineObservables` -- center of mass, gyration radius,
  end-to-end distance, and MSD vs. frame 0, incremental forms of the
  :mod:`repro.analysis.observables` functions;
* :class:`OnlineStats`     -- Welford running mean/variance plus
  *streaming* Flyvbjerg-Petersen block averages, so honest error bars are
  available without retaining the series.

Equivalence contract (verified by ``tests/analysis/test_online_equivalence.py``
over random window splits):

* RMSD, contacts, and the frame observables are **exact**: every frame's
  value is computed by the same float operations as the batch operator,
  so online-vs-batch equality is bit-for-bit at any window split.
* :class:`OnlineStats` matches the batch mean/variance and
  :func:`repro.analysis.timeseries.block_average` rows to within
  :data:`STATS_RTOL` / :data:`STATS_ATOL`: the streaming form accumulates
  hierarchically (pairwise, power-of-two blocks) while numpy's batch
  reductions use its own pairwise order, so the results differ only in
  float association, never in the estimator.

:class:`InSituAnalysis` bundles a set of operators behind the single
``consume(start, stop, coords)`` surface the ingest pipeline's analysis
stage drives.  Consumption is **idempotent over replays**: a window whose
frames were already counted (a retried delivery after a transient fault)
is ignored, and a gap in the stream raises -- online state can never
silently double-count or skip frames.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.contacts import contact_map, frame_contact_counts
from repro.analysis.rmsd import rmsd
from repro.analysis.timeseries import BlockResult
from repro.errors import ConfigurationError, TopologyError

__all__ = [
    "InSituAnalysis",
    "OnlineContacts",
    "OnlineObservables",
    "OnlineRMSD",
    "OnlineStats",
    "STATS_ATOL",
    "STATS_RTOL",
]

#: Documented float tolerance of :class:`OnlineStats` vs. its batch
#: counterparts (everything else in this module is exact -- see the
#: module docstring).
STATS_RTOL = 1e-9
STATS_ATOL = 1e-12


def _as_slab(coords: np.ndarray) -> np.ndarray:
    slab = np.asarray(coords)
    if slab.ndim != 3 or slab.shape[2] != 3:
        raise TopologyError(
            f"online operators consume (nframes, natoms, 3) slabs, "
            f"got shape {slab.shape}"
        )
    return slab


class OnlineRMSD:
    """Per-frame RMSD against a fixed reference, one slab at a time.

    With ``reference=None`` the first frame ever consumed becomes the
    reference, matching ``rmsd_trajectory(trajectory, reference_frame=0)``
    exactly (same per-frame superposition, same float order).
    """

    def __init__(
        self, reference: Optional[np.ndarray] = None, align: bool = True
    ):
        self.align = align
        self._reference: Optional[np.ndarray] = None
        if reference is not None:
            self._reference = np.asarray(reference).astype(np.float64)
        self._values: List[float] = []

    def update(self, coords: np.ndarray) -> Dict[str, np.ndarray]:
        slab = _as_slab(coords)
        if self._reference is None and slab.shape[0] > 0:
            self._reference = slab[0].astype(np.float64)
        fresh = np.array(
            [rmsd(frame, self._reference, align=self.align) for frame in slab]
        )
        self._values.extend(fresh.tolist())
        return {"rmsd": fresh}

    def result(self) -> Dict[str, np.ndarray]:
        return {"rmsd": np.array(self._values)}


class OnlineContacts:
    """Per-frame contact counts and native-contact fraction Q(t).

    The native (reference) contact map is computed once -- from
    ``reference`` coordinates, or from the first frame consumed -- and
    shared across every slab, exactly as the batch
    ``native_contact_fraction(trajectory, reference_frame=0)`` shares it
    across its frame loop.
    """

    def __init__(
        self,
        cutoff: float = 8.0,
        selection: Optional[np.ndarray] = None,
        reference: Optional[np.ndarray] = None,
    ):
        if cutoff <= 0:
            raise TopologyError("cutoff must be positive")
        self.cutoff = float(cutoff)
        self.selection = (
            np.asarray(selection) if selection is not None else None
        )
        self._native: Optional[np.ndarray] = None
        self._n_native = 0
        if reference is not None:
            self._set_reference(np.asarray(reference))
        self._counts: List[int] = []
        self._q: List[float] = []

    def _set_reference(self, frame: np.ndarray) -> None:
        native = contact_map(
            frame, cutoff=self.cutoff, selection=self.selection
        )
        n_native = native.sum()
        if n_native == 0:
            raise TopologyError(
                "reference frame has no contacts at this cutoff"
            )
        self._native = native
        self._n_native = n_native

    def update(self, coords: np.ndarray) -> Dict[str, np.ndarray]:
        slab = _as_slab(coords)
        if self._native is None and slab.shape[0] > 0:
            self._set_reference(slab[0])
        sel = slab
        if self.selection is not None:
            sel = slab[:, self.selection]
        raw, overlap = frame_contact_counts(
            sel, self.cutoff, native=self._native
        )
        counts = raw // 2
        q = overlap / self._n_native
        self._counts.extend(counts.tolist())
        self._q.extend(q.tolist())
        return {"contacts": counts, "native_fraction": q}

    def result(self) -> Dict[str, np.ndarray]:
        return {
            "contacts": np.array(self._counts, dtype=np.int64),
            "native_fraction": np.array(self._q),
        }


class OnlineObservables:
    """Center of mass, gyration radius, end-to-end distance, MSD vs. frame 0.

    All four are per-frame maps given frame 0, so the online forms are
    exact: each slab computes the identical vectorized expressions the
    batch operators apply to the whole stack.
    """

    def __init__(self) -> None:
        self._frame0: Optional[np.ndarray] = None
        self._com: List[np.ndarray] = []
        self._gyr: List[np.ndarray] = []
        self._e2e: List[np.ndarray] = []
        self._msd: List[np.ndarray] = []

    def update(self, coords: np.ndarray) -> Dict[str, np.ndarray]:
        slab = _as_slab(coords)
        if slab.shape[1] < 2:
            raise TopologyError("end-to-end distance needs at least two atoms")
        if self._frame0 is None and slab.shape[0] > 0:
            self._frame0 = slab[0].astype(np.float64)
        com = slab.mean(axis=1)
        pts = slab.astype(np.float64)
        centered = pts - pts.mean(axis=1, keepdims=True)
        gyr = np.sqrt((centered**2).sum(axis=2).mean(axis=1))
        e2e = np.linalg.norm(
            (slab[:, -1, :] - slab[:, 0, :]).astype(np.float64), axis=1
        )
        msd = ((pts - self._frame0) ** 2).sum(axis=2).mean(axis=1)
        self._com.append(com)
        self._gyr.append(gyr)
        self._e2e.append(e2e)
        self._msd.append(msd)
        return {
            "center_of_mass": com,
            "gyration_radius": gyr,
            "end_to_end": e2e,
            "msd": msd,
        }

    def result(self) -> Dict[str, np.ndarray]:
        def cat(parts: List[np.ndarray], width: int = 0) -> np.ndarray:
            if not parts:
                shape = (0, 3) if width else (0,)
                return np.empty(shape)
            return np.concatenate(parts)

        return {
            "center_of_mass": cat(self._com, width=3),
            "gyration_radius": cat(self._gyr),
            "end_to_end": cat(self._e2e),
            "msd": cat(self._msd),
        }


class _Welford:
    """Numerically stable running mean / M2 (sum of squared deviations)."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def variance(self, ddof: int = 0) -> float:
        if self.count <= ddof:
            return 0.0
        return self.m2 / (self.count - ddof)


class _BlockLevel:
    """One block size (2^level) of the streaming Flyvbjerg-Petersen tree.

    ``half`` holds the completed size/2 block mean waiting for its pair;
    ``welford`` accumulates the means of this level's *completed* blocks.
    """

    __slots__ = ("size", "welford", "half")

    def __init__(self, size: int) -> None:
        self.size = size
        self.welford = _Welford()
        self.half: Optional[float] = None


class OnlineStats:
    """Welford mean/variance plus streaming block averages over a scalar
    series, without retaining the series.

    Each incoming value climbs a hierarchy of power-of-two block levels:
    a value is a completed size-1 block; two completed size-``s`` block
    means pair into one size-``2s`` mean, which climbs further.  Every
    level folds its completed block means into a Welford accumulator, so
    :meth:`result` reports the same rows
    :func:`repro.analysis.timeseries.block_average` computes from the
    retained series -- completed blocks only, ``nblocks == count //
    block_size`` exactly -- with float association as the only difference
    (see :data:`STATS_RTOL`).

    Memory is O(log n): one ``(mean, m2, half)`` triple per block level.
    """

    def __init__(self, min_blocks: int = 4):
        if min_blocks < 2:
            raise ConfigurationError(
                f"min_blocks must be >= 2, got {min_blocks}"
            )
        self.min_blocks = int(min_blocks)
        self._levels: List[_BlockLevel] = [_BlockLevel(1)]

    @property
    def count(self) -> int:
        return self._levels[0].welford.count

    @property
    def mean(self) -> float:
        return self._levels[0].welford.mean

    def variance(self, ddof: int = 0) -> float:
        return self._levels[0].welford.variance(ddof)

    def add(self, values: Iterable[float]) -> None:
        """Fold a slab of scalar values into the running state."""
        for value in np.asarray(values, dtype=np.float64).ravel():
            self._add_one(float(value))

    def _add_one(self, value: float) -> None:
        carried: Optional[float] = value
        idx = 0
        while carried is not None:
            if idx == len(self._levels):
                self._levels.append(_BlockLevel(1 << idx))
            level = self._levels[idx]
            level.welford.add(carried)
            if level.half is None:
                level.half = carried
                carried = None
            else:
                carried = (level.half + carried) / 2.0
                level.half = None
            idx += 1

    def blocks(self) -> List[BlockResult]:
        """The completed block-averaging rows (sizes 1, 2, 4, ...)."""
        rows: List[BlockResult] = []
        for level in self._levels:
            w = level.welford
            if w.count < self.min_blocks:
                break
            rows.append(
                BlockResult(
                    block_size=level.size,
                    nblocks=w.count,
                    mean=w.mean,
                    stderr=math.sqrt(w.variance(ddof=1) / w.count),
                )
            )
        return rows

    def result(self) -> Dict[str, object]:
        """Snapshot: moments plus block rows and the honest error bar."""
        rows = self.blocks()
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance(ddof=0),
            "sample_variance": self.variance(ddof=1),
            "blocks": rows,
            # The last (largest-block) row's stderr is the honest error
            # bar once blocks exceed the correlation time.
            "stderr": rows[-1].stderr if rows else 0.0,
        }


class InSituAnalysis:
    """The operator set the fused ingest analysis stage drives.

    One instance rides one (or several, appended) ingest streams: the
    pipeline's analysis stage calls :meth:`consume` with each window's
    decoded coordinates before the window's buffers are released, and the
    finished results come back on the ingest receipt (and through
    :meth:`results` at any time).

    ``operators`` maps names to online operators (``update(coords) ->
    {series: values}`` / ``result()``); by default the standard set:
    :class:`OnlineRMSD`, :class:`OnlineContacts` (skipped automatically
    if the reference frame has no contacts at the cutoff), and
    :class:`OnlineObservables`.  ``stats_over`` names scalar series to
    track with :class:`OnlineStats` (error bars without series
    retention).

    Replay safety: windows must arrive in stream order.  A window whose
    frames were already consumed -- a retried delivery after a transient
    mid-ingest fault -- is ignored (frames are never double-counted); a
    gap raises :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(
        self,
        operators: Optional[Dict[str, object]] = None,
        stats_over: Sequence[str] = ("rmsd", "gyration_radius"),
        min_blocks: int = 4,
    ):
        self._default_contacts = operators is None
        if operators is None:
            operators = {
                "rmsd": OnlineRMSD(),
                "contacts": OnlineContacts(),
                "observables": OnlineObservables(),
            }
        self.operators: Dict[str, object] = dict(operators)
        self.stats_over: Tuple[str, ...] = tuple(stats_over)
        self.stats: Dict[str, OnlineStats] = {
            name: OnlineStats(min_blocks=min_blocks) for name in self.stats_over
        }
        self.frames_seen = 0
        self.windows_seen = 0
        self.replays_ignored = 0
        self._next_start = 0

    def consume(self, start: int, stop: int, coords: np.ndarray) -> int:
        """Fold one window's decoded frames ``[start, stop)`` in.

        Returns the number of *new* frames consumed (0 for a replayed
        window).
        """
        if stop < start:
            raise ConfigurationError(f"bad window [{start}, {stop})")
        if start < self._next_start:
            # Replayed delivery (e.g. a retried window after a transient
            # fault): every frame before _next_start is already in the
            # running state.  Ignore rather than double-count.
            self.replays_ignored += 1
            return 0
        if start > self._next_start:
            raise ConfigurationError(
                f"window gap: expected frame {self._next_start}, "
                f"got [{start}, {stop})"
            )
        slab = _as_slab(coords)
        if slab.shape[0] != stop - start:
            raise ConfigurationError(
                f"window [{start}, {stop}) carries {slab.shape[0]} frames"
            )
        series: Dict[str, np.ndarray] = {}
        for name, op in list(self.operators.items()):
            try:
                series.update(op.update(slab))
            except TopologyError:
                if self._default_contacts and isinstance(op, OnlineContacts):
                    # Default bundle on a contact-free reference: drop the
                    # operator rather than fail the whole ingest.
                    del self.operators[name]
                    continue
                raise
        for name in self.stats_over:
            if name in series:
                self.stats[name].add(series[name])
        self._next_start = stop
        self.frames_seen += stop - start
        self.windows_seen += 1
        return stop - start

    def results(self) -> Dict[str, object]:
        """Flattened snapshot of every operator's running result."""
        out: Dict[str, object] = {
            "frames": self.frames_seen,
            "windows": self.windows_seen,
            "replays_ignored": self.replays_ignored,
        }
        for op in self.operators.values():
            out.update(op.result())
        if self.stats:
            out["stats"] = {
                name: stats.result() for name, stats in self.stats.items()
            }
        return out
