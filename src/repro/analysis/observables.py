"""Simple structural/dynamic observables, vectorized over frames."""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.formats.trajectory import Trajectory

__all__ = [
    "center_of_mass",
    "gyration_radius",
    "end_to_end_distance",
    "mean_square_displacement",
]


def center_of_mass(trajectory: Trajectory) -> np.ndarray:
    """``(nframes, 3)`` geometric centers (unit masses)."""
    return trajectory.coords.mean(axis=1)


def gyration_radius(trajectory: Trajectory) -> np.ndarray:
    """Per-frame radius of gyration -- compactness of the fold."""
    coords = trajectory.coords.astype(np.float64)
    com = coords.mean(axis=1, keepdims=True)
    return np.sqrt(((coords - com) ** 2).sum(axis=2).mean(axis=1))


def end_to_end_distance(trajectory: Trajectory) -> np.ndarray:
    """Per-frame distance between the first and last atom (chain span)."""
    if trajectory.natoms < 2:
        raise TopologyError("end-to-end distance needs at least two atoms")
    delta = trajectory.coords[:, -1, :] - trajectory.coords[:, 0, :]
    return np.linalg.norm(delta.astype(np.float64), axis=1)


def mean_square_displacement(trajectory: Trajectory) -> np.ndarray:
    """MSD(t) against frame 0, averaged over atoms -- the diffusion probe
    that distinguishes bulk water from folded protein."""
    coords = trajectory.coords.astype(np.float64)
    delta = coords - coords[0:1]
    return (delta**2).sum(axis=2).mean(axis=1)
