"""Interconnect presets.

The paper names InfiniBand as the cluster fabric (Fig. 3a).  FDR InfiniBand
moves ~6.8 GB/s per port with microsecond latency -- fast enough that, as
the paper observes, "raw data transferring is not a performance bottleneck";
the presets exist so the model *demonstrates* that rather than assuming it.
"""

from __future__ import annotations

from repro.net.link import LinkSpec
from repro.units import gbps, mbps

__all__ = ["INFINIBAND_FDR", "TEN_GBE", "infiniband_spec"]


def infiniband_spec(
    name: str = "infiniband",
    bandwidth_gbps: float = 6.8,
    latency_us: float = 1.5,
) -> LinkSpec:
    return LinkSpec(
        name=name, bandwidth=gbps(bandwidth_gbps), latency_s=latency_us / 1e6
    )


#: FDR InfiniBand: 56 Gbit/s signaling, ~6.8 GB/s effective.
INFINIBAND_FDR = infiniband_spec(name="InfiniBand-FDR")

#: Commodity 10 GbE for ablations (≈1.1 GB/s effective).
TEN_GBE = LinkSpec(name="10GbE", bandwidth=mbps(1100.0), latency_s=30e-6)
