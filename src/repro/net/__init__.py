"""Network models: point-to-point links and the cluster interconnect.

The paper's cluster moves data from storage to compute nodes over an
InfiniBand-class fabric (Fig. 3); transfers are modeled as latency +
bandwidth with FIFO contention per link.
"""

from repro.net.link import Link, LinkSpec
from repro.net.infiniband import INFINIBAND_FDR, TEN_GBE, infiniband_spec

__all__ = ["INFINIBAND_FDR", "Link", "LinkSpec", "TEN_GBE", "infiniband_spec"]
