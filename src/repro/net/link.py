"""Point-to-point network link model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, raise_fault
from repro.sim import BusyTracker, Resource, Simulator

__all__ = ["LinkSpec", "Link"]


@dataclass(frozen=True)
class LinkSpec:
    """Latency + bandwidth envelope of a network path."""

    name: str
    bandwidth: float  # bytes/second
    latency_s: float  # one-way

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency_s < 0:
            raise ConfigurationError(f"{self.name}: bad link parameters")

    def transfer_time(self, nbytes: float, messages: int = 1) -> float:
        """Time to move ``nbytes`` in ``messages`` round-trips-worth of ops."""
        return max(messages, 1) * self.latency_s + nbytes / self.bandwidth


class Link:
    """Sim-bound link: transfers queue FIFO and record busy intervals."""

    def __init__(self, sim: Simulator, spec: LinkSpec, name: Optional[str] = None):
        self.sim = sim
        self.spec = spec
        self.name = name or spec.name
        self.resource = Resource(sim, capacity=1, name=self.name)
        self.busy = BusyTracker(self.name)
        self.bytes_moved = 0.0
        self.faults: Optional[FaultPlan] = None

    def attach_faults(self, plan: FaultPlan) -> "Link":
        """Route this link's transfers through a fault plan."""
        self.faults = plan
        return self

    @property
    def fault_site(self) -> str:
        return f"link:{self.name}"

    def _fault_gate(self, op: str) -> Generator:
        """Process: injected latency / dropped-transfer error before send."""
        if self.faults is None:
            return
        decision = self.faults.decide(self.fault_site, op)
        if decision.latency_s > 0:
            yield self.sim.timeout(decision.latency_s)
        if decision.error is not None:
            raise_fault(decision.error, self.fault_site, op)

    def transfer(
        self, nbytes: float, messages: int = 1, label: str = "xfer"
    ) -> Generator:
        """DES process: occupy the link while the payload streams."""
        yield from self._fault_gate("xfer")
        with self.resource.request() as req:
            yield req
            start = self.sim.now
            yield self.sim.timeout(self.spec.transfer_time(nbytes, messages))
            self.busy.record(start, self.sim.now, label)
            self.bytes_moved += nbytes
