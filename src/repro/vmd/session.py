"""The VMD command surface the paper modifies (§3.4).

``mol new foo.pdb`` creates a molecule from a structure file;
``mol addfile bar.xtc`` loads trajectory data into it.  The paper's change
is one extra parameter: ``mol addfile /mnt/bar.xtc tag p`` asks ADA for
only the subset labeled ``p``.

A session can be wired to an :class:`~repro.core.middleware.ADA` instance
(tag-aware loads through the middleware) and/or handed raw blobs directly
(the traditional file-system path).  An optional memory ledger enforces the
compute node's RAM during loads, reproducing OOM kills in materialized runs.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cluster.memory import MemoryLedger
from repro.core.middleware import ADA
from repro.errors import ConfigurationError, TopologyError
from repro.formats.pdb import parse_pdb
from repro.vmd.loader import LoadResult, TrajectoryLoader
from repro.vmd.molecule import Molecule

__all__ = ["VMDSession"]


class VMDSession:
    """Holds molecules and executes VMD-style load commands."""

    def __init__(
        self,
        ada: Optional[ADA] = None,
        memory: Optional[MemoryLedger] = None,
    ):
        self.ada = ada
        self.memory = memory
        self.loader = TrajectoryLoader()
        self.molecules: Dict[int, Molecule] = {}
        self._next_id = 0
        self.top: Optional[Molecule] = None

    # -- mol new -----------------------------------------------------------

    def mol_new(self, pdb_text: str, name: str = "molecule") -> Molecule:
        """``mol new foo.pdb``: create a molecule from structure text."""
        topology, _ = parse_pdb(pdb_text)
        mol = Molecule(self._next_id, name, topology)
        self.molecules[self._next_id] = mol
        self._next_id += 1
        self.top = mol
        return mol

    # -- mol addfile -------------------------------------------------------------

    def mol_addfile(
        self,
        blob: bytes,
        molecule: Optional[Molecule] = None,
        selection=None,
    ) -> LoadResult:
        """Traditional path: load a trajectory blob read from a plain FS.

        Compressed blobs pay full decompression; ``selection`` (an index
        array or a VMD selection string like ``"protein and name CA"``)
        filters afterwards -- there is no earlier place to filter, which is
        the paper's point.
        """
        mol = self._target(molecule)
        selection = self._resolve_selection(mol, selection)
        if self.loader.decompressor.is_compressed(blob):
            result = self.loader.load_compressed(blob, selection=selection)
        else:
            result = self.loader.load_raw(blob, selection=selection)
        self._charge_memory(result)
        mol.add_frames(result.trajectory, atom_indices=selection)
        return result

    @staticmethod
    def _resolve_selection(mol: Molecule, selection):
        if selection is None or not isinstance(selection, str):
            return selection
        from repro.vmd.selection import select

        return select(mol.topology, selection)

    def mol_addfile_tag(
        self,
        logical: str,
        tag: str,
        molecule: Optional[Molecule] = None,
        precision: str = "full",
    ) -> LoadResult:
        """``mol addfile /mnt/bar.xtc tag p``: tag-selective load via ADA.

        ``precision`` picks the read tier (``"full"``/``"lod"``/``"auto"``);
        a coarse read surfaces its tier and advertised error bound on the
        returned :class:`LoadResult`.
        """
        mol = self._target(molecule)
        ada = self._require_ada()
        obj = ada.sim.run_process(ada.fetch(logical, tag, precision=precision))
        result = self.loader.load_subset(obj.data)
        result.tier = obj.tier
        result.max_error = obj.max_error
        self._charge_memory(result)
        indices = ada.label_map(logical).indices(tag)
        mol.add_frames(result.trajectory, atom_indices=indices)
        return result

    def mol_addfile_all(
        self,
        logical: str,
        molecule: Optional[Molecule] = None,
        precision: str = "full",
    ) -> LoadResult:
        """Load every ADA subset and merge back to full frames."""
        mol = self._target(molecule)
        ada = self._require_ada()
        merged = ada.sim.run_process(
            ada.fetch_merged(logical, precision=precision)
        )
        result = LoadResult(
            trajectory=merged,
            source_nbytes=ada.container_nbytes(logical),
            decompressed_nbytes=0,
            tier=getattr(merged, "tier", "full"),
            max_error=getattr(merged, "max_error", None),
        )
        self._charge_memory(result)
        mol.add_frames(merged)
        return result

    # -- internals ------------------------------------------------------------------

    def _target(self, molecule: Optional[Molecule]) -> Molecule:
        mol = molecule or self.top
        if mol is None:
            raise TopologyError("no molecule loaded; run mol_new first")
        return mol

    def _require_ada(self) -> ADA:
        if self.ada is None:
            raise ConfigurationError("this session has no ADA middleware attached")
        return self.ada

    def _charge_memory(self, result: LoadResult) -> None:
        if self.memory is not None:
            self.memory.allocate("frames", result.loaded_nbytes)
            if result.decompressed_nbytes:
                # Transient inflate buffer: peaks, then is released.
                self.memory.allocate("inflate", result.decompressed_nbytes)
                self.memory.allocate("source", result.source_nbytes)
                self.memory.free("inflate")
                self.memory.free("source")
