"""Geometry building: the data-rendering phase of Fig. 2.

Real vectorized work per frame: bond line segments (the dominant VMD
"Lines" representation), center of mass, radius of gyration, and the
bounding box -- enough computation to stand in for VMD's geometry pipeline
while staying numpy-bound.

Bond detection uses the sequential heuristic real MD files permit: atoms
of one residue are written bonded-neighbor first, so checking consecutive
pairs (same residue, distance < cutoff) recovers the covalent skeleton
without an O(N^2) or cell-list search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import TopologyError
from repro.formats.topology import Topology
from repro.vmd.molecule import Molecule

__all__ = ["build_bonds", "FrameGeometry", "GeometryBuilder"]

DEFAULT_BOND_CUTOFF = 2.0  # Angstrom


def build_bonds(
    topology: Topology,
    coords: np.ndarray,
    cutoff: float = DEFAULT_BOND_CUTOFF,
) -> np.ndarray:
    """``(nbonds, 2)`` atom-index pairs, from the sequential heuristic."""
    n = topology.natoms
    if coords.shape != (n, 3):
        raise TopologyError(f"coords shape {coords.shape} != ({n}, 3)")
    if n < 2:
        return np.empty((0, 2), dtype=np.int64)
    same_residue = (topology.resids[1:] == topology.resids[:-1]) & (
        topology.resnames[1:] == topology.resnames[:-1]
    )
    dist = np.linalg.norm(coords[1:] - coords[:-1], axis=1)
    mask = same_residue & (dist < cutoff)
    left = np.flatnonzero(mask)
    return np.column_stack([left, left + 1])


#: Van der Waals radii (Angstrom) per element for the VDW representation.
VDW_RADII = {
    "H": 1.20, "C": 1.70, "N": 1.55, "O": 1.52, "S": 1.80, "P": 1.80,
}
_DEFAULT_RADIUS = 1.60

#: Supported drawing styles, mirroring VMD's representation menu.
REPRESENTATIONS = ("lines", "vdw", "trace")


@dataclass
class FrameGeometry:
    """Render output for one frame."""

    segments: np.ndarray  # (nbonds, 2, 3) line endpoints
    center_of_mass: np.ndarray  # (3,)
    radius_of_gyration: float
    bounds_min: np.ndarray  # (3,)
    bounds_max: np.ndarray  # (3,)
    spheres: Optional[np.ndarray] = None  # (natoms, 4): x, y, z, radius

    @property
    def nsegments(self) -> int:
        return int(self.segments.shape[0])

    @property
    def nspheres(self) -> int:
        return 0 if self.spheres is None else int(self.spheres.shape[0])


class GeometryBuilder:
    """Builds per-frame geometry for a molecule.

    ``representation`` mirrors VMD's menu: ``"lines"`` draws every bond,
    ``"vdw"`` emits one sphere per atom at its van-der-Waals radius,
    ``"trace"`` draws the CA backbone polyline (the cartoon-ish overview
    used for big systems).  Static structure (bonds, radii, trace path) is
    computed once; per-frame work is pure fancy-indexing.
    """

    def __init__(
        self,
        molecule: Molecule,
        cutoff: float = DEFAULT_BOND_CUTOFF,
        representation: str = "lines",
    ):
        if representation not in REPRESENTATIONS:
            raise TopologyError(
                f"unknown representation {representation!r}; "
                f"have {REPRESENTATIONS}"
            )
        self.molecule = molecule
        self.representation = representation
        topo = molecule.loaded_topology()
        if molecule.num_frames == 0:
            raise TopologyError(f"molecule {molecule.name!r} has no frames to render")
        if representation == "trace":
            self.bonds = self._trace_bonds(topo)
        else:
            self.bonds = build_bonds(topo, molecule.frame_coords(0), cutoff=cutoff)
        self._radii = (
            np.array(
                [VDW_RADII.get(e, _DEFAULT_RADIUS) for e in topo.elements],
                dtype=np.float32,
            )
            if representation == "vdw"
            else None
        )

    @staticmethod
    def _trace_bonds(topo) -> np.ndarray:
        """Consecutive-CA pairs within one chain: the backbone polyline."""
        ca = np.flatnonzero(topo.names == "CA")
        if len(ca) < 2:
            return np.empty((0, 2), dtype=np.int64)
        same_chain = topo.chains[ca[1:]] == topo.chains[ca[:-1]]
        left = ca[:-1][same_chain]
        right = ca[1:][same_chain]
        return np.column_stack([left, right])

    def render_frame(self, iframe: int) -> FrameGeometry:
        coords = self.molecule.frame_coords(iframe)
        segments = coords[self.bonds]  # (nbonds, 2, 3) fancy-index
        com = coords.mean(axis=0)
        rg = float(np.sqrt(((coords - com) ** 2).sum(axis=1).mean()))
        spheres = None
        if self._radii is not None:
            spheres = np.column_stack([coords, self._radii])
        return FrameGeometry(
            segments=segments,
            center_of_mass=com,
            radius_of_gyration=rg,
            bounds_min=coords.min(axis=0),
            bounds_max=coords.max(axis=0),
            spheres=spheres,
        )

    def render_all(self) -> List[FrameGeometry]:
        """Phase two in full: geometry for every frame."""
        return [self.render_frame(i) for i in range(self.molecule.num_frames)]
