"""The molecule object VMD commands operate on.

A molecule is born from a structure file (``mol new foo.pdb``) and
accumulates frames from trajectory files (``mol addfile bar.xtc``).  When a
trajectory carries only an atom *subset* (an ADA tag-selective load), the
molecule tracks which atom indices of the full structure the frames cover.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import TopologyError
from repro.formats.topology import Topology
from repro.formats.trajectory import Trajectory

__all__ = ["Molecule"]


class Molecule:
    """Structure plus an (optionally subset) frame array."""

    def __init__(self, mol_id: int, name: str, topology: Topology):
        self.mol_id = mol_id
        self.name = name
        self.topology = topology
        self.trajectory: Optional[Trajectory] = None
        #: Indices into ``topology`` that trajectory atoms correspond to
        #: (None => all atoms).
        self.loaded_indices: Optional[np.ndarray] = None

    # -- frame management -----------------------------------------------------

    def add_frames(
        self, trajectory: Trajectory, atom_indices: Optional[np.ndarray] = None
    ) -> None:
        """Append frames (``mol addfile``); atom coverage must be consistent."""
        expected = (
            self.topology.natoms if atom_indices is None else len(atom_indices)
        )
        if trajectory.natoms != expected:
            raise TopologyError(
                f"trajectory carries {trajectory.natoms} atoms; expected "
                f"{expected} for molecule {self.name!r}"
            )
        if self.trajectory is None:
            self.trajectory = trajectory
            self.loaded_indices = (
                None if atom_indices is None else np.asarray(atom_indices)
            )
            return
        if not self._same_coverage(atom_indices):
            raise TopologyError(
                "cannot mix full-structure and subset trajectories in one molecule"
            )
        self.trajectory = Trajectory.concatenate([self.trajectory, trajectory])

    def _same_coverage(self, atom_indices: Optional[np.ndarray]) -> bool:
        if self.loaded_indices is None:
            return atom_indices is None
        return atom_indices is not None and np.array_equal(
            self.loaded_indices, np.asarray(atom_indices)
        )

    # -- queries ---------------------------------------------------------------

    @property
    def num_frames(self) -> int:
        return 0 if self.trajectory is None else self.trajectory.nframes

    @property
    def loaded_natoms(self) -> int:
        if self.loaded_indices is not None:
            return int(len(self.loaded_indices))
        return self.topology.natoms

    @property
    def frame_nbytes(self) -> int:
        """Raw bytes held by the frame array."""
        return 0 if self.trajectory is None else self.trajectory.nbytes

    def loaded_topology(self) -> Topology:
        """Structure rows matching the loaded frames."""
        if self.loaded_indices is None:
            return self.topology
        return self.topology.select(self.loaded_indices)

    def frame_coords(self, iframe: int) -> np.ndarray:
        if self.trajectory is None:
            raise TopologyError(f"molecule {self.name!r} has no frames")
        return self.trajectory.coords[iframe]

    def __repr__(self) -> str:
        return (
            f"Molecule(id={self.mol_id}, name={self.name!r}, "
            f"natoms={self.topology.natoms}, frames={self.num_frames})"
        )
