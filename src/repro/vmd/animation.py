"""Animation replay: the 3D playback the biologists actually watch.

"Recently retrieved frames should be evacuated from the limited memory to
make room for subsequent phases of frames.  Frequent data swapping
operations cause a low data hit rate under random frame accesses (e.g.,
replaying the frames back and forth)" (paper §2.1).  :class:`Animator`
models that: a fixed-size frame cache in front of the frame array, with
hit-rate accounting under sequential and rocking (back-and-forth) access.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.errors import TopologyError
from repro.vmd.molecule import Molecule
from repro.vmd.render import FrameGeometry, GeometryBuilder

__all__ = ["Animator", "PlaybackStats"]


@dataclass
class PlaybackStats:
    """Cache behaviour of one playback run."""

    frames_shown: int
    cache_hits: int
    cache_misses: int

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class Animator:
    """Replays a molecule's frames through an LRU geometry cache.

    ``readahead=N`` renders up to N frames ahead of a miss in the current
    playback direction -- the geometry-level analogue of ADA's chunk
    prefetch.  Readahead follows the observed stride (so rewind and
    skip-frame playback readahead correctly), never fills more than half
    the cache speculatively, and renders bit-identical geometry to a
    demand render, so playback output is unchanged.
    """

    def __init__(
        self,
        molecule: Molecule,
        cache_frames: int = 64,
        readahead: int = 0,
    ):
        if molecule.num_frames == 0:
            raise TopologyError("nothing to animate: molecule has no frames")
        if cache_frames < 1:
            raise ValueError("cache must hold at least one frame")
        if readahead < 0:
            raise ValueError("readahead must be >= 0")
        self.molecule = molecule
        self.builder = GeometryBuilder(molecule)
        self.cache_frames = cache_frames
        self.readahead = int(readahead)
        self._cache: "OrderedDict[int, FrameGeometry]" = OrderedDict()
        self.current = 0
        self.hits = 0
        self.misses = 0
        self.readahead_rendered = 0
        self._previous: Optional[int] = None
        self._stride = 1

    def goto(self, iframe: int) -> FrameGeometry:
        """Jump to a frame, rendering (or cache-hitting) its geometry."""
        n = self.molecule.num_frames
        if not 0 <= iframe < n:
            raise IndexError(f"frame {iframe} outside [0, {n})")
        self.current = iframe
        if self._previous is not None and iframe != self._previous:
            self._stride = iframe - self._previous
        self._previous = iframe
        cached = self._cache.get(iframe)
        if cached is not None:
            self._cache.move_to_end(iframe)
            self.hits += 1
            return cached
        self.misses += 1
        geometry = self._render_into_cache(iframe)
        if self.readahead:
            self._read_ahead(iframe, n)
        return geometry

    def _render_into_cache(self, iframe: int) -> FrameGeometry:
        geometry = self.builder.render_frame(iframe)
        self._cache[iframe] = geometry
        if len(self._cache) > self.cache_frames:
            self._cache.popitem(last=False)
        return geometry

    def _read_ahead(self, iframe: int, n: int) -> None:
        """Pre-render the next frames along the current stride.

        Speculation is capped at half the cache so readahead can never
        flush the frames a rocking playback is about to revisit.
        """
        budget = min(self.readahead, self.cache_frames // 2)
        for step in range(1, budget + 1):
            target = iframe + step * self._stride
            if not 0 <= target < n or target in self._cache:
                continue
            self._render_into_cache(target)
            self.readahead_rendered += 1

    def play(self, order: Optional[Iterable[int]] = None) -> PlaybackStats:
        """Replay frames in the given order (default: sequential)."""
        if order is None:
            order = range(self.molecule.num_frames)
        h0, m0 = self.hits, self.misses
        shown = 0
        for iframe in order:
            self.goto(iframe)
            shown += 1
        return PlaybackStats(
            frames_shown=shown,
            cache_hits=self.hits - h0,
            cache_misses=self.misses - m0,
        )

    def rock(self, passes: int = 2) -> PlaybackStats:
        """Back-and-forth replay: the random-ish access of paper §2.1."""
        n = self.molecule.num_frames
        order: List[int] = []
        for p in range(passes):
            sweep = range(n) if p % 2 == 0 else range(n - 1, -1, -1)
            order.extend(sweep)
        return self.play(order)
