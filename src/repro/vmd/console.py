"""A VMD-style command console.

The paper's interface changes are command-line visible: ``$ mol new
foo.pdb``, ``$ mol addfile /mnt/bar.xtc tag p`` (§3.4).  This console
parses those command strings and drives a :class:`VMDSession`, so the
reproduction can be poked exactly the way the paper describes.

Supported grammar::

    mol new <path>                          -- structure from the VFS/ADA
    mol addfile <path> [tag <t>] [sel "<expr>"]
    mol list
    animate goto <frame> | next | prev
    render <out.pgm> [frame <i>]
    quit / exit

Paths resolve through an attached VFS (so ``/mnt/ada/...`` reads trap
into ADA) or through ADA logical names directly.
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError, ReproError
from repro.vmd.session import VMDSession

__all__ = ["CommandError", "VMDConsole"]


class CommandError(ReproError):
    """Malformed or unsupported console command."""


class VMDConsole:
    """Parses VMD-style command strings against a session."""

    def __init__(self, session: VMDSession, vfs=None):
        self.session = session
        self.vfs = vfs
        self.animator = None
        self.running = True
        self.log: List[str] = []

    # -- the entry point ---------------------------------------------------

    def execute(self, command: str) -> str:
        """Run one command; returns its textual response."""
        tokens = shlex.split(command)
        if not tokens:
            raise CommandError("empty command")
        head = tokens[0].lower()
        handler = {
            "mol": self._cmd_mol,
            "animate": self._cmd_animate,
            "render": self._cmd_render,
            "quit": self._cmd_quit,
            "exit": self._cmd_quit,
        }.get(head)
        if handler is None:
            raise CommandError(f"unknown command {head!r}")
        response = handler(tokens[1:])
        self.log.append(command)
        return response

    def execute_script(self, script: str) -> List[str]:
        """Run a newline-separated script; '#' comments are skipped."""
        responses = []
        for line in script.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            responses.append(self.execute(line))
            if not self.running:
                break
        return responses

    # -- handlers -------------------------------------------------------------

    def _cmd_mol(self, args: List[str]) -> str:
        if not args:
            raise CommandError("mol needs a subcommand (new/addfile/list)")
        sub = args[0].lower()
        if sub == "new":
            if len(args) != 2:
                raise CommandError("usage: mol new <foo.pdb>")
            pdb_text = self._read_text(args[1])
            mol = self.session.mol_new(pdb_text, name=args[1])
            return f"created molecule {mol.mol_id} ({mol.topology.natoms} atoms)"
        if sub == "addfile":
            return self._cmd_addfile(args[1:])
        if sub == "list":
            lines = [
                f"{m.mol_id}: {m.name} atoms={m.topology.natoms} "
                f"frames={m.num_frames}"
                for m in self.session.molecules.values()
            ]
            return "\n".join(lines) if lines else "no molecules"
        raise CommandError(f"unknown mol subcommand {sub!r}")

    def _cmd_addfile(self, args: List[str]) -> str:
        if not args:
            raise CommandError("usage: mol addfile <path> [tag <t>] [sel <expr>]")
        path = args[0]
        tag: Optional[str] = None
        selection: Optional[str] = None
        rest = args[1:]
        while rest:
            key = rest[0].lower()
            if key == "tag" and len(rest) >= 2:
                tag, rest = rest[1], rest[2:]
            elif key == "sel" and len(rest) >= 2:
                selection, rest = rest[1], rest[2:]
            else:
                raise CommandError(f"unexpected addfile argument {rest[0]!r}")
        self.animator = None  # new frames invalidate playback geometry
        if tag is not None:
            logical = self._ada_logical(path)
            result = self.session.mol_addfile_tag(logical, tag)
            return (
                f"loaded tag {tag!r}: {result.trajectory.nframes} frames, "
                f"{result.trajectory.natoms} atoms"
            )
        blob = self._read_bytes(path)
        result = self.session.mol_addfile(blob, selection=selection)
        return (
            f"loaded {result.trajectory.nframes} frames, "
            f"{result.trajectory.natoms} atoms"
            + (f" (sel {selection!r})" if selection else "")
        )

    def _cmd_animate(self, args: List[str]) -> str:
        if not args:
            raise CommandError("usage: animate goto <i> | next | prev")
        animator = self._animator()
        sub = args[0].lower()
        if sub == "goto":
            if len(args) != 2:
                raise CommandError("usage: animate goto <frame>")
            frame = int(args[1])
        elif sub == "next":
            frame = min(animator.current + 1, self.session.top.num_frames - 1)
        elif sub == "prev":
            frame = max(animator.current - 1, 0)
        else:
            raise CommandError(f"unknown animate subcommand {sub!r}")
        geometry = animator.goto(frame)
        return f"frame {frame}: {geometry.nsegments} segments"

    def _cmd_render(self, args: List[str]) -> str:
        if not args:
            raise CommandError("usage: render <out.pgm> [frame <i>]")
        out_path = args[0]
        iframe = self._animator().current
        if len(args) >= 3 and args[1].lower() == "frame":
            iframe = int(args[2])
        from repro.vmd.raster import render_frame_image

        canvas, pgm = render_frame_image(self.session.top, iframe=iframe)
        if self.vfs is not None:
            with self.vfs.open(out_path, "w") as fh:
                fh.write(pgm.encode())
            where = f"VFS {out_path}"
        else:
            with open(out_path, "w") as fh:
                fh.write(pgm)
            where = out_path
        return f"rendered frame {iframe} ({canvas.shape[1]}x{canvas.shape[0]}) -> {where}"

    def _cmd_quit(self, args: List[str]) -> str:
        self.running = False
        return "bye"

    # -- plumbing ----------------------------------------------------------------

    def _animator(self):
        if self.session.top is None or self.session.top.num_frames == 0:
            raise CommandError("no frames loaded")
        if self.animator is None or self.animator.molecule is not self.session.top:
            from repro.vmd.animation import Animator

            self.animator = Animator(self.session.top)
        return self.animator

    def _ada_logical(self, path: str) -> str:
        """Strip a VFS ADA mount prefix to get the logical dataset name."""
        if self.vfs is not None and hasattr(self.vfs, "_under_ada"):
            relative = self.vfs._under_ada(path)
            if relative is not None:
                return relative
        return path.lstrip("/")

    def _read_bytes(self, path: str) -> bytes:
        if self.vfs is not None:
            with self.vfs.open(path, "r") as fh:
                return fh.read()
        raise ConfigurationError(
            f"cannot read {path!r}: no VFS attached to this console"
        )

    def _read_text(self, path: str) -> str:
        return self._read_bytes(path).decode()
