"""VMD-style atom selection language.

Real VMD filters with expressions like ``protein and name CA`` or
``water within 5 of protein``.  This module implements the practical core
of that grammar over :class:`~repro.formats.topology.Topology`:

.. code-block:: text

    expr     := term (('or') term)*
    term     := factor (('and') factor)*
    factor   := 'not' factor | '(' expr ')' | primary
    primary  := class keyword   (protein|water|lipid|ion|ligand|misc|all|none)
              | 'name' WORD+          -- atom names, any of
              | 'resname' WORD+       -- residue names, any of
              | 'chain' WORD+         -- chain ids, any of
              | 'resid' RANGE+        -- ids / 'a to b' ranges, any of
              | 'index' RANGE+        -- atom indices / ranges
              | 'within' FLOAT 'of' factor     -- needs coords

Evaluation is fully vectorized: every primary produces one boolean mask,
combinators are numpy logical ops.  ``select(topology, "protein and name
CA")`` returns the matching atom indices.  Distance selections
(``"water within 5 of protein"``) additionally need a coordinate frame::

    select(topology, "water within 5 of protein", coords=frame)
"""

from __future__ import annotations

import re
from typing import List, Optional

import numpy as np

from repro.errors import ReproError
from repro.formats.topology import AtomClass, Topology

__all__ = ["SelectionError", "compile_selection", "select", "select_mask"]


class SelectionError(ReproError):
    """Malformed selection expression."""


_CLASS_KEYWORDS = {
    "protein": (AtomClass.PROTEIN,),
    "water": (AtomClass.WATER,),
    "lipid": (AtomClass.LIPID,),
    "ion": (AtomClass.ION,),
    "ions": (AtomClass.ION,),
    "ligand": (AtomClass.LIGAND,),
    "misc": (
        AtomClass.WATER,
        AtomClass.LIPID,
        AtomClass.ION,
        AtomClass.LIGAND,
        AtomClass.OTHER,
    ),
}
_FIELD_KEYWORDS = ("name", "resname", "chain", "resid", "index")
_RESERVED = (
    set(_CLASS_KEYWORDS)
    | set(_FIELD_KEYWORDS)
    | {"and", "or", "not", "all", "none", "to", "within", "of", "(", ")"}
)

_TOKEN = re.compile(r"\(|\)|[^\s()]+")


def _tokenize(text: str) -> List[str]:
    tokens = _TOKEN.findall(text)
    if not tokens:
        raise SelectionError("empty selection")
    return tokens


class _Parser:
    """Recursive-descent parser producing mask-evaluator closures."""

    def __init__(
        self,
        tokens: List[str],
        topology: Topology,
        coords: Optional[np.ndarray] = None,
    ):
        self.tokens = tokens
        self.pos = 0
        self.topology = topology
        self.coords = coords

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise SelectionError("unexpected end of selection")
        self.pos += 1
        return token

    # expr := term ('or' term)*
    def expr(self) -> np.ndarray:
        mask = self.term()
        while self.peek() == "or":
            self.take()
            mask = mask | self.term()
        return mask

    # term := factor (('and' factor) | within-factor)*
    def term(self) -> np.ndarray:
        mask = self.factor()
        while True:
            token = self.peek()
            if token == "and":
                self.take()
                mask = mask & self.factor()
            elif token == "within":
                # VMD's implicit conjunction: 'water within 5 of protein'
                # means 'water and (within 5 of protein)'.
                mask = mask & self.factor()
            else:
                break
        return mask

    def factor(self) -> np.ndarray:
        token = self.peek()
        if token == "not":
            self.take()
            return ~self.factor()
        if token == "within":
            self.take()
            return self._within()
        if token == "(":
            self.take()
            mask = self.expr()
            if self.take() != ")":
                raise SelectionError("missing closing parenthesis")
            return mask
        return self.primary()

    def _within(self) -> np.ndarray:
        """``within <dist> of <factor>``: distance selection over coords."""
        if self.coords is None:
            raise SelectionError(
                "'within' selections need a coordinate frame: pass coords="
            )
        try:
            cutoff = float(self.take())
        except ValueError:
            raise SelectionError("'within' expects a distance") from None
        if cutoff <= 0:
            raise SelectionError("'within' distance must be positive")
        if self.take() != "of":
            raise SelectionError("'within <dist> of <selection>' expected")
        reference = self.factor()
        if not reference.any():
            return np.zeros(self.topology.natoms, dtype=bool)
        pts = np.asarray(self.coords, dtype=np.float64)
        ref = pts[reference]
        c2 = cutoff * cutoff
        out = np.zeros(self.topology.natoms, dtype=bool)
        block = 1024
        for start in range(0, pts.shape[0], block):
            stop = min(start + block, pts.shape[0])
            delta = pts[start:stop, None, :] - ref[None, :, :]
            out[start:stop] = ((delta**2).sum(axis=2) < c2).any(axis=1)
        # VMD semantics: the reference atoms are within 0 of themselves.
        out |= reference
        return out

    def primary(self) -> np.ndarray:
        topo = self.topology
        token = self.take().lower()
        if token == "all":
            return np.ones(topo.natoms, dtype=bool)
        if token == "none":
            return np.zeros(topo.natoms, dtype=bool)
        if token in _CLASS_KEYWORDS:
            mask = np.zeros(topo.natoms, dtype=bool)
            for cls in _CLASS_KEYWORDS[token]:
                mask |= topo.class_mask(cls)
            return mask
        if token == "name":
            return np.isin(topo.names, self._words("name"))
        if token == "resname":
            return np.isin(
                topo.resnames, [w.upper() for w in self._words("resname")]
            )
        if token == "chain":
            return np.isin(topo.chains, self._words("chain"))
        if token == "resid":
            return self._ranged(topo.resids, "resid")
        if token == "index":
            return self._ranged(
                np.arange(topo.natoms, dtype=np.int64), "index"
            )
        raise SelectionError(f"unknown selection keyword {token!r}")

    def _words(self, field: str) -> List[str]:
        words: List[str] = []
        while self.peek() is not None and self.peek().lower() not in _RESERVED:
            words.append(self.take())
        if not words:
            raise SelectionError(f"{field!r} needs at least one value")
        return words

    def _ranged(self, values: np.ndarray, field: str) -> np.ndarray:
        mask = np.zeros(values.shape[0], dtype=bool)
        got_any = False
        while True:
            token = self.peek()
            if token is None or token.lower() in _RESERVED:
                break
            start = self._int(self.take(), field)
            if self.peek() == "to":
                self.take()
                end = self._int(self.take(), field)
                if end < start:
                    raise SelectionError(
                        f"{field} range {start} to {end} is backwards"
                    )
                mask |= (values >= start) & (values <= end)
            else:
                mask |= values == start
            got_any = True
        if not got_any:
            raise SelectionError(f"{field!r} needs at least one value")
        return mask

    @staticmethod
    def _int(token: str, field: str) -> int:
        try:
            return int(token)
        except ValueError:
            raise SelectionError(
                f"{field} expects integers, got {token!r}"
            ) from None


def select_mask(
    topology: Topology,
    expression: str,
    coords: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Evaluate a selection to a boolean mask over the topology's atoms.

    ``coords`` (one ``(natoms, 3)`` frame) is required only by distance
    selections (``within``).
    """
    if coords is not None:
        coords = np.asarray(coords)
        if coords.shape != (topology.natoms, 3):
            raise SelectionError(
                f"coords shape {coords.shape} != ({topology.natoms}, 3)"
            )
    parser = _Parser(_tokenize(expression), topology, coords=coords)
    mask = parser.expr()
    if parser.peek() is not None:
        raise SelectionError(
            f"trailing tokens in selection: {' '.join(parser.tokens[parser.pos:])!r}"
        )
    return mask


def select(
    topology: Topology,
    expression: str,
    coords: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Evaluate a selection to sorted atom indices."""
    return np.flatnonzero(select_mask(topology, expression, coords=coords))


def compile_selection(expression: str):
    """A reusable ``topology -> indices`` callable for one expression."""
    def _compiled(topology: Topology, coords=None) -> np.ndarray:
        return select(topology, expression, coords=coords)

    _compiled.expression = expression
    return _compiled
