"""A tiny software rasterizer: actual pictures out of the pipeline.

VMD's end product is an image on a screen.  This module orthographically
projects a frame's bond segments and draws them into a numpy canvas with
vectorized Bresenham stepping, then serializes to PGM/PPM (plain-text
netpbm -- viewable anywhere, dependency-free).  Depth is encoded as
brightness so the rendering reads as 3D.

It exists so the examples produce something a biologist would recognize,
and so the render phase has a genuinely image-shaped workload available.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.vmd.render import FrameGeometry

__all__ = ["rasterize", "to_pgm", "render_frame_image"]


def rasterize(
    geometry: FrameGeometry,
    width: int = 320,
    height: int = 240,
    axis: int = 2,
    samples_per_segment: int = 24,
) -> np.ndarray:
    """Draw bond segments into a ``(height, width)`` uint8 luminance canvas.

    ``axis`` is the projection direction (dropped coordinate); the
    remaining two become screen x/y.  Segment points are sampled uniformly
    and splatted -- vectorized over (segments x samples) at once.
    """
    if width < 2 or height < 2:
        raise TopologyError("canvas must be at least 2x2")
    if not 0 <= axis <= 2:
        raise TopologyError(f"projection axis {axis} outside 0..2")
    canvas = np.zeros((height, width), dtype=np.uint8)
    segments = geometry.segments
    if segments.shape[0] == 0:
        return canvas

    keep = [i for i in range(3) if i != axis]
    lo = geometry.bounds_min[keep].astype(np.float64)
    hi = geometry.bounds_max[keep].astype(np.float64)
    span = np.maximum(hi - lo, 1e-9)

    # (nseg, nsample, 3): uniform samples along every segment at once.
    t = np.linspace(0.0, 1.0, samples_per_segment)[None, :, None]
    points = segments[:, 0:1, :] * (1.0 - t) + segments[:, 1:2, :] * t

    xy = (points[:, :, keep] - lo) / span  # normalized 0..1
    px = np.clip((xy[:, :, 0] * (width - 1)).round().astype(int), 0, width - 1)
    py = np.clip((xy[:, :, 1] * (height - 1)).round().astype(int), 0, height - 1)
    # Depth -> brightness (closer = brighter).
    depth = points[:, :, axis]
    d_lo, d_hi = float(depth.min()), float(depth.max())
    shade = (
        np.full_like(depth, 255.0)
        if d_hi - d_lo < 1e-9
        else 96.0 + 159.0 * (depth - d_lo) / (d_hi - d_lo)
    )
    flat = py.ravel() * width + px.ravel()
    np.maximum.at(canvas.reshape(-1), flat, shade.ravel().astype(np.uint8))
    return canvas


def to_pgm(canvas: np.ndarray) -> str:
    """Serialize a luminance canvas as plain-text PGM (netpbm P2)."""
    if canvas.ndim != 2:
        raise TopologyError("PGM needs a 2-D luminance canvas")
    height, width = canvas.shape
    rows = "\n".join(" ".join(str(int(v)) for v in row) for row in canvas)
    return f"P2\n{width} {height}\n255\n{rows}\n"


def render_frame_image(
    molecule,
    iframe: int = 0,
    width: int = 320,
    height: int = 240,
) -> Tuple[np.ndarray, str]:
    """Render one frame of a molecule to ``(canvas, pgm_text)``."""
    from repro.vmd.render import GeometryBuilder

    geometry = GeometryBuilder(molecule).render_frame(iframe)
    canvas = rasterize(geometry, width=width, height=height)
    return canvas, to_pgm(canvas)
