"""A VMD-like visualization front end.

Implements the data-processing procedure of paper Fig. 2: phase one loads
``.pdb`` structure + trajectory data into an array of frames (decompressing
and filtering as the source format requires); phase two renders frames into
3D geometry and replays them.  :class:`~repro.vmd.session.VMDSession`
mirrors the command-line interface the paper modifies (``mol new foo.pdb``,
``mol addfile /mnt/bar.xtc tag p``).
"""

from repro.vmd.molecule import Molecule
from repro.vmd.loader import LoadResult, PhaseTimer, TrajectoryLoader
from repro.vmd.render import FrameGeometry, GeometryBuilder, build_bonds
from repro.vmd.animation import Animator, PlaybackStats
from repro.vmd.console import CommandError, VMDConsole
from repro.vmd.raster import rasterize, render_frame_image, to_pgm
from repro.vmd.selection import SelectionError, compile_selection, select, select_mask
from repro.vmd.session import VMDSession

__all__ = [
    "Animator",
    "CommandError",
    "FrameGeometry",
    "VMDConsole",
    "GeometryBuilder",
    "LoadResult",
    "Molecule",
    "PhaseTimer",
    "PlaybackStats",
    "TrajectoryLoader",
    "VMDSession",
    "SelectionError",
    "build_bonds",
    "compile_selection",
    "rasterize",
    "render_frame_image",
    "select",
    "select_mask",
    "to_pgm",
]
