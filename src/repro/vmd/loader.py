"""Trajectory load paths with per-phase CPU timing.

The three paths of the paper's evaluation, executed for real:

* ``C`` -- load a compressed XTC: inflate everything, then filter the
  selection (decompression cannot be skipped; paper §1 issue (1));
* ``D`` -- load a raw (uncompressed) container: scan + filter only;
* ``ADA`` -- load a pre-filtered subset container: straight into frames.

:class:`PhaseTimer` measures real ``perf_counter`` seconds per phase; the
Fig. 8 CPU-burst profile is its output.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.decompressor import Decompressor
from repro.formats.trajectory import Trajectory

__all__ = ["PhaseTimer", "LoadResult", "TrajectoryLoader"]


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[name] = self.seconds.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def total(self) -> float:
        return sum(self.seconds.values())

    def fraction(self, name: str) -> float:
        total = self.total()
        return self.seconds.get(name, 0.0) / total if total else 0.0


@dataclass
class LoadResult:
    """A loaded frame array plus the accounting the paper reports."""

    trajectory: Trajectory
    source_nbytes: int  # bytes read from storage
    decompressed_nbytes: int  # bytes materialized by inflation (0 for raw)
    timer: PhaseTimer = field(default_factory=PhaseTimer)
    #: Which precision tier served the bytes ("full"/"lod") and, for the
    #: coarse tier, the advertised per-coordinate error bound.
    tier: str = "full"
    max_error: Optional[float] = None

    @property
    def loaded_nbytes(self) -> int:
        """Bytes held by the final frame array."""
        return self.trajectory.nbytes

    @property
    def peak_memory_nbytes(self) -> int:
        """First-order peak: source buffer + inflated raw + frame array.

        For a C load all three coexist at the filter step; for D loads the
        inflated term is zero; for ADA subset loads source == frames.
        """
        return self.source_nbytes + self.decompressed_nbytes + self.loaded_nbytes


class TrajectoryLoader:
    """Executes the three load paths on in-memory blobs.

    ``workers`` enables parallel group-of-frames decompression on the C
    path (bit-identical to serial decode; ``0`` means one per CPU);
    ``codec_backend`` picks the worker flavour
    (``"thread"``/``"process"``/``"auto"``, see
    :mod:`repro.formats.codecexec`).
    """

    def __init__(
        self, workers: Optional[int] = None, codec_backend: str = "auto"
    ) -> None:
        self.decompressor = Decompressor(
            workers=workers, codec_backend=codec_backend
        )

    def load_compressed(
        self, blob: bytes, selection: Optional[np.ndarray] = None
    ) -> LoadResult:
        """C path: inflate the whole stream, then filter the selection."""
        timer = PhaseTimer()
        with timer.phase("decompress"):
            full = self.decompressor.decompress(blob)
        if selection is not None:
            with timer.phase("filter"):
                traj = full.select_atoms(selection)
        else:
            traj = full
        return LoadResult(
            trajectory=traj,
            source_nbytes=len(blob),
            decompressed_nbytes=full.nbytes,
            timer=timer,
        )

    def load_raw(
        self, blob: bytes, selection: Optional[np.ndarray] = None
    ) -> LoadResult:
        """D path: parse the raw container, then filter the selection."""
        timer = PhaseTimer()
        with timer.phase("parse"):
            full = self.decompressor.decompress(blob)
        if selection is not None:
            with timer.phase("filter"):
                traj = full.select_atoms(selection)
        else:
            traj = full
        return LoadResult(
            trajectory=traj,
            source_nbytes=len(blob),
            decompressed_nbytes=0,
            timer=timer,
        )

    def load_subset(self, blob: bytes) -> LoadResult:
        """ADA path: the blob already *is* the active subset.

        Subsets are normally raw containers (parse only); an ADA configured
        with ``subset_format='xtc'`` ships compressed subsets, and the
        inflation cost then shows up here -- the design-choice ablation.
        """
        timer = PhaseTimer()
        compressed = self.decompressor.is_compressed(blob)
        with timer.phase("decompress" if compressed else "parse"):
            traj = self.decompressor.decompress(blob)
        return LoadResult(
            trajectory=traj,
            source_nbytes=len(blob),
            decompressed_nbytes=traj.nbytes if compressed else 0,
            timer=timer,
        )
