"""Windowed streaming access to compressed trajectories.

Paper §2.1: on a memory-limited node, "recently retrieved frames should be
evacuated from the limited memory to make room for subsequent phases of
frames".  :class:`StreamingTrajectory` does exactly that over a compressed
XTC stream: frames decode window-by-window through
:func:`~repro.formats.xtc.decode_frame_range` (keyframe-anchored partial
decode), with an LRU of decoded windows bounding residency.  Sequential
playback decodes each window once; rocking playback with a too-small
budget thrashes -- reproducing the paper's "low data hit rate under random
frame accesses".

With ``prefetch=True`` the stream overlaps decode with playback: once the
window access pattern is confirmed sequential (or strided -- skip-frame
playback), the *next* window decodes on a background worker while the
caller consumes the current one.  Speculation is watermark-guarded -- it
never evicts a demand window (``resident + pending < max_windows``) and
stands down when an external ``pressure_fn`` reports a loaded cache.
Prefetched windows are bit-identical to demand decodes
(:func:`decode_frame_range` is deterministic), so playback output is
unchanged; only the stall time moves.

With ``lod_bytes`` the stream additionally carries ADA's coarse
low-precision sibling (the ``lod:`` tier): set ``precision`` to ``"lod"``
to scrub through ~4x-cheaper frames, or ``"auto"`` to degrade to the LOD
tier only while ``pressure_fn`` reports a loaded cache -- the same
watermark that stands prefetch down.  Decoded windows cache per tier, so
a coarse window can never satisfy (or evict into) a full-precision hit,
and :attr:`lod_max_error` advertises the per-coordinate bound the coarse
frames honour.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, Optional, Tuple

from repro.core.lod import validate_precision
from repro.errors import CodecError
from repro.formats.codecexec import resolve_backend
from repro.formats.trajectory import BYTES_PER_COORD, Frame, Trajectory
from repro.formats.xtc import FrameIndex, decode_frame_range

__all__ = ["StreamingTrajectory"]


class StreamingTrajectory:
    """Frame access over compressed bytes with bounded decoded residency.

    The frame headers are scanned exactly once, at construction, into a
    :class:`FrameIndex`; every window decode then seeks straight to its
    keyframe anchor, so playback costs O(window) per window instead of
    O(file).

    ``prefetch`` enables adaptive window readahead (see module docstring);
    ``pressure_fn`` optionally reports external memory pressure in
    ``[0, 1]`` -- speculation is suppressed at or above
    ``pressure_watermark``.  ``workers``/``codec_backend`` fan each
    window's groups of frames out across a codec pool (see
    :func:`~repro.formats.xtc.decode_frame_range`) -- bit-identical to
    serial window decodes.

    ``lod_bytes`` optionally attaches the coarse LOD sibling stream;
    :attr:`precision` (``"full"``/``"lod"``/``"auto"``, mutable at any
    point of playback) then picks the tier each ``frame()`` call decodes
    from.  ``lod_max_error`` advertises the coarse tier's per-coordinate
    error bound (ADA's :meth:`~repro.core.middleware.ADA.lod_bound`).
    """

    def __init__(
        self,
        xtc_bytes: bytes,
        window_frames: int = 32,
        max_windows: int = 4,
        index: Optional[FrameIndex] = None,
        prefetch: bool = False,
        pressure_fn: Optional[Callable[[], float]] = None,
        pressure_watermark: float = 0.85,
        workers: Optional[int] = None,
        codec_backend: str = "auto",
        lod_bytes: Optional[bytes] = None,
        lod_max_error: Optional[float] = None,
        precision: str = "full",
    ):
        if window_frames < 1 or max_windows < 1:
            raise CodecError("window_frames and max_windows must be >= 1")
        resolve_backend(codec_backend)  # validate eagerly
        self.workers = workers
        self.codec_backend = codec_backend
        self._data = xtc_bytes
        self.index = index if index is not None else FrameIndex.build(xtc_bytes)
        self._nframes = self.index.nframes
        self._natoms = self.index.natoms
        self.window_frames = int(window_frames)
        self.max_windows = int(max_windows)
        # Keyed (tier, window_id): the coarse tier's windows are distinct
        # cache entries, never aliased with full-precision ones.
        self._windows: "OrderedDict[Tuple[str, int], Trajectory]" = (
            OrderedDict()
        )
        self.window_decodes = 0
        self.window_hits = 0
        # -- LOD tier ------------------------------------------------------
        self._lod_data = lod_bytes
        self._lod_index: Optional[FrameIndex] = None  # built on first use
        self.lod_max_error = lod_max_error
        self.precision = precision
        self.last_tier: Optional[str] = None
        self.lod_frames_served = 0
        # -- adaptive prefetch state ---------------------------------------
        self.prefetch = bool(prefetch)
        self.pressure_fn = pressure_fn
        self.pressure_watermark = float(pressure_watermark)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pending: Dict[Tuple[str, int], "Future[Trajectory]"] = {}
        self._speculative: set = set()  # resident but never demanded yet
        self._last_window: Optional[int] = None
        self._stride: Optional[int] = None
        self._confirmed = False
        self.prefetch_issued = 0
        self.prefetch_hits = 0
        self.prefetch_wasted = 0
        self.prefetch_suppressed = 0

    @property
    def nframes(self) -> int:
        return self._nframes

    @property
    def natoms(self) -> int:
        return self._natoms

    @property
    def precision(self) -> str:
        """Requested tier policy: ``"full"``, ``"lod"``, or ``"auto"``."""
        return self._precision

    @precision.setter
    def precision(self, value: str) -> None:
        value = validate_precision(value)
        if value == "lod" and self._lod_data is None:
            raise CodecError(
                "precision='lod' needs an attached LOD stream (lod_bytes)"
            )
        self._precision = value

    @property
    def has_lod(self) -> bool:
        return self._lod_data is not None

    @property
    def resident_nbytes(self) -> int:
        """Decoded bytes currently held (the memory the paper budgets)."""
        return sum(w.nbytes for w in self._windows.values())

    @property
    def max_resident_nbytes(self) -> int:
        """Upper bound on decoded residency implied by the configuration."""
        return self.max_windows * self.window_frames * self._natoms * BYTES_PER_COORD

    def frame(self, index: int) -> Frame:
        """Fetch one frame, decoding (or LRU-hitting) its window.

        The tier the frame decodes from is resolved per call (see
        :meth:`tier`), so flipping :attr:`precision` mid-playback takes
        effect on the very next frame.
        """
        if not 0 <= index < self._nframes:
            raise CodecError(f"frame {index} outside [0, {self._nframes})")
        tier = self.tier()
        window_id = index // self.window_frames
        key = (tier, window_id)
        if self._pending:
            self._drain_pending()
        window = self._windows.get(key)
        if window is not None:
            self.window_hits += 1
            self._windows.move_to_end(key)
            if key in self._speculative:
                # First demand touch of a prefetched window: useful work.
                self._speculative.discard(key)
                self.prefetch_hits += 1
        else:
            future = self._pending.pop(key, None)
            if future is not None:
                # In flight: wait out the remaining decode (the overlap
                # already absorbed the rest) and count it a useful hit.
                window = future.result()
                self._speculative.discard(key)
                self.window_hits += 1
                self.prefetch_hits += 1
            else:
                window = self._decode_window(key)
                self.window_decodes += 1
            self._install(key, window)
        self.last_tier = tier
        if tier == "lod":
            self.lod_frames_served += 1
        if self.prefetch:
            self._observe(tier, window_id)
        return window.frame(index - window_id * self.window_frames)

    def tier(self) -> str:
        """The tier the next ``frame()`` call would decode from.

        ``"auto"`` degrades to the coarse tier exactly while
        ``pressure_fn`` sits at or above ``pressure_watermark`` -- the
        same signal that stands prefetch down: under memory pressure the
        stream first stops speculating, then (if asked to) serves cheap
        frames instead of exact ones.
        """
        if self._precision == "full" or self._lod_data is None:
            return "full"
        if self._precision == "lod":
            return "lod"
        if (
            self.pressure_fn is not None
            and self.pressure_fn() >= self.pressure_watermark
        ):
            return "lod"
        return "full"

    def close(self) -> None:
        """Drain the prefetch worker (idempotent; safe without prefetch)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._pending.clear()

    def hit_rate(self) -> float:
        total = self.window_hits + self.window_decodes
        return self.window_hits / total if total else 0.0

    # -- internals ----------------------------------------------------------

    def _lod_frame_index(self) -> FrameIndex:
        """The coarse stream's (lazily built) frame index."""
        if self._lod_index is None:
            index = FrameIndex.build(self._lod_data)
            if index.nframes != self._nframes:
                raise CodecError(
                    f"LOD stream has {index.nframes} frames; "
                    f"full stream has {self._nframes}"
                )
            self._lod_index = index
        return self._lod_index

    def _decode_window(self, key: Tuple[str, int]) -> Trajectory:
        tier, window_id = key
        start = window_id * self.window_frames
        stop = min(start + self.window_frames, self._nframes)
        if tier == "lod":
            data, index = self._lod_data, self._lod_frame_index()
        else:
            data, index = self._data, self.index
        return decode_frame_range(
            data,
            start,
            stop,
            index=index,
            workers=self.workers,
            backend=self.codec_backend,
        )

    def _install(self, key: Tuple[str, int], window: Trajectory) -> None:
        self._windows[key] = window
        while len(self._windows) > self.max_windows:
            evicted, _ = self._windows.popitem(last=False)
            if evicted in self._speculative:
                self._speculative.discard(evicted)
                self.prefetch_wasted += 1

    def _observe(self, tier: str, window_id: int) -> None:
        """Train the stride detector; maybe launch the next window.

        The stride is a property of the *access pattern*, so it trains on
        window ids regardless of tier; the speculative decode itself runs
        in whatever tier the triggering demand fetch used.
        """
        if self._last_window is not None and window_id != self._last_window:
            stride = window_id - self._last_window
            if stride == self._stride:
                self._confirmed = True
            else:
                self._confirmed = False
                self._stride = stride
        if window_id != self._last_window:
            self._last_window = window_id
        if not self._confirmed:
            return
        target = window_id + self._stride
        if not 0 <= target * self.window_frames < self._nframes:
            return
        key = (tier, target)
        if key in self._windows or key in self._pending:
            return
        # Watermarks: never evict a demand window for speculation, and
        # stand down under external pressure.
        if len(self._windows) + len(self._pending) >= self.max_windows:
            self.prefetch_suppressed += 1
            return
        if (
            self.pressure_fn is not None
            and self.pressure_fn() >= self.pressure_watermark
        ):
            self.prefetch_suppressed += 1
            return
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="stream-prefetch"
            )
        self.prefetch_issued += 1
        self._pending[key] = self._executor.submit(self._decode_window, key)
        self._speculative.add(key)

    def _drain_pending(self) -> None:
        """Install any completed speculative decodes (opportunistic)."""
        done = [wid for wid, f in self._pending.items() if f.done()]
        for wid in done:
            future = self._pending.pop(wid)
            self._install(wid, future.result())
