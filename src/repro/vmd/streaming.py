"""Windowed streaming access to compressed trajectories.

Paper §2.1: on a memory-limited node, "recently retrieved frames should be
evacuated from the limited memory to make room for subsequent phases of
frames".  :class:`StreamingTrajectory` does exactly that over a compressed
XTC stream: frames decode window-by-window through
:func:`~repro.formats.xtc.decode_frame_range` (keyframe-anchored partial
decode), with an LRU of decoded windows bounding residency.  Sequential
playback decodes each window once; rocking playback with a too-small
budget thrashes -- reproducing the paper's "low data hit rate under random
frame accesses".
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import CodecError
from repro.formats.trajectory import BYTES_PER_COORD, Frame, Trajectory
from repro.formats.xtc import FrameIndex, decode_frame_range

__all__ = ["StreamingTrajectory"]


class StreamingTrajectory:
    """Frame access over compressed bytes with bounded decoded residency.

    The frame headers are scanned exactly once, at construction, into a
    :class:`FrameIndex`; every window decode then seeks straight to its
    keyframe anchor, so playback costs O(window) per window instead of
    O(file).
    """

    def __init__(
        self,
        xtc_bytes: bytes,
        window_frames: int = 32,
        max_windows: int = 4,
        index: Optional[FrameIndex] = None,
    ):
        if window_frames < 1 or max_windows < 1:
            raise CodecError("window_frames and max_windows must be >= 1")
        self._data = xtc_bytes
        self.index = index if index is not None else FrameIndex.build(xtc_bytes)
        self._nframes = self.index.nframes
        self._natoms = self.index.natoms
        self.window_frames = int(window_frames)
        self.max_windows = int(max_windows)
        self._windows: "OrderedDict[int, Trajectory]" = OrderedDict()
        self.window_decodes = 0
        self.window_hits = 0

    @property
    def nframes(self) -> int:
        return self._nframes

    @property
    def natoms(self) -> int:
        return self._natoms

    @property
    def resident_nbytes(self) -> int:
        """Decoded bytes currently held (the memory the paper budgets)."""
        return sum(w.nbytes for w in self._windows.values())

    @property
    def max_resident_nbytes(self) -> int:
        """Upper bound on decoded residency implied by the configuration."""
        return self.max_windows * self.window_frames * self._natoms * BYTES_PER_COORD

    def frame(self, index: int) -> Frame:
        """Fetch one frame, decoding (or LRU-hitting) its window."""
        if not 0 <= index < self._nframes:
            raise CodecError(f"frame {index} outside [0, {self._nframes})")
        window_id = index // self.window_frames
        window = self._windows.get(window_id)
        if window is not None:
            self.window_hits += 1
            self._windows.move_to_end(window_id)
        else:
            start = window_id * self.window_frames
            stop = min(start + self.window_frames, self._nframes)
            window = decode_frame_range(self._data, start, stop, index=self.index)
            self.window_decodes += 1
            self._windows[window_id] = window
            while len(self._windows) > self.max_windows:
                self._windows.popitem(last=False)
        return window.frame(index - window_id * self.window_frames)

    def hit_rate(self) -> float:
        total = self.window_hits + self.window_decodes
        return self.window_hits / total if total else 0.0
