"""GROMACS TRR-like full-precision trajectory format.

TRR is the lossless sibling of XTC: plain float32/float64 positions plus
optional velocities and forces behind a per-frame header.  MD engines
write TRR for exact restarts; its volume is >= raw, so an ADA deployment
sees it as another *target-application* format whose bulk belongs on the
inactive tier.

Layout here mirrors the spirit of the real format (magic 1993, per-frame
section sizes in the header) without the XDR padding minutiae.
"""

from __future__ import annotations

import struct
from typing import List, Optional

import numpy as np

from repro.errors import CodecError
from repro.formats.trajectory import Trajectory

__all__ = ["TRR_MAGIC", "encode_trr", "decode_trr", "trr_nbytes"]

TRR_MAGIC = 1993

# magic, natoms, step, time, has_velocities, reserved
_HEADER = struct.Struct("<iiq f i i")


def encode_trr(
    trajectory: Trajectory, velocities: Optional[np.ndarray] = None
) -> bytes:
    """Serialize a trajectory (optionally with velocities) to TRR bytes.

    ``velocities`` is ``(nframes, natoms, 3)`` float32 when given.
    """
    if velocities is not None:
        velocities = np.asarray(velocities, dtype="<f4")
        if velocities.shape != trajectory.coords.shape:
            raise CodecError(
                f"velocities shape {velocities.shape} != coords shape "
                f"{trajectory.coords.shape}"
            )
    chunks: List[bytes] = []
    coords = np.ascontiguousarray(trajectory.coords, dtype="<f4")
    for f in range(trajectory.nframes):
        chunks.append(
            _HEADER.pack(
                TRR_MAGIC,
                trajectory.natoms,
                int(trajectory.steps[f]),
                float(trajectory.times_ps[f]),
                1 if velocities is not None else 0,
                0,
            )
        )
        chunks.append(coords[f].tobytes())
        if velocities is not None:
            chunks.append(velocities[f].tobytes())
    return b"".join(chunks)


def decode_trr(data: bytes) -> "tuple[Trajectory, Optional[np.ndarray]]":
    """Parse TRR bytes into ``(trajectory, velocities-or-None)``."""
    coords: List[np.ndarray] = []
    vels: List[np.ndarray] = []
    steps: List[int] = []
    times: List[float] = []
    offset = 0
    has_vel = None
    n = len(data)
    while offset < n:
        if offset + _HEADER.size > n:
            raise CodecError("truncated TRR frame header")
        magic, natoms, step, time_ps, vel_flag, _ = _HEADER.unpack_from(
            data, offset
        )
        if magic != TRR_MAGIC:
            raise CodecError(f"bad TRR magic {magic} at offset {offset}")
        if natoms <= 0:
            raise CodecError(f"implausible TRR atom count {natoms}")
        if has_vel is None:
            has_vel = bool(vel_flag)
        elif has_vel != bool(vel_flag):
            raise CodecError("inconsistent velocity sections across frames")
        offset += _HEADER.size
        frame_bytes = natoms * 12
        sections = 2 if has_vel else 1
        if offset + sections * frame_bytes > n:
            raise CodecError("truncated TRR frame payload")
        coords.append(
            np.frombuffer(data, dtype="<f4", count=natoms * 3, offset=offset)
            .reshape(natoms, 3)
            .copy()
        )
        offset += frame_bytes
        if has_vel:
            vels.append(
                np.frombuffer(data, dtype="<f4", count=natoms * 3, offset=offset)
                .reshape(natoms, 3)
                .copy()
            )
            offset += frame_bytes
        steps.append(step)
        times.append(time_ps)
    if not coords:
        raise CodecError("empty TRR stream")
    trajectory = Trajectory(coords=np.stack(coords), steps=steps, times_ps=times)
    velocities = np.stack(vels) if has_vel else None
    return trajectory, velocities


def trr_nbytes(natoms: int, nframes: int, with_velocities: bool = False) -> int:
    """Exact serialized size for these dimensions."""
    per_frame = _HEADER.size + natoms * 12 * (2 if with_velocities else 1)
    return nframes * per_frame
