"""GROMACS TRR-like full-precision trajectory format.

TRR is the lossless sibling of XTC: plain float32/float64 positions plus
optional velocities and forces behind a per-frame header.  MD engines
write TRR for exact restarts; its volume is >= raw, so an ADA deployment
sees it as another *target-application* format whose bulk belongs on the
inactive tier.

Layout here mirrors the spirit of the real format (magic 1993, per-frame
section sizes in the header) without the XDR padding minutiae.
"""

from __future__ import annotations

import struct
from typing import List, Optional

import numpy as np

from repro.errors import CodecError
from repro.formats.trajectory import Trajectory

__all__ = [
    "TRR_MAGIC",
    "decode_trr",
    "decode_trr_range",
    "encode_trr",
    "trr_frame_count",
    "trr_nbytes",
]

TRR_MAGIC = 1993

# magic, natoms, step, time, has_velocities, reserved
_HEADER = struct.Struct("<iiq f i i")


def encode_trr(
    trajectory: Trajectory, velocities: Optional[np.ndarray] = None
) -> bytes:
    """Serialize a trajectory (optionally with velocities) to TRR bytes.

    ``velocities`` is ``(nframes, natoms, 3)`` float32 when given.
    """
    if velocities is not None:
        velocities = np.asarray(velocities, dtype="<f4")
        if velocities.shape != trajectory.coords.shape:
            raise CodecError(
                f"velocities shape {velocities.shape} != coords shape "
                f"{trajectory.coords.shape}"
            )
    chunks: List[bytes] = []
    coords = np.ascontiguousarray(trajectory.coords, dtype="<f4")
    for f in range(trajectory.nframes):
        chunks.append(
            _HEADER.pack(
                TRR_MAGIC,
                trajectory.natoms,
                int(trajectory.steps[f]),
                float(trajectory.times_ps[f]),
                1 if velocities is not None else 0,
                0,
            )
        )
        chunks.append(coords[f].tobytes())
        if velocities is not None:
            chunks.append(velocities[f].tobytes())
    return b"".join(chunks)


def decode_trr(data: bytes) -> "tuple[Trajectory, Optional[np.ndarray]]":
    """Parse TRR bytes into ``(trajectory, velocities-or-None)``."""
    coords: List[np.ndarray] = []
    vels: List[np.ndarray] = []
    steps: List[int] = []
    times: List[float] = []
    offset = 0
    has_vel = None
    n = len(data)
    while offset < n:
        if offset + _HEADER.size > n:
            raise CodecError("truncated TRR frame header")
        magic, natoms, step, time_ps, vel_flag, _ = _HEADER.unpack_from(
            data, offset
        )
        if magic != TRR_MAGIC:
            raise CodecError(f"bad TRR magic {magic} at offset {offset}")
        if natoms <= 0:
            raise CodecError(f"implausible TRR atom count {natoms}")
        if has_vel is None:
            has_vel = bool(vel_flag)
        elif has_vel != bool(vel_flag):
            raise CodecError("inconsistent velocity sections across frames")
        offset += _HEADER.size
        frame_bytes = natoms * 12
        sections = 2 if has_vel else 1
        if offset + sections * frame_bytes > n:
            raise CodecError("truncated TRR frame payload")
        coords.append(
            np.frombuffer(data, dtype="<f4", count=natoms * 3, offset=offset)
            .reshape(natoms, 3)
            .copy()
        )
        offset += frame_bytes
        if has_vel:
            vels.append(
                np.frombuffer(data, dtype="<f4", count=natoms * 3, offset=offset)
                .reshape(natoms, 3)
                .copy()
            )
            offset += frame_bytes
        steps.append(step)
        times.append(time_ps)
    if not coords:
        raise CodecError("empty TRR stream")
    trajectory = Trajectory(coords=np.stack(coords), steps=steps, times_ps=times)
    velocities = np.stack(vels) if has_vel else None
    return trajectory, velocities


def _trr_geometry(data: bytes) -> "tuple[int, bool, int]":
    """``(natoms, has_velocities, frame_size)`` from the first header.

    TRR frames are self-contained and fixed-size once the atom count and
    section layout are known, so one header read makes the whole stream
    randomly addressable -- the property the windowed-ingest path relies
    on to decode a frame range without inflating the rest.
    """
    if len(data) < _HEADER.size:
        raise CodecError("truncated TRR frame header")
    magic, natoms, _step, _time, vel_flag, _ = _HEADER.unpack_from(data, 0)
    if magic != TRR_MAGIC:
        raise CodecError(f"bad TRR magic {magic} at offset 0")
    if natoms <= 0:
        raise CodecError(f"implausible TRR atom count {natoms}")
    sections = 2 if vel_flag else 1
    frame_size = _HEADER.size + natoms * 12 * sections
    return natoms, bool(vel_flag), frame_size


def trr_frame_count(data: bytes) -> int:
    """Frames in a TRR stream from header arithmetic alone (no decode)."""
    _natoms, _has_vel, frame_size = _trr_geometry(data)
    if len(data) % frame_size:
        raise CodecError(
            f"TRR stream length {len(data)} is not a whole number of "
            f"{frame_size}-byte frames"
        )
    return len(data) // frame_size


def decode_trr_range(
    data: bytes, start: int, stop: int
) -> "tuple[Trajectory, Optional[np.ndarray]]":
    """Decode frames ``[start, stop)`` only (lazy windowed ingest).

    Seeks directly to ``start * frame_size`` and touches nothing outside
    the range; the concatenation of range decodes over a partition of
    ``[0, nframes)`` is bit-identical to :func:`decode_trr`.
    """
    natoms, has_vel, frame_size = _trr_geometry(data)
    nframes = trr_frame_count(data)
    if not 0 <= start < stop <= nframes:
        raise CodecError(
            f"frame range [{start}, {stop}) outside stream of {nframes}"
        )
    coords: List[np.ndarray] = []
    vels: List[np.ndarray] = []
    steps: List[int] = []
    times: List[float] = []
    frame_bytes = natoms * 12
    for f in range(start, stop):
        offset = f * frame_size
        magic, f_natoms, step, time_ps, vel_flag, _ = _HEADER.unpack_from(
            data, offset
        )
        if magic != TRR_MAGIC:
            raise CodecError(f"bad TRR magic {magic} at offset {offset}")
        if f_natoms != natoms or bool(vel_flag) != has_vel:
            raise CodecError("inconsistent TRR frame layout mid-stream")
        offset += _HEADER.size
        coords.append(
            np.frombuffer(data, dtype="<f4", count=natoms * 3, offset=offset)
            .reshape(natoms, 3)
            .copy()
        )
        if has_vel:
            vels.append(
                np.frombuffer(
                    data, dtype="<f4", count=natoms * 3,
                    offset=offset + frame_bytes,
                )
                .reshape(natoms, 3)
                .copy()
            )
        steps.append(step)
        times.append(time_ps)
    trajectory = Trajectory(coords=np.stack(coords), steps=steps, times_ps=times)
    velocities = np.stack(vels) if has_vel else None
    return trajectory, velocities


def trr_nbytes(natoms: int, nframes: int, with_velocities: bool = False) -> int:
    """Exact serialized size for these dimensions."""
    per_frame = _HEADER.size + natoms * 12 * (2 if with_velocities else 1)
    return nframes * per_frame
