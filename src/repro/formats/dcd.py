"""CHARMM/NAMD DCD trajectory format (binary, uncompressed).

VMD's other workhorse format.  DCD stores each frame as three Fortran
sequential records (all x, then all y, then all z, as float32), behind a
header record starting with the magic ``'CORD'``.  Being uncompressed, a
DCD is ~the raw volume -- loading one exercises the D path without any
inflation, which is exactly how the paper's "D-" scenarios were prepared.

This implementation follows the classic 84-byte header record layout
closely enough that sizes and the magic match real files.
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

from repro.errors import CodecError
from repro.formats.trajectory import Trajectory

__all__ = [
    "DCD_MAGIC",
    "dcd_frame_count",
    "dcd_nbytes",
    "decode_dcd",
    "decode_dcd_range",
    "encode_dcd",
]

DCD_MAGIC = b"CORD"
_TITLE = b"Created by repro (ADA reproduction)".ljust(80)


def _record(payload: bytes) -> bytes:
    """One Fortran sequential record: length, payload, length."""
    marker = struct.pack("<i", len(payload))
    return marker + payload + marker


def _read_record(data: bytes, offset: int) -> "tuple[bytes, int]":
    if offset + 4 > len(data):
        raise CodecError("truncated DCD record marker")
    (length,) = struct.unpack_from("<i", data, offset)
    end = offset + 4 + length
    if length < 0 or end + 4 > len(data):
        raise CodecError("truncated DCD record payload")
    (tail,) = struct.unpack_from("<i", data, end)
    if tail != length:
        raise CodecError(f"DCD record markers disagree ({length} vs {tail})")
    return data[offset + 4 : end], end + 4


def encode_dcd(trajectory: Trajectory) -> bytes:
    """Serialize a trajectory as a DCD byte stream."""
    nframes = trajectory.nframes
    natoms = trajectory.natoms
    icntrl = [0] * 20
    icntrl[0] = nframes  # NSET
    icntrl[1] = int(trajectory.steps[0])  # ISTART
    icntrl[2] = 1  # NSAVC
    icntrl[19] = 24  # CHARMM version stamp
    header = DCD_MAGIC + struct.pack("<20i", *icntrl)
    titles = struct.pack("<i", 1) + _TITLE
    natoms_rec = struct.pack("<i", natoms)

    chunks: List[bytes] = [
        _record(header),
        _record(titles),
        _record(natoms_rec),
    ]
    coords = np.ascontiguousarray(trajectory.coords, dtype="<f4")
    for f in range(nframes):
        for axis in range(3):
            chunks.append(_record(coords[f, :, axis].tobytes()))
    return b"".join(chunks)


def decode_dcd(data: bytes) -> Trajectory:
    """Parse a DCD byte stream back into a :class:`Trajectory`.

    Accepts a concatenation of DCD files over the same atom set (the shape
    of a multi-chunk PLFS subset) and splices them frame-wise.
    """
    parts: List[Trajectory] = []
    offset = 0
    while offset < len(data):
        part, offset = _decode_one_dcd(data, offset)
        parts.append(part)
    if not parts:
        raise CodecError("empty DCD stream")
    return parts[0] if len(parts) == 1 else Trajectory.concatenate(parts)


def _decode_one_dcd(data: bytes, start: int) -> "tuple[Trajectory, int]":
    header, offset = _read_record(data, start)
    if header[:4] != DCD_MAGIC:
        raise CodecError(f"bad DCD magic {header[:4]!r}")
    icntrl = struct.unpack_from("<20i", header, 4)
    nframes, istart = icntrl[0], icntrl[1]
    _titles, offset = _read_record(data, offset)
    natoms_rec, offset = _read_record(data, offset)
    (natoms,) = struct.unpack("<i", natoms_rec)
    if natoms <= 0 or nframes < 0:
        raise CodecError(f"implausible DCD dimensions ({nframes}x{natoms})")

    coords = np.empty((nframes, natoms, 3), dtype=np.float32)
    for f in range(nframes):
        for axis in range(3):
            payload, offset = _read_record(data, offset)
            if len(payload) != natoms * 4:
                raise CodecError(
                    f"DCD frame {f} axis {axis}: {len(payload)} bytes, "
                    f"expected {natoms * 4}"
                )
            coords[f, :, axis] = np.frombuffer(payload, dtype="<f4")
    steps = istart + np.arange(nframes, dtype=np.int64)
    return Trajectory(coords=coords, steps=steps), offset


def _scan_dcd(data: bytes) -> "List[tuple[int, int, int, int, int]]":
    """Light header scan: ``(coords_offset, nframes, natoms, istart,
    frame_bytes)`` per concatenated DCD segment.

    A segment's frames are fixed-size Fortran record triplets, so after
    the three header records the stream is randomly addressable -- the
    same property :func:`repro.formats.trr.decode_trr_range` exploits.
    The scan reads headers only; coordinate payloads stay untouched.
    """
    segments: List["tuple[int, int, int, int, int]"] = []
    offset = 0
    while offset < len(data):
        header, off = _read_record(data, offset)
        if header[:4] != DCD_MAGIC:
            raise CodecError(f"bad DCD magic {header[:4]!r}")
        icntrl = struct.unpack_from("<20i", header, 4)
        nframes, istart = icntrl[0], icntrl[1]
        _titles, off = _read_record(data, off)
        natoms_rec, off = _read_record(data, off)
        (natoms,) = struct.unpack("<i", natoms_rec)
        if natoms <= 0 or nframes < 0:
            raise CodecError(f"implausible DCD dimensions ({nframes}x{natoms})")
        frame_bytes = 3 * (8 + natoms * 4)
        end = off + nframes * frame_bytes
        if end > len(data):
            raise CodecError("truncated DCD coordinate records")
        segments.append((off, nframes, natoms, istart, frame_bytes))
        offset = end
    if not segments:
        raise CodecError("empty DCD stream")
    return segments


def dcd_frame_count(data: bytes) -> int:
    """Frames in a (possibly concatenated) DCD without touching payloads."""
    return sum(seg[1] for seg in _scan_dcd(data))


def decode_dcd_range(data: bytes, start: int, stop: int) -> Trajectory:
    """Decode frames ``[start, stop)`` of a (concatenated) DCD stream.

    Only the records inside the range are read and CRC-of-marker checked;
    the concatenation of range decodes over a partition of ``[0,
    nframes)`` is bit-identical to :func:`decode_dcd`.
    """
    segments = _scan_dcd(data)
    total = sum(seg[1] for seg in segments)
    if not 0 <= start < stop <= total:
        raise CodecError(
            f"frame range [{start}, {stop}) outside stream of {total}"
        )
    parts: List[Trajectory] = []
    base = 0  # first global frame index of the current segment
    for coords_offset, nframes, natoms, istart, frame_bytes in segments:
        lo = max(start, base)
        hi = min(stop, base + nframes)
        if lo < hi:
            coords = np.empty((hi - lo, natoms, 3), dtype=np.float32)
            for i, f in enumerate(range(lo - base, hi - base)):
                offset = coords_offset + f * frame_bytes
                for axis in range(3):
                    payload, offset = _read_record(data, offset)
                    if len(payload) != natoms * 4:
                        raise CodecError(
                            f"DCD frame {f} axis {axis}: {len(payload)} "
                            f"bytes, expected {natoms * 4}"
                        )
                    coords[i, :, axis] = np.frombuffer(payload, dtype="<f4")
            steps = istart + np.arange(lo - base, hi - base, dtype=np.int64)
            parts.append(Trajectory(coords=coords, steps=steps))
        base += nframes
    return parts[0] if len(parts) == 1 else Trajectory.concatenate(parts)


def dcd_nbytes(natoms: int, nframes: int) -> int:
    """Exact serialized size of a DCD with these dimensions."""
    header = 8 + 84
    titles = 8 + 4 + 80
    natoms_rec = 8 + 4
    per_frame = 3 * (8 + natoms * 4)
    return header + titles + natoms_rec + nframes * per_frame
