"""Codec execution layer: persistent worker pools + shared-memory buffers.

The XTC-like codec fans independent groups of frames (GOFs) out to
workers.  Threads were the original backend, but the per-frame Python
driver holds the GIL for most of a GOF's wall time, so thread fan-out
bought ~1.0x (the ``BENCH_codec.json`` regression this module exists to
fix).  Two backends now live behind one :class:`CodecPool` interface:

* ``thread`` -- a :class:`~concurrent.futures.ThreadPoolExecutor`.  Zero
  marshalling cost; scales only as far as the kernels release the GIL.
* ``process`` -- a persistent :class:`~concurrent.futures.ProcessPoolExecutor`
  fed through :mod:`multiprocessing.shared_memory` frame buffers.  The
  parent creates one segment per call; workers attach by name and fill
  **disjoint slices** of the shared coordinate array (decode) or read
  disjoint frame runs out of it (encode).  On decode the compressed runs
  ride in the same segment after the coordinate region, so the only
  pickled payloads are small argument tuples.  Decode results return
  zero-copy: the caller receives an ndarray view over the segment and
  the mapping lives exactly as long as that array.

Shared-memory ownership rules (enforced here, relied on by tests):

1. the parent creates and **unlinks** every segment -- on the success path
   immediately after the tasks drain (the mapping stays valid until the
   last view drops), on every failure path before the exception leaves
   this module;
2. workers attach by name and close their mapping before returning --
   including when the decode raises, which is why worker errors are
   re-raised as fresh :class:`CodecError` instances carrying no traceback
   frames that could pin buffer views.  Process pools are pinned to the
   ``fork`` start method where available, so workers share the parent's
   ``resource_tracker`` and registration stays single-owner; on
   spawn-only platforms workers deregister their attach (3.9-3.12 track
   every attach, and a spawned child's own tracker would unlink early);
3. a crashed worker (``BrokenProcessPool``) triggers exactly one pool
   respawn + batch retry -- codec tasks are idempotent (decode rewrites
   the same slices; encode is pure) -- then fails typed.

Pool lifecycle is observable through the ambient
:class:`~repro.obs.metrics.MetricsRegistry`: spawns/spawn seconds,
restarts after crashes, closes, tasks, task failures, and shared-memory
segments/bytes/active count.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CodecError
from repro.obs.metrics import TIME_BUCKETS, MetricsRegistry, global_registry

__all__ = [
    "BACKENDS",
    "CodecPool",
    "close_shared_pools",
    "partition_weighted",
    "probe_decode_overhead",
    "probe_encode_overhead",
    "process_decode",
    "process_encode",
    "resolve_backend",
    "shared_pool",
]

#: Accepted values of every ``codec_backend`` knob.
BACKENDS = ("auto", "thread", "process")

#: Fork start method where the platform offers it: workers inherit the
#: parent's resource tracker (single-owner segment registration) and the
#: parent's imported modules (no per-worker re-import cost).  ``None``
#: falls back to the platform default (spawn) -- see `_attach_segment`.
_FORK_CTX = (
    multiprocessing.get_context("fork")
    if "fork" in multiprocessing.get_all_start_methods()
    else None
)


def resolve_backend(backend: str = "auto") -> str:
    """Resolve a ``codec_backend`` knob to ``'thread'`` or ``'process'``.

    ``'auto'`` picks processes only where they can pay off: with a single
    CPU the fork/IPC overhead buys nothing, so threads win by default.
    """
    if backend not in BACKENDS:
        raise CodecError(
            f"unknown codec backend {backend!r}; have {'/'.join(BACKENDS)}"
        )
    if backend != "auto":
        return backend
    return "process" if (os.cpu_count() or 1) > 1 else "thread"


def partition_weighted(
    weights: Sequence[float], parts: int
) -> List[Tuple[int, int]]:
    """Split ``range(len(weights))`` into <= ``parts`` contiguous chunks.

    Greedy balanced partition: each chunk takes items toward the remaining
    average, stopping *before* an item whose overshoot would exceed the
    current undershoot (so one giant item never drags its neighbours into
    the same chunk), always taking at least one and leaving at least one
    per remaining chunk.  Contiguity is what lets decode chunks map to
    contiguous frame rows (one shared-memory slice each) and encode chunks
    concatenate in stream order.  Deterministic in the weights alone.
    """
    n = len(weights)
    if n == 0:
        return []
    parts = max(1, min(int(parts), n))
    total = float(sum(weights))
    if total <= 0:
        weights = [1.0] * n
        total = float(n)
    spans: List[Tuple[int, int]] = []
    start = 0
    remaining = total
    for k in range(parts):
        left = parts - k
        if left == 1:
            spans.append((start, n))
            break
        target = remaining / left
        stop = start
        acc = 0.0
        while stop < n - (left - 1):
            w = float(weights[stop])
            if stop > start and acc + w > target and (
                (acc + w) - target > target - acc
            ):
                break
            acc += w
            stop += 1
            if acc >= target:
                break
        spans.append((start, stop))
        remaining -= acc
        start = stop
    return spans


class CodecPool:
    """A persistent codec worker pool (thread- or process-backed).

    Lazily spawns on first use, so constructing one costs nothing until a
    parallel call actually happens.  ``run`` submits one task per argument
    tuple and returns results in submission order; a crashed worker
    process restarts the pool and retries the batch once (codec tasks are
    idempotent) before failing typed.  ``close`` is idempotent, and a
    closed pool respawns transparently on the next ``run`` -- lifecycle
    is visible in the ``codec_pool_*`` metrics either way.
    """

    def __init__(
        self,
        workers: int,
        backend: str = "thread",
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.workers = max(1, int(workers))
        self._backend = resolve_backend(backend)
        self.metrics = metrics if metrics is not None else global_registry()
        self._executor = None
        self._lock = threading.RLock()

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def closed(self) -> bool:
        return self._executor is None

    def _counter(self, name: str):
        return self.metrics.counter(name, backend=self._backend)

    def _ensure(self):
        with self._lock:
            if self._executor is None:
                start = time.perf_counter()
                if self._backend == "process":
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers, mp_context=_FORK_CTX
                    )
                else:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.workers, thread_name_prefix="codec"
                    )
                self._counter("codec_pool_spawns_total").inc()
                self.metrics.histogram(
                    "codec_pool_spawn_seconds",
                    bounds=TIME_BUCKETS,
                    backend=self._backend,
                ).observe(time.perf_counter() - start)
            return self._executor

    def _restart(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            self._counter("codec_pool_restarts_total").inc()

    def run(self, fn: Callable, tasks: Sequence[tuple]) -> list:
        """Run ``fn(*args)`` for every args tuple; results in task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        last_exc: Optional[BaseException] = None
        for attempt in (0, 1):
            executor = self._ensure()
            try:
                futures = [executor.submit(fn, *args) for args in tasks]
            except (BrokenProcessPool, RuntimeError) as exc:
                # Pool already broken/shut down before submission finished.
                last_exc = exc
                self._restart()
                continue
            wait(futures)
            self._counter("codec_tasks_total").inc(len(tasks))
            broken = next(
                (
                    f.exception()
                    for f in futures
                    if isinstance(f.exception(), BrokenProcessPool)
                ),
                None,
            )
            if broken is not None:
                self._counter("codec_task_failures_total").inc()
                last_exc = broken
                if attempt == 0:
                    self._restart()
                    continue
                break
            results = []
            for future in futures:
                exc = future.exception()
                if exc is not None:
                    self._counter("codec_task_failures_total").inc()
                    raise exc
                results.append(future.result())
            return results
        raise CodecError(
            f"codec worker process died (pool restarted and retried once): "
            f"{last_exc}"
        ) from last_exc

    def close(self) -> None:
        """Shut the pool down (idempotent; it respawns on next use)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
                self._counter("codec_pool_closes_total").inc()

    def __enter__(self) -> "CodecPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- process-lifetime shared pools --------------------------------------------
#
# Bare ``decode_xtc``/``encode_xtc`` calls used to construct (and tear
# down) a transient ThreadPoolExecutor per call -- pool churn sat inside
# the measured region of every benchmark.  Callers without a long-lived
# owner (Decompressor / DataPreProcessor hold their own pools) now share
# one process-lifetime pool per backend.

_SHARED_LOCK = threading.Lock()
_SHARED: Dict[str, CodecPool] = {}


def shared_pool(
    backend: str,
    workers: int,
    metrics: Optional[MetricsRegistry] = None,
) -> CodecPool:
    """The process-lifetime pool for ``backend``, grown to >= ``workers``.

    Growing recreates the pool (executors cannot resize); shrinking never
    happens -- a larger pool serves smaller fan-outs fine, and task-count
    partitioning (not pool size) decides actual parallelism.
    """
    resolved = resolve_backend(backend)
    size = max(1, int(workers))
    with _SHARED_LOCK:
        pool = _SHARED.get(resolved)
        if pool is not None and pool.workers < size:
            pool.close()
            pool = None
        if pool is None:
            pool = CodecPool(size, backend=resolved, metrics=metrics)
            _SHARED[resolved] = pool
        return pool


def close_shared_pools() -> None:
    """Shut down every process-lifetime shared pool (idempotent)."""
    with _SHARED_LOCK:
        for pool in _SHARED.values():
            pool.close()
        _SHARED.clear()


atexit.register(close_shared_pools)


# -- shared-memory segments ---------------------------------------------------

_SHM_SEQ = itertools.count()


def _create_segment(nbytes: int, metrics: MetricsRegistry):
    name = f"repro-codec-{os.getpid()}-{next(_SHM_SEQ)}"
    try:
        seg = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, int(nbytes))
        )
    except FileExistsError:  # stale name from a recycled pid: let the OS pick
        seg = shared_memory.SharedMemory(create=True, size=max(1, int(nbytes)))
    metrics.counter("codec_shm_segments_total").inc()
    metrics.counter("codec_shm_bytes_total").inc(int(nbytes))
    metrics.gauge("codec_shm_active").inc()
    return seg


def _attach_segment(name: str):
    seg = shared_memory.SharedMemory(name=name)
    if _FORK_CTX is None:
        try:
            # The parent owns unlink.  A spawned child has its *own*
            # resource tracker, which would also unlink the segment at
            # child exit (Python 3.9-3.12 track every attach) -- deregister
            # it.  Forked children share the parent's tracker, where the
            # attach registration is an idempotent no-op and deregistering
            # would instead erase the parent's record.
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
    return seg


def _discard_segment(seg, metrics: MetricsRegistry) -> None:
    """Unlink + close a segment the parent no longer needs (failure paths)."""
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
    seg.close()
    metrics.gauge("codec_shm_active").dec()


def _bind_segment_lifetime(
    array: np.ndarray, seg, metrics: MetricsRegistry
) -> None:
    """Tie the (already unlinked) segment's mapping to ``array``'s lifetime."""

    def _release(segment=seg, registry=metrics):
        try:
            segment.close()
        except BufferError:  # pragma: no cover - views outlive the finalizer
            pass
        registry.gauge("codec_shm_active").dec()

    weakref.finalize(array, _release)


# -- worker task functions ----------------------------------------------------
#
# Module-level (picklable) and self-contained: each attaches the named
# segment, does its slice of work, drops every buffer view, and closes its
# mapping -- even on error, where the original exception is re-raised as a
# fresh CodecError so no foreign traceback frame can pin a view open.


def _decode_span_task(
    shm_name, shape, row0, keep_skip, blob_off, blob_nbytes, sel_bytes
):
    """Decode one GOF-aligned frame run into rows ``[row0, ...)`` of the
    shared float32 output array; returns the number of rows written.

    The compressed run itself also arrives through the segment (at byte
    ``blob_off``) rather than the task pickle: dispatch cost stays flat in
    the compressed size, one parent-side memcpy instead of a per-task
    pipe round trip.
    """
    from repro.formats import xtc

    seg = _attach_segment(shm_name)
    error: Optional[CodecError] = None
    count = 0
    out = None
    try:
        out = np.ndarray(shape, dtype=np.float32, buffer=seg.buf)
        # Private copy of this chunk's run: decode then touches the
        # segment only through its disjoint ``out`` rows.
        blob = bytes(seg.buf[blob_off : blob_off + blob_nbytes])
        infos = list(xtc.iter_frame_infos(blob))
        selection = (
            np.frombuffer(sel_bytes, dtype=np.int64)
            if sel_bytes is not None
            else None
        )
        count = len(infos) - keep_skip
        xtc._decode_run(
            blob,
            infos,
            out[row0 : row0 + count],
            keep_from=keep_skip,
            atom_indices=selection,
        )
    except Exception as exc:
        if isinstance(exc, CodecError):
            error = CodecError(str(exc))
        else:
            error = CodecError(f"worker decode failed: {exc!r}")
    out = None
    seg.close()
    if error is not None:
        raise error
    return count


def _encode_span_task(
    shm_name, shape, lo, hi, steps_b, times_b, box9, precision, level, spans
):
    """Encode frames ``[lo, hi)`` read from the shared coordinate array as
    the given (run-relative) GOF spans; returns the serialized bytes."""
    from repro.formats import xtc
    from repro.formats.trajectory import Trajectory

    seg = _attach_segment(shm_name)
    error: Optional[CodecError] = None
    result = b""
    coords = traj = None
    try:
        coords = np.ndarray(shape, dtype=np.float32, buffer=seg.buf)
        traj = Trajectory(
            coords=coords[lo:hi],
            steps=np.frombuffer(steps_b, dtype=np.int64),
            times_ps=np.frombuffer(times_b, dtype=np.float64),
        )
        result = b"".join(
            xtc._encode_gof(traj, s, e, precision, level, box9)
            for s, e in spans
        )
    except Exception as exc:
        if isinstance(exc, CodecError):
            error = CodecError(str(exc))
        else:
            error = CodecError(f"worker encode failed: {exc!r}")
    coords = traj = None
    seg.close()
    if error is not None:
        raise error
    return result


def _noop_decode_task(
    shm_name, shape, row0, keep_skip, blob_off, blob_nbytes, sel_bytes
):
    """Overhead probe twin of :func:`_decode_span_task`: same pickled
    payload, same attach/close, no kernel work."""
    seg = _attach_segment(shm_name)
    seg.close()
    return 0


def _noop_encode_task(
    shm_name, shape, lo, hi, steps_b, times_b, box9, precision, level, spans
):
    """Overhead probe twin of :func:`_encode_span_task`."""
    seg = _attach_segment(shm_name)
    seg.close()
    return b""


# -- parent-side orchestration ------------------------------------------------


def _stage_decode_segment(
    data, infos, gofs, selection, nworkers, shape, keep_from, metrics
):
    """Create the decode segment and build the task tuples.

    Segment layout is ``[float32 coords | compressed runs]``: the parent
    memcpys the covered byte range of ``data`` in once, and each task
    tuple carries only byte offsets into the blob region -- pickling cost
    stays flat in the compressed size.  Chunks are contiguous GOF spans
    balanced by compressed bytes (the dispatch weighting the projection
    model mirrors).
    """
    weights = [
        (infos[e - 1].offset + infos[e - 1].total_nbytes) - infos[s].offset
        for s, e in gofs
    ]
    sel_bytes = (
        None
        if selection is None
        else np.ascontiguousarray(selection, dtype=np.int64).tobytes()
    )
    chunks = []
    for clo, chi in partition_weighted(weights, nworkers):
        f_lo, f_hi = gofs[clo][0], gofs[chi - 1][1]
        b_lo = infos[f_lo].offset
        b_hi = infos[f_hi - 1].offset + infos[f_hi - 1].total_nbytes
        keep_skip = max(keep_from - f_lo, 0)
        row0 = max(f_lo, keep_from) - keep_from
        chunks.append((row0, keep_skip, b_lo, b_hi))
    base, end = chunks[0][2], chunks[-1][3]
    coords_nbytes = shape[0] * shape[1] * shape[2] * 4
    seg = _create_segment(coords_nbytes + (end - base), metrics)
    try:
        seg.buf[coords_nbytes : coords_nbytes + (end - base)] = memoryview(
            data
        )[base:end]
        tasks = [
            (
                seg.name,
                shape,
                row0,
                keep_skip,
                coords_nbytes + (b_lo - base),
                b_hi - b_lo,
                sel_bytes,
            )
            for row0, keep_skip, b_lo, b_hi in chunks
        ]
    except BaseException:
        _discard_segment(seg, metrics)
        raise
    return seg, tasks


def process_decode(
    data,
    infos,
    gofs,
    selection,
    pool: CodecPool,
    nworkers: int,
    keep_from: int = 0,
) -> np.ndarray:
    """Decode ``infos`` (keyframe-anchored, GOF spans ``gofs``) across the
    process pool into one shared coordinate array; returns it zero-copy.

    Frames before ``keep_from`` decode for prediction state only.  The
    returned float32 array is a view over the (already unlinked) segment;
    the mapping is released when the array is garbage collected.
    """
    metrics = pool.metrics
    nkept = len(infos) - keep_from
    natoms_kept = len(selection) if selection is not None else infos[0].natoms
    shape = (nkept, natoms_kept, 3)
    seg, tasks = _stage_decode_segment(
        data, infos, gofs, selection, nworkers, shape, keep_from, metrics
    )
    try:
        counts = pool.run(_decode_span_task, tasks)
        if sum(counts) != nkept:
            raise CodecError(
                f"parallel decode materialized {sum(counts)} frames, "
                f"expected {nkept}"
            )
    except BaseException:
        _discard_segment(seg, metrics)
        raise
    coords = np.ndarray(shape, dtype=np.float32, buffer=seg.buf)
    # Unlink now: the OS keeps the memory until the last mapping drops,
    # and the finalizer ties that mapping to ``coords``'s lifetime.
    seg.unlink()
    _bind_segment_lifetime(coords, seg, metrics)
    return coords


def _encode_tasks(trajectory, spans, box9, precision, level, nworkers, seg):
    weights = [e - s for s, e in spans]
    shape = None if seg is None else tuple(seg)
    tasks = []
    for clo, chi in partition_weighted(weights, nworkers):
        lo, hi = spans[clo][0], spans[chi - 1][1]
        rel = [(s - lo, e - lo) for s, e in spans[clo:chi]]
        tasks.append(
            (
                shape,
                lo,
                hi,
                trajectory.steps[lo:hi].astype(np.int64).tobytes(),
                trajectory.times_ps[lo:hi].astype(np.float64).tobytes(),
                box9,
                precision,
                level,
                rel,
            )
        )
    return tasks


def process_encode(
    trajectory,
    spans: Sequence[Tuple[int, int]],
    precision: float,
    level: int,
    box9: Tuple[float, ...],
    pool: CodecPool,
    nworkers: int,
) -> bytes:
    """Encode GOF ``spans`` of ``trajectory`` across the process pool.

    Coordinates are published once into a shared segment; workers read
    disjoint frame runs and return their serialized bytes, concatenated in
    stream order (bit-identical to a serial encode).
    """
    metrics = pool.metrics
    coords = np.ascontiguousarray(trajectory.coords, dtype=np.float32)
    seg = _create_segment(coords.nbytes, metrics)
    try:
        shared = np.ndarray(coords.shape, dtype=np.float32, buffer=seg.buf)
        np.copyto(shared, coords)
        shared = None
        tasks = [
            (seg.name,) + t
            for t in _encode_tasks(
                trajectory, spans, box9, precision, level, nworkers,
                coords.shape,
            )
        ]
        parts = pool.run(_encode_span_task, tasks)
        return b"".join(parts)
    finally:
        _discard_segment(seg, metrics)


# -- dispatch-overhead probes (used by bench-codec's projection model) --------


def probe_decode_overhead(
    data, infos, gofs, selection, pool: CodecPool, nworkers: int
) -> None:
    """One parallel-decode dispatch with the kernels stubbed out.

    Exercises everything *around* the decode work -- segment create, the
    parent-side memcpy of the compressed runs into the blob region, task
    pickling, pool round trip, worker attach/close, unlink -- so timing
    this call measures the per-dispatch overhead term of the
    critical-path projection.
    """
    metrics = pool.metrics
    natoms_kept = len(selection) if selection is not None else infos[0].natoms
    shape = (len(infos), natoms_kept, 3)
    seg, tasks = _stage_decode_segment(
        data, infos, gofs, selection, nworkers, shape, 0, metrics
    )
    try:
        pool.run(_noop_decode_task, tasks)
    finally:
        _discard_segment(seg, metrics)


def probe_encode_overhead(
    trajectory,
    spans: Sequence[Tuple[int, int]],
    precision: float,
    level: int,
    box9: Tuple[float, ...],
    pool: CodecPool,
    nworkers: int,
) -> None:
    """One parallel-encode dispatch with the kernels stubbed out (includes
    the parent-side copy of the coordinates into the shared segment)."""
    metrics = pool.metrics
    coords = np.ascontiguousarray(trajectory.coords, dtype=np.float32)
    seg = _create_segment(coords.nbytes, metrics)
    try:
        shared = np.ndarray(coords.shape, dtype=np.float32, buffer=seg.buf)
        np.copyto(shared, coords)
        shared = None
        tasks = [
            (seg.name,) + t
            for t in _encode_tasks(trajectory, spans, box9, precision, level,
                                   nworkers, coords.shape)
        ]
        pool.run(_noop_encode_task, tasks)
    finally:
        _discard_segment(seg, metrics)
