"""In-memory trajectory containers.

A :class:`Trajectory` stores frames as one stacked ``(nframes, natoms, 3)``
float32 array -- the same dense layout VMD builds after decompressing an
``.xtc`` file ("an array of frames", paper §2.1).  Keeping one contiguous
array rather than per-frame objects makes the filtering path (`select
protein atoms across all frames`) a single fancy-indexing operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import TopologyError

__all__ = ["Frame", "Trajectory", "BYTES_PER_COORD"]

#: float32 x/y/z per atom.
BYTES_PER_COORD = 12


@dataclass
class Frame:
    """A single simulation snapshot."""

    coords: np.ndarray  # (natoms, 3) float32, Angstroms
    step: int = 0
    time_ps: float = 0.0
    box: Optional[np.ndarray] = None  # (3, 3) float32 or None

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=np.float32)
        if self.coords.ndim != 2 or self.coords.shape[1] != 3:
            raise TopologyError(f"frame coords shape {self.coords.shape} invalid")
        if self.box is not None:
            self.box = np.asarray(self.box, dtype=np.float32).reshape(3, 3)

    @property
    def natoms(self) -> int:
        return int(self.coords.shape[0])

    @property
    def nbytes(self) -> int:
        """Raw (uncompressed) payload size of this frame."""
        return self.natoms * BYTES_PER_COORD

    def select(self, indices: np.ndarray) -> "Frame":
        """Atom subset of this frame (copy)."""
        return Frame(
            coords=self.coords[np.asarray(indices)],
            step=self.step,
            time_ps=self.time_ps,
            box=self.box,
        )


class Trajectory:
    """A stack of frames over a fixed atom set."""

    def __init__(
        self,
        coords: np.ndarray,
        steps: Optional[Sequence[int]] = None,
        times_ps: Optional[Sequence[float]] = None,
        box: Optional[np.ndarray] = None,
    ):
        self.coords = np.ascontiguousarray(coords, dtype=np.float32)
        if self.coords.ndim != 3 or self.coords.shape[2] != 3:
            raise TopologyError(
                f"trajectory coords shape {self.coords.shape}; want (F, N, 3)"
            )
        nframes = self.coords.shape[0]
        self.steps = (
            np.asarray(steps, dtype=np.int64)
            if steps is not None
            else np.arange(nframes, dtype=np.int64)
        )
        self.times_ps = (
            np.asarray(times_ps, dtype=np.float64)
            if times_ps is not None
            else self.steps.astype(np.float64)
        )
        if self.steps.shape[0] != nframes or self.times_ps.shape[0] != nframes:
            raise TopologyError("steps/times length mismatch with frame count")
        self.box = (
            np.asarray(box, dtype=np.float32).reshape(3, 3) if box is not None else None
        )

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_frames(cls, frames: Iterable[Frame]) -> "Trajectory":
        frames = list(frames)
        if not frames:
            raise TopologyError("cannot build a trajectory from zero frames")
        natoms = frames[0].natoms
        if any(f.natoms != natoms for f in frames):
            raise TopologyError("all frames must have the same atom count")
        return cls(
            coords=np.stack([f.coords for f in frames]),
            steps=[f.step for f in frames],
            times_ps=[f.time_ps for f in frames],
            box=frames[0].box,
        )

    @classmethod
    def concatenate(cls, parts: Iterable["Trajectory"]) -> "Trajectory":
        """Append trajectories frame-wise (same atom set)."""
        parts = list(parts)
        if not parts:
            raise TopologyError("cannot concatenate zero trajectories")
        natoms = parts[0].natoms
        if any(p.natoms != natoms for p in parts):
            raise TopologyError("atom-count mismatch in concatenate")
        return cls(
            coords=np.concatenate([p.coords for p in parts], axis=0),
            steps=np.concatenate([p.steps for p in parts]),
            times_ps=np.concatenate([p.times_ps for p in parts]),
            box=parts[0].box,
        )

    # -- queries ---------------------------------------------------------------

    @property
    def nframes(self) -> int:
        return int(self.coords.shape[0])

    @property
    def natoms(self) -> int:
        return int(self.coords.shape[1])

    @property
    def nbytes(self) -> int:
        """Raw payload bytes: frames x atoms x 12."""
        return self.nframes * self.natoms * BYTES_PER_COORD

    def __len__(self) -> int:
        return self.nframes

    def __iter__(self) -> Iterator[Frame]:
        for i in range(self.nframes):
            yield self.frame(i)

    def __repr__(self) -> str:
        return f"Trajectory(nframes={self.nframes}, natoms={self.natoms})"

    def frame(self, i: int) -> Frame:
        """Frame ``i`` as a view-backed :class:`Frame`."""
        return Frame(
            coords=self.coords[i],
            step=int(self.steps[i]),
            time_ps=float(self.times_ps[i]),
            box=self.box,
        )

    def select_atoms(self, indices: np.ndarray) -> "Trajectory":
        """Atom subset across every frame -- the core filtering primitive.

        One vectorized fancy-index: this is what a compute node does when it
        scans decompressed raw data for active (protein) atoms.
        """
        indices = np.asarray(indices)
        return Trajectory(
            coords=self.coords[:, indices, :],
            steps=self.steps,
            times_ps=self.times_ps,
            box=self.box,
        )

    def slice_frames(self, start: int, stop: int) -> "Trajectory":
        """Frame range ``[start, stop)`` (view-backed)."""
        return Trajectory(
            coords=self.coords[start:stop],
            steps=self.steps[start:stop],
            times_ps=self.times_ps[start:stop],
            box=self.box,
        )

    def allclose(self, other: "Trajectory", atol: float = 0.0) -> bool:
        """Coordinate equality within ``atol`` (for codec round-trip checks)."""
        return (
            self.coords.shape == other.coords.shape
            and bool(np.allclose(self.coords, other.coords, atol=atol, rtol=0.0))
            and bool(np.array_equal(self.steps, other.steps))
        )
