"""Molecular file formats and containers.

* :mod:`repro.formats.topology` -- atom/residue tables and classification
  (protein vs. MISC), the structural knowledge ADA derives from ``.pdb``
  files.
* :mod:`repro.formats.pdb` -- minimal fixed-column PDB reader/writer.
* :mod:`repro.formats.trajectory` -- in-memory frame/trajectory containers.
* :mod:`repro.formats.xtc` -- the XTC-like lossy compressed trajectory codec
  (quantization + delta coding + zlib), the format whose expensive
  decompression motivates the whole paper.
"""

from repro.formats.topology import (
    AtomClass,
    Topology,
    classify_residue,
)
from repro.formats.pdb import parse_pdb, write_pdb
from repro.formats.trajectory import Frame, Trajectory
from repro.formats.xtc import (
    XTC_MAGIC,
    FrameIndex,
    XtcFrameInfo,
    decode_frame_range,
    decode_xtc,
    encode_xtc,
    iter_frame_infos,
    raw_frame_nbytes,
    resolve_workers,
)

__all__ = [
    "AtomClass",
    "Frame",
    "FrameIndex",
    "Topology",
    "Trajectory",
    "XTC_MAGIC",
    "XtcFrameInfo",
    "classify_residue",
    "decode_frame_range",
    "decode_xtc",
    "encode_xtc",
    "iter_frame_infos",
    "parse_pdb",
    "raw_frame_nbytes",
    "resolve_workers",
    "write_pdb",
]
