"""Minimal fixed-column PDB reader/writer.

ADA's data pre-processor learns a dataset's structure by analyzing its
``.pdb`` file (paper §3.4 / Algorithm 1).  This module implements the subset
of the PDB format that carries that structure: ``ATOM``/``HETATM`` records
with names, residues, chains, and coordinates, plus ``TER``/``END``.

Column layout follows the wwPDB v3.3 specification for ATOM records::

    COLUMNS  FIELD          COLUMNS  FIELD
     1-6     record name    31-38    x (8.3f)
     7-11    serial         39-46    y (8.3f)
    13-16    atom name      47-54    z (8.3f)
    18-20    residue name   55-60    occupancy
    22       chain id       61-66    temp factor
    23-26    residue seq    77-78    element
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.formats.topology import AtomClass, Topology, classify_residue

__all__ = ["parse_pdb", "write_pdb"]

_RECORD_ATOM = "ATOM"
_RECORD_HETATM = "HETATM"


def write_pdb(topology: Topology, coords: Optional[np.ndarray] = None) -> str:
    """Serialize a topology (and optional coordinates) to PDB text.

    ``coords`` is ``(natoms, 3)`` in Angstroms; zeros are written when absent.
    Atom serials wrap at 99,999 as real PDB files do.
    """
    n = topology.natoms
    if coords is None:
        coords = np.zeros((n, 3), dtype=np.float32)
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape != (n, 3):
        raise TopologyError(f"coords shape {coords.shape} != ({n}, 3)")

    lines = []
    is_het = topology.classes != int(AtomClass.PROTEIN)
    for i in range(n):
        record = _RECORD_HETATM if is_het[i] else _RECORD_ATOM
        serial = (i % 99999) + 1
        name = topology.names[i]
        # PDB convention: names of <4 chars start in column 14.
        name_field = f" {name:<3s}" if len(name) < 4 else f"{name:<4s}"
        lines.append(
            f"{record:<6s}{serial:>5d} {name_field:<4.4s} "
            f"{topology.resnames[i]:<4.4s}"
            f"{topology.chains[i]:<1.1s}"
            f"{int(topology.resids[i]) % 10000:>4d}    "
            f"{coords[i, 0]:8.3f}{coords[i, 1]:8.3f}{coords[i, 2]:8.3f}"
            f"{1.00:6.2f}{0.00:6.2f}          "
            f"{topology.elements[i]:>2.2s}"
        )
    lines.append("END")
    return "\n".join(lines) + "\n"


def parse_pdb(text: str) -> Tuple[Topology, np.ndarray]:
    """Parse PDB text into ``(Topology, coords)``.

    Only ``ATOM``/``HETATM`` records are consumed; for multi-model files
    parsing stops at the first ``ENDMDL`` (the first conformation defines
    the structure -- use :func:`parse_pdb_models` for the whole ensemble).
    Raises :class:`TopologyError` on malformed records or if no atoms are
    found.
    """
    names, resnames, resids, chains, elements = [], [], [], [], []
    xyz = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        rec = line[:6].strip()
        if rec == "ENDMDL" and names:
            break
        if rec not in (_RECORD_ATOM, _RECORD_HETATM):
            continue
        if len(line) < 54:
            raise TopologyError(f"PDB line {lineno} too short for coordinates")
        try:
            names.append(line[12:16].strip())
            resnames.append(line[17:21].strip())
            chains.append(line[21:22].strip() or "A")
            resids.append(int(line[22:26]))
            xyz.append(
                (float(line[30:38]), float(line[38:46]), float(line[46:54]))
            )
        except ValueError as exc:
            raise TopologyError(f"malformed PDB line {lineno}: {exc}") from exc
        element = line[76:78].strip() if len(line) >= 78 else ""
        elements.append(element or None)
    if not names:
        raise TopologyError("no ATOM/HETATM records found")
    if any(e is None for e in elements):
        elements = None  # let Topology guess all of them uniformly
    topo = Topology(
        names=names,
        resnames=resnames,
        resids=resids,
        chains=chains,
        elements=elements,
    )
    return topo, np.asarray(xyz, dtype=np.float32)


def write_pdb_models(topology: Topology, trajectory) -> str:
    """Serialize a whole trajectory as a multi-model PDB (NMR-style).

    Each frame becomes one ``MODEL``/``ENDMDL`` block -- VMD's other way
    of carrying several conformations in one file.
    """
    if trajectory.natoms != topology.natoms:
        raise TopologyError(
            f"trajectory carries {trajectory.natoms} atoms, topology has "
            f"{topology.natoms}"
        )
    blocks = []
    for i in range(trajectory.nframes):
        body = write_pdb(topology, trajectory.coords[i])
        body = body.rsplit("END", 1)[0].rstrip("\n")  # strip the final END
        blocks.append(f"MODEL     {i + 1:>4d}\n{body}\nENDMDL")
    return "\n".join(blocks) + "\nEND\n"


def parse_pdb_models(text: str):
    """Parse a multi-model PDB into ``(Topology, Trajectory)``.

    All models must carry the same atoms; single-model files yield a
    one-frame trajectory.
    """
    from repro.formats.trajectory import Trajectory

    blocks = []
    current: list = []
    saw_model = False
    for line in text.splitlines():
        rec = line[:6].strip()
        if rec == "MODEL":
            saw_model = True
            current = []
        elif rec == "ENDMDL":
            blocks.append("\n".join(current))
            current = []
        elif rec in (_RECORD_ATOM, _RECORD_HETATM):
            current.append(line)
    if not saw_model:
        topo, coords = parse_pdb(text)
        return topo, Trajectory(coords=coords[None, :, :])
    if current:
        blocks.append("\n".join(current))
    blocks = [b for b in blocks if b]
    if not blocks:
        raise TopologyError("no models found")
    topo, first = parse_pdb(blocks[0])
    frames = [first]
    for i, block in enumerate(blocks[1:], start=2):
        other, coords = parse_pdb(block)
        if other != topo:
            raise TopologyError(f"model {i} has a different structure")
        frames.append(coords)
    return topo, Trajectory(coords=np.stack(frames))


def pdb_nbytes(topology: Topology) -> int:
    """Size in bytes of the serialized PDB (81 bytes/record incl. newline)."""
    return 81 * topology.natoms + 4


def classify_pdb_text(text: str) -> dict:
    """Quick class histogram of a PDB without building a full topology.

    Used by ADA's categorizer fast path when only volume fractions are
    needed.
    """
    counts: dict = {}
    for line in text.splitlines():
        if line[:6].strip() in (_RECORD_ATOM, _RECORD_HETATM):
            cls = classify_residue(line[17:21].strip())
            counts[cls] = counts.get(cls, 0) + 1
    return counts
