"""Molecular topology: the structural metadata ADA reads from ``.pdb`` files.

A :class:`Topology` is a column-oriented table of atoms (names, residue
names/ids, chains, elements) plus a derived per-atom :class:`AtomClass`.
Classification follows standard residue-name conventions used by GROMACS /
CHARMM force fields: amino-acid residues are protein (the paper's *active*
data); water, lipid, and ion residues make up the *MISC* (inactive) data.

The table is numpy-backed so class masks, per-class byte accounting, and
subset selection are all vectorized -- a 40k-atom GPCR system classifies in
microseconds.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError

__all__ = ["AtomClass", "classify_residue", "Topology"]


class AtomClass(IntEnum):
    """Coarse molecular class of one atom, derived from its residue name."""

    PROTEIN = 0
    WATER = 1
    LIPID = 2
    ION = 3
    LIGAND = 4
    OTHER = 5


#: The 20 standard amino acids plus common variants/termini/protonation states.
_PROTEIN_RESIDUES = frozenset(
    """
    ALA ARG ASN ASP CYS GLN GLU GLY HIS ILE LEU LYS MET PHE PRO SER THR TRP
    TYR VAL HSD HSE HSP HID HIE HIP CYX CYM ASH GLH LYN ACE NME NMA MSE SEC
    PYL
    """.split()
)

_WATER_RESIDUES = frozenset("HOH SOL WAT TIP3 TIP4 TIP5 SPC SPCE T3P T4P OH2".split())

#: Common membrane lipids (CHARMM/GROMACS names) incl. cholesterol.
_LIPID_RESIDUES = frozenset(
    "POPC POPE POPS POPG DPPC DOPC DOPE DMPC DSPC CHL1 CHOL PSM SDPC PLPC".split()
)

_ION_RESIDUES = frozenset(
    "NA CL K MG CA ZN SOD CLA POT MG2 CAL ZN2 LIT RUB CES BAR FE NA+ CL- K+".split()
)

#: Common small-molecule ligand residue names (incl. the generic LIG/UNK/DRG).
_LIGAND_RESIDUES = frozenset("LIG UNK UNL DRG INH HEM ATP ADP GTP GDP NAD FAD".split())


def classify_residue(resname: str) -> AtomClass:
    """Map a residue name to its :class:`AtomClass`.

    Unknown residue names classify as :attr:`AtomClass.OTHER`, which the
    default tag policy folds into MISC -- unknown data is inactive until a
    scientist says otherwise, mirroring ADA's conservative default.
    """
    name = resname.strip().upper()
    if name in _PROTEIN_RESIDUES:
        return AtomClass.PROTEIN
    if name in _WATER_RESIDUES:
        return AtomClass.WATER
    if name in _LIPID_RESIDUES:
        return AtomClass.LIPID
    if name in _ION_RESIDUES:
        return AtomClass.ION
    if name in _LIGAND_RESIDUES:
        return AtomClass.LIGAND
    return AtomClass.OTHER


class Topology:
    """Column-oriented atom table with vectorized class queries.

    Parameters mirror PDB columns.  All sequences must share one length.
    """

    def __init__(
        self,
        names: Sequence[str],
        resnames: Sequence[str],
        resids: Sequence[int],
        chains: Optional[Sequence[str]] = None,
        elements: Optional[Sequence[str]] = None,
    ):
        n = len(names)
        if len(resnames) != n or len(resids) != n:
            raise TopologyError(
                f"column length mismatch: names={n} resnames={len(resnames)} "
                f"resids={len(resids)}"
            )
        if chains is not None and len(chains) != n:
            raise TopologyError("chains column length mismatch")
        if elements is not None and len(elements) != n:
            raise TopologyError("elements column length mismatch")
        self.names = np.asarray(names, dtype="U6")
        self.resnames = np.asarray(resnames, dtype="U6")
        self.resids = np.asarray(resids, dtype=np.int64)
        self.chains = (
            np.asarray(chains, dtype="U2")
            if chains is not None
            else np.full(n, "A", dtype="U2")
        )
        self.elements = (
            np.asarray(elements, dtype="U2")
            if elements is not None
            else _guess_elements(self.names)
        )
        self.classes = self._classify()

    # -- construction helpers -------------------------------------------------

    def _classify(self) -> np.ndarray:
        """Per-atom class codes, vectorized over the unique residue names."""
        unique, inverse = np.unique(self.resnames, return_inverse=True)
        codes = np.array([classify_residue(r) for r in unique], dtype=np.int8)
        return codes[inverse]

    @classmethod
    def concatenate(cls, parts: Iterable["Topology"]) -> "Topology":
        """Stack several topologies into one (resids are kept as-is)."""
        parts = list(parts)
        if not parts:
            raise TopologyError("cannot concatenate zero topologies")
        return cls(
            names=np.concatenate([p.names for p in parts]),
            resnames=np.concatenate([p.resnames for p in parts]),
            resids=np.concatenate([p.resids for p in parts]),
            chains=np.concatenate([p.chains for p in parts]),
            elements=np.concatenate([p.elements for p in parts]),
        )

    # -- basic queries ---------------------------------------------------------

    @property
    def natoms(self) -> int:
        return int(self.names.shape[0])

    def __len__(self) -> int:
        return self.natoms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            np.array_equal(self.names, other.names)
            and np.array_equal(self.resnames, other.resnames)
            and np.array_equal(self.resids, other.resids)
            and np.array_equal(self.chains, other.chains)
        )

    def __repr__(self) -> str:
        counts = self.counts_by_class()
        mix = ", ".join(f"{k.name.lower()}={v}" for k, v in counts.items() if v)
        return f"Topology(natoms={self.natoms}, {mix})"

    def class_mask(self, atom_class: AtomClass) -> np.ndarray:
        """Boolean mask of atoms belonging to ``atom_class``."""
        return self.classes == int(atom_class)

    def class_indices(self, atom_class: AtomClass) -> np.ndarray:
        """Sorted atom indices belonging to ``atom_class``."""
        return np.flatnonzero(self.class_mask(atom_class))

    def counts_by_class(self) -> Dict[AtomClass, int]:
        """Atom count per class (all six classes, zeros included)."""
        counts = np.bincount(self.classes, minlength=len(AtomClass))
        return {cls: int(counts[int(cls)]) for cls in AtomClass}

    def fraction_by_class(self) -> Dict[AtomClass, float]:
        """Atom-count fraction per class."""
        n = max(self.natoms, 1)
        return {cls: cnt / n for cls, cnt in self.counts_by_class().items()}

    def protein_fraction(self) -> float:
        """Fraction of atoms that are protein -- the paper's 'active' share."""
        return self.fraction_by_class()[AtomClass.PROTEIN]

    def select(self, indices: np.ndarray) -> "Topology":
        """Row subset as a new :class:`Topology`."""
        indices = np.asarray(indices)
        return Topology(
            names=self.names[indices],
            resnames=self.resnames[indices],
            resids=self.resids[indices],
            chains=self.chains[indices],
            elements=self.elements[indices],
        )

    def class_runs(self) -> List[Tuple[int, int, AtomClass]]:
        """Maximal runs of consecutive atoms sharing a class.

        Returns ``[(begin, end, cls), ...]`` with half-open ranges covering
        ``[0, natoms)`` exactly.  This is the structure Algorithm 1 extracts.
        """
        if self.natoms == 0:
            return []
        change = np.flatnonzero(np.diff(self.classes)) + 1
        bounds = np.concatenate(([0], change, [self.natoms]))
        return [
            (int(b), int(e), AtomClass(int(self.classes[b])))
            for b, e in zip(bounds[:-1], bounds[1:])
        ]


def _guess_elements(names: np.ndarray) -> np.ndarray:
    """Guess an element symbol from each atom name (first alpha char)."""
    out = np.empty(names.shape[0], dtype="U2")
    for i, name in enumerate(names):
        stripped = name.strip().lstrip("0123456789")
        out[i] = stripped[:1].upper() if stripped else "X"
    return out
