"""XTC-like lossy compressed trajectory codec.

GROMACS ``.xtc`` files store coordinates quantized to fixed-point integers
(default precision 1000 => milli-Angstrom) and entropy-coded.  The essential
properties the paper relies on are:

1. the file is roughly **3x smaller** than raw float32 frames (Table 2:
   100 MB compressed vs. 327 MB raw);
2. **no random access to atoms**: the whole frame must be decompressed
   before any atom subset can be extracted -- this is the repeated CPU
   burden ADA removes from compute nodes; and
3. decompression is **CPU-expensive relative to transfer** from fast
   storage.

This codec reproduces all three with a transparent pipeline: quantize ->
delta-code along the atom axis -> zlib.  Each frame is independently
compressed behind a fixed-size binary header, so a file can be scanned
frame-by-frame (:func:`iter_frame_infos`) without inflating payloads --
which is exactly what ADA's storage-side pre-processor does before it
splits a dataset.

A companion *raw container* format (``RAW_MAGIC``) stores uncompressed
float32 subsets; it is what ADA writes to its backends after categorizing,
and what the "D-" scenarios of the paper load.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.errors import CodecError
from repro.formats.trajectory import BYTES_PER_COORD, Trajectory

__all__ = [
    "XTC_MAGIC",
    "RAW_MAGIC",
    "DEFAULT_PRECISION",
    "XtcFrameInfo",
    "encode_xtc",
    "decode_xtc",
    "iter_frame_infos",
    "count_frames",
    "raw_frame_nbytes",
    "encode_raw",
    "decode_raw",
    "raw_container_nbytes",
]

#: Magic number of real GROMACS XTC files; reused for familiarity.
XTC_MAGIC = 1995
#: Magic for the raw (uncompressed float32) subset container.
RAW_MAGIC = 1996
#: Fixed-point precision: coordinate * precision rounds to int.  Coordinates
#: here are in Angstrom, so 100.0 gives 0.01 A resolution -- exactly the
#: resolution of GROMACS's default xtc-precision of 1000 in nm units.
DEFAULT_PRECISION = 100.0

# Frame header: magic, natoms, step, time, box[9], precision, flags, payload
# length.  Flag bit 0 set => P-frame (payload holds temporal deltas against
# the previous frame); clear => I-frame (intra-frame deltas along the atom
# axis).  Real XTC compresses every frame independently; we add temporal
# prediction (as the TNG successor format does) to reach the same ~3x ratio
# with a byte-oriented entropy stage.
_HEADER = struct.Struct("<iii f 9f f iI")
_FLAG_PFRAME = 1

# Payload prologue (inside the deflate stream): block count, value count.
# Each block then carries its own word width, so a few outlier deltas (5-sigma
# thermal kicks) don't widen the whole frame -- the same adaptivity real
# xdr3dfcoord gets from its small/large escape scheme.
_PAYLOAD_HEAD = struct.Struct("<HI")
_BLOCK_VALUES = 4096
_RAW_HEADER = struct.Struct("<iiqif")  # magic, natoms, nframes, reserved, dt


@dataclass(frozen=True)
class XtcFrameInfo:
    """Location and metadata of one compressed frame inside an XTC stream."""

    index: int
    offset: int  # byte offset of the frame header
    header_nbytes: int
    payload_nbytes: int  # compressed payload size
    natoms: int
    step: int
    time_ps: float
    flags: int = 0

    @property
    def is_keyframe(self) -> bool:
        """True for I-frames (decodable without any earlier frame)."""
        return not self.flags & _FLAG_PFRAME

    @property
    def total_nbytes(self) -> int:
        return self.header_nbytes + self.payload_nbytes

    @property
    def raw_nbytes(self) -> int:
        """Decompressed payload size of this frame."""
        return raw_frame_nbytes(self.natoms)


def raw_frame_nbytes(natoms: int) -> int:
    """Uncompressed payload bytes of one frame (float32 xyz)."""
    return natoms * BYTES_PER_COORD


def _quantize(coords: np.ndarray, precision: float) -> np.ndarray:
    values = coords.astype(np.float64)
    if not np.all(np.isfinite(values)):
        raise CodecError("non-finite coordinates cannot be encoded")
    ints = np.rint(values * precision)
    if np.any(np.abs(ints) > np.iinfo(np.int32).max):
        raise CodecError("coordinates overflow int32 at this precision")
    return ints.astype(np.int32)


def _zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed int64 to unsigned (0,-1,1,-2 -> 0,1,2,3) for bit packing."""
    v = values.astype(np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def _unzigzag(values: np.ndarray) -> np.ndarray:
    v = values.astype(np.uint64)
    half = (v >> np.uint64(1)).astype(np.int64)
    sign = (v & np.uint64(1)).astype(np.int64)
    return half ^ -sign


def _pack_words(values_u: np.ndarray, nbits: int) -> bytes:
    """Pack unsigned values into a dense ``nbits``-wide big-endian bitstream.

    This is the moral equivalent of xdr3dfcoord's fixed-width "smallidx"
    packing: the per-frame word width adapts to the largest delta.
    """
    if nbits == 0 or values_u.size == 0:
        return b""
    shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
    bits = ((values_u[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.ravel()).tobytes()


def _unpack_words(data: bytes, count: int, nbits: int) -> np.ndarray:
    """Inverse of :func:`_pack_words`."""
    if nbits == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    total_bits = count * nbits
    bits = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8), count=total_bits
    ).astype(np.uint64)
    weights = np.left_shift(
        np.uint64(1), np.arange(nbits - 1, -1, -1, dtype=np.uint64)
    )
    return bits.reshape(count, nbits) @ weights


def _encode_delta_block(deltas: np.ndarray, level: int) -> bytes:
    """Zigzag + blockwise fixed-width bit-pack + deflate signed deltas."""
    flat = _zigzag(deltas.ravel())
    nblocks = (flat.size + _BLOCK_VALUES - 1) // _BLOCK_VALUES
    widths = bytearray(nblocks)
    packed: List[bytes] = []
    for b in range(nblocks):
        block = flat[b * _BLOCK_VALUES : (b + 1) * _BLOCK_VALUES]
        nbits = int(block.max()).bit_length() if block.size else 0
        widths[b] = nbits
        packed.append(_pack_words(block, nbits))
    body = _PAYLOAD_HEAD.pack(nblocks, flat.size) + bytes(widths) + b"".join(packed)
    return zlib.compress(body, level)


def _decode_delta_block(payload: bytes, expected_count: int) -> np.ndarray:
    try:
        raw = zlib.decompress(payload)
    except zlib.error as exc:
        raise CodecError(f"frame payload inflate failed: {exc}") from exc
    if len(raw) < _PAYLOAD_HEAD.size:
        raise CodecError("payload shorter than its prologue")
    nblocks, count = _PAYLOAD_HEAD.unpack_from(raw, 0)
    if count != expected_count:
        raise CodecError(f"payload holds {count} values, expected {expected_count}")
    offset = _PAYLOAD_HEAD.size
    widths = raw[offset : offset + nblocks]
    if len(widths) < nblocks:
        raise CodecError("truncated block-width table")
    offset += nblocks
    out = np.empty(count, dtype=np.uint64)
    for b in range(nblocks):
        block_count = min(_BLOCK_VALUES, count - b * _BLOCK_VALUES)
        nbits = widths[b]
        nbytes = (block_count * nbits + 7) // 8
        chunk = raw[offset : offset + nbytes]
        if len(chunk) < nbytes:
            raise CodecError("truncated packed bitstream")
        out[b * _BLOCK_VALUES : b * _BLOCK_VALUES + block_count] = _unpack_words(
            chunk, block_count, nbits
        )
        offset += nbytes
    return _unzigzag(out)


def _encode_frame_payload(
    ints: np.ndarray, prev_ints: Optional[np.ndarray], level: int
) -> "tuple[int, bytes]":
    """Encode one quantized frame; returns ``(flags, payload)``.

    I-frames (first frame) store the first atom absolutely plus intra-frame
    deltas along the atom axis; P-frames store temporal deltas against the
    previous frame, which are much smaller for equilibrated dynamics.
    """
    if prev_ints is None:
        origin = ints[0:1].astype("<i4").tobytes()
        deltas = np.diff(ints, axis=0)
        return 0, origin + _encode_delta_block(deltas, level)
    deltas = ints.astype(np.int64) - prev_ints.astype(np.int64)
    return _FLAG_PFRAME, _encode_delta_block(deltas, level)


def _decode_frame_payload(
    payload: bytes,
    natoms: int,
    precision: float,
    flags: int,
    prev_ints: Optional[np.ndarray],
) -> "tuple[np.ndarray, np.ndarray]":
    """Decode one frame; returns ``(coords_float32, quantized_ints)``."""
    if flags & _FLAG_PFRAME:
        if prev_ints is None:
            raise CodecError("P-frame encountered with no reference frame")
        deltas = _decode_delta_block(payload, natoms * 3).reshape(natoms, 3)
        ints = prev_ints + deltas
    else:
        if len(payload) < 12:
            raise CodecError("I-frame payload missing origin")
        origin = np.frombuffer(payload, dtype="<i4", count=3).astype(np.int64)
        deltas = _decode_delta_block(payload[12:], (natoms - 1) * 3).reshape(
            natoms - 1, 3
        )
        ints = np.empty((natoms, 3), dtype=np.int64)
        ints[0] = origin
        np.cumsum(deltas, axis=0, dtype=np.int64, out=ints[1:])
        ints[1:] += origin
    return (ints / precision).astype(np.float32), ints


def encode_xtc(
    trajectory: Trajectory,
    precision: float = DEFAULT_PRECISION,
    level: int = 6,
    keyframe_interval: int = 100,
) -> bytes:
    """Serialize a trajectory to an XTC-like compressed byte stream.

    ``keyframe_interval`` inserts an independently-decodable I-frame every
    N frames (video-codec style), bounding how far
    :func:`decode_frame_range` must rewind for random access.
    """
    if precision <= 0:
        raise CodecError(f"precision must be positive, got {precision}")
    if keyframe_interval < 1:
        raise CodecError("keyframe interval must be >= 1")
    box = (
        trajectory.box.reshape(9)
        if trajectory.box is not None
        else np.zeros(9, dtype=np.float32)
    )
    chunks: List[bytes] = []
    prev_ints: Optional[np.ndarray] = None
    for i in range(trajectory.nframes):
        ints = _quantize(trajectory.coords[i], precision)
        if i % keyframe_interval == 0:
            prev_ints = None  # force an I-frame
        flags, payload = _encode_frame_payload(ints, prev_ints, level)
        prev_ints = ints.astype(np.int64)
        header = _HEADER.pack(
            XTC_MAGIC,
            trajectory.natoms,
            int(trajectory.steps[i]),
            float(trajectory.times_ps[i]),
            *[float(v) for v in box],
            float(precision),
            flags,
            len(payload),
        )
        chunks.append(header)
        chunks.append(payload)
    return b"".join(chunks)


def iter_frame_infos(data: bytes) -> Iterator[XtcFrameInfo]:
    """Scan frame headers without decompressing payloads."""
    offset = 0
    index = 0
    n = len(data)
    while offset < n:
        if offset + _HEADER.size > n:
            raise CodecError(f"truncated frame header at offset {offset}")
        fields = _HEADER.unpack_from(data, offset)
        magic, natoms, step, time_ps = fields[0], fields[1], fields[2], fields[3]
        payload_nbytes = fields[-1]
        if magic != XTC_MAGIC:
            raise CodecError(f"bad magic {magic} at offset {offset}")
        if natoms <= 0:
            raise CodecError(f"non-positive atom count {natoms} in frame {index}")
        if offset + _HEADER.size + payload_nbytes > n:
            raise CodecError(f"truncated frame payload in frame {index}")
        yield XtcFrameInfo(
            index=index,
            offset=offset,
            header_nbytes=_HEADER.size,
            payload_nbytes=payload_nbytes,
            natoms=natoms,
            step=step,
            time_ps=time_ps,
            flags=fields[14],
        )
        offset += _HEADER.size + payload_nbytes
        index += 1


def count_frames(data: bytes) -> int:
    """Number of frames in an XTC stream (header scan only)."""
    return sum(1 for _ in iter_frame_infos(data))


def decode_xtc(
    data: bytes, atom_indices: Optional[np.ndarray] = None
) -> Trajectory:
    """Decompress an XTC stream into a :class:`Trajectory`.

    ``atom_indices`` selects an atom subset *after* decompression -- the
    paper's point is precisely that this selection cannot happen before: the
    full frame is always inflated.  Passing indices merely avoids keeping the
    discarded atoms.
    """
    coords: List[np.ndarray] = []
    steps: List[int] = []
    times: List[float] = []
    box: Optional[np.ndarray] = None
    prev_ints: Optional[np.ndarray] = None
    for info in iter_frame_infos(data):
        fields = _HEADER.unpack_from(data, info.offset)
        precision, flags = fields[13], fields[14]
        if precision <= 0:
            raise CodecError(f"bad precision {precision} in frame {info.index}")
        if box is None:
            box_vals = np.asarray(fields[4:13], dtype=np.float32)
            box = box_vals.reshape(3, 3) if np.any(box_vals) else None
        start = info.offset + info.header_nbytes
        frame, prev_ints = _decode_frame_payload(
            data[start : start + info.payload_nbytes],
            info.natoms,
            precision,
            flags,
            prev_ints,
        )
        if atom_indices is not None:
            frame = frame[np.asarray(atom_indices)]
        coords.append(frame)
        steps.append(info.step)
        times.append(info.time_ps)
    if not coords:
        raise CodecError("empty XTC stream")
    return Trajectory(
        coords=np.stack(coords), steps=steps, times_ps=times, box=box
    )


def decode_frame_range(data: bytes, start: int, stop: int) -> Trajectory:
    """Decode only frames ``[start, stop)`` of an XTC stream.

    Decoding rewinds to the nearest preceding keyframe (I-frame) and rolls
    forward -- at most ``keyframe_interval - 1`` extra frames of work, and
    only the requested frames are materialized.  This is the primitive the
    streaming playback layer uses to animate trajectories that do not fit
    in memory.
    """
    infos = list(iter_frame_infos(data))
    nframes = len(infos)
    if not 0 <= start < stop <= nframes:
        raise CodecError(
            f"frame range [{start}, {stop}) outside [0, {nframes})"
        )
    anchor = start
    while anchor > 0 and not infos[anchor].is_keyframe:
        anchor -= 1
    if not infos[anchor].is_keyframe:
        raise CodecError("no keyframe precedes the requested range")

    coords: List[np.ndarray] = []
    steps: List[int] = []
    times: List[float] = []
    prev_ints: Optional[np.ndarray] = None
    for i in range(anchor, stop):
        info = infos[i]
        fields = _HEADER.unpack_from(data, info.offset)
        precision, flags = fields[13], fields[14]
        begin = info.offset + info.header_nbytes
        frame, prev_ints = _decode_frame_payload(
            data[begin : begin + info.payload_nbytes],
            info.natoms,
            precision,
            flags,
            prev_ints,
        )
        if i >= start:
            coords.append(frame)
            steps.append(info.step)
            times.append(info.time_ps)
    return Trajectory(coords=np.stack(coords), steps=steps, times_ps=times)


# ---------------------------------------------------------------------------
# Raw (uncompressed) subset container -- what ADA stores on its backends.
# ---------------------------------------------------------------------------


def encode_raw(trajectory: Trajectory) -> bytes:
    """Serialize a trajectory as uncompressed float32 with a tiny header."""
    header = _RAW_HEADER.pack(
        RAW_MAGIC, trajectory.natoms, trajectory.nframes, 0, 0.0
    )
    steps = trajectory.steps.astype("<i8").tobytes()
    times = trajectory.times_ps.astype("<f8").tobytes()
    payload = np.ascontiguousarray(trajectory.coords, dtype="<f4").tobytes()
    return header + steps + times + payload


def _decode_one_raw(data: bytes, offset: int) -> "tuple[Trajectory, int]":
    """Decode one raw container starting at ``offset``; returns the
    trajectory and the offset just past it."""
    if len(data) - offset < _RAW_HEADER.size:
        raise CodecError("raw container shorter than its header")
    magic, natoms, nframes, _, _ = _RAW_HEADER.unpack_from(data, offset)
    if magic != RAW_MAGIC:
        raise CodecError(f"bad raw-container magic {magic}")
    off = offset + _RAW_HEADER.size
    steps = np.frombuffer(data, dtype="<i8", count=nframes, offset=off)
    off += nframes * 8
    times = np.frombuffer(data, dtype="<f8", count=nframes, offset=off)
    off += nframes * 8
    payload = nframes * natoms * BYTES_PER_COORD
    if len(data) - off < payload:
        raise CodecError(
            f"raw payload is {len(data) - off} bytes, expected {payload}"
        )
    coords = np.frombuffer(data, dtype="<f4", count=nframes * natoms * 3,
                           offset=off).reshape(nframes, natoms, 3)
    traj = Trajectory(
        coords=coords.copy(), steps=steps.copy(), times_ps=times.copy()
    )
    return traj, off + payload


def decode_raw(data: bytes) -> Trajectory:
    """Inverse of :func:`encode_raw` (exact round trip, no loss).

    Accepts a *concatenation* of raw containers over the same atom set --
    the shape of a multi-chunk PLFS subset -- and splices them frame-wise.
    """
    parts = []
    offset = 0
    while offset < len(data):
        traj, offset = _decode_one_raw(data, offset)
        parts.append(traj)
    if not parts:
        raise CodecError("empty raw stream")
    if len(parts) == 1:
        return parts[0]
    return Trajectory.concatenate(parts)


def raw_container_nbytes(natoms: int, nframes: int) -> int:
    """Exact serialized size of a raw container with these dimensions."""
    return _RAW_HEADER.size + nframes * 16 + nframes * natoms * BYTES_PER_COORD
