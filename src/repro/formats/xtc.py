"""XTC-like lossy compressed trajectory codec.

GROMACS ``.xtc`` files store coordinates quantized to fixed-point integers
(default precision 1000 => milli-Angstrom) and entropy-coded.  The essential
properties the paper relies on are:

1. the file is roughly **3x smaller** than raw float32 frames (Table 2:
   100 MB compressed vs. 327 MB raw);
2. **no random access to atoms**: the whole frame must be decompressed
   before any atom subset can be extracted -- this is the repeated CPU
   burden ADA removes from compute nodes; and
3. decompression is **CPU-expensive relative to transfer** from fast
   storage.

This codec reproduces all three with a transparent pipeline: quantize ->
delta-code along the atom axis -> zlib.  Each frame is independently
compressed behind a fixed-size binary header, so a file can be scanned
frame-by-frame (:func:`iter_frame_infos`) without inflating payloads --
which is exactly what ADA's storage-side pre-processor does before it
splits a dataset.

A companion *raw container* format (``RAW_MAGIC``) stores uncompressed
float32 subsets; it is what ADA writes to its backends after categorizing,
and what the "D-" scenarios of the paper load.

Performance model (the materialized-mode hot path):

* the bit-packing kernels are **word-oriented**: values are shifted/OR-ed
  into 64-bit lanes in one numpy pass per equal-width run of blocks, not
  expanded into a per-bit matrix;
* the delta/zigzag/quantize stages run as **whole-GOF batch operations**:
  encode quantizes a GOF's frames in one pass and takes every P-frame's
  temporal deltas with a single ``np.diff`` along the frame axis; decode
  collects all delta rows of a GOF into one int64 matrix, reconstructs
  with a single axis-0 ``np.cumsum``, and converts kept frames with one
  reciprocal multiply -- so per-frame Python overhead disappears and each
  task spends its time inside GIL-releasing C loops;
* keyframes every ``keyframe_interval`` partition a stream into
  independently codable **groups of frames** (GOFs); ``encode_xtc`` /
  ``decode_xtc`` accept ``workers=N`` and fan GOFs out to a worker pool
  selected by ``backend`` (``"thread"``, ``"process"``, or ``"auto"`` --
  see :mod:`repro.formats.codecexec`; process workers exchange
  coordinates through shared memory and deliver real multi-core
  speedup).  Parallel output is bit-identical to serial because each GOF
  is self-contained and results are reassembled in stream order;
* a :class:`FrameIndex` captures one header scan (offsets, keyframe
  anchors, cumulative raw bytes) and makes every subsequent
  :func:`decode_frame_range` / frame-count / size query O(1) in the number
  of frames outside the requested window.
"""

from __future__ import annotations

import math
import operator
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CodecError
from repro.formats.codecexec import (
    CodecPool,
    process_decode,
    process_encode,
    resolve_backend,
    shared_pool,
)
from repro.formats.trajectory import BYTES_PER_COORD, Trajectory

__all__ = [
    "XTC_MAGIC",
    "RAW_MAGIC",
    "DEFAULT_PRECISION",
    "XtcFrameInfo",
    "FrameIndex",
    "encode_xtc",
    "decode_xtc",
    "iter_frame_infos",
    "count_frames",
    "raw_frame_nbytes",
    "resolve_workers",
    "encode_raw",
    "decode_raw",
    "raw_container_nbytes",
]

#: Magic number of real GROMACS XTC files; reused for familiarity.
XTC_MAGIC = 1995
#: Magic for the raw (uncompressed float32) subset container.
RAW_MAGIC = 1996
#: Fixed-point precision: coordinate * precision rounds to int.  Coordinates
#: here are in Angstrom, so 100.0 gives 0.01 A resolution -- exactly the
#: resolution of GROMACS's default xtc-precision of 1000 in nm units.
DEFAULT_PRECISION = 100.0

# Frame header: magic, natoms, step, time, box[9], precision, flags, payload
# length.  Flag bit 0 set => P-frame (payload holds temporal deltas against
# the previous frame); clear => I-frame (intra-frame deltas along the atom
# axis).  Real XTC compresses every frame independently; we add temporal
# prediction (as the TNG successor format does) to reach the same ~3x ratio
# with a byte-oriented entropy stage.
_HEADER = struct.Struct("<iii f 9f f iI")
_FLAG_PFRAME = 1
# Flag bit 1 set => the payload body is *stored* (not deflated).  Bit-packed
# deltas are already near the entropy floor, so deflate often buys only a few
# percent while dominating decode time; the encoder keeps deflate only when it
# shrinks the body by at least 1/16 (real xdr3dfcoord likewise skips its
# entropy stage when packing alone suffices).
_FLAG_STORED = 2

# Payload prologue (inside the deflate stream): block count, value count.
# Each block then carries its own word width, so a few outlier deltas (5-sigma
# thermal kicks) don't widen the whole frame -- the same adaptivity real
# xdr3dfcoord gets from its small/large escape scheme.
_PAYLOAD_HEAD = struct.Struct("<HI")
# Stored (non-deflated) payload bodies carry a trailing CRC-32: deflated
# bodies are integrity-checked by zlib's adler32, and without an equivalent
# a flipped bit in a stored P-frame would decode to silently wrong
# coordinates instead of a typed error.
_STORED_CRC = struct.Struct("<I")
_BLOCK_VALUES = 8192
_RAW_HEADER = struct.Struct("<iiqif")  # magic, natoms, nframes, reserved, dt


@dataclass(frozen=True)
class XtcFrameInfo:
    """Location and metadata of one compressed frame inside an XTC stream."""

    index: int
    offset: int  # byte offset of the frame header
    header_nbytes: int
    payload_nbytes: int  # compressed payload size
    natoms: int
    step: int
    time_ps: float
    flags: int = 0
    precision: float = 0.0

    @property
    def is_keyframe(self) -> bool:
        """True for I-frames (decodable without any earlier frame)."""
        return not self.flags & _FLAG_PFRAME

    @property
    def total_nbytes(self) -> int:
        return self.header_nbytes + self.payload_nbytes

    @property
    def raw_nbytes(self) -> int:
        """Decompressed payload size of this frame."""
        return raw_frame_nbytes(self.natoms)


def raw_frame_nbytes(natoms: int) -> int:
    """Uncompressed payload bytes of one frame (float32 xyz)."""
    return natoms * BYTES_PER_COORD


def _quantize(coords: np.ndarray, precision: float) -> np.ndarray:
    values = coords.astype(np.float64)
    if not np.all(np.isfinite(values)):
        raise CodecError("non-finite coordinates cannot be encoded")
    ints = np.rint(values * precision)
    if np.any(np.abs(ints) > np.iinfo(np.int32).max):
        raise CodecError("coordinates overflow int32 at this precision")
    return ints.astype(np.int32)


def _zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed int64 to unsigned (0,-1,1,-2 -> 0,1,2,3) for bit packing."""
    v = values.astype(np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def _unzigzag(values: np.ndarray) -> np.ndarray:
    """Invert :func:`_zigzag` in place; ``values`` (uint64) is consumed."""
    v = values.astype(np.uint64, copy=False)
    # (v >> 1) ^ -(v & 1), all in uint64, reinterpreted as int64.
    sign = v & np.uint64(1)
    np.subtract(np.uint64(0), sign, out=sign)
    np.right_shift(v, np.uint64(1), out=v)
    np.bitwise_xor(v, sign, out=v)
    return v.view(np.int64)


def _lane_geometry(nbits: int, count: int) -> "tuple[int, int, int]":
    """Periodic lane layout of an ``nbits``-wide dense bitstream.

    Fixed-width fields repeat their byte/bit phase every ``lcm(nbits, 8)``
    bits, i.e. every ``L = 8 / gcd(nbits, 8)`` values.  Returns
    ``(L, period_bytes, nperiods)``: the packed stream is ``nperiods``
    repetitions of a ``period_bytes``-byte pattern, and lane ``j`` of every
    period starts at the same scalar ``(byte, bit)`` offset -- which is what
    lets pack/unpack run as a handful of strided column ops per lane instead
    of per-value (or per-bit) work.
    """
    lanes = 8 // math.gcd(nbits, 8)
    period_bytes = nbits * lanes // 8
    nperiods = (count + lanes - 1) // lanes
    return lanes, period_bytes, nperiods


def _pack_words(values_u: np.ndarray, nbits: int) -> bytes:
    """Pack unsigned values into a dense ``nbits``-wide big-endian bitstream.

    This is the moral equivalent of xdr3dfcoord's fixed-width "smallidx"
    packing: the per-frame word width adapts to the largest delta.

    Word-oriented: values are reshaped into bit-phase periods (see
    :func:`_lane_geometry`); each of the <= 8 lanes shifts its values once
    and ORs the resulting bytes into strided output columns, so the whole
    block is packed in a constant number of vectorized passes -- no
    ``count x nbits`` bit-matrix expansion.
    """
    count = int(values_u.size)
    if nbits == 0 or count == 0:
        return b""
    if not 0 < nbits <= 64:
        raise CodecError(f"word width {nbits} outside [0, 64]")
    lanes, period_bytes, nperiods = _lane_geometry(nbits, count)
    values = np.zeros(nperiods * lanes, dtype=np.uint64)
    values[:count] = values_u
    if nbits < 64:
        values &= np.uint64((1 << nbits) - 1)
    values = values.reshape(nperiods, lanes)
    out = np.zeros(nperiods * period_bytes + 16, dtype=np.uint8)
    stop = (nperiods - 1) * period_bytes + 1
    for j in range(lanes):
        offset = j * nbits
        byte0, phase = offset >> 3, offset & 7
        span = (phase + nbits + 7) // 8  # bytes this lane's field touches
        lane_vals = values[:, j]
        if span <= 8:
            # Field fits one 64-bit accumulator: position it, emit bytes.
            field = lane_vals << np.uint64(span * 8 - phase - nbits)
            for k in range(span):
                shift = np.uint64(8 * (span - 1 - k))
                out[byte0 + k : byte0 + k + stop : period_bytes] |= (
                    (field >> shift) & np.uint64(0xFF)
                ).astype(np.uint8)
        else:
            # 9-byte span (nbits > 57 at odd phase): top 8 bytes hold the
            # field minus ``spill`` low bits, which land in the ninth byte.
            spill = phase + nbits - 64
            head = lane_vals >> np.uint64(spill)
            for k in range(8):
                shift = np.uint64(8 * (7 - k))
                out[byte0 + k : byte0 + k + stop : period_bytes] |= (
                    (head >> shift) & np.uint64(0xFF)
                ).astype(np.uint8)
            tail = (lane_vals << np.uint64(8 - spill)) & np.uint64(0xFF)
            out[byte0 + 8 : byte0 + 8 + stop : period_bytes] |= tail.astype(
                np.uint8
            )
    return out.tobytes()[: (count * nbits + 7) // 8]


def _unpack_lanes(
    buf: np.ndarray, count: int, nbits: int, out: np.ndarray
) -> None:
    """Unpack ``count`` fields from padded byte array ``buf`` into ``out``.

    ``buf`` must extend at least ``period_bytes + 9`` bytes past the last
    packed byte (zero padding); ``out`` is a ``count``-long uint64 slice.
    """
    lanes, period_bytes, nperiods = _lane_geometry(nbits, count)
    mask = np.uint64((1 << nbits) - 1) if nbits < 64 else np.uint64(2**64 - 1)
    stop = (nperiods - 1) * period_bytes + 1
    grid = np.empty((nperiods, lanes), dtype=np.uint64)
    for j in range(lanes):
        offset = j * nbits
        byte0, phase = offset >> 3, offset & 7
        span = (phase + nbits + 7) // 8
        if span <= 8:
            acc = buf[byte0 : byte0 + stop : period_bytes].astype(np.uint64)
            for k in range(1, span):
                np.left_shift(acc, np.uint64(8), out=acc)
                np.bitwise_or(
                    acc,
                    buf[byte0 + k : byte0 + k + stop : period_bytes],
                    out=acc,
                )
            np.right_shift(acc, np.uint64(span * 8 - phase - nbits), out=acc)
            np.bitwise_and(acc, mask, out=acc)
            grid[:, j] = acc
        else:
            # 9-byte span: accumulate 8 bytes (the field minus its low
            # ``spill`` bits), then OR in the ninth byte's top bits.
            spill = phase + nbits - 64
            acc = (
                buf[byte0 : byte0 + stop : period_bytes] & np.uint8(0xFF >> phase)
            ).astype(np.uint64)
            for k in range(1, 8):
                acc = (acc << np.uint64(8)) | buf[
                    byte0 + k : byte0 + k + stop : period_bytes
                ]
            tail = buf[byte0 + 8 : byte0 + 8 + stop : period_bytes] >> np.uint8(
                8 - spill
            )
            grid[:, j] = (acc << np.uint64(spill)) | tail
    out[:] = grid.ravel()[:count]


def _unpack_periods(
    src: np.ndarray, count: int, nbits: int, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Unpack fields whose whole lane period fits one 64-bit word.

    Left-justifies each period's bytes in a big-endian uint64, converts to
    native order in one cast, then pulls every lane out with one scalar
    shift into contiguous rows -- a handful of full-width vector passes,
    no per-lane byte striding.  Covers every width the encoder emits in
    practice (all of 1-8 plus the even widths up to 64).
    """
    lanes, period_bytes, nperiods = _lane_geometry(nbits, count)
    words = np.zeros((nperiods, 8), dtype=np.uint8)
    flat = words[:, :period_bytes]
    nfull = len(src) // period_bytes
    flat[:nfull] = src[: nfull * period_bytes].reshape(nfull, period_bytes)
    rem = len(src) - nfull * period_bytes
    if rem:
        flat[nfull, :rem] = src[nfull * period_bytes :]
    acc = words.view(">u8").reshape(nperiods).astype(np.uint64)
    rows = np.empty((lanes, nperiods), dtype=np.uint64)
    for j in range(lanes):
        np.right_shift(acc, np.uint64(64 - (j + 1) * nbits), out=rows[j])
    if nbits < 64:
        np.bitwise_and(rows, np.uint64((1 << nbits) - 1), out=rows)
    return _emit_rows(rows, count, out)


def _emit_rows(
    rows: np.ndarray, count: int, out: Optional[np.ndarray]
) -> np.ndarray:
    """Interleave per-lane ``rows`` into value order, into ``out`` if it fits.

    ``rows`` is ``(lanes, nperiods)``; value ``i`` lives at
    ``rows[i % lanes, i // lanes]``.  When the caller's destination holds a
    whole number of periods (every full-block run does), the transpose is
    written straight into it -- one copy instead of two.
    """
    lanes, nperiods = rows.shape
    if out is not None and count == lanes * nperiods:
        np.copyto(out.reshape(nperiods, lanes), rows.T)
        return out
    result = np.ascontiguousarray(rows.T).reshape(-1)[:count]
    if out is not None:
        out[:] = result
        return out
    return result


def _unpack_periods2(
    src: np.ndarray, count: int, nbits: int, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Unpack fields whose lane period fits two 64-bit words (9-16 bytes).

    Same left-justified big-endian layout as :func:`_unpack_periods`, with
    each period split into a high and a low word; a lane's field is read
    from whichever word holds it, or stitched across the boundary with one
    shift/or.  This keeps the widths real delta streams actually produce
    (9, 11, 13 bits at odd phases) off the per-byte strided path.
    """
    lanes, period_bytes, nperiods = _lane_geometry(nbits, count)
    words = np.zeros((nperiods, 16), dtype=np.uint8)
    flat = words[:, :period_bytes]
    nfull = len(src) // period_bytes
    flat[:nfull] = src[: nfull * period_bytes].reshape(nfull, period_bytes)
    rem = len(src) - nfull * period_bytes
    if rem:
        flat[nfull, :rem] = src[nfull * period_bytes :]
    pair = words.reshape(-1).view(">u8").reshape(nperiods, 2)
    hi = pair[:, 0].astype(np.uint64)
    lo = pair[:, 1].astype(np.uint64)
    rows = np.empty((lanes, nperiods), dtype=np.uint64)
    for j in range(lanes):
        start = j * nbits
        end = start + nbits
        if end <= 64:
            np.right_shift(hi, np.uint64(64 - end), out=rows[j])
        elif start >= 64:
            np.right_shift(lo, np.uint64(128 - end), out=rows[j])
        else:
            np.left_shift(hi, np.uint64(end - 64), out=rows[j])
            rows[j] |= lo >> np.uint64(128 - end)
    np.bitwise_and(rows, np.uint64((1 << nbits) - 1), out=rows)
    return _emit_rows(rows, count, out)


def _unpack_words(
    data, count: int, nbits: int, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Inverse of :func:`_pack_words` (same lane-periodic strategy).

    ``data`` may be ``bytes`` or a ``memoryview`` (callers slice large
    payloads as views to avoid copies); ``out``, when given, is a
    ``count``-long uint64 destination written without a staging copy.
    """
    if nbits == 0 or count == 0:
        if out is not None:
            out[:] = 0
            return out
        return np.zeros(count, dtype=np.uint64)
    if not 0 < nbits <= 64:
        raise CodecError(f"word width {nbits} outside [0, 64]")
    nbytes = (count * nbits + 7) // 8
    if len(data) < nbytes:
        raise CodecError("packed bitstream shorter than its value count")
    src = np.frombuffer(data, dtype=np.uint8, count=nbytes)
    _, period_bytes, nperiods = _lane_geometry(nbits, count)
    if period_bytes <= 8:
        return _unpack_periods(src, count, nbits, out)
    if period_bytes <= 16:
        return _unpack_periods2(src, count, nbits, out)
    buf = np.zeros(nperiods * period_bytes + 16, dtype=np.uint8)
    buf[:nbytes] = src
    if out is None:
        out = np.empty(count, dtype=np.uint64)
    _unpack_lanes(buf, count, nbits, out)
    return out


def _width_runs(widths: Sequence[int]) -> Iterator[Tuple[int, int]]:
    """Yield ``(start_block, stop_block)`` runs of equal width.

    Full blocks hold ``_BLOCK_VALUES`` (a multiple of 8) values, so every
    block but the stream's last starts byte-aligned; a run of equal-width
    blocks can therefore be packed/unpacked as one dense bitstream whose
    bytes are exactly the concatenation of the per-block bitstreams.
    """
    nblocks = len(widths)
    b = 0
    while b < nblocks:
        e = b + 1
        while e < nblocks and widths[e] == widths[b]:
            e += 1
        yield b, e
        b = e


def _encode_delta_block(
    deltas: np.ndarray, level: int, allow_stored: bool = True
) -> "tuple[int, bytes]":
    """Zigzag + blockwise fixed-width bit-pack signed deltas.

    Returns ``(flags, payload)`` where ``flags`` is ``_FLAG_STORED`` when the
    bit-packed body ships as-is (deflate did not shrink it by >= 1/16) and
    ``0`` when the payload is deflated.  ``allow_stored=False`` forces the
    deflate stage -- used for I-frames so every group of frames keeps a
    zlib-checksummed anchor that rejects corrupted streams.
    """
    return _encode_zigzag_block(_zigzag(deltas.ravel()), level, allow_stored)


def _encode_zigzag_block(
    flat: np.ndarray, level: int, allow_stored: bool = True
) -> "tuple[int, bytes]":
    """Entropy-code already-zigzagged uint64 values (see
    :func:`_encode_delta_block`); batched encoders zigzag a whole GOF in
    one pass and feed each frame's row here."""
    nvalues = flat.size
    nblocks = (nvalues + _BLOCK_VALUES - 1) // _BLOCK_VALUES
    if nblocks:
        padded = np.zeros(nblocks * _BLOCK_VALUES, dtype=np.uint64)
        padded[:nvalues] = flat
        maxima = padded.reshape(nblocks, _BLOCK_VALUES).max(axis=1)
        widths = bytes(int(m).bit_length() for m in maxima)
    else:
        widths = b""
    packed: List[bytes] = []
    for b, e in _width_runs(widths):
        run = flat[b * _BLOCK_VALUES : min(e * _BLOCK_VALUES, nvalues)]
        packed.append(_pack_words(run, widths[b]))
    body = _PAYLOAD_HEAD.pack(nblocks, nvalues) + widths + b"".join(packed)
    comp = zlib.compress(body, level)
    if not allow_stored or len(comp) < len(body) - len(body) // 16:
        return 0, comp
    return _FLAG_STORED, body + _STORED_CRC.pack(zlib.crc32(body))


def _decode_delta_block(
    payload: bytes,
    expected_count: int,
    stored: bool = False,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Decode one entropy-coded delta block to int64 values.

    ``out``, when given, is an ``expected_count``-long uint64 buffer the
    unpacked values land in directly (it is un-zigzagged in place and the
    int64 view of it returned) -- batched GOF decode passes rows of its
    frame matrix here to skip a per-frame staging copy.
    """
    if stored:
        if len(payload) < _STORED_CRC.size:
            raise CodecError("stored payload shorter than its checksum")
        raw = bytes(payload[: -_STORED_CRC.size])
        (crc,) = _STORED_CRC.unpack_from(payload, len(payload) - _STORED_CRC.size)
        if zlib.crc32(raw) != crc:
            raise CodecError("stored payload checksum mismatch")
    else:
        try:
            raw = zlib.decompress(payload)
        except zlib.error as exc:
            raise CodecError(f"frame payload inflate failed: {exc}") from exc
    if len(raw) < _PAYLOAD_HEAD.size:
        raise CodecError("payload shorter than its prologue")
    nblocks, count = _PAYLOAD_HEAD.unpack_from(raw, 0)
    if count != expected_count:
        raise CodecError(f"payload holds {count} values, expected {expected_count}")
    if nblocks != (count + _BLOCK_VALUES - 1) // _BLOCK_VALUES:
        raise CodecError(f"block table of {nblocks} blocks cannot hold {count} values")
    offset = _PAYLOAD_HEAD.size
    widths = bytes(raw[offset : offset + nblocks])
    if len(widths) < nblocks:
        raise CodecError("truncated block-width table")
    offset += nblocks
    mv = memoryview(raw)  # slice payload chunks without copying
    if out is None:
        out = np.empty(count, dtype=np.uint64)
    for b, e in _width_runs(widths):
        nbits = widths[b]
        run_count = min(e * _BLOCK_VALUES, count) - b * _BLOCK_VALUES
        nbytes = (run_count * nbits + 7) // 8
        chunk = mv[offset : offset + nbytes]
        if len(chunk) < nbytes:
            raise CodecError("truncated packed bitstream")
        _unpack_words(
            chunk,
            run_count,
            nbits,
            out=out[b * _BLOCK_VALUES : b * _BLOCK_VALUES + run_count],
        )
        offset += nbytes
    return _unzigzag(out)


def _encode_frame_payload(
    ints: np.ndarray, prev_ints: Optional[np.ndarray], level: int
) -> "tuple[int, bytes]":
    """Encode one quantized frame; returns ``(flags, payload)``.

    I-frames (first frame) store the first atom absolutely plus intra-frame
    deltas along the atom axis; P-frames store temporal deltas against the
    previous frame, which are much smaller for equilibrated dynamics.
    """
    if prev_ints is None:
        # The raw origin sits outside the deflate stream, so it needs its
        # own CRC -- a flipped origin bit would otherwise silently shift
        # every coordinate in the group of frames.
        origin = ints[0:1].astype("<i4").tobytes()
        deltas = np.diff(ints, axis=0)
        sflag, block = _encode_delta_block(deltas, level, allow_stored=False)
        return sflag, origin + _STORED_CRC.pack(zlib.crc32(origin)) + block
    deltas = ints.astype(np.int64) - prev_ints.astype(np.int64)
    sflag, block = _encode_delta_block(deltas, level)
    return _FLAG_PFRAME | sflag, block


def _decode_iframe_ints(
    payload: bytes, natoms: int, stored: bool, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Decode an I-frame payload to its absolute quantized ints.

    ``out``, when given, is a flat ``natoms * 3`` int64 row (batched GOF
    decode passes rows of its frame matrix); returns the ``(natoms, 3)``
    view either way.
    """
    prefix = 12 + _STORED_CRC.size
    if len(payload) < prefix:
        raise CodecError("I-frame payload missing origin")
    (origin_crc,) = _STORED_CRC.unpack_from(payload, 12)
    if zlib.crc32(bytes(payload[:12])) != origin_crc:
        raise CodecError("I-frame origin checksum mismatch")
    origin = np.frombuffer(payload, dtype="<i4", count=3).astype(np.int64)
    deltas = _decode_delta_block(
        payload[prefix:], (natoms - 1) * 3, stored
    ).reshape(natoms - 1, 3)
    ints = (
        np.empty((natoms, 3), dtype=np.int64)
        if out is None
        else out.reshape(natoms, 3)
    )
    ints[0] = origin
    np.cumsum(deltas, axis=0, dtype=np.int64, out=ints[1:])
    ints[1:] += origin
    return ints


def _decode_frame_payload(
    payload: bytes,
    natoms: int,
    precision: float,
    flags: int,
    prev_ints: Optional[np.ndarray],
    out: Optional[np.ndarray] = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Decode one frame; returns ``(coords_float32, quantized_ints)``.

    ``out`` (a ``(natoms, 3)`` float32 view) receives the coordinates
    without an intermediate allocation when provided.  The hot path
    (:func:`_decode_run`) batches whole GOFs instead; this single-frame
    entry point remains for targeted decodes and tests.
    """
    stored = bool(flags & _FLAG_STORED)
    if flags & _FLAG_PFRAME:
        if prev_ints is None:
            raise CodecError("P-frame encountered with no reference frame")
        deltas = _decode_delta_block(payload, natoms * 3, stored).reshape(
            natoms, 3
        )
        np.add(deltas, prev_ints, out=deltas)  # deltas buffer is ours
        ints = deltas
    else:
        ints = _decode_iframe_ints(payload, natoms, stored)
    if out is None:
        out = np.empty((natoms, 3), dtype=np.float32)
    # Multiply by the float64 reciprocal instead of dividing: the float64
    # intermediate can differ from true division by <= 1 ulp, which is far
    # inside the float32 rounding the store performs and orders of magnitude
    # below the 0.5-quantum margin the idempotent-recompression property
    # needs (re-quantizing a decoded coordinate lands on the same integer).
    np.multiply(ints, 1.0 / precision, out=out, casting="unsafe")
    return out, ints


def resolve_workers(workers: Optional[int], ntasks: int) -> int:
    """Effective thread count for ``ntasks`` independent codec tasks.

    ``None`` or ``1`` means serial, ``0`` means one thread per CPU, and any
    positive count is capped at the number of tasks.  Worker count never
    changes results -- only how GOFs are scheduled.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 0:
        raise CodecError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, min(workers, ntasks))


def _encode_gof(
    trajectory: Trajectory,
    start: int,
    stop: int,
    precision: float,
    level: int,
    box9: Tuple[float, ...],
) -> bytes:
    """Encode one group of frames; ``start`` becomes an I-frame.

    Whole-GOF batch kernels: one quantize pass over the frame block, one
    ``np.diff`` along the frame axis for every P-frame's temporal deltas,
    one zigzag pass over all of them -- the only per-frame work left is
    the entropy stage (width scan, bit-pack, deflate), which runs inside
    GIL-releasing C loops.  Transient int64 state is one GOF's deltas,
    bounded by ``keyframe_interval``.
    """
    nframes = stop - start
    block = _quantize(trajectory.coords[start:stop], precision)
    chunks: List[bytes] = []

    def emit(i: int, flags: int, payload: bytes) -> None:
        chunks.append(
            _HEADER.pack(
                XTC_MAGIC,
                trajectory.natoms,
                int(trajectory.steps[start + i]),
                float(trajectory.times_ps[start + i]),
                *box9,
                float(precision),
                flags,
                len(payload),
            )
        )
        chunks.append(payload)

    flags, payload = _encode_frame_payload(block[0], None, level)
    emit(0, flags, payload)
    if nframes > 1:
        zz = _zigzag(
            np.diff(block.reshape(nframes, -1).astype(np.int64), axis=0)
        )
        for i in range(1, nframes):
            sflag, payload = _encode_zigzag_block(zz[i - 1], level)
            emit(i, _FLAG_PFRAME | sflag, payload)
    return b"".join(chunks)


def _resolve_pool(executor, backend: str, nworkers: int):
    """Pick the :class:`CodecPool` serving a codec call (None => caller
    runs serial or drives a raw executor it supplied itself)."""
    resolve_backend(backend)  # validate the knob even on serial paths
    if executor is not None:
        return executor if isinstance(executor, CodecPool) else None
    if nworkers <= 1:
        return None
    # No owning pool supplied: reuse the process-lifetime shared pool
    # instead of constructing (and tearing down) a transient one per call.
    return shared_pool(backend, nworkers)


def encode_xtc(
    trajectory: Trajectory,
    precision: float = DEFAULT_PRECISION,
    level: int = 6,
    keyframe_interval: int = 100,
    workers: Optional[int] = None,
    executor=None,
    backend: str = "auto",
) -> bytes:
    """Serialize a trajectory to an XTC-like compressed byte stream.

    ``keyframe_interval`` inserts an independently-decodable I-frame every
    N frames (video-codec style), bounding how far
    :func:`decode_frame_range` must rewind for random access.  Because each
    group of frames (keyframe to keyframe) is encoded against only its own
    frames, GOFs are embarrassingly parallel: ``workers`` (see
    :func:`resolve_workers`) fans them out to the ``backend`` worker pool
    (``"thread"``, ``"process"``, or ``"auto"``; process workers read
    coordinates from a shared-memory segment) and the concatenated result
    is bit-identical to a serial encode.  ``executor`` supplies a caller's
    long-lived :class:`~repro.formats.codecexec.CodecPool` (or a plain
    executor with ``.map``); without one the process-lifetime shared pool
    of ``backend`` is reused -- bare calls no longer pay per-call pool
    construction.
    """
    if precision <= 0:
        raise CodecError(f"precision must be positive, got {precision}")
    if keyframe_interval < 1:
        raise CodecError("keyframe interval must be >= 1")
    box9 = tuple(
        float(v)
        for v in (
            trajectory.box.reshape(9)
            if trajectory.box is not None
            else np.zeros(9, dtype=np.float32)
        )
    )
    nframes = trajectory.nframes
    spans = [
        (s, min(s + keyframe_interval, nframes))
        for s in range(0, nframes, keyframe_interval)
    ]
    nworkers = resolve_workers(workers, len(spans))
    pool = _resolve_pool(executor, backend, nworkers)
    if pool is not None and pool.backend == "process" and nworkers > 1:
        return process_encode(
            trajectory, spans, precision, level, box9, pool, nworkers
        )
    if nworkers <= 1:
        parts = [
            _encode_gof(trajectory, s, e, precision, level, box9) for s, e in spans
        ]
    else:
        encode = lambda span: _encode_gof(  # noqa: E731
            trajectory, span[0], span[1], precision, level, box9
        )
        if pool is not None:
            parts = pool.run(encode, [(span,) for span in spans])
        else:
            parts = list(executor.map(encode, spans))
    return b"".join(parts)


def iter_frame_infos(data: bytes) -> Iterator[XtcFrameInfo]:
    """Scan frame headers without decompressing payloads."""
    offset = 0
    index = 0
    n = len(data)
    while offset < n:
        if offset + _HEADER.size > n:
            raise CodecError(f"truncated frame header at offset {offset}")
        fields = _HEADER.unpack_from(data, offset)
        magic, natoms, step, time_ps = fields[0], fields[1], fields[2], fields[3]
        payload_nbytes = fields[-1]
        if magic != XTC_MAGIC:
            raise CodecError(f"bad magic {magic} at offset {offset}")
        if natoms <= 0:
            raise CodecError(f"non-positive atom count {natoms} in frame {index}")
        if offset + _HEADER.size + payload_nbytes > n:
            raise CodecError(f"truncated frame payload in frame {index}")
        yield XtcFrameInfo(
            index=index,
            offset=offset,
            header_nbytes=_HEADER.size,
            payload_nbytes=payload_nbytes,
            natoms=natoms,
            step=step,
            time_ps=time_ps,
            flags=fields[14],
            precision=fields[13],
        )
        offset += _HEADER.size + payload_nbytes
        index += 1


def count_frames(data: bytes) -> int:
    """Number of frames in an XTC stream (header scan only)."""
    return sum(1 for _ in iter_frame_infos(data))


class FrameIndex:
    """Random-access index over one XTC blob, built with a single header scan.

    Captures what :func:`iter_frame_infos` produces -- per-frame offsets and
    metadata, keyframe anchors, cumulative raw bytes -- so repeated
    :func:`decode_frame_range` calls (windowed streaming playback) and size
    queries (:meth:`~repro.core.decompressor.Decompressor.frame_count`,
    ``raw_nbytes``) stop rescanning every frame header: build once per blob,
    then each window costs only its own decode work.
    """

    __slots__ = ("infos", "keyframes", "_cum_raw")

    def __init__(self, infos: Sequence[XtcFrameInfo]):
        self.infos: Tuple[XtcFrameInfo, ...] = tuple(infos)
        if not self.infos:
            raise CodecError("cannot index an empty XTC stream")
        natoms = self.infos[0].natoms
        if any(i.natoms != natoms for i in self.infos):
            raise CodecError("frames disagree on atom count")
        self.keyframes = np.asarray(
            [i.index for i in self.infos if i.is_keyframe], dtype=np.int64
        )
        if self.keyframes.size == 0 or self.keyframes[0] != 0:
            raise CodecError("stream does not begin with a keyframe")
        self._cum_raw = np.cumsum(
            [i.raw_nbytes for i in self.infos], dtype=np.int64
        )

    @classmethod
    def build(cls, data: bytes) -> "FrameIndex":
        """Index ``data`` (one full header scan, no payload inflation)."""
        return cls(iter_frame_infos(data))

    def __len__(self) -> int:
        return len(self.infos)

    @property
    def nframes(self) -> int:
        return len(self.infos)

    @property
    def natoms(self) -> int:
        return self.infos[0].natoms

    @property
    def raw_nbytes(self) -> int:
        """Total decompressed payload size of the stream."""
        return int(self._cum_raw[-1])

    @property
    def stream_nbytes(self) -> int:
        """Serialized size of the indexed stream."""
        last = self.infos[-1]
        return last.offset + last.total_nbytes

    def anchor(self, frame: int) -> int:
        """Index of the nearest keyframe at or before ``frame``."""
        if not 0 <= frame < len(self.infos):
            raise CodecError(f"frame {frame} outside [0, {len(self.infos)})")
        pos = int(np.searchsorted(self.keyframes, frame, side="right")) - 1
        return int(self.keyframes[pos])

    def gofs(self) -> List[Tuple[int, int]]:
        """``(start, stop)`` frame spans of each independently decodable GOF."""
        bounds = self.keyframes.tolist() + [len(self.infos)]
        return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]


def _header_box(data: bytes, offset: int) -> Optional[np.ndarray]:
    """Box matrix stored in the frame header at ``offset`` (None if zero)."""
    fields = _HEADER.unpack_from(data, offset)
    box_vals = np.asarray(fields[4:13], dtype=np.float32)
    return box_vals.reshape(3, 3) if np.any(box_vals) else None


def _decode_gof_ints(
    view: memoryview, infos: Sequence[XtcFrameInfo], natoms: int
) -> np.ndarray:
    """Decode one keyframe-anchored group of frames to absolute quantized
    ints, shape ``(nframes, natoms, 3)``.

    Batched kernel: every frame's entropy stage unpacks straight into one
    row of a ``(nframes, natoms * 3)`` int64 matrix, then a single
    ``np.cumsum`` along the frame axis resolves all temporal P-frame deltas
    at once.  Equivalent to the per-frame ``prev + delta`` chain (int64
    addition is associative and overflow-free at these magnitudes) but the
    Python-level loop only touches the entropy stage.
    """
    nframes = len(infos)
    ints = np.empty((nframes, natoms * 3), dtype=np.int64)
    udat = ints.view(np.uint64)
    for pos, info in enumerate(infos):
        if info.precision <= 0:
            raise CodecError(f"bad precision {info.precision} in frame {info.index}")
        begin = info.offset + info.header_nbytes
        payload = view[begin : begin + info.payload_nbytes]
        stored = bool(info.flags & _FLAG_STORED)
        if pos == 0:
            if info.flags & _FLAG_PFRAME:
                raise CodecError("P-frame encountered with no reference frame")
            _decode_iframe_ints(payload, natoms, stored, out=ints[0])
        else:
            if not info.flags & _FLAG_PFRAME:
                raise CodecError(
                    f"I-frame {info.index} inside a group of frames"
                )
            _decode_delta_block(payload, natoms * 3, stored, out=udat[pos])
    # Row-wise prefix sum: each add streams two contiguous rows, where
    # ``np.cumsum(axis=0)`` would walk columns with frame-sized strides.
    for pos in range(1, nframes):
        np.add(ints[pos], ints[pos - 1], out=ints[pos])
    return ints.reshape(nframes, natoms, 3)


def _ints_to_coords(
    ints: np.ndarray, infos: Sequence[XtcFrameInfo], out: np.ndarray
) -> None:
    """Dequantize a block of frames into float32 ``out``.

    Multiply by the float64 reciprocal instead of dividing (see
    :func:`_decode_frame_payload`); a single vectorized multiply when every
    frame shares one precision (the encoder always emits that), with a
    per-frame fallback for hand-crafted/fuzzed streams that disagree.
    """
    p0 = infos[0].precision
    if all(i.precision == p0 for i in infos):
        np.multiply(ints, 1.0 / p0, out=out, casting="unsafe")
        return
    for pos, info in enumerate(infos):
        np.multiply(ints[pos], 1.0 / info.precision, out=out[pos], casting="unsafe")


def _decode_run(
    data: bytes,
    infos: Sequence[XtcFrameInfo],
    out: np.ndarray,
    keep_from: int = 0,
    atom_indices: Optional[np.ndarray] = None,
) -> None:
    """Decode a contiguous keyframe-anchored run into ``out``.

    ``out`` is a ``(len(infos) - keep_from, natoms_kept, 3)`` float32 array
    (or view); frames before ``keep_from`` are decoded for prediction state
    but not materialized.  Each group of frames decodes through the batched
    :func:`_decode_gof_ints` kernel and dequantizes straight into its output
    slice -- no per-frame allocation, no final ``np.stack`` copy -- which
    also lets parallel GOF workers fill disjoint slices of one shared array.
    """
    view = memoryview(data)  # per-frame payload slices stay zero-copy
    natoms = infos[0].natoms if infos else 0
    n = len(infos)
    pos = 0
    while pos < n:
        end = pos + 1
        while end < n and infos[end].flags & _FLAG_PFRAME:
            end += 1
        ints = _decode_gof_ints(view, infos[pos:end], natoms)
        lo = max(keep_from - pos, 0)
        if pos + lo < end:
            kept = ints[lo:]
            if atom_indices is not None:
                # Select quantized ints *before* the float conversion --
                # identical values to selecting floats after, with the
                # multiply running only over kept atoms.
                kept = kept[:, atom_indices]
            dst = out[pos + lo - keep_from : end - keep_from]
            _ints_to_coords(kept, infos[pos + lo : end], dst)
        pos = end


def decode_xtc(
    data: bytes,
    atom_indices: Optional[np.ndarray] = None,
    workers: Optional[int] = None,
    index: Optional[FrameIndex] = None,
    executor=None,
    backend: str = "auto",
) -> Trajectory:
    """Decompress an XTC stream into a :class:`Trajectory`.

    ``atom_indices`` selects an atom subset *after* decompression -- the
    paper's point is precisely that this selection cannot happen before: the
    full frame is always inflated.  Passing indices merely avoids keeping the
    discarded atoms.

    ``workers`` (see :func:`resolve_workers`) decodes independent groups of
    frames concurrently on the ``backend`` worker pool (``"thread"``,
    ``"process"``, or ``"auto"``; process workers fill disjoint slices of a
    shared-memory coordinate array, returned zero-copy); results are
    reassembled in stream order, so the output is bit-identical to a serial
    decode.  ``index`` reuses an existing :class:`FrameIndex` instead of
    rescanning headers; ``executor`` reuses a caller's long-lived
    :class:`~repro.formats.codecexec.CodecPool` (the
    :class:`~repro.core.decompressor.Decompressor` holds one for its read
    path); without one the process-lifetime shared pool is reused.
    """
    idx = index if index is not None else FrameIndex.build(data)
    infos = idx.infos
    selection = np.asarray(atom_indices) if atom_indices is not None else None
    gofs = idx.gofs()
    nworkers = resolve_workers(workers, len(gofs))
    pool = _resolve_pool(executor, backend, nworkers)
    if pool is not None and pool.backend == "process" and nworkers > 1:
        coords = process_decode(data, infos, gofs, selection, pool, nworkers)
    else:
        natoms_kept = idx.natoms if selection is None else len(selection)
        coords = np.empty((len(infos), natoms_kept, 3), dtype=np.float32)
        if nworkers <= 1:
            _decode_run(data, infos, coords, atom_indices=selection)
        else:
            decode = lambda span: _decode_run(  # noqa: E731
                data,
                infos[span[0] : span[1]],
                coords[span[0] : span[1]],
                atom_indices=selection,
            )
            if pool is not None:
                pool.run(decode, [(span,) for span in gofs])
            else:
                list(executor.map(decode, gofs))
    return Trajectory(
        coords=coords,
        steps=[i.step for i in infos],
        times_ps=[i.time_ps for i in infos],
        box=_header_box(data, infos[0].offset),
    )


def decode_frame_range(
    data: bytes,
    start: int,
    stop: int,
    index: Optional[FrameIndex] = None,
    workers: Optional[int] = None,
    executor=None,
    backend: str = "auto",
) -> Trajectory:
    """Decode only frames ``[start, stop)`` of an XTC stream.

    Decoding rewinds to the nearest preceding keyframe (I-frame) and rolls
    forward -- at most ``keyframe_interval - 1`` extra frames of work, and
    only the requested frames are materialized.  This is the primitive the
    streaming playback layer uses to animate trajectories that do not fit
    in memory.  Passing ``index`` (a prebuilt :class:`FrameIndex`) skips the
    per-call header scan, making windowed playback O(window) instead of
    O(file) per window.  ``workers``/``executor``/``backend`` fan the
    window's groups of frames out exactly as in :func:`decode_xtc`.
    """
    try:
        start = operator.index(start)
        stop = operator.index(stop)
    except TypeError as exc:
        raise CodecError(f"frame range bounds must be integers: {exc}") from exc
    idx = index if index is not None else FrameIndex.build(data)
    nframes = len(idx)
    if not 0 <= start < stop <= nframes:
        raise CodecError(
            f"frame range [{start}, {stop}) outside [0, {nframes})"
        )
    anchor = idx.anchor(start)
    infos = idx.infos[anchor:stop]
    keep_from = start - anchor
    # Groups of frames overlapping the window, relative to the anchor.
    rel = [
        (s - anchor, min(e, stop) - anchor)
        for s, e in idx.gofs()
        if s < stop and e > anchor
    ]
    nworkers = resolve_workers(workers, len(rel))
    pool = _resolve_pool(executor, backend, nworkers)
    if pool is not None and pool.backend == "process" and nworkers > 1:
        coords = process_decode(
            data, infos, rel, None, pool, nworkers, keep_from=keep_from
        )
    else:
        coords = np.empty((stop - start, idx.natoms, 3), dtype=np.float32)
        if nworkers <= 1 or pool is None:
            _decode_run(data, infos, coords, keep_from=keep_from)
        else:

            def decode(span):
                f_lo, f_hi = span
                skip = max(keep_from - f_lo, 0)
                row0 = max(f_lo, keep_from) - keep_from
                _decode_run(
                    data,
                    infos[f_lo:f_hi],
                    coords[row0 : row0 + (f_hi - f_lo - skip)],
                    keep_from=skip,
                )

            pool.run(decode, [(span,) for span in rel])
    kept = idx.infos[start:stop]
    return Trajectory(
        coords=coords,
        steps=[i.step for i in kept],
        times_ps=[i.time_ps for i in kept],
        box=_header_box(data, idx.infos[start].offset),
    )


# ---------------------------------------------------------------------------
# Raw (uncompressed) subset container -- what ADA stores on its backends.
# ---------------------------------------------------------------------------


def encode_raw(trajectory: Trajectory) -> bytes:
    """Serialize a trajectory as uncompressed float32 with a tiny header."""
    header = _RAW_HEADER.pack(
        RAW_MAGIC, trajectory.natoms, trajectory.nframes, 0, 0.0
    )
    steps = trajectory.steps.astype("<i8").tobytes()
    times = trajectory.times_ps.astype("<f8").tobytes()
    payload = np.ascontiguousarray(trajectory.coords, dtype="<f4").tobytes()
    return header + steps + times + payload


def _decode_one_raw(data: bytes, offset: int) -> "tuple[Trajectory, int]":
    """Decode one raw container starting at ``offset``; returns the
    trajectory and the offset just past it.

    Zero-copy: the returned trajectory's arrays are (read-only) views over
    ``data``.  The single-container case -- by far the common one -- thus
    costs no memmove at all; multi-chunk PLFS subsets copy exactly once,
    when :func:`decode_raw` splices the views together.
    """
    if len(data) - offset < _RAW_HEADER.size:
        raise CodecError("raw container shorter than its header")
    magic, natoms, nframes, _, _ = _RAW_HEADER.unpack_from(data, offset)
    if magic != RAW_MAGIC:
        raise CodecError(f"bad raw-container magic {magic}")
    off = offset + _RAW_HEADER.size
    steps = np.frombuffer(data, dtype="<i8", count=nframes, offset=off)
    off += nframes * 8
    times = np.frombuffer(data, dtype="<f8", count=nframes, offset=off)
    off += nframes * 8
    payload = nframes * natoms * BYTES_PER_COORD
    if len(data) - off < payload:
        raise CodecError(
            f"raw payload is {len(data) - off} bytes, expected {payload}"
        )
    coords = np.frombuffer(data, dtype="<f4", count=nframes * natoms * 3,
                           offset=off).reshape(nframes, natoms, 3)
    traj = Trajectory(coords=coords, steps=steps, times_ps=times)
    return traj, off + payload


def decode_raw(data: bytes) -> Trajectory:
    """Inverse of :func:`encode_raw` (exact round trip, no loss).

    Accepts a *concatenation* of raw containers over the same atom set --
    the shape of a multi-chunk PLFS subset -- and splices them frame-wise.
    A single container decodes to zero-copy views over ``data``; multiple
    containers are spliced with one copy.
    """
    parts = []
    offset = 0
    while offset < len(data):
        traj, offset = _decode_one_raw(data, offset)
        parts.append(traj)
    if not parts:
        raise CodecError("empty raw stream")
    if len(parts) == 1:
        return parts[0]
    return Trajectory.concatenate(parts)


def raw_container_nbytes(natoms: int, nframes: int) -> int:
    """Exact serialized size of a raw container with these dimensions."""
    return _RAW_HEADER.size + nframes * 16 + nframes * natoms * BYTES_PER_COORD
