"""Chaos harness: the full ADA pipeline under seeded fault injection.

One :func:`run_chaos` call builds the same workload twice -- once on a
fault-free two-tier deployment, once with a transient-only
:class:`~repro.faults.plan.FaultPlan` attached to every file system and
device -- drives ingest plus several rounds of tag-selective and full
reads through each, and compares SHA-256 digests of every byte the
application saw.  With retries enabled the digests must match: transient
faults (latency spikes, dropped operations, in-flight bit flips, short
reads) are recovered exactly, which is the end-to-end property the chaos
test suite (``tests/faults/``) asserts across seeds.

Everything is deterministic -- the DES, the fault streams, the backoff
jitter -- so ``python -m repro chaos --seed N`` replays bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import ADA
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.fs.localfs import LocalFS
from repro.harness.report import Table
from repro.sim import Simulator
from repro.storage.hdd import WD_1TB_HDD
from repro.storage.ssd import NVME_SSD_256GB
from repro.workloads import build_workload

__all__ = ["ChaosReport", "run_chaos", "render_chaos"]

#: Retry budget for chaos runs: generous enough that back-to-back transient
#: faults at the sweep's rates never exhaust (each extra retry multiplies
#: the residual failure probability by the per-op fault rate).
DEFAULT_MAX_RETRIES = 8


@dataclass
class ChaosReport:
    """Outcome of one seeded chaos run."""

    seed: int
    transient_rate: float
    rounds: int
    natoms: int
    nframes: int
    identical: bool
    baseline_digest: str
    faulted_digest: str
    counters: Dict[str, object] = field(default_factory=dict)
    sim_time_baseline_s: float = 0.0
    sim_time_faulted_s: float = 0.0
    #: Structured snapshot of the faulted run's metrics registry (the
    #: same payload ``python -m repro metrics --json`` exports).
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def retries(self) -> int:
        return int(self.counters.get("retry", {}).get("retries", 0))

    @property
    def injected_total(self) -> int:
        return int(self.counters.get("injected_total", 0))

    def as_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "transient_rate": self.transient_rate,
            "rounds": self.rounds,
            "natoms": self.natoms,
            "nframes": self.nframes,
            "identical": self.identical,
            "baseline_digest": self.baseline_digest,
            "faulted_digest": self.faulted_digest,
            "counters": self.counters,
            "sim_time_baseline_s": self.sim_time_baseline_s,
            "sim_time_faulted_s": self.sim_time_faulted_s,
            "metrics": self.metrics,
        }


def _build_ada(sim: Simulator, plan: Optional[FaultPlan], seed: int,
               max_retries: int, timeout_s: Optional[float]) -> ADA:
    """Two-tier deployment (NVMe active, WD rotating inactive)."""
    backends = {
        "ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd"),
        "hdd": LocalFS(sim, WD_1TB_HDD, name="hdd"),
    }
    return ADA(
        sim,
        backends=backends,
        retry_policy=RetryPolicy(
            max_retries=max_retries, timeout_s=timeout_s, seed=seed
        ),
        fault_plan=plan,
    )


def _drive(ada: ADA, logical: str, pdb_text: str, xtc_blob: bytes,
           rounds: int) -> str:
    """Ingest, then ``rounds`` of tag-selective + full reads; digest all."""
    sim = ada.sim
    digest = hashlib.sha256()
    sim.run_process(ada.ingest(logical, pdb_text, xtc_blob))
    for _ in range(rounds):
        for tag in ada.tags(logical):
            obj = sim.run_process(ada.fetch(logical, tag))
            digest.update(tag.encode())
            digest.update(obj.data)
        objs = sim.run_process(ada.fetch_all(logical))
        for tag in sorted(objs):
            digest.update(tag.encode())
            digest.update(objs[tag].data)
    return digest.hexdigest()


def run_chaos(
    seed: int = 0,
    transient_rate: float = 0.05,
    rounds: int = 3,
    natoms: int = 600,
    nframes: int = 4,
    max_retries: int = DEFAULT_MAX_RETRIES,
    timeout_s: Optional[float] = None,
) -> ChaosReport:
    """Run the ingest -> tag-selective-read pipeline with and without faults.

    Returns a :class:`ChaosReport`; ``report.identical`` is the headline:
    under transient-only injection at ``transient_rate`` with retries
    enabled, every byte the application reads must equal the fault-free
    run's.
    """
    workload = build_workload(natoms=natoms, nframes=nframes, seed=seed)
    logical = "chaos.xtc"

    baseline_sim = Simulator()
    baseline = _build_ada(baseline_sim, None, seed, max_retries, timeout_s)
    baseline_digest = _drive(
        baseline, logical, workload.pdb_text, workload.xtc_blob, rounds
    )

    plan = FaultPlan.transient_only(seed=seed, rate=transient_rate)
    faulted_sim = Simulator()
    faulted = _build_ada(faulted_sim, plan, seed, max_retries, timeout_s)
    faulted_digest = _drive(
        faulted, logical, workload.pdb_text, workload.xtc_blob, rounds
    )

    return ChaosReport(
        seed=seed,
        transient_rate=transient_rate,
        rounds=rounds,
        natoms=natoms,
        nframes=nframes,
        identical=baseline_digest == faulted_digest,
        baseline_digest=baseline_digest,
        faulted_digest=faulted_digest,
        counters=faulted.fault_counters(),
        sim_time_baseline_s=baseline_sim.now,
        sim_time_faulted_s=faulted_sim.now,
        metrics=faulted.metrics.to_json(),
    )


def render_chaos(report: ChaosReport) -> str:
    """Paper-style table of one chaos run."""
    retry = report.counters.get("retry", {})
    table = Table(
        ["metric", "value"],
        title=(
            f"Chaos run: seed={report.seed}, "
            f"transient rate {report.transient_rate:.1%}, "
            f"{report.rounds} read round(s)"
        ),
    )
    table.add_row(
        "bit-identical to fault-free",
        "YES" if report.identical else "NO (DATA DIVERGED)",
    )
    table.add_row("digest", report.faulted_digest[:16] + "...")
    table.add_row("faults injected", f"{report.injected_total}")
    table.add_row("attempts", f"{retry.get('attempts', 0)}")
    table.add_row("retries", f"{retry.get('retries', 0)}")
    table.add_row("recovered ops", f"{retry.get('recovered', 0)}")
    table.add_row("corruption detected", f"{retry.get('corruption_detected', 0)}")
    table.add_row("timeouts", f"{retry.get('timeouts', 0)}")
    table.add_row("backoff (sim s)", f"{retry.get('backoff_s', 0.0):.6f}")
    table.add_row("degraded reads", f"{report.counters.get('degraded_reads', 0)}")
    table.add_row("sim time, fault-free", f"{report.sim_time_baseline_s:.4f} s")
    table.add_row("sim time, faulted", f"{report.sim_time_faulted_s:.4f} s")
    return table.render()
