"""Calibration: the four CPU rates and where they come from.

Every modeled time in the harness derives from published device specs
(Tables 4/5) plus the single-thread CPU rates below.  The rates were chosen
once, against the paper's headline ratios, and are *not* tuned per figure:

* ``decompress_rate`` -- raw bytes produced per second of XTC inflation.
  90 MB/s on the E5-2603 v4 (1.7 GHz) testbeds reproduces the ~13.4x
  turnaround gap of Fig. 7b and the >50 % CPU share of Fig. 8; the fat
  node's E7-4820 v3 (1.9 GHz but an older core servicing a 40-core
  package) is set to 45 MB/s, which lands the Fig. 10d energy magnitudes.
  Our real Python codec decodes at ~100 MB/s (see
  :func:`measure_calibration`), the same order as the model.
* ``scan_rate`` (185 MB/s) -- bytes of decompressed data scanned per second
  when filtering active data (D paths) or re-merging ADA subsets
  (D-ADA(all)); reproduces the 9x cluster gap of Fig. 9b and keeps
  D-ADA(all) ~= D-ext4 (Fig. 7b).
* ``render_rate`` (550 MB/s) -- active-subset bytes turned into geometry
  per second.

Sizing constants (compression ratio, protein fraction) come from Table 2;
:func:`measure_calibration` re-derives them from the real codec + generator
so EXPERIMENTS.md can report paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import CpuSpec
from repro.units import mbps
from repro.workloads.gpcr import build_workload
from repro.workloads.virtual import SizingModel

__all__ = ["E5_2603V4", "E7_4820V3", "CalibrationReport", "measure_calibration"]

#: SSD server and cluster CPUs (Tables 4): Intel Xeon E5-2603 v4 @ 1.70 GHz.
E5_2603V4 = CpuSpec(
    name="Xeon-E5-2603v4",
    cores=6,
    ghz=1.7,
    decompress_rate=mbps(90.0),
    scan_rate=mbps(185.0),
    render_rate=mbps(550.0),
)

#: Fat-node CPU (Table 5): Intel Xeon E7-4820 v3 @ 1.90 GHz.
E7_4820V3 = CpuSpec(
    name="Xeon-E7-4820v3",
    cores=40,
    ghz=1.9,
    decompress_rate=mbps(45.0),
    scan_rate=mbps(185.0),
    render_rate=mbps(550.0),
)


@dataclass(frozen=True)
class CalibrationReport:
    """Measured-vs-paper sizing constants."""

    measured: SizingModel
    paper: SizingModel

    def rows(self):
        return [
            (
                "compression ratio (C/R)",
                f"{self.paper.compression_ratio:.3f}",
                f"{self.measured.compression_ratio:.3f}",
            ),
            (
                "protein fraction (P/R)",
                f"{self.paper.protein_fraction:.3f}",
                f"{self.measured.protein_fraction:.3f}",
            ),
        ]


def measure_calibration(
    natoms: int = 8000, nframes: int = 30, seed: int = 0
) -> CalibrationReport:
    """Run the real generator + codec + pre-processor and compare constants."""
    workload = build_workload(
        natoms=natoms,
        nframes=nframes,
        protein_fraction=SizingModel.paper().protein_fraction,
        seed=seed,
    )
    return CalibrationReport(
        measured=workload.measured_sizing(), paper=SizingModel.paper()
    )
