"""Trace demo: a windowed playback whose demand read overlaps a prefetch.

``python -m repro trace`` needs a scenario that exercises the whole
observability surface in a few simulated milliseconds: tag-selective
windowed fetches through the block cache, request coalescing, the
adaptive prefetcher, and -- the part worth staring at -- a demand window
that arrives while the prefetcher's speculative read of the *same*
chunks is still in flight.  The retriever deduplicates that read: the
demand path joins the in-flight process instead of re-issuing it, so
the trace shows exactly one device read for the window plus one
``retriever.dedup_join`` span under the demand fetch.

The overlap is engineered, not lucky: the consumer's per-window CPU time
(``think_s``) is far shorter than a window's rotating-disk read, so by
the time the stride detector confirms the sequential pattern and the
prefetcher launches the next window's read, the consumer is already
asking for those chunks.  Everything is seeded and simulated -- the same
call produces a byte-identical trace every time.
"""

from __future__ import annotations

from typing import Tuple

from repro.core import ADA
from repro.fs.cache import BlockCache
from repro.fs.localfs import LocalFS
from repro.obs.trace import Tracer
from repro.sim import Simulator
from repro.storage.hdd import WD_1TB_HDD
from repro.workloads import build_workload

__all__ = ["TRACE_LOGICAL", "TRACE_TAG", "run_trace_demo"]

#: Dataset / tag names the demo (and ``python -m repro trace``) uses.
TRACE_LOGICAL = "trace-demo.xtc"
TRACE_TAG = "p"


def run_trace_demo(
    natoms: int = 400,
    nchunks: int = 24,
    frames_per_chunk: int = 12,
    window_chunks: int = 4,
    think_s: float = 1e-4,
    seed: int = 11,
) -> Tuple[ADA, Tracer]:
    """Run the demand-overlapping-prefetch playback; returns (ada, tracer).

    The returned tracer holds one root timeline per ``ada.fetch_chunks``
    window (plus the prefetcher's background reads nested under the
    demand fetch that launched them); the registry on ``ada.metrics``
    holds the matching counters.
    """
    from repro.formats.xtc import encode_raw

    sim = Simulator()
    tracer = Tracer(sim)
    ada = ADA(
        sim,
        backends={"hdd": LocalFS(sim, WD_1TB_HDD, name="hdd")},
        block_cache=BlockCache(sim),
        prefetch=True,
        tracer=tracer,
    )

    workload = build_workload(
        natoms=natoms, nframes=nchunks * frames_per_chunk, seed=seed
    )
    blobs = [
        encode_raw(
            workload.trajectory.slice_frames(
                i * frames_per_chunk, (i + 1) * frames_per_chunk
            )
        )
        for i in range(nchunks)
    ]
    sim.run_process(ada.ingest(TRACE_LOGICAL, workload.pdb_text, blobs[0]))
    for blob in blobs[1:]:
        sim.run_process(ada.ingest_append(TRACE_LOGICAL, blob))
    tracer.clear()  # the interesting timelines are the read path's

    def consumer():
        # One process drives every window: the heap never drains between
        # windows, so the prefetcher's background read launched after
        # window N is still in flight when window N+1 demands its chunks.
        for start in range(0, nchunks, window_chunks):
            window = list(range(start, min(start + window_chunks, nchunks)))
            yield from ada.fetch_chunks(TRACE_LOGICAL, TRACE_TAG, window)
            yield sim.timeout(think_s)

    sim.run_process(consumer())
    return ada, tracer
