"""Precision-selective serving benchmark: scrubbing on the LOD tier.

``run_lod_bench`` replays three interactive access patterns -- forward
scrub, backward scrub (rewind), and skip scrub (irregular forward jumps,
the "jumpy" ensemble browse) -- against one chunked dataset on rotating
storage, once per precision tier:

* ``*_full`` -- exact bytes (the raw full-precision subset chunks);
* ``*_lod``  -- the coarse-quantized sibling layer the pre-processor
  wrote at ingest (``precision="lod"``), roughly a quarter of the bytes.

Every duration is **simulated** seconds, so results are exactly
reproducible -- the CI smoke test (``pytest -m bench -m lod``) can hold
the floors without flaking on machine noise.  The full-tier scenarios
digest every byte served; the digests must agree across scenarios *and*
with a deployment built without any LOD layer at all (the sibling tier
may never perturb exact reads).  The LOD scenarios additionally verify
the decoded coarse coordinates stay within the advertised
:meth:`~repro.core.middleware.ADA.lod_bound` of the exact ones.

The backward and skip patterns double as regression scenarios for the
prefetcher's pattern detectors: rewind confirms a negative exact stride,
and the skip browse never repeats a stride at all -- only the
direction-only detector keeps readahead live there -- so the record
carries the prefetcher counters (``issued``, ``issued_direction``) for
every scenario.

The record is written to ``benchmarks/results/BENCH_lod.json`` (one
canonical copy; ``python -m repro bench-lod --json -o PATH`` overrides).
``FLOORS`` holds the regression gates (LOD bytes/frame <= 0.35x full,
coarse forward scrub >= 2x faster than exact).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import ADA
from repro.core.lod import DEFAULT_LOD_PRECISION, lod_tag
from repro.errors import ConfigurationError
from repro.formats.xtc import decode_raw, decode_xtc
from repro.fs.cache import BlockCache
from repro.fs.localfs import LocalFS
from repro.harness.calibration import E5_2603V4
from repro.sim import Simulator
from repro.storage.hdd import WD_1TB_HDD
from repro.units import to_mb
from repro.workloads import build_workload

__all__ = ["FLOORS", "render_lod_bench", "run_lod_bench"]

SCHEMA_VERSION = 1

#: Regression gates the bench (and the ``-m bench`` smoke test) enforces.
FLOORS = {
    "lod_bytes_per_frame_ratio": 0.35,  # coarse layer <= 0.35x full bytes
    "scrub_lod_speedup": 2.0,  # coarse forward scrub at least doubles
}

#: The playback tag: protein subsets are what interactive scrubbing loads.
PLAYBACK_TAG = "p"


def _chunked_dataset(
    natoms: int, nchunks: int, frames_per_chunk: int, seed: int
) -> Tuple[str, List[bytes]]:
    """One PDB plus ``nchunks`` raw-container trajectory chunks."""
    from repro.formats.xtc import encode_raw

    workload = build_workload(
        natoms=natoms, nframes=nchunks * frames_per_chunk, seed=seed
    )
    trajectory = workload.trajectory
    blobs = [
        encode_raw(
            trajectory.slice_frames(
                i * frames_per_chunk, (i + 1) * frames_per_chunk
            )
        )
        for i in range(nchunks)
    ]
    return workload.pdb_text, blobs


def _build_ada(sim: Simulator, lod_precision: Optional[float]) -> ADA:
    """Rotating-disk deployment with cache + prefetch: the scrubbing
    scenario the LOD tier exists to make cheap."""
    return ADA(
        sim,
        backends={"hdd": LocalFS(sim, WD_1TB_HDD, name="hdd")},
        block_cache=BlockCache(sim),
        prefetch=True,
        lod_precision=lod_precision,
    )


def _ingest(ada: ADA, logical: str, pdb_text: str, blobs: List[bytes]) -> None:
    sim = ada.sim
    sim.run_process(ada.ingest(logical, pdb_text, blobs[0]))
    for blob in blobs[1:]:
        sim.run_process(ada.ingest_append(logical, blob))


def _scrub_windows(
    pattern: str, nchunks: int, window_chunks: int
) -> List[List[int]]:
    """The chunk windows one scrub pass visits, in visit order."""
    starts = list(range(0, nchunks, window_chunks))
    if pattern == "scrub":
        ordered = starts
    elif pattern == "backward":
        ordered = list(reversed(starts))
    elif pattern == "skip":
        # Jumpy forward browse: alternating jumps of 2 and 3 windows, so
        # no exact stride ever repeats -- only the prefetcher's
        # direction-only detector can keep readahead live here.
        ordered, i, jump = [], 0, 2
        while i < len(starts):
            ordered.append(starts[i])
            i += jump
            jump = 5 - jump
    else:
        raise ConfigurationError(f"unknown scrub pattern {pattern!r}")
    return [
        list(range(s, min(s + window_chunks, nchunks))) for s in ordered
    ]


def _playback(
    ada: ADA,
    logical: str,
    windows: Sequence[List[int]],
    precision: str,
) -> Tuple[float, int, str]:
    """One scrub pass; returns (simulated seconds, bytes served, digest).

    Per window the consumer pays the calibrated single-thread CPU time
    to scan and render the served bytes (Xeon E5-2603 v4 rates, Table
    4) -- a coarse window is cheaper end to end, not just on the wire.
    """
    sim = ada.sim
    digest = hashlib.sha256()
    served = 0

    def consumer():
        nonlocal served
        for window in windows:
            objs = yield from ada.fetch_chunks(
                logical, PLAYBACK_TAG, window, precision=precision
            )
            nbytes = 0
            for obj in objs:
                digest.update(obj.data)
                nbytes += obj.nbytes
            served += nbytes
            yield sim.timeout(nbytes / E5_2603V4.scan_rate)
            yield sim.timeout(nbytes / E5_2603V4.render_rate)

    started = sim.now
    sim.run_process(consumer())
    return sim.now - started, served, digest.hexdigest()


def _max_lod_error(ada: ADA, logical: str, chunks: Sequence[int]) -> float:
    """Measured per-coordinate error of the coarse tier on sample chunks."""
    sim = ada.sim
    worst = 0.0
    for chunk in chunks:
        full, coarse = sim.run_process(
            ada.fetch_chunks(logical, PLAYBACK_TAG, [chunk])
        ), sim.run_process(
            ada.fetch_chunks(logical, PLAYBACK_TAG, [chunk], precision="lod")
        )
        exact = decode_raw(full[0].data).coords
        approx = decode_xtc(coarse[0].data).coords
        worst = max(worst, float(np.abs(approx - exact).max()))
    return worst


def run_lod_bench(
    natoms: int = 1200,
    nchunks: int = 64,
    frames_per_chunk: int = 60,
    window_chunks: int = 8,
    seed: int = 7,
    lod_precision: float = DEFAULT_LOD_PRECISION,
    precision: str = "both",
) -> dict:
    """Measure the scrub matrix across both tiers; returns the JSON record.

    ``precision`` restricts the matrix (``"full"``/``"lod"``/``"both"``);
    the floors only gate a ``"both"`` run, since they compare the tiers.
    """
    if precision not in ("full", "lod", "both"):
        raise ConfigurationError(
            f"precision must be 'full', 'lod', or 'both', got {precision!r}"
        )
    logical = "scrub.xtc"
    pdb_text, blobs = _chunked_dataset(natoms, nchunks, frames_per_chunk, seed)
    nframes = nchunks * frames_per_chunk
    tiers = ("full", "lod") if precision == "both" else (precision,)

    # Baseline deployment with no LOD layer at all: its full-tier digest
    # pins that the sibling tier never perturbs exact bytes.
    sim = Simulator()
    bare = _build_ada(sim, lod_precision=None)
    _ingest(bare, logical, pdb_text, blobs)
    _, _, bare_digest = _playback(
        bare, logical, _scrub_windows("scrub", nchunks, window_chunks), "full"
    )

    scenarios: Dict[str, Dict[str, object]] = {}
    full_digests = {"bare_scrub": bare_digest}
    ada = None
    for tier in tiers:
        for pattern in ("scrub", "backward", "skip"):
            # Fresh deployment per scenario: every pass is a cold cache.
            sim = Simulator()
            ada = _build_ada(sim, lod_precision=lod_precision)
            _ingest(ada, logical, pdb_text, blobs)
            windows = _scrub_windows(pattern, nchunks, window_chunks)
            elapsed, served, digest = _playback(ada, logical, windows, tier)
            name = f"{pattern}_{tier}"
            scenarios[name] = {
                "playback_s": round(elapsed, 6),
                "served_mb": round(to_mb(served), 3),
                "prefetcher": {
                    k: ada.prefetcher.stats()[k]
                    for k in ("issued", "issued_direction", "chunks_requested")
                },
            }
            if name == "scrub_full":
                # Same visit order as the bare deployment's pass: byte-for-
                # byte agreement proves the LOD layer never touches the
                # exact tier.  (Backward/skip passes digest a different
                # visit order, so they pin nothing here.)
                full_digests[name] = digest

    full_bpf = ada.subset_nbytes(logical, PLAYBACK_TAG) / nframes
    lod_bpf = ada.subset_nbytes(logical, lod_tag(PLAYBACK_TAG)) / nframes
    bytes_ratio = lod_bpf / full_bpf
    advertised = ada.lod_bound(logical)
    measured_error = _max_lod_error(ada, logical, (0, nchunks // 2))

    identical = len(set(full_digests.values())) == 1
    record = {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "natoms": natoms,
            "nchunks": nchunks,
            "frames_per_chunk": frames_per_chunk,
            "window_chunks": window_chunks,
            "lod_precision": lod_precision,
            "seed": seed,
        },
        "scenarios": scenarios,
        "bytes_per_frame": {
            "full": round(full_bpf, 1),
            "lod": round(lod_bpf, 1),
            "ratio": round(bytes_ratio, 4),
        },
        "error_bound": {
            "advertised": advertised,
            "measured": measured_error,
            "within": measured_error <= advertised,
        },
        "floors": dict(FLOORS),
        "identical": identical,
    }
    if precision == "both":
        speedups = {
            pattern: round(
                scenarios[f"{pattern}_full"]["playback_s"]
                / scenarios[f"{pattern}_lod"]["playback_s"],
                2,
            )
            for pattern in ("scrub", "backward", "skip")
        }
        record["lod_speedup"] = speedups
        record["pass"] = (
            identical
            and record["error_bound"]["within"]
            and bytes_ratio <= FLOORS["lod_bytes_per_frame_ratio"]
            and speedups["scrub"] >= FLOORS["scrub_lod_speedup"]
        )
        # Registry snapshot of the last LOD deployment: the lod_* counters
        # are the observable trace of tiered serving.
        record["lod"] = ada.lod_stats()
    else:
        record["pass"] = identical and record["error_bound"]["within"]
    return record


def render_lod_bench(result: dict) -> str:
    """Human-readable summary of a :func:`run_lod_bench` record."""
    w = result["workload"]
    s = result["scenarios"]
    bpf = result["bytes_per_frame"]
    lines = [
        "Precision-selective scrubbing (simulated playback seconds)",
        f"  workload: {w['nchunks']} chunks x {w['frames_per_chunk']} frames"
        f" ({w['natoms']} atoms, window {w['window_chunks']} chunks,"
        f" lod precision {w['lod_precision']})",
        f"  bytes/frame: full {bpf['full']:.0f}, lod {bpf['lod']:.0f}"
        f" (ratio {bpf['ratio']})",
    ]
    for name in sorted(s):
        lines.append(f"  {name}: {s[name]['playback_s']:.3f} s"
                     f" ({s[name]['served_mb']} MB)")
    if "lod_speedup" in result:
        sp = result["lod_speedup"]
        lines.append(
            "  lod speedup: "
            + ", ".join(f"{k} {v}x" for k, v in sorted(sp.items()))
        )
    err = result["error_bound"]
    lines += [
        f"  error: measured {err['measured']:.6f}"
        f" <= advertised {err['advertised']:.6f}: {err['within']}",
        f"  floors: bytes ratio <= "
        f"{result['floors']['lod_bytes_per_frame_ratio']}, scrub speedup >= "
        f"{result['floors']['scrub_lod_speedup']}x",
        f"  full tier bit-identical (incl. no-LOD deployment): "
        f"{result['identical']}",
        f"  pass: {result['pass']}",
    ]
    return "\n".join(lines)
