"""Reproduction scorecard: every headline claim, checked in one pass.

``python -m repro scorecard`` runs each of the paper's quantitative claims
against the model and prints PASS/FAIL with the measured value -- the
machine-checkable version of EXPERIMENTS.md.  The tolerance bands match
the regression tests in ``tests/harness/test_scenarios.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.harness.platforms import fat_node, small_cluster, ssd_server
from repro.harness.profilecpu import modeled_cpu_profile
from repro.harness.report import Table
from repro.harness.runner import run_point
from repro.units import to_kj

__all__ = ["Claim", "CLAIMS", "run_scorecard", "render_scorecard"]


@dataclass(frozen=True)
class Claim:
    """One quantitative statement from the paper."""

    key: str
    source: str  # where in the paper
    statement: str
    check: Callable[[], Tuple[str, bool]]


def _fig7b_13x() -> Tuple[str, bool]:
    c = run_point(ssd_server, "C-trad", 5_006)
    p = run_point(ssd_server, "D-ada-p", 5_006)
    ratio = c.turnaround_s / p.turnaround_s
    return f"{ratio:.1f}x", 11.0 < ratio < 16.0


def _fig7b_ada_all_equals_d() -> Tuple[str, bool]:
    a = run_point(ssd_server, "D-ada-all", 5_006)
    d = run_point(ssd_server, "D-trad", 5_006)
    ratio = a.turnaround_s / d.turnaround_s
    return f"{ratio:.3f}x", 0.95 < ratio < 1.05


def _fig7c_memory() -> Tuple[str, bool]:
    c = run_point(ssd_server, "C-trad", 5_006)
    p = run_point(ssd_server, "D-ada-p", 5_006)
    ratio = c.peak_memory_nbytes / p.peak_memory_nbytes
    return f"{ratio:.2f}x", ratio > 2.5


def _fig8_decompress_share() -> Tuple[str, bool]:
    share = modeled_cpu_profile(5_006, "C-trad").fraction("decompress")
    return f"{100 * share:.0f}%", share > 0.5


def _fig9a_retrieval() -> Tuple[str, bool]:
    d = run_point(small_cluster, "D-trad", 6_256)
    a = run_point(small_cluster, "D-ada-all", 6_256)
    ratio = d.retrieval_s / a.retrieval_s
    return f"{ratio:.2f}x", ratio > 2.0


def _fig9b_9x() -> Tuple[str, bool]:
    d = run_point(small_cluster, "D-trad", 6_256)
    p = run_point(small_cluster, "D-ada-p", 6_256)
    ratio = d.turnaround_s / p.turnaround_s
    return f"{ratio:.1f}x", 7.0 < ratio < 12.0


def _fig10_kills() -> Tuple[str, bool]:
    kills = (
        run_point(fat_node, "C-trad", 1_876_800).killed,
        run_point(fat_node, "D-ada-all", 1_876_800).killed,
        run_point(fat_node, "D-ada-p", 4_379_200).killed,
        run_point(fat_node, "D-ada-p", 5_004_800).killed,
    )
    ok = kills == (True, True, False, True)
    return f"kills={kills}", ok


def _fig10_2x_graphs() -> Tuple[str, bool]:
    xfs_ok = not run_point(fat_node, "C-trad", 1_564_000).killed
    ada_ok = not run_point(fat_node, "D-ada-p", 2 * 1_876_800).killed
    return "ADA renders >2x XFS's max frames", xfs_ok and ada_ok


def _fig10a_retrieval_share() -> Tuple[str, bool]:
    r = run_point(fat_node, "C-trad", 1_564_000)
    share = r.retrieval_s / r.turnaround_s
    return f"{100 * share:.1f}%", share < 0.10


def _fig10d_energy() -> Tuple[str, bool]:
    xfs = run_point(fat_node, "C-trad", 1_564_000)
    ada = run_point(fat_node, "D-ada-p", 1_564_000)
    ratio = xfs.energy_j / ada.energy_j
    return (
        f"XFS {to_kj(xfs.energy_j):,.0f} kJ vs ADA {to_kj(ada.energy_j):,.0f} kJ "
        f"({ratio:.1f}x)",
        ratio > 3.0 and xfs.energy_j > 10_000e3,
    )


def _table2_sizes() -> Tuple[str, bool]:
    from repro.units import MB
    from repro.workloads import SizingModel

    d = SizingModel.paper().dataset(5_006)
    ok = (
        abs(d.compressed_nbytes - 800 * MB) < 0.015 * 800 * MB
        and abs(d.protein_nbytes - 1_108 * MB) < 0.015 * 1_108 * MB
        and abs(d.raw_nbytes - 2_612 * MB) < 0.015 * 2_612 * MB
    )
    return (
        f"{d.compressed_nbytes / MB:,.0f}/{d.protein_nbytes / MB:,.0f}/"
        f"{d.raw_nbytes / MB:,.0f} MB",
        ok,
    )


def _fig7a_ordering() -> Tuple[str, bool]:
    r = {
        k: run_point(ssd_server, k, 5_006).retrieval_s
        for k in ("C-trad", "D-trad", "D-ada-all", "D-ada-p")
    }
    ok = (
        r["C-trad"] < r["D-ada-p"] < r["D-trad"] < r["D-ada-all"]
        and r["D-ada-all"] < 1.2 * r["D-trad"]
    )
    return (
        "C < ADA(p) < D-ext4 < ADA(all), ADA(all) within 20% of D-ext4",
        ok,
    )


def _fig9b_widening() -> Tuple[str, bool]:
    def gap(nframes):
        c = run_point(small_cluster, "C-trad", nframes)
        p = run_point(small_cluster, "D-ada-p", nframes)
        return c.turnaround_s - p.turnaround_s

    small, large = gap(626), gap(6_256)
    return f"gap {small:.1f}s -> {large:.1f}s", large > 5 * small


CLAIMS: List[Claim] = [
    Claim("table2-sizes", "Table 2",
          "5,006 frames = 800 MB compressed / 1,108 MB protein / 2,612 MB raw",
          _table2_sizes),
    Claim("fig7a-ordering", "Fig. 7a",
          "C-ext4 best retrieval; D-ADA(all) slightly slower than D-ext4",
          _fig7a_ordering),
    Claim("fig7b-13.4x", "Fig. 7b / abstract",
          "turnaround up to 13.4x better than C-ext4", _fig7b_13x),
    Claim("fig7b-ada-all", "Fig. 7b",
          "D-ADA(all) performs the same as D-ext4", _fig7b_ada_all_equals_d),
    Claim("fig7c-2.5x", "Fig. 7c / abstract",
          "ext4 memory usage over 2.5x ADA's", _fig7c_memory),
    Claim("fig8-50pct", "Fig. 8",
          "decompression >50% of the CPU burst", _fig8_decompress_share),
    Claim("fig9a-2x", "Fig. 9a",
          "ADA retrieval >2x better than PVFS", _fig9a_retrieval),
    Claim("fig9b-9x", "Fig. 9b",
          "D-PVFS turnaround 9x D-ADA(protein) at 6,256 frames", _fig9b_9x),
    Claim("fig9b-widening", "Fig. 9b / §4.2",
          "the compressed-vs-ADA gap widens as frame count grows",
          _fig9b_widening),
    Claim("fig10-kills", "Fig. 10",
          "OOM kills at 1,876,800 (XFS, ADA-all) and 5,004,800 (ADA-protein)",
          _fig10_kills),
    Claim("fig10-2x-graphs", "abstract",
          "1TB server renders more than 2x VMD graphs with ADA", _fig10_2x_graphs),
    Claim("fig10a-10pct", "§4.3",
          "raw retrieval <10% of turnaround at 1,564,000 frames",
          _fig10a_retrieval_share),
    Claim("fig10d-3x", "Fig. 10d / abstract",
          "XFS consumes more than 3x energy compared to ADA", _fig10d_energy),
]


def run_scorecard() -> List[Tuple[Claim, str, bool]]:
    """Evaluate every claim; returns ``(claim, measured, passed)`` rows."""
    return [(claim, *claim.check()) for claim in CLAIMS]


def render_scorecard() -> str:
    """The scorecard as a printable table (plus a final verdict line)."""
    rows = run_scorecard()
    table = Table(
        ["claim", "source", "paper statement", "measured", "verdict"],
        title="Reproduction scorecard",
    )
    for claim, measured, passed in rows:
        table.add_row(
            claim.key, claim.source, claim.statement, measured,
            "PASS" if passed else "FAIL",
        )
    passed = sum(1 for _, _, ok in rows if ok)
    return f"{table.render()}\n\n{passed}/{len(rows)} claims reproduced"
