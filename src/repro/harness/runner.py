"""Experiment runner: sweeps scenarios across frame counts.

Each (scenario, frame-count) point gets a *fresh* platform -- the paper
reboots between measurements; we rebuild the DES world, which is cheap in
modeled mode -- so no state leaks between points.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.harness.platforms import Platform
from repro.harness.scenarios import SCENARIOS, RunResult, ScenarioPipeline
from repro.workloads.virtual import SizingModel, VirtualDataset

__all__ = ["run_point", "run_sweep"]


def run_point(
    platform_factory: Callable[[], Platform],
    scenario_key: str,
    nframes: int,
    sizing: Optional[SizingModel] = None,
) -> RunResult:
    """Run one scenario at one frame count on a fresh platform."""
    sizing = sizing or SizingModel.paper()
    platform = platform_factory()
    pipeline = ScenarioPipeline(platform, sizing.dataset(nframes))
    return pipeline.run(scenario_key)


def run_sweep(
    platform_factory: Callable[[], Platform],
    frame_counts: Sequence[int],
    scenario_keys: Optional[Iterable[str]] = None,
    sizing: Optional[SizingModel] = None,
) -> List[RunResult]:
    """Run a full figure: every scenario at every frame count.

    Results are ordered scenario-major, frame-minor (one line per series).
    """
    keys = list(scenario_keys) if scenario_keys is not None else list(SCENARIOS)
    results: List[RunResult] = []
    for key in keys:
        for nframes in frame_counts:
            results.append(
                run_point(platform_factory, key, nframes, sizing=sizing)
            )
    return results
