"""Machine-readable figure data (CSV).

Downstream users want the numbers, not just pretty tables: this module
flattens sweep results into CSV rows (one per scenario x frame count) so
the figures can be re-plotted with any tool.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List

from repro.harness.scenarios import SCENARIOS, RunResult

__all__ = ["results_to_csv", "CSV_FIELDS"]

CSV_FIELDS: List[str] = [
    "scenario",
    "scenario_label",
    "nframes",
    "loaded_nbytes",
    "raw_nbytes",
    "retrieval_s",
    "turnaround_s",
    "peak_memory_nbytes",
    "energy_j",
    "killed",
    "killed_phase",
]


def results_to_csv(results: Iterable[RunResult], fs_label: str = "FS") -> str:
    """Serialize sweep results as CSV text (header + one row per point)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for r in results:
        writer.writerow(
            {
                "scenario": r.scenario,
                "scenario_label": SCENARIOS[r.scenario].display(fs_label),
                "nframes": r.nframes,
                "loaded_nbytes": r.loaded_nbytes,
                "raw_nbytes": r.raw_nbytes,
                "retrieval_s": f"{r.retrieval_s:.6f}",
                "turnaround_s": f"{r.turnaround_s:.6f}",
                "peak_memory_nbytes": f"{r.peak_memory_nbytes:.0f}",
                "energy_j": f"{r.energy_j:.1f}",
                "killed": int(r.killed),
                "killed_phase": r.killed_phase or "",
            }
        )
    return buffer.getvalue()
