"""Multi-client experiments: K VMD sessions sharing one storage system.

The paper evaluates one client at a time; its closing remark that ADA
"can help an application better utilize the I/O bandwidth ... of a
computing platform" begs the K-client question.  :func:`run_concurrent`
runs K copies of one scenario pipeline concurrently against a single
platform -- clients model distinct compute nodes (independent memory and
CPU pipelines) contending for the shared storage and network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.errors import ConfigurationError
from repro.harness.platforms import Platform
from repro.harness.scenarios import SCENARIOS, ScenarioPipeline
from repro.sim import AllOf
from repro.workloads.virtual import SizingModel, VirtualDataset

__all__ = ["ConcurrentResult", "run_concurrent"]


@dataclass(frozen=True)
class ConcurrentResult:
    """Outcome of a K-client run."""

    scenario: str
    nframes: int
    nclients: int
    makespan_s: float  # last client's completion
    first_finish_s: float  # an uncontended client would see ~this
    killed_clients: int

    @property
    def stretch(self) -> float:
        """Makespan relative to the fastest client (contention factor)."""
        return self.makespan_s / self.first_finish_s if self.first_finish_s else 1.0


def run_concurrent(
    platform_factory: Callable[[], Platform],
    scenario_key: str,
    nframes: int,
    nclients: int,
    sizing: SizingModel = None,
) -> ConcurrentResult:
    """Run ``nclients`` copies of one scenario concurrently.

    Each client gets its own memory budget and CPU pipeline slot (distinct
    compute nodes); storage devices and links are shared and contended.
    """
    if nclients < 1:
        raise ConfigurationError("need at least one client")
    if scenario_key not in SCENARIOS:
        raise ConfigurationError(f"unknown scenario {scenario_key!r}")
    platform = platform_factory()
    dataset = (sizing or SizingModel.paper()).dataset(nframes)
    pipeline = ScenarioPipeline(platform, dataset)
    pipeline.seed()
    pipeline._reset_measurements()

    # Clients live on separate compute nodes: each gets its own memory
    # ledger (node-sized) and a CPU pipeline slot of its own.
    from repro.cluster.memory import MemoryLedger

    platform.compute.pipeline.capacity = nclients

    sim = platform.sim
    runner = {
        "C-trad": pipeline._run_c_trad,
        "D-trad": pipeline._run_d_trad,
        "D-ada-all": pipeline._run_ada_all,
        "D-ada-p": pipeline._run_ada_protein,
    }[scenario_key]
    states = [
        {
            "retrieval_s": 0.0,
            "killed": False,
            "killed_phase": None,
            "memory": MemoryLedger(platform.compute.memory.capacity),
        }
        for _ in range(nclients)
    ]
    t0 = sim.now
    finishes: List[float] = []

    def client(i):
        yield from pipeline._guarded(runner(states[i], t0), states[i])
        finishes.append(sim.now - t0)

    procs = [sim.process(client(i), name=f"client{i}") for i in range(nclients)]

    def barrier():
        yield AllOf(sim, procs)

    sim.run_process(barrier())
    return ConcurrentResult(
        scenario=scenario_key,
        nframes=nframes,
        nclients=nclients,
        makespan_s=sim.now - t0,
        first_finish_s=min(finishes) if finishes else 0.0,
        killed_clients=sum(1 for s in states if s["killed"]),
    )
