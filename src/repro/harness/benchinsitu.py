"""In-situ analysis benchmark: fused streaming analysis vs. analyze-later.

``run_insitu_bench`` ingests one GOF-chunked GPCR-like trajectory stream
into the rotating-disk deployment three ways:

* ``pipelined`` -- the plain write-behind ingest pipeline, no analysis:
  the baseline the fused path's *overhead* gate is measured against;
* ``fused``     -- the same ingest with an :class:`InSituAnalysis` hook
  fused in as the third overlapped stage: every window's decoded
  coordinates are analyzed before its buffers are released, charged on
  the storage node's analysis slot and overlapped with the next window's
  CPU work and the previous window's dispatch;
* ``post_hoc``  -- the traditional schedule: plain ingest, then read the
  whole dataset back (:meth:`ADA.fetch_merged`) and pay the batch
  analysis pass afterwards -- the decompress-again-later baseline the
  in-situ literature argues against.

Every duration is **simulated** seconds, so results are exactly
reproducible and the CI smoke test (``pytest -m bench``) can hold the
floors without flaking on machine noise.  The gates:

* the fused path's ingest overhead over ``pipelined`` stays under
  ``FLOORS['fused_overhead_max_frac']`` (< 15 %);
* fused and plain ingest leave **bit-identical** backend stores (the
  analysis stage moves *when* things happen, never what is stored);
* the fused online results are **exact** against the batch operators run
  on the merged read-back trajectory (OnlineStats rows within the
  documented ``STATS_RTOL``/``STATS_ATOL``);
* time-to-results (ingest start -> analysis available) beats the
  post-hoc schedule by ``FLOORS['vs_post_hoc_min_speedup']``.

The record is written to ``benchmarks/results/BENCH_insitu.json`` (one
canonical copy; ``python -m repro bench-insitu --json -o PATH``
overrides).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

from repro.analysis import (
    STATS_ATOL,
    STATS_RTOL,
    InSituAnalysis,
    block_average,
    contact_count,
    end_to_end_distance,
    gyration_radius,
    mean_square_displacement,
    native_contact_fraction,
    rmsd_trajectory,
)
from repro.cluster.node import ComputeNode
from repro.core import ADA, IngestPipelineConfig
from repro.harness.calibration import E5_2603V4
from repro.fs.localfs import LocalFS
from repro.sim import Simulator
from repro.storage.hdd import WD_1TB_HDD
from repro.storage.power import NodePower
from repro.units import to_mb
from repro.workloads import build_workload

__all__ = ["FLOORS", "render_insitu_bench", "run_insitu_bench"]

SCHEMA_VERSION = 1

#: Regression gates the bench (and the ``-m bench`` smoke test) enforces.
FLOORS = {
    # Fused ingest may cost at most this fraction over plain pipelined
    # ingest -- the analysis stage must overlap, not serialize.
    "fused_overhead_max_frac": 0.15,
    # Time-to-results must beat ingest + read-back + batch analysis.
    "vs_post_hoc_min_speedup": 1.02,
}


def _build_ada(sim: Simulator) -> ADA:
    """The bench-ingest rotating-disk deployment with one storage CPU."""
    cpu = ComputeNode(
        sim, "storage0", E5_2603V4, memory_capacity=64 << 30,
        power=NodePower(idle_w=330.0, cpu_active_w=60.0, io_active_w=10.0),
    )
    return ADA(
        sim,
        backends={"hdd": LocalFS(sim, WD_1TB_HDD, name="hdd")},
        storage_cpu=cpu,
    )


def _store_digest(ada: ADA) -> str:
    """SHA-256 over every backend's full contents (paths and bytes)."""
    digest = hashlib.sha256()
    for name in sorted(ada.plfs.backends):
        fs = ada.plfs.backends[name]
        for path in sorted(fs.store.walk()):
            digest.update(name.encode())
            digest.update(path.encode())
            digest.update(fs.store.data(path))
    return digest.hexdigest()


def _ingest(workload, config, analysis=None):
    sim = Simulator()
    ada = _build_ada(sim)
    started = sim.now
    receipt = sim.run_process(
        ada.ingest_stream(
            "stream.xtc", workload.xtc_blob, pdb_text=workload.pdb_text,
            config=config, analysis=analysis,
        )
    )
    return sim, ada, receipt, sim.now - started


def _batch_results(trajectory) -> Dict[str, np.ndarray]:
    """The batch-operator results the fused online state must reproduce."""
    return {
        "rmsd": rmsd_trajectory(trajectory),
        "contacts": contact_count(trajectory),
        "native_fraction": native_contact_fraction(trajectory),
        "gyration_radius": gyration_radius(trajectory),
        "end_to_end": end_to_end_distance(trajectory),
        "msd": mean_square_displacement(trajectory),
    }


def _stats_match(online_stats: Dict[str, object], series: np.ndarray) -> bool:
    """Do the streaming block rows match batch block averaging?"""
    rows = online_stats["blocks"]
    batch_rows = block_average(series)
    if len(rows) != len(batch_rows):
        return False
    for online, batch in zip(rows, batch_rows):
        if online.block_size != batch.block_size:
            return False
        if online.nblocks != batch.nblocks:
            return False
        if not np.isclose(
            online.mean, batch.mean, rtol=STATS_RTOL, atol=STATS_ATOL
        ):
            return False
        if not np.isclose(
            online.stderr, batch.stderr, rtol=STATS_RTOL, atol=STATS_ATOL
        ):
            return False
    return True


def run_insitu_bench(
    natoms: int = 1000,
    nframes: int = 160,
    keyframe_interval: int = 8,
    window_frames: int = 8,
    depth: int = 4,
    seed: int = 7,
) -> dict:
    """Measure fused in-situ analysis against its two baselines."""
    workload = build_workload(
        natoms=natoms, nframes=nframes, seed=seed,
        keyframe_interval=keyframe_interval,
    )
    config = IngestPipelineConfig(window_frames=window_frames, depth=depth)

    # Plain pipelined ingest: the overhead baseline.
    _, ada_plain, _, plain_s = _ingest(workload, config)

    # Fused: the in-situ hook rides the third pipeline stage.
    hook = InSituAnalysis()
    _, ada_fused, receipt, fused_s = _ingest(workload, config, analysis=hook)
    fused_stats = ada_fused.stats()["ingest"]

    # Post hoc: plain ingest, then read everything back and pay the
    # batch analysis scan afterwards on the same storage CPU.
    sim_ph, ada_ph, _, ph_ingest_s = _ingest(workload, config)
    t0 = sim_ph.now
    merged = sim_ph.run_process(ada_ph.fetch_merged("stream.xtc"))
    readback_s = sim_ph.now - t0
    t0 = sim_ph.now
    sim_ph.run_process(
        ada_ph.storage_cpu.scan(merged.nbytes, label="batch-analysis")
    )
    batch_scan_s = sim_ph.now - t0
    post_hoc_s = ph_ingest_s + readback_s + batch_scan_s

    # Equivalence: online results vs. batch operators on the read-back
    # trajectory (per-frame operators exact; stats within tolerance).
    batch = _batch_results(merged)
    online = receipt.analysis
    exact = all(
        np.array_equal(online[name], batch[name]) for name in batch
    )
    stats_ok = all(
        _stats_match(online["stats"][name], batch[name])
        for name in online["stats"]
    )
    equivalent = exact and stats_ok and online["frames"] == merged.nframes

    identical = _store_digest(ada_plain) == _store_digest(ada_fused)
    overhead_frac = (fused_s - plain_s) / plain_s if plain_s > 0 else 0.0
    speedup_vs_post_hoc = post_hoc_s / fused_s if fused_s > 0 else 0.0
    passed = (
        identical
        and equivalent
        and overhead_frac < FLOORS["fused_overhead_max_frac"]
        and speedup_vs_post_hoc >= FLOORS["vs_post_hoc_min_speedup"]
    )
    raw_nbytes = nframes * natoms * 12
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "natoms": natoms,
            "nframes": nframes,
            "keyframe_interval": keyframe_interval,
            "window_frames": window_frames,
            "depth": depth,
            "windows": fused_stats["windows"],
            "raw_mb": round(to_mb(raw_nbytes), 3),
            "seed": seed,
        },
        "scenarios": {
            "pipelined": {"ingest_s": round(plain_s, 6)},
            "fused": {
                "ingest_s": round(fused_s, 6),
                "analysis_seconds": round(fused_stats["analysis_seconds"], 6),
                "overlap_ratio": round(fused_stats["overlap_ratio"], 4),
                "frames_analyzed": online["frames"],
                "operators": sorted(
                    k for k in online
                    if k not in (
                        "frames", "windows", "replays_ignored", "stats"
                    )
                ),
            },
            "post_hoc": {
                "ingest_s": round(ph_ingest_s, 6),
                "readback_s": round(readback_s, 6),
                "batch_scan_s": round(batch_scan_s, 6),
                "total_s": round(post_hoc_s, 6),
            },
        },
        "fused_overhead_frac": round(overhead_frac, 4),
        "speedup_vs_post_hoc": round(speedup_vs_post_hoc, 2),
        "floors": dict(FLOORS),
        "tolerance": {"stats_rtol": STATS_RTOL, "stats_atol": STATS_ATOL},
        "identical": identical,
        "equivalent": equivalent,
        "pass": passed,
        # Full registry snapshot of the fused deployment (the scenario
        # that exercises ingest + analysis metric families at once).
        "metrics": ada_fused.metrics.to_json(),
    }


def render_insitu_bench(result: dict) -> str:
    """Human-readable summary of a :func:`run_insitu_bench` record."""
    w = result["workload"]
    s = result["scenarios"]
    fused = s["fused"]
    ph = s["post_hoc"]
    lines = [
        "In-situ streaming analysis (simulated seconds)",
        f"  workload: {w['raw_mb']} MB raw, {w['windows']} windows of "
        f"~{w['window_frames']} frames ({w['natoms']} atoms)",
        f"  pipelined ingest (no analysis): {s['pipelined']['ingest_s']:.3f} s",
        f"  fused in-situ ingest: {fused['ingest_s']:.3f} s "
        f"(+{100 * result['fused_overhead_frac']:.1f}% overhead, "
        f"overlap {fused['overlap_ratio']})",
        f"  analysis stage: {fused['analysis_seconds']:.3f} s over "
        f"{fused['frames_analyzed']} frames "
        f"({', '.join(fused['operators'])})",
        f"  post hoc (ingest + readback + batch scan): {ph['total_s']:.3f} s "
        f"= {ph['ingest_s']:.3f} + {ph['readback_s']:.3f} "
        f"+ {ph['batch_scan_s']:.3f}",
        f"  time-to-results speedup vs post hoc: "
        f"{result['speedup_vs_post_hoc']}x "
        f"(floor {result['floors']['vs_post_hoc_min_speedup']}x)",
        f"  overhead floor: < "
        f"{100 * result['floors']['fused_overhead_max_frac']:.0f}%",
        f"  bit-identical stores (plain vs fused): {result['identical']}",
        f"  online == batch (exact; stats in tolerance): "
        f"{result['equivalent']}",
        f"  pass: {result['pass']}",
    ]
    return "\n".join(lines)
