"""CPU-burst profiling (Fig. 8).

The paper profiles the traditional pipeline with a Flame Graph and finds
"data decompression weights more than 50% of the CPU burst time for VMD to
build 3D graphics in ext4".  Two views are provided:

* :func:`modeled_cpu_profile` -- per-phase CPU seconds from the calibrated
  rate model at any frame count (what the figure plots at paper scale);
* :func:`measured_cpu_profile` -- real ``perf_counter`` phase timings of
  the *actual* Python pipeline (codec inflate -> filter -> geometry) on a
  materialized workload, demonstrating the same shape on live code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.node import CpuSpec
from repro.harness.calibration import E5_2603V4
from repro.vmd.loader import TrajectoryLoader
from repro.vmd.molecule import Molecule
from repro.vmd.render import GeometryBuilder
from repro.workloads.gpcr import GpcrWorkload, build_workload
from repro.workloads.virtual import SizingModel

__all__ = ["CpuProfile", "modeled_cpu_profile", "measured_cpu_profile"]


@dataclass
class CpuProfile:
    """Per-phase CPU seconds of one pipeline run."""

    pipeline: str  # "C-trad" or "D-ada-p"
    phases: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def fraction(self, phase: str) -> float:
        return self.phases.get(phase, 0.0) / self.total if self.total else 0.0

    def rows(self):
        """(phase, seconds, percent) rows, flame-graph style (widest first)."""
        return [
            (phase, seconds, 100.0 * seconds / self.total if self.total else 0.0)
            for phase, seconds in sorted(
                self.phases.items(), key=lambda kv: -kv[1]
            )
        ]


def modeled_cpu_profile(
    nframes: int,
    pipeline: str = "C-trad",
    cpu: CpuSpec = E5_2603V4,
    sizing: Optional[SizingModel] = None,
) -> CpuProfile:
    """Phase seconds from the calibrated rate model."""
    d = (sizing or SizingModel.paper()).dataset(nframes)
    if pipeline == "C-trad":
        phases = {
            "decompress": d.raw_nbytes / cpu.decompress_rate,
            "render": d.protein_nbytes / cpu.render_rate,
        }
    elif pipeline == "D-trad":
        phases = {
            "filter": d.raw_nbytes / cpu.scan_rate,
            "render": d.protein_nbytes / cpu.render_rate,
        }
    elif pipeline == "D-ada-p":
        phases = {"render": d.protein_nbytes / cpu.render_rate}
    else:
        raise ValueError(f"unknown pipeline {pipeline!r}")
    return CpuProfile(pipeline=pipeline, phases=phases)


def measured_cpu_profile(
    workload: Optional[GpcrWorkload] = None,
    pipeline: str = "C-trad",
) -> CpuProfile:
    """Real wall-clock phase profile of the live Python pipeline."""
    import time

    workload = workload or build_workload(natoms=6000, nframes=25, seed=5)
    loader = TrajectoryLoader()
    label_map = workload.preprocess().label_map
    selection = label_map.indices("p")

    if pipeline == "C-trad":
        result = loader.load_compressed(workload.xtc_blob, selection=selection)
    elif pipeline == "D-ada-p":
        from repro.formats.xtc import encode_raw

        subset_blob = encode_raw(workload.trajectory.select_atoms(selection))
        result = loader.load_subset(subset_blob)
    else:
        raise ValueError(f"unknown pipeline {pipeline!r}")

    phases = dict(result.timer.seconds)
    # Render phase: build geometry for every frame, timed for real.
    mol = Molecule(0, "gpcr", workload.system.topology.select(selection))
    mol.add_frames(result.trajectory)
    start = time.perf_counter()
    GeometryBuilder(mol).render_all()
    phases["render"] = time.perf_counter() - start
    return CpuProfile(pipeline=pipeline, phases=phases)
