"""Benchmark harness: platforms, scenarios, runner, and reporting.

This package regenerates every table and figure of the paper's evaluation:
platform factories encode Tables 4/5, scenario pipelines encode the C/D x
ext4/ADA notation of Table 3, the runner sweeps frame counts, and the
report module prints paper-shaped tables and series.
"""

from repro.harness.calibration import (
    E5_2603V4,
    E7_4820V3,
    CalibrationReport,
    measure_calibration,
)
from repro.harness.chaos import ChaosReport, render_chaos, run_chaos
from repro.harness.platforms import Platform, fat_node, small_cluster, ssd_server
from repro.harness.scenarios import (
    SCENARIOS,
    RunResult,
    Scenario,
)
from repro.harness.runner import run_point, run_sweep
from repro.harness.report import Table, format_results, series_pivot
from repro.harness.tracedemo import run_trace_demo

__all__ = [
    "CalibrationReport",
    "ChaosReport",
    "E5_2603V4",
    "E7_4820V3",
    "Platform",
    "RunResult",
    "SCENARIOS",
    "Scenario",
    "Table",
    "fat_node",
    "format_results",
    "measure_calibration",
    "render_chaos",
    "run_chaos",
    "run_point",
    "run_sweep",
    "run_trace_demo",
    "series_pivot",
    "small_cluster",
    "ssd_server",
]
