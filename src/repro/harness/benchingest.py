"""Streaming ingest benchmark: the write path, serial vs. pipelined.

``run_ingest_bench`` ingests one GOF-chunked GPCR-like trajectory stream
into a rotating-disk deployment under three write-path configurations:

* ``serial``               -- the windowed schedule with no overlap and
                              one uncoalesced backend write (plus one
                              index flush) per chunk: the pre-pipelining
                              ingest baseline;
* ``pipelined_uncoalesced``-- producer/consumer overlap through the
                              bounded write-behind queue, but every chunk
                              still pays its own backend request
                              (isolates the overlap win);
* ``pipelined``            -- overlap plus coalesced chunk-run writes
                              (one metadata operation and one
                              seek-amortized span per window run): the
                              full streaming ingest path.

Every duration is **simulated** seconds, so results are exactly
reproducible and the CI smoke test (``pytest -m bench``) can hold the
speedup floor without flaking on machine noise.  Each scenario digests
every byte (and every path) each backend holds after ingest; all three
digests must match -- pipelining changes *when* bytes land, never *which*
bytes -- and the pipelined scenarios must keep peak buffered bytes under
the configured watermark (the O(window x depth) memory claim).

The record is written to ``benchmarks/results/BENCH_ingest.json`` (one
canonical copy; ``python -m repro bench-ingest --json -o PATH``
overrides).  ``FLOORS`` holds the regression gate.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from repro.cluster.node import ComputeNode
from repro.core import ADA, IngestPipelineConfig
from repro.harness.calibration import E5_2603V4
from repro.fs.localfs import LocalFS
from repro.sim import Simulator
from repro.storage.hdd import WD_1TB_HDD
from repro.storage.power import NodePower
from repro.units import MiB, to_mb
from repro.workloads import build_workload

__all__ = ["FLOORS", "render_ingest_bench", "run_ingest_bench"]

SCHEMA_VERSION = 1

#: Regression gates the bench (and the ``-m bench`` smoke test) enforces.
FLOORS = {
    "pipelined_vs_serial": 2.0,  # overlap + coalescing at least doubles
}

#: Write-behind watermark the pipelined scenarios must stay under.
BUFFER_WATERMARK = 2 * MiB


def _build_ada(
    sim: Simulator,
    config: IngestPipelineConfig,
    workers: Optional[int],
    codec_backend: str = "auto",
) -> ADA:
    """Single rotating-disk deployment with one storage-side CPU.

    The HDD's per-request seek tax is what the coalesced span writes
    amortize; the storage CPU's decompress+categorize charge is what the
    write-behind queue overlaps with it.
    """
    cpu = ComputeNode(
        sim, "storage0", E5_2603V4, memory_capacity=64 << 30,
        power=NodePower(idle_w=330.0, cpu_active_w=60.0, io_active_w=10.0),
    )
    return ADA(
        sim,
        backends={"hdd": LocalFS(sim, WD_1TB_HDD, name="hdd")},
        storage_cpu=cpu,
        workers=workers,
        codec_backend=codec_backend,
        ingest_config=config,
    )


def _store_digest(ada: ADA) -> str:
    """SHA-256 over every backend's full contents (paths and bytes).

    Covers subset chunks, the container index, and the label file, so two
    scenarios match only if chunk numbering, placement, CRCs, and index
    records are all identical.
    """
    digest = hashlib.sha256()
    for name in sorted(ada.plfs.backends):
        fs = ada.plfs.backends[name]
        for path in sorted(fs.store.walk()):
            digest.update(name.encode())
            digest.update(path.encode())
            digest.update(fs.store.data(path))
    return digest.hexdigest()


def _scenario(
    pipelined: bool,
    coalesce: bool,
    window_frames: int,
    depth: int,
    workload,
    workers: Optional[int],
    codec_backend: str = "auto",
) -> Dict[str, object]:
    config = IngestPipelineConfig(
        window_frames=window_frames,
        depth=depth,
        max_buffered_bytes=BUFFER_WATERMARK if pipelined else None,
        coalesce=coalesce,
        pipelined=pipelined,
    )
    sim = Simulator()
    ada = _build_ada(sim, config, workers, codec_backend)
    started = sim.now
    sim.run_process(
        ada.ingest_stream(
            "stream.xtc", workload.xtc_blob, pdb_text=workload.pdb_text
        )
    )
    stats = ada.stats()
    ingest = stats["ingest"]
    return {
        "ada": ada,
        "record": {
            "ingest_s": round(sim.now - started, 6),
            "windows": ingest["windows"],
            "overlap_ratio": round(ingest["overlap_ratio"], 4),
            "backpressure_waits": ingest["backpressure_waits"],
            "queue_depth_peak": ingest["queue_depth_peak"],
            "buffered_bytes_peak": ingest["buffered_bytes_peak"],
            "write_coalescing": stats["write_coalescing"],
            "dispatched_bytes_per_tag": stats["dispatched_bytes_per_tag"],
        },
        "digest": _store_digest(ada),
    }


def run_ingest_bench(
    natoms: int = 4000,
    nframes: int = 160,
    keyframe_interval: int = 8,
    window_frames: int = 8,
    depth: int = 4,
    seed: int = 7,
    workers: Optional[int] = None,
    codec_backend: str = "auto",
) -> dict:
    """Measure the three write-path scenarios; returns the JSON record.

    ``workers`` sizes every scenario's pre-processor pools identically
    (the >= 2x gate compares equal worker counts) and ``codec_backend``
    picks their flavour; both affect host wall time only -- simulated
    timings and stored bytes are worker- and backend-invariant.
    """
    workload = build_workload(
        natoms=natoms, nframes=nframes, seed=seed,
        keyframe_interval=keyframe_interval,
    )

    runs = {
        "serial": _scenario(
            False, False, window_frames, depth, workload, workers,
            codec_backend,
        ),
        "pipelined_uncoalesced": _scenario(
            True, False, window_frames, depth, workload, workers,
            codec_backend,
        ),
        "pipelined": _scenario(
            True, True, window_frames, depth, workload, workers,
            codec_backend,
        ),
    }
    scenarios = {name: run["record"] for name, run in runs.items()}
    digests = {name: run["digest"] for name, run in runs.items()}

    serial_s = scenarios["serial"]["ingest_s"]
    speedups = {
        name: round(serial_s / scenarios[name]["ingest_s"], 2)
        for name in ("pipelined_uncoalesced", "pipelined")
    }
    identical = len(set(digests.values())) == 1
    buffer_bounded = all(
        scenarios[name]["buffered_bytes_peak"] <= BUFFER_WATERMARK
        for name in ("pipelined_uncoalesced", "pipelined")
    )
    passed = (
        identical
        and buffer_bounded
        and speedups["pipelined"] >= FLOORS["pipelined_vs_serial"]
    )
    nwindows = scenarios["pipelined"]["windows"]
    raw_nbytes = nframes * natoms * 12
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "natoms": natoms,
            "nframes": nframes,
            "keyframe_interval": keyframe_interval,
            "window_frames": window_frames,
            "depth": depth,
            "windows": nwindows,
            "raw_mb": round(to_mb(raw_nbytes), 3),
            "buffer_watermark_mb": round(to_mb(BUFFER_WATERMARK), 3),
            "seed": seed,
            "workers": workers,
        },
        "scenarios": scenarios,
        "speedup_vs_serial": speedups,
        "floors": dict(FLOORS),
        "identical": identical,
        "buffer_bounded": buffer_bounded,
        "pass": passed,
        # Full registry snapshot of the fully pipelined deployment (the
        # scenario that exercises every write-path subsystem at once).
        "metrics": runs["pipelined"]["ada"].metrics.to_json(),
    }


def render_ingest_bench(result: dict) -> str:
    """Human-readable summary of a :func:`run_ingest_bench` record."""
    w = result["workload"]
    s = result["scenarios"]
    sp = result["speedup_vs_serial"]
    pipe = s["pipelined"]
    lines = [
        "Streaming ingest path (simulated ingest seconds)",
        f"  workload: {w['raw_mb']} MB raw, {w['windows']} windows of "
        f"~{w['window_frames']} frames ({w['natoms']} atoms, "
        f"depth {w['depth']})",
        f"  serial baseline: {s['serial']['ingest_s']:.3f} s",
        f"  pipelined (uncoalesced): "
        f"{s['pipelined_uncoalesced']['ingest_s']:.3f} s "
        f"({sp['pipelined_uncoalesced']}x)",
        f"  pipelined + coalesced runs: {pipe['ingest_s']:.3f} s "
        f"({sp['pipelined']}x, overlap {pipe['overlap_ratio']})",
        f"  write coalescing: {pipe['write_coalescing']['coalesced_runs']} "
        f"runs, {pipe['write_coalescing']['requests_saved']} requests saved",
        f"  peak buffered: {pipe['buffered_bytes_peak']} B "
        f"(watermark {w['buffer_watermark_mb']} MB, "
        f"bounded: {result['buffer_bounded']})",
        f"  floors: pipelined >= {result['floors']['pipelined_vs_serial']}x",
        f"  bit-identical stores across scenarios: {result['identical']}",
        f"  pass: {result['pass']}",
    ]
    return "\n".join(lines)
