"""Pipelined read-path benchmark: the Figure 8/9 playback loop, four ways.

``run_pipeline_bench`` replays the paper's windowed trajectory playback --
fetch a window of subset chunks, spend the calibrated CPU time consuming
it, advance -- against one multi-chunk dataset on rotating storage, under
four read-path configurations:

* ``serial``         -- one synchronous chunk request at a time, no cache:
                        the pre-pipelining baseline;
* ``cold_cache``     -- tiered block cache + request coalescing, first
                        pass (every block is a miss, but windows coalesce
                        into span reads);
* ``warm_cache``     -- the same deployment's second pass (the working set
                        is L1-resident);
* ``prefetch``       -- cache + coalescing + the adaptive prefetcher:
                        the next window's span read overlaps the current
                        window's CPU time.

Every duration is **simulated** seconds, so results are exactly
reproducible -- the CI smoke test (``pytest -m bench``) can hold the
speedup floors without flaking on machine noise.  Each scenario digests
every byte the consumer saw; all four digests must match (the pipelined
paths change *when* bytes move, never *which* bytes).

The record is written to ``benchmarks/results/BENCH_pipeline.json`` (one
canonical copy; ``python -m repro bench-pipeline --json -o PATH``
overrides).  ``FLOORS`` holds the regression gates (prefetch >= 2x over
serial, warm-pass hit ratio >= 0.9).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.core import ADA
from repro.fs.cache import BlockCache
from repro.fs.localfs import LocalFS
from repro.harness.calibration import E5_2603V4
from repro.sim import Simulator
from repro.storage.hdd import WD_1TB_HDD
from repro.units import to_mb
from repro.workloads import build_workload

__all__ = ["FLOORS", "render_pipeline_bench", "run_pipeline_bench"]

SCHEMA_VERSION = 2  # v2: adds the "metrics" registry snapshot

#: Regression gates the bench (and the ``-m bench`` smoke test) enforces.
FLOORS = {
    "prefetch_vs_serial": 2.0,  # pipelined playback at least doubles
    "warm_hit_ratio": 0.9,  # second pass serves from the block cache
}

#: The playback tag: protein subsets are what Fig. 8/9 playback loads.
PLAYBACK_TAG = "p"


def _chunked_dataset(
    natoms: int, nchunks: int, frames_per_chunk: int, seed: int
) -> Tuple[str, List[bytes]]:
    """One PDB plus ``nchunks`` raw-container trajectory chunks.

    The chunks are what a running simulation would append over time; each
    becomes one PLFS chunk per subset, giving the chunk-granular read
    path something real to coalesce and prefetch.
    """
    from repro.formats.xtc import encode_raw

    workload = build_workload(
        natoms=natoms, nframes=nchunks * frames_per_chunk, seed=seed
    )
    trajectory = workload.trajectory
    blobs = [
        encode_raw(
            trajectory.slice_frames(
                i * frames_per_chunk, (i + 1) * frames_per_chunk
            )
        )
        for i in range(nchunks)
    ]
    return workload.pdb_text, blobs


def _build_ada(
    sim: Simulator, serial: bool = False, cache: bool = False,
    prefetch: bool = False,
) -> ADA:
    """Single rotating-disk deployment: the per-request seek tax that the
    coalesced span reads amortize is the paper's HDD scenario."""
    backends = {"hdd": LocalFS(sim, WD_1TB_HDD, name="hdd")}
    return ADA(
        sim,
        backends=backends,
        block_cache=BlockCache(sim) if cache else None,
        prefetch=prefetch,
        serial_requests=serial,
    )


def _ingest(ada: ADA, logical: str, pdb_text: str, blobs: List[bytes]) -> None:
    sim = ada.sim
    sim.run_process(ada.ingest(logical, pdb_text, blobs[0]))
    for blob in blobs[1:]:
        sim.run_process(ada.ingest_append(logical, blob))


def _playback(
    ada: ADA, logical: str, nchunks: int, window_chunks: int
) -> Tuple[float, str]:
    """One sequential playback pass; returns (simulated seconds, digest).

    Per window the consumer pays the calibrated single-thread CPU time to
    scan and render the subset bytes (Xeon E5-2603 v4 rates, Table 4) --
    the work the prefetcher's span reads overlap with.
    """
    sim = ada.sim
    digest = hashlib.sha256()

    def consumer():
        for start in range(0, nchunks, window_chunks):
            window = list(range(start, min(start + window_chunks, nchunks)))
            objs = yield from ada.fetch_chunks(logical, PLAYBACK_TAG, window)
            nbytes = 0
            for obj in objs:
                digest.update(obj.data)
                nbytes += obj.nbytes
            yield sim.timeout(nbytes / E5_2603V4.scan_rate)
            yield sim.timeout(nbytes / E5_2603V4.render_rate)

    started = sim.now
    sim.run_process(consumer())
    return sim.now - started, digest.hexdigest()


def _cache_delta(before: Dict[str, object], after: Dict[str, object]) -> Dict[str, float]:
    """Hit accounting for one pass, from two ``BlockCache.stats()`` snapshots."""
    hits = (
        int(after["hits_l1"]) - int(before["hits_l1"])
        + int(after["hits_l2"]) - int(before["hits_l2"])
    )
    misses = int(after["misses"]) - int(before["misses"])
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_ratio": round(hits / total, 4) if total else 0.0,
    }


def run_pipeline_bench(
    natoms: int = 1200,
    nchunks: int = 96,
    frames_per_chunk: int = 80,
    window_chunks: int = 8,
    seed: int = 7,
) -> dict:
    """Measure the four read-path scenarios; returns the JSON record."""
    logical = "playback.xtc"
    pdb_text, blobs = _chunked_dataset(natoms, nchunks, frames_per_chunk, seed)
    chunk_nbytes = None

    scenarios: Dict[str, Dict[str, object]] = {}
    digests: Dict[str, str] = {}

    # serial: the pre-pipelining baseline -- one chunk request at a time.
    sim = Simulator()
    ada = _build_ada(sim, serial=True)
    _ingest(ada, logical, pdb_text, blobs)
    chunk_nbytes = ada.subset_nbytes(logical, PLAYBACK_TAG) // nchunks
    elapsed, digests["serial"] = _playback(ada, logical, nchunks, window_chunks)
    scenarios["serial"] = {"playback_s": round(elapsed, 6)}

    # cold + warm: one cached deployment, two passes.
    sim = Simulator()
    ada = _build_ada(sim, cache=True)
    _ingest(ada, logical, pdb_text, blobs)
    elapsed, digests["cold_cache"] = _playback(ada, logical, nchunks, window_chunks)
    cold_stats = ada.block_cache.stats()
    scenarios["cold_cache"] = {
        "playback_s": round(elapsed, 6),
        "coalescing": ada.determinator.retriever.coalesce_stats(),
    }
    elapsed, digests["warm_cache"] = _playback(ada, logical, nchunks, window_chunks)
    warm_stats = ada.block_cache.stats()
    scenarios["warm_cache"] = {
        "playback_s": round(elapsed, 6),
        **_cache_delta(cold_stats, warm_stats),
    }

    # prefetch: cache + coalescing + adaptive readahead, cold pass.
    sim = Simulator()
    ada = _build_ada(sim, cache=True, prefetch=True)
    _ingest(ada, logical, pdb_text, blobs)
    elapsed, digests["prefetch"] = _playback(ada, logical, nchunks, window_chunks)
    scenarios["prefetch"] = {
        "playback_s": round(elapsed, 6),
        "prefetcher": ada.prefetcher.stats(),
        "cache": {
            "prefetch_hits": ada.block_cache.prefetch_hits,
            "prefetch_wasted": ada.block_cache.prefetch_wasted,
            "hit_ratio": round(ada.block_cache.stats()["hit_ratio"], 4),
        },
    }

    serial_s = scenarios["serial"]["playback_s"]
    speedups = {
        name: round(serial_s / scenarios[name]["playback_s"], 2)
        for name in ("cold_cache", "warm_cache", "prefetch")
    }
    identical = len(set(digests.values())) == 1
    passed = (
        identical
        and speedups["prefetch"] >= FLOORS["prefetch_vs_serial"]
        and scenarios["warm_cache"]["hit_ratio"] >= FLOORS["warm_hit_ratio"]
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "natoms": natoms,
            "nchunks": nchunks,
            "frames_per_chunk": frames_per_chunk,
            "window_chunks": window_chunks,
            "chunk_mb": round(to_mb(chunk_nbytes), 3),
            "seed": seed,
        },
        "scenarios": scenarios,
        "speedup_vs_serial": speedups,
        "floors": dict(FLOORS),
        "identical": identical,
        "pass": passed,
        # Full registry snapshot of the prefetch deployment (the scenario
        # that exercises every read-path subsystem at once).
        "metrics": ada.metrics.to_json(),
    }


def render_pipeline_bench(result: dict) -> str:
    """Human-readable summary of a :func:`run_pipeline_bench` record."""
    w = result["workload"]
    s = result["scenarios"]
    sp = result["speedup_vs_serial"]
    lines = [
        "Pipelined read path (simulated playback seconds)",
        f"  workload: {w['nchunks']} chunks x {w['chunk_mb']} MB "
        f"({w['natoms']} atoms, window {w['window_chunks']} chunks)",
        f"  serial baseline: {s['serial']['playback_s']:.3f} s",
        f"  cold cache+coalesce: {s['cold_cache']['playback_s']:.3f} s "
        f"({sp['cold_cache']}x)",
        f"  warm cache: {s['warm_cache']['playback_s']:.3f} s "
        f"({sp['warm_cache']}x, hit ratio {s['warm_cache']['hit_ratio']})",
        f"  prefetch: {s['prefetch']['playback_s']:.3f} s ({sp['prefetch']}x)",
        f"  floors: prefetch >= {result['floors']['prefetch_vs_serial']}x, "
        f"warm hit ratio >= {result['floors']['warm_hit_ratio']}",
        f"  bit-identical across scenarios: {result['identical']}",
        f"  pass: {result['pass']}",
    ]
    return "\n".join(lines)
