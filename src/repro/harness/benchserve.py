"""Multi-tenant serving benchmark: latency and fairness under contention.

``run_serve_bench`` stands up one shared ADA deployment behind the
:class:`~repro.serve.ServeFront` and drives it with deterministic
synthetic traffic (closed/open loop, Zipf-hot dataset popularity --
see :mod:`repro.serve.traffic`) in three scenarios:

* ``solo``      -- tenant ``t0`` runs its closed-loop workload alone:
                   the uncontended latency baseline;
* ``contended`` -- ``ntenants`` tenants run the *same per-tenant*
                   closed-loop workload concurrently over the shared
                   cache, prefetcher, and scheduler: where fairness is
                   measured (Jain index over per-tenant served bytes)
                   and where the p99 blow-up is gated;
* ``open_loop`` -- Poisson arrivals that ignore completions, so queues
                   build and the per-tenant admission gate (max
                   in-flight) actually rejects work.

All timings are **simulated** seconds, so the record is bit-reproducible
and the CI smoke test can gate the floors without flaking.  The record
lands at ``benchmarks/results/BENCH_serve.json`` (``python -m repro
bench-serve --json``); ``FLOORS`` holds the regression gate.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import ADA
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.fs.localfs import LocalFS
from repro.serve import (
    DatasetRef,
    ServeFront,
    TenantBlockCache,
    TrafficConfig,
    TrafficGenerator,
)
from repro.sim import AllOf, Simulator
from repro.storage.hdd import WD_1TB_HDD
from repro.units import KiB, MiB
from repro.workloads import build_workload

__all__ = [
    "FLOORS",
    "jain_index",
    "render_serve_bench",
    "run_serve_bench",
]

SCHEMA_VERSION = 1

#: The tag every playback window reads (the paper's hot protein subset).
PLAYBACK_TAG = "p"

#: Regression gates the bench (and the ``-m bench`` smoke test) enforces.
FLOORS = {
    "jain_fairness": 0.90,  # contended byte shares stay near-equal
    "p99_slowdown_vs_solo": 8.0,  # contended p99 within 8x uncontended
}


def jain_index(shares: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly equal, 1/n = one hog."""
    values = [float(v) for v in shares]
    if not values or not any(values):
        return 0.0
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(v * v for v in values)
    return square_of_sum / (len(values) * sum_of_squares)


def percentile(values: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile over the sample (no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _catalog_blobs(
    ndatasets: int,
    natoms: int,
    nchunks: int,
    frames_per_chunk: int,
    seed: int,
) -> List[Tuple[str, str, List[bytes]]]:
    """``(logical, pdb_text, chunk blobs)`` per dataset, deterministic."""
    from repro.formats.xtc import encode_raw

    out = []
    for index in range(ndatasets):
        workload = build_workload(
            natoms=natoms,
            nframes=nchunks * frames_per_chunk,
            seed=seed + index,
        )
        blobs = [
            encode_raw(
                workload.trajectory.slice_frames(
                    i * frames_per_chunk, (i + 1) * frames_per_chunk
                )
            )
            for i in range(nchunks)
        ]
        out.append((f"traj{index}.xtc", workload.pdb_text, blobs))
    return out


def _build_front(
    blobs: List[Tuple[str, str, List[bytes]]],
    ntenants: int,
    concurrency: int,
    l1_capacity_bytes: float,
    max_inflight: int,
    byte_budget: Optional[int],
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> ServeFront:
    """Fresh deployment: ingest the catalog, register ``ntenants``.

    Every tenant gets an equal L1 reservation of half the cache (the
    other half is the reclaimable shared pool) and a modest speculative
    budget, so the fair-share machinery is actually load-bearing.
    """
    sim = Simulator()
    cache = TenantBlockCache(
        sim,
        l1_capacity_bytes=l1_capacity_bytes,
        l2_capacity_bytes=4 * l1_capacity_bytes,
    )
    ada = ADA(
        sim,
        backends={"hdd": LocalFS(sim, WD_1TB_HDD, name="hdd")},
        block_cache=cache,
        prefetch=True,
    )
    for logical, pdb_text, chunks in blobs:
        sim.run_process(ada.ingest(logical, pdb_text, chunks[0]))
        for blob in chunks[1:]:
            sim.run_process(ada.ingest_append(logical, blob))
    front = ServeFront(
        ada,
        concurrency=concurrency,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
    )
    quota = l1_capacity_bytes / (2 * max(1, ntenants))
    for index in range(ntenants):
        front.register(
            f"t{index}",
            max_inflight=max_inflight,
            byte_budget=byte_budget,
            cache_quota_bytes=int(quota),
            prefetch_budget_bytes=int(quota),
        )
    return front


def _run_traffic(
    front: ServeFront,
    tenants: Sequence[str],
    catalog: Sequence[DatasetRef],
    config: TrafficConfig,
) -> Dict[str, object]:
    """Drive the tenant loops to completion; returns per-tenant results."""
    sim = front.sim
    generator = TrafficGenerator(catalog, config)
    procs = {
        name: sim.process(
            generator.tenant_loop(front.session(name)),
            name=f"traffic:{name}",
        )
        for name in tenants
    }

    def driver():
        yield AllOf(sim, list(procs.values()))
        return None

    started = sim.now
    sim.run_process(driver())
    elapsed = sim.now - started

    per_tenant: Dict[str, Dict[str, object]] = {}
    for name, proc in procs.items():
        stats = proc.value
        latencies = [
            r.latency_s
            for r in front.scheduler.completed.get(name, [])
            if r.ok
        ]
        per_tenant[name] = {
            "completed": stats.completed,
            "failed": stats.failed,
            "rejected": stats.rejected,
            "served_bytes": stats.served_bytes,
            "digest": stats.hexdigest(),
            "p50_s": round(percentile(latencies, 0.50), 6),
            "p99_s": round(percentile(latencies, 0.99), 6),
        }
    all_latencies = [
        r.latency_s
        for name in tenants
        for r in front.scheduler.completed.get(name, [])
        if r.ok
    ]
    return {
        "elapsed_s": round(elapsed, 6),
        "p50_s": round(percentile(all_latencies, 0.50), 6),
        "p99_s": round(percentile(all_latencies, 0.99), 6),
        "completed": sum(t["completed"] for t in per_tenant.values()),
        "failed": sum(t["failed"] for t in per_tenant.values()),
        "rejected": sum(t["rejected"] for t in per_tenant.values()),
        "per_tenant": per_tenant,
    }


def run_serve_bench(
    ntenants: int = 8,
    ndatasets: int = 4,
    natoms: int = 600,
    nchunks: int = 12,
    frames_per_chunk: int = 8,
    window_chunks: int = 4,
    requests_per_tenant: int = 24,
    concurrency: int = 4,
    max_inflight: int = 4,
    l1_capacity_kib: int = 512,
    zipf_s: float = 1.1,
    seed: int = 7,
) -> dict:
    """Measure the three serving scenarios; returns the JSON record."""
    if ntenants < 2:
        raise ValueError("serve bench needs >= 2 tenants")
    blobs = _catalog_blobs(ndatasets, natoms, nchunks, frames_per_chunk, seed)
    catalog = [
        DatasetRef(logical=logical, tag=PLAYBACK_TAG, nchunks=nchunks)
        for logical, _, _ in blobs
    ]
    l1_capacity = float(l1_capacity_kib) * KiB
    tenants = [f"t{i}" for i in range(ntenants)]

    def fresh_front() -> ServeFront:
        return _build_front(
            blobs,
            ntenants=ntenants,
            concurrency=concurrency,
            l1_capacity_bytes=l1_capacity,
            max_inflight=max_inflight,
            byte_budget=None,
        )

    closed = TrafficConfig(
        mode="closed",
        requests_per_tenant=requests_per_tenant,
        window_chunks=window_chunks,
        zipf_s=zipf_s,
        seed=seed,
    )
    open_loop = TrafficConfig(
        mode="open",
        requests_per_tenant=requests_per_tenant,
        window_chunks=window_chunks,
        arrival_rate_hz=400.0,
        zipf_s=zipf_s,
        seed=seed,
    )

    solo_front = fresh_front()
    solo = _run_traffic(solo_front, tenants[:1], catalog, closed)

    contended_front = fresh_front()
    contended = _run_traffic(contended_front, tenants, catalog, closed)
    contended["scheduler"] = contended_front.scheduler.stats()
    contended["cache"] = contended_front.ada.block_cache.stats()
    contended["prefetch"] = contended_front.ada.prefetcher.stats()

    open_front = fresh_front()
    opened = _run_traffic(open_front, tenants, catalog, open_loop)

    shares = [
        contended["per_tenant"][name]["served_bytes"] for name in tenants
    ]
    jain = jain_index(shares)
    solo_p99 = solo["per_tenant"]["t0"]["p99_s"]
    slowdown = (contended["p99_s"] / solo_p99) if solo_p99 else float("inf")
    expected = ntenants * requests_per_tenant
    all_completed = (
        contended["completed"] == expected and contended["failed"] == 0
    )
    passed = (
        all_completed
        and jain >= FLOORS["jain_fairness"]
        and slowdown <= FLOORS["p99_slowdown_vs_solo"]
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "ntenants": ntenants,
            "ndatasets": ndatasets,
            "natoms": natoms,
            "nchunks": nchunks,
            "frames_per_chunk": frames_per_chunk,
            "window_chunks": window_chunks,
            "requests_per_tenant": requests_per_tenant,
            "concurrency": concurrency,
            "max_inflight": max_inflight,
            "l1_capacity_mb": round(l1_capacity / MiB, 3),
            "zipf_s": zipf_s,
            "seed": seed,
        },
        "scenarios": {
            "solo": solo,
            "contended": contended,
            "open_loop": opened,
        },
        "fairness": {
            "jain_contended": round(jain, 4),
            "served_bytes": {
                name: contended["per_tenant"][name]["served_bytes"]
                for name in tenants
            },
        },
        "latency": {
            "solo_p99_s": solo_p99,
            "contended_p99_s": contended["p99_s"],
            "p99_slowdown_vs_solo": round(slowdown, 2),
        },
        "floors": dict(FLOORS),
        "all_completed": all_completed,
        "pass": passed,
        # Full registry snapshot of the contended deployment (the scenario
        # that exercises admission, scheduling, fair share, and prefetch).
        "metrics": contended_front.metrics.to_json(),
    }


def render_serve_bench(result: dict) -> str:
    """Human-readable summary of a :func:`run_serve_bench` record."""
    w = result["workload"]
    s = result["scenarios"]
    lines = [
        "Multi-tenant serving layer (simulated seconds)",
        f"  workload: {w['ntenants']} tenants x {w['requests_per_tenant']} "
        f"requests, {w['ndatasets']} datasets (zipf {w['zipf_s']}), "
        f"concurrency {w['concurrency']}, L1 {w['l1_capacity_mb']} MB",
        f"  solo:      p50 {s['solo']['p50_s']:.6f} s, "
        f"p99 {s['solo']['p99_s']:.6f} s",
        f"  contended: p50 {s['contended']['p50_s']:.6f} s, "
        f"p99 {s['contended']['p99_s']:.6f} s "
        f"({result['latency']['p99_slowdown_vs_solo']}x solo, "
        f"floor <= {result['floors']['p99_slowdown_vs_solo']}x)",
        f"  open loop: p99 {s['open_loop']['p99_s']:.6f} s, "
        f"{s['open_loop']['rejected']} admission rejections",
        f"  fairness: Jain {result['fairness']['jain_contended']} "
        f"(floor >= {result['floors']['jain_fairness']})",
        f"  all contended requests completed: {result['all_completed']}",
        f"  pass: {result['pass']}",
    ]
    return "\n".join(lines)
