"""Sharded-middleware scaling benchmark: read throughput across N nodes.

``run_cluster_bench`` stands up the same Zipf-hot serving workload as
the serve bench, but behind :class:`~repro.cluster.shard.ShardedADA`
fronting ``N`` single-backend middleware nodes, and sweeps ``N`` over
``node_counts`` (default 1, 2, 4, 8):

* every sweep ingests the identical catalog and drives the identical
  closed-loop tenant traffic, so wall-clock ratios *are* the scaling
  curve: with the per-node caches kept deliberately tiny the workload
  is device-bound, and N nodes means N independent device queues;
* per-tenant response digests must be bit-identical across every node
  count -- shard layout is an implementation detail, not a data path;
* a chaos pass re-runs the widest sweep and fail-stops the primary
  holder of the hottest dataset mid-run: playback must complete with
  bit-identical digests (reads fail over to the surviving replica) and
  the time from kill to first successful failover is reported as
  ``recovery_s``.

All timings are **simulated** seconds, so the record is bit-reproducible
and the CI smoke test can gate the floors without flaking.  The record
lands at ``benchmarks/results/BENCH_cluster.json`` (``python -m repro
bench-cluster --json``); ``FLOORS`` holds the regression gate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.shard import ShardNode, ShardedADA
from repro.fs.cache import BlockCache
from repro.fs.localfs import LocalFS
from repro.harness.benchserve import _catalog_blobs, _run_traffic
from repro.obs.metrics import MetricsRegistry
from repro.serve import DatasetRef, ServeFront, TrafficConfig
from repro.sim import Simulator
from repro.storage.hdd import WD_1TB_HDD
from repro.units import KiB, MiB

__all__ = [
    "FLOORS",
    "render_cluster_bench",
    "run_cluster_bench",
]

SCHEMA_VERSION = 1

#: The tag every playback window reads (the paper's hot protein subset).
PLAYBACK_TAG = "p"

#: Regression gates the bench (and the ``-m bench`` smoke test) enforces.
FLOORS = {
    "scaling_widest": 3.0,  # widest sweep >= 3x the 1-node throughput
    "imbalance_max": 0.25,  # (max - mean) / mean served bytes per node
}


def _build_cluster_front(
    blobs: List[Tuple[str, str, List[bytes]]],
    nnodes: int,
    ntenants: int,
    concurrency: int,
    l1_capacity_bytes: float,
    max_inflight: int,
    replicas: int,
    affinity_bytes_slack: int,
) -> ServeFront:
    """Fresh N-node deployment: ingest the catalog, register tenants.

    Each node owns one HDD backend and a deliberately small private
    block cache, so aggregate throughput tracks the number of device
    queues rather than cache capacity.
    """
    sim = Simulator()
    metrics = MetricsRegistry()
    nodes = [
        ShardNode.build(
            sim,
            f"node{index}",
            backends={
                "hdd": LocalFS(sim, WD_1TB_HDD, name=f"node{index}:hdd")
            },
            metrics=metrics,
            block_cache=BlockCache(sim, l1_capacity_bytes=l1_capacity_bytes),
            prefetch=True,
        )
        for index in range(nnodes)
    ]
    sharded = ShardedADA(
        sim,
        nodes,
        replicas=min(replicas, nnodes),
        metrics=metrics,
        affinity_bytes_slack=affinity_bytes_slack,
    )
    for logical, pdb_text, chunks in blobs:
        sim.run_process(sharded.ingest(logical, pdb_text, chunks[0]))
        for blob in chunks[1:]:
            sim.run_process(sharded.ingest_append(logical, blob))
    front = ServeFront(sharded, concurrency=concurrency)
    for index in range(ntenants):
        # No cache_quota_bytes: the cluster front has no front-side cache
        # to partition -- each shard's private cache is its own.
        front.register(f"t{index}", max_inflight=max_inflight)
    return front


def _imbalance(loads: Dict[str, Dict[str, float]]) -> float:
    """Relative deviation of the hottest node from the mean served bytes."""
    served = [float(entry["served_bytes"]) for entry in loads.values()]
    if not served or not any(served):
        return 0.0
    mean = sum(served) / len(served)
    return (max(served) - mean) / mean


def _digest_map(traffic: Dict[str, object]) -> Dict[str, str]:
    return {
        name: entry["digest"]
        for name, entry in traffic["per_tenant"].items()
    }


# Zipf rank-1 traffic concentrates on one key, and that key's volume can
# only spread across its replica set: R=2 leaves the two holders of the
# hottest dataset well above the per-node mean no matter how reads are
# balanced *within* the set, so the bench runs the hot tag at R=3.
def run_cluster_bench(
    node_counts: Sequence[int] = (1, 2, 4, 8),
    ntenants: int = 12,
    ndatasets: int = 24,
    natoms: int = 400,
    nchunks: int = 8,
    frames_per_chunk: int = 4,
    window_chunks: int = 4,
    requests_per_tenant: int = 24,
    concurrency: int = 32,
    max_inflight: int = 4,
    l1_capacity_kib: int = 64,
    replicas: int = 3,
    zipf_s: float = 1.1,
    seed: int = 7,
    kill_at_fraction: float = 0.35,
) -> dict:
    """Measure read scale-out across ``node_counts``; returns the record."""
    counts = sorted(set(int(n) for n in node_counts))
    if not counts or counts[0] < 1:
        raise ValueError("node_counts must be positive integers")
    if counts[0] != 1:
        raise ValueError("node_counts must include 1 (the scaling baseline)")
    blobs = _catalog_blobs(ndatasets, natoms, nchunks, frames_per_chunk, seed)
    catalog = [
        DatasetRef(logical=logical, tag=PLAYBACK_TAG, nchunks=nchunks)
        for logical, _, _ in blobs
    ]
    # Replica stickiness should yield after a couple of playback windows,
    # whatever the workload size -- an absolute byte slack that dwarfs a
    # small catalog pins Zipf-hot streams to one replica forever.
    window_bytes = (
        max(len(chunk) for _, _, chunks in blobs for chunk in chunks)
        * window_chunks
    )
    affinity_bytes_slack = 2 * window_bytes
    tenants = [f"t{index}" for index in range(ntenants)]
    l1_capacity = float(l1_capacity_kib) * KiB
    traffic_config = TrafficConfig(
        mode="closed",
        requests_per_tenant=requests_per_tenant,
        window_chunks=window_chunks,
        zipf_s=zipf_s,
        seed=seed,
    )

    def fresh_front(nnodes: int) -> ServeFront:
        return _build_cluster_front(
            blobs,
            nnodes=nnodes,
            ntenants=ntenants,
            concurrency=concurrency,
            l1_capacity_bytes=l1_capacity,
            max_inflight=max_inflight,
            replicas=replicas,
            affinity_bytes_slack=affinity_bytes_slack,
        )

    sweeps: Dict[str, dict] = {}
    widest = counts[-1]
    widest_front: Optional[ServeFront] = None
    baseline_digests: Optional[Dict[str, str]] = None
    digests_consistent = True
    for nnodes in counts:
        front = fresh_front(nnodes)
        traffic = _run_traffic(front, tenants, catalog, traffic_config)
        digests = _digest_map(traffic)
        if baseline_digests is None:
            baseline_digests = digests
        elif digests != baseline_digests:
            digests_consistent = False
        sharded = front.ada
        served_total = sum(
            entry["served_bytes"]
            for entry in traffic["per_tenant"].values()
        )
        elapsed = float(traffic["elapsed_s"])
        loads = sharded.node_loads()
        sweeps[str(nnodes)] = {
            "nodes": nnodes,
            "elapsed_s": elapsed,
            "p50_s": traffic["p50_s"],
            "p99_s": traffic["p99_s"],
            "completed": traffic["completed"],
            "failed": traffic["failed"],
            "served_bytes": served_total,
            "throughput_bytes_per_s": round(
                served_total / elapsed if elapsed else 0.0, 3
            ),
            "imbalance": round(_imbalance(loads), 4),
            "node_loads": loads,
            "cluster": sharded.stats(),
        }
        if nnodes == widest:
            widest_front = front

    base_elapsed = sweeps[str(counts[0])]["elapsed_s"]
    scaling = {
        key: round(base_elapsed / entry["elapsed_s"], 3)
        if entry["elapsed_s"]
        else 0.0
        for key, entry in sweeps.items()
    }
    widest_key = str(widest)
    scaling_widest = scaling[widest_key]
    imbalance_widest = sweeps[widest_key]["imbalance"]

    # -- chaos pass: fail-stop the hottest primary mid-playback -------------
    kill_t = round(
        float(sweeps[widest_key]["elapsed_s"]) * float(kill_at_fraction), 9
    )
    chaos_front = fresh_front(widest)
    chaos_sharded = chaos_front.ada
    hot = catalog[0].logical  # Zipf rank 0: the hottest dataset
    victim = chaos_sharded.holders(hot, PLAYBACK_TAG)[0]

    def assassin():
        yield chaos_front.sim.timeout(kill_t)
        chaos_sharded.kill_node(victim)
        return None

    chaos_front.sim.process(assassin(), name="chaos:assassin")
    chaos_traffic = _run_traffic(
        chaos_front, tenants, catalog, traffic_config
    )
    chaos_digests = _digest_map(chaos_traffic)
    chaos_match = chaos_digests == baseline_digests
    events = list(chaos_sharded.events)
    kill_events = [e for e in events if e["event"] == "kill"]
    failovers = [
        e
        for e in events
        if e["event"] == "failover" and e["t"] >= kill_events[0]["t"]
    ]
    recovery_s = (
        round(failovers[0]["t"] - kill_events[0]["t"], 9)
        if failovers
        else None
    )
    chaos = {
        "nodes": widest,
        "victim": victim,
        "kill_t_s": kill_t,
        "completed": chaos_traffic["completed"],
        "failed": chaos_traffic["failed"],
        "elapsed_s": chaos_traffic["elapsed_s"],
        "failovers": len(failovers),
        "recovery_s": recovery_s,
        "degraded_reads": len(chaos_sharded.degraded),
        "digests_match_clean_run": chaos_match,
        "cluster": chaos_sharded.stats(),
    }

    expected = ntenants * requests_per_tenant
    all_completed = all(
        entry["completed"] == expected and entry["failed"] == 0
        for entry in sweeps.values()
    )
    chaos_ok = (
        chaos_match
        and chaos_traffic["completed"] == expected
        and chaos_traffic["failed"] == 0
        and len(failovers) > 0
    )
    passed = (
        all_completed
        and digests_consistent
        and scaling_widest >= FLOORS["scaling_widest"]
        and imbalance_widest <= FLOORS["imbalance_max"]
        and chaos_ok
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "node_counts": counts,
            "ntenants": ntenants,
            "ndatasets": ndatasets,
            "natoms": natoms,
            "nchunks": nchunks,
            "frames_per_chunk": frames_per_chunk,
            "window_chunks": window_chunks,
            "requests_per_tenant": requests_per_tenant,
            "concurrency": concurrency,
            "max_inflight": max_inflight,
            "l1_capacity_mb": round(l1_capacity / MiB, 4),
            "replicas": replicas,
            "zipf_s": zipf_s,
            "seed": seed,
        },
        "sweeps": sweeps,
        "scaling_vs_1node": scaling,
        "scaling_widest": scaling_widest,
        "imbalance_widest": imbalance_widest,
        "digests_consistent_across_node_counts": digests_consistent,
        "chaos": chaos,
        "floors": dict(FLOORS),
        "all_completed": all_completed,
        "pass": passed,
        # Full registry snapshot of the widest clean sweep (per-shard
        # labels keep every node's counters distinct in one registry).
        "metrics": widest_front.metrics.to_json(),
    }


def render_cluster_bench(result: dict) -> str:
    """Human-readable summary of a :func:`run_cluster_bench` record."""
    w = result["workload"]
    lines = [
        "Sharded middleware scale-out (simulated seconds)",
        f"  workload: {w['ntenants']} tenants x {w['requests_per_tenant']} "
        f"requests, {w['ndatasets']} datasets (zipf {w['zipf_s']}), "
        f"replicas {w['replicas']}, per-node L1 {w['l1_capacity_mb']} MB",
    ]
    for key in sorted(result["sweeps"], key=int):
        entry = result["sweeps"][key]
        lines.append(
            f"  {entry['nodes']:>2} node(s): elapsed {entry['elapsed_s']:.6f} s, "
            f"p99 {entry['p99_s']:.6f} s, "
            f"{entry['throughput_bytes_per_s'] / 1e6:.1f} MB/s, "
            f"speedup {result['scaling_vs_1node'][key]}x, "
            f"imbalance {entry['imbalance']:.1%}"
        )
    chaos = result["chaos"]
    recovery = (
        f"{chaos['recovery_s']:.6f} s"
        if chaos["recovery_s"] is not None
        else "n/a"
    )
    lines += [
        f"  scaling at {max(int(k) for k in result['sweeps'])} nodes: "
        f"{result['scaling_widest']}x "
        f"(floor >= {result['floors']['scaling_widest']}x), "
        f"imbalance {result['imbalance_widest']:.1%} "
        f"(ceiling <= {result['floors']['imbalance_max']:.0%})",
        f"  chaos: killed {chaos['victim']} at t={chaos['kill_t_s']:.6f} s, "
        f"{chaos['failovers']} failovers, recovery {recovery}, "
        f"digests match clean run: {chaos['digests_match_clean_run']}",
        f"  digests identical across node counts: "
        f"{result['digests_consistent_across_node_counts']}",
        f"  pass: {result['pass']}",
    ]
    return "\n".join(lines)
