"""The evaluation scenarios of Table 3, as DES pipelines.

Four load paths, crossed with each platform's traditional FS and ADA:

=============  ==============================================================
``C-trad``     VMD loads the compressed ``.xtc`` from the traditional FS:
               transfer C bytes, inflate to R on the compute node (filtering
               happens inline with inflation), render the protein share.
``D-trad``     VMD loads pre-decompressed raw data from the traditional FS:
               transfer R, scan R for active data, render.
``D-ada-all``  ADA serves both subsets (decompressed): indexer lookup, then
               sequential subset transfers (the VMD reader is
               single-threaded), merge subsets back to full frames, render.
``D-ada-p``    ADA serves only the protein subset: indexer lookup, transfer
               P, render.  No decompression, no scan.
=============  ==============================================================

Memory choreography follows the paper's observed accounting (see
DESIGN.md §3): streaming inflation keeps ~half the compressed buffer
resident at peak (``R + C/2``); the subset merge needs ~4 % of R in
scratch; geometry building needs ~2 % of the rendered bytes.  These three
constants reproduce every OOM-kill threshold of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.cluster.energy import cluster_energy
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.harness.platforms import Platform
from repro.workloads.virtual import VirtualDataset

__all__ = ["Scenario", "SCENARIOS", "RunResult", "ScenarioPipeline"]

#: Streaming decompression steps (finer steps = more faithful kill timing).
DECOMPRESS_STEPS = 10
#: Merge scratch as a fraction of the merged (raw) volume.
MERGE_SCRATCH = 0.04
#: Geometry scratch as a fraction of the rendered volume.
RENDER_SCRATCH = 0.02


@dataclass(frozen=True)
class Scenario:
    """One column of Table 3."""

    key: str
    label: str  # e.g. "C-{fs}" formatted with the platform FS name
    description: str
    uses_ada: bool

    def display(self, fs_label: str) -> str:
        return self.label.format(fs=fs_label)


SCENARIOS: Dict[str, Scenario] = {
    s.key: s
    for s in (
        Scenario(
            key="C-trad",
            label="C-{fs}",
            description="VMD loads a compressed XTC file from the traditional FS",
            uses_ada=False,
        ),
        Scenario(
            key="D-trad",
            label="D-{fs}",
            description="VMD loads a raw XTC file w/o compression",
            uses_ada=False,
        ),
        Scenario(
            key="D-ada-all",
            label="D-ADA (all)",
            description="ADA transfers the entire raw data",
            uses_ada=True,
        ),
        Scenario(
            key="D-ada-p",
            label="D-ADA (protein)",
            description="ADA transfers the protein data",
            uses_ada=True,
        ),
    )
}


@dataclass
class RunResult:
    """One data point of a figure: scenario x frame count."""

    scenario: str
    nframes: int
    loaded_nbytes: int  # what was read from storage (Table 2 column)
    raw_nbytes: int
    retrieval_s: float  # Figs. 7a / 9a / 10a
    turnaround_s: float  # Figs. 7b / 9b / 10b
    peak_memory_nbytes: float  # Figs. 7c / 9c / 10c
    energy_j: float  # Fig. 10d
    killed: bool = False
    killed_phase: Optional[str] = None

    @property
    def label(self) -> str:
        return SCENARIOS[self.scenario].label


class ScenarioPipeline:
    """Runs one scenario of one dataset on one (fresh) platform."""

    def __init__(self, platform: Platform, dataset: VirtualDataset):
        self.platform = platform
        self.dataset = dataset
        self._seeded = False

    # -- data placement (not part of the measured window) -------------------

    def seed(self) -> None:
        """Place the dataset on the traditional FS and ingest into ADA."""
        sim = self.platform.sim
        d = self.dataset
        sim.run_process(
            self.platform.traditional_fs.write(
                f"{d.name}.c", nbytes=d.compressed_nbytes
            )
        )
        sim.run_process(
            self.platform.traditional_fs.write(f"{d.name}.raw", nbytes=d.raw_nbytes)
        )
        sim.run_process(
            self.platform.ada.ingest_virtual(
                d.name,
                label_map=d.label_map(),
                subset_sizes=d.subset_sizes(),
                compressed_nbytes=d.compressed_nbytes,
                charge_cpu=False,
            )
        )
        self._seeded = True

    def _reset_measurements(self) -> None:
        """Clear busy trackers so the window covers only this run."""
        self.platform.compute.reset_run()
        for fs in [self.platform.traditional_fs, *self.platform.ada.plfs.backends.values()]:
            for attr in ("device",):
                device = getattr(fs, attr, None)
                if device is not None:
                    device.busy.clear()
            targets = getattr(fs, "targets", None)
            if targets:
                for t in targets:
                    t.device.busy.clear()
                    if t.link is not None:
                        t.link.busy.clear()

    # -- the measured run ------------------------------------------------------

    def run(self, scenario_key: str) -> RunResult:
        if scenario_key not in SCENARIOS:
            raise ConfigurationError(
                f"unknown scenario {scenario_key!r}; have {sorted(SCENARIOS)}"
            )
        if not self._seeded:
            self.seed()
        self._reset_measurements()
        sim = self.platform.sim
        state = {"retrieval_s": 0.0, "killed": False, "killed_phase": None}
        t0 = sim.now
        pipeline = {
            "C-trad": self._run_c_trad,
            "D-trad": self._run_d_trad,
            "D-ada-all": self._run_ada_all,
            "D-ada-p": self._run_ada_protein,
        }[scenario_key]
        sim.run_process(self._guarded(pipeline(state, t0), state), name=scenario_key)
        wall = sim.now - t0
        energy = cluster_energy(
            [self.platform.compute], self.platform.storage_nodes, wall_s=wall
        )
        return RunResult(
            scenario=scenario_key,
            nframes=self.dataset.nframes,
            loaded_nbytes=self._loaded_nbytes(scenario_key),
            raw_nbytes=self.dataset.raw_nbytes,
            retrieval_s=state["retrieval_s"],
            turnaround_s=wall,
            peak_memory_nbytes=self.platform.compute.memory.peak,
            energy_j=energy,
            killed=state["killed"],
            killed_phase=state["killed_phase"],
        )

    def _memory(self, state: dict):
        """The ledger this run charges: the compute node's by default, or a
        per-client ledger injected via ``state['memory']`` (multi-client
        runs model distinct nodes)."""
        return state.get("memory") or self.platform.compute.memory

    def _loaded_nbytes(self, scenario_key: str) -> int:
        d = self.dataset
        return {
            "C-trad": d.compressed_nbytes,
            "D-trad": d.raw_nbytes,
            "D-ada-all": d.raw_nbytes,
            "D-ada-p": d.protein_nbytes,
        }[scenario_key]

    def _guarded(self, inner: Generator, state: dict) -> Generator:
        """Wrap a pipeline so an OOM kill truncates the run, paper-style."""
        try:
            yield from inner
        except OutOfMemoryError:
            state["killed"] = True

    # -- per-scenario pipelines ----------------------------------------------------

    def _run_c_trad(self, state: dict, t0: float) -> Generator:
        node = self.platform.compute
        sim = self.platform.sim
        d = self.dataset
        mem = self._memory(state)
        state["killed_phase"] = "retrieval"
        mem.allocate("compressed", d.compressed_nbytes)
        yield from self.platform.traditional_fs.read(
            f"{d.name}.c", request_size=self.platform.traditional_request_size
        )
        node.record_io(t0, sim.now, "retrieval")
        state["retrieval_s"] = sim.now - t0

        # Streaming inflation: raw grows stepwise while compressed chunks
        # are consumed; ~half the compressed buffer is resident at peak.
        state["killed_phase"] = "decompress"
        for _ in range(DECOMPRESS_STEPS):
            mem.allocate("raw", d.raw_nbytes / DECOMPRESS_STEPS)
            yield from node.decompress(d.raw_nbytes / DECOMPRESS_STEPS)
            mem.shrink(
                "compressed", d.compressed_nbytes / (2 * DECOMPRESS_STEPS)
            )
        mem.free("compressed")
        yield from self._render(d.protein_nbytes, state)

    def _run_d_trad(self, state: dict, t0: float) -> Generator:
        node = self.platform.compute
        sim = self.platform.sim
        d = self.dataset
        state["killed_phase"] = "retrieval"
        self._memory(state).allocate("raw", d.raw_nbytes)
        yield from self.platform.traditional_fs.read(
            f"{d.name}.raw", request_size=self.platform.traditional_request_size
        )
        node.record_io(t0, sim.now, "retrieval")
        state["retrieval_s"] = sim.now - t0
        state["killed_phase"] = "scan"
        yield from node.scan(d.raw_nbytes, label="filter")
        yield from self._render(d.protein_nbytes, state)

    def _run_ada_all(self, state: dict, t0: float) -> Generator:
        node = self.platform.compute
        sim = self.platform.sim
        d = self.dataset
        ada = self.platform.ada
        state["killed_phase"] = "retrieval"
        # The VMD reader is single-threaded: subsets arrive one after the
        # other (plus the indexer lookup the paper calls out in Fig. 7a).
        for tag, nbytes in sorted(d.subset_sizes().items()):
            self._memory(state).allocate(f"subset.{tag}", nbytes)
            yield from ada.fetch(d.name, tag)
        node.record_io(t0, sim.now, "retrieval")
        state["retrieval_s"] = sim.now - t0
        # Merge subsets back into whole frames (generic full-data view).
        state["killed_phase"] = "merge"
        self._memory(state).allocate("merge-scratch", d.raw_nbytes * MERGE_SCRATCH)
        yield from node.scan(d.raw_nbytes, label="merge")
        self._memory(state).free("merge-scratch")
        yield from self._render(d.protein_nbytes, state)

    def _run_ada_protein(self, state: dict, t0: float) -> Generator:
        node = self.platform.compute
        sim = self.platform.sim
        d = self.dataset
        state["killed_phase"] = "retrieval"
        self._memory(state).allocate("subset.p", d.protein_nbytes)
        yield from self.platform.ada.fetch(d.name, "p")
        node.record_io(t0, sim.now, "retrieval")
        state["retrieval_s"] = sim.now - t0
        yield from self._render(d.protein_nbytes, state)

    def _render(self, nbytes: float, state: dict) -> Generator:
        node = self.platform.compute
        state["killed_phase"] = "render"
        self._memory(state).allocate("geometry", nbytes * RENDER_SCRATCH)
        yield from node.render(nbytes)
        state["killed_phase"] = None
