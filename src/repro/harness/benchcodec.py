"""Codec throughput benchmark with a frozen pre-PR kernel baseline.

Produces the machine-readable ``BENCH_codec.json`` record (schema v2):
encode/decode MB/s, a {1, 2, 4, 8}-worker sweep over both executor
backends, ``baseline_ratio`` -- serial decode throughput of the vectorized
kernels relative to the seed's bit-matrix kernels -- and a full
metrics-registry snapshot of the pools' lifecycle.

The baseline is *embedded* here rather than checked out from history:
:func:`legacy_decode_xtc` decodes the exact same stream with the seed's
strategy -- an O(count x nbits) bit-matrix expansion per block
(``unpackbits`` + matrix-vector product), a pure-Python per-frame loop
with fresh allocations at every step, and a final ``np.stack``.  Only the
container parsing (header struct, stored-payload flag, block size) tracks
the current format so both kernels read identical bytes.

Gating methodology.  The >= 3x decode / >= 2x encode floors gate on a
*projected* critical-path speedup rather than measured wall clock, so the
record is meaningful on any host (CI boxes routinely expose one core,
where a wall-clock 3x is physically impossible).  The projection is built
from measured quantities only::

    projected(w) = serial_s / (fixed_s + makespan(w) + overhead(w))

* per-GOF kernel costs are timed one group of frames at a time through
  the same ``_decode_run`` / ``_encode_gof`` entry points the dispatcher
  calls, each sample into a freshly allocated output buffer so
  first-touch page faulting is charged as parallelizable work (process
  workers fault their disjoint shared-memory slices concurrently);
* ``makespan(w)`` is the largest chunk-sum of those costs under the exact
  byte-weighted (decode) / frame-weighted (encode) contiguous partition
  ``codecexec`` dispatches -- the parallel critical path with all
  scheduling assumptions identical to the real executor;
* ``fixed_s`` is the measured serial wall time minus the summed GOF
  costs (index scan, argument staging -- work that does not parallelize),
  clamped at zero;
* ``overhead(w)`` is the measured wall time of a real process-pool
  dispatch with the kernels stubbed out (:func:`probe_decode_overhead` /
  :func:`probe_encode_overhead`): shared-memory create/attach/unlink,
  the parent-side memcpy of the compressed runs into the segment's blob
  region, task pickling, and the pool round trip.

Measured wall-clock sweep numbers for both backends are recorded
alongside (``sweep``) so multi-core hosts can see the realized speedup;
``bit_identical`` asserts every parallel configuration reproduced the
serial bytes exactly.
"""

from __future__ import annotations

import mmap
import os
import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
import zlib

from repro.errors import CodecError
from repro.formats.codecexec import (
    CodecPool,
    partition_weighted,
    probe_decode_overhead,
    probe_encode_overhead,
    resolve_backend,
)
from repro.formats.trajectory import Trajectory
from repro.formats.xtc import (
    _BLOCK_VALUES,
    _FLAG_PFRAME,
    _FLAG_STORED,
    _HEADER,
    _PAYLOAD_HEAD,
    DEFAULT_PRECISION,
    FrameIndex,
    _decode_run,
    _encode_gof,
    _header_box,
    decode_xtc,
    encode_xtc,
    iter_frame_infos,
)
from repro.obs.metrics import MetricsRegistry
from repro.units import to_mb

__all__ = [
    "FLOORS",
    "WORKER_SWEEP",
    "all_deflate_stream",
    "legacy_decode_xtc",
    "render_codec_bench",
    "run_codec_bench",
]

SCHEMA_VERSION = 2

#: Worker counts every sweep exercises (and the projection is evaluated at).
WORKER_SWEEP = (1, 2, 4, 8)

#: What ``pass`` requires.  Speedups are the projected critical-path values
#: at 8 process workers (see module docstring); ``baseline_ratio`` is
#: measured serial wall clock vs the frozen seed kernel.  The ratio floor
#: sits at 2.0 because this workload is deliberately P-frame heavy
#: (``keyframe_interval=12`` over 384 frames) -- delta payloads are
#: smaller and cheaper for *both* kernels, which compresses the gap the
#: v1 I-frame-heavy mix showed (~3.1x); the floor still trips hard if the
#: seed kernel's per-frame full-deflate path is ever reintroduced (~1x).
FLOORS = {
    "decode_parallel_speedup_8w": 3.0,
    "encode_parallel_speedup_8w": 2.0,
    "baseline_ratio": 2.0,
}


# -- the pre-PR kernel, frozen ------------------------------------------------


def _legacy_unzigzag(values: np.ndarray) -> np.ndarray:
    v = values.astype(np.uint64)
    half = (v >> np.uint64(1)).astype(np.int64)
    sign = (v & np.uint64(1)).astype(np.int64)
    return half ^ -sign


def _legacy_unpack_words(data: bytes, count: int, nbits: int) -> np.ndarray:
    """The seed's bit-matrix unpack: O(count x nbits) expansion."""
    if nbits == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    total_bits = count * nbits
    bits = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8), count=total_bits
    ).astype(np.uint64)
    weights = np.left_shift(
        np.uint64(1), np.arange(nbits - 1, -1, -1, dtype=np.uint64)
    )
    return bits.reshape(count, nbits) @ weights


def _legacy_decode_delta_block(
    payload: bytes, expected_count: int, stored: bool
) -> np.ndarray:
    raw = payload if stored else zlib.decompress(payload)
    nblocks, count = _PAYLOAD_HEAD.unpack_from(raw, 0)
    if count != expected_count:
        raise CodecError(f"payload holds {count} values, expected {expected_count}")
    offset = _PAYLOAD_HEAD.size
    widths = raw[offset : offset + nblocks]
    offset += nblocks
    out = np.empty(count, dtype=np.uint64)
    for b in range(nblocks):
        block_count = min(_BLOCK_VALUES, count - b * _BLOCK_VALUES)
        nbits = widths[b]
        nbytes = (block_count * nbits + 7) // 8
        out[b * _BLOCK_VALUES : b * _BLOCK_VALUES + block_count] = (
            _legacy_unpack_words(raw[offset : offset + nbytes], block_count, nbits)
        )
        offset += nbytes
    return _legacy_unzigzag(out)


def legacy_decode_xtc(data: bytes) -> Trajectory:
    """Decode with the seed's per-frame Python loop and bit-matrix kernel."""
    frames: List[np.ndarray] = []
    steps: List[int] = []
    times: List[float] = []
    prev_ints: Optional[np.ndarray] = None
    box = None
    for info in iter_frame_infos(data):
        start = info.offset + info.header_nbytes
        payload = data[start : start + info.payload_nbytes]
        natoms = info.natoms
        stored = bool(info.flags & _FLAG_STORED)
        if info.flags & _FLAG_PFRAME:
            deltas = _legacy_decode_delta_block(
                payload, natoms * 3, stored
            ).reshape(natoms, 3)
            ints = prev_ints + deltas
        else:
            origin = np.frombuffer(payload, dtype="<i4", count=3).astype(np.int64)
            deltas = _legacy_decode_delta_block(
                payload[16:], (natoms - 1) * 3, stored
            ).reshape(natoms - 1, 3)
            ints = np.empty((natoms, 3), dtype=np.int64)
            ints[0] = origin
            np.cumsum(deltas, axis=0, dtype=np.int64, out=ints[1:])
            ints[1:] += origin
        frames.append((ints / info.precision).astype(np.float32))
        prev_ints = ints
        steps.append(info.step)
        times.append(info.time_ps)
        if box is None:
            box = _header_box(data, info.offset)
    return Trajectory(
        coords=np.stack(frames),
        steps=np.asarray(steps, dtype=np.int64),
        times_ps=np.asarray(times, dtype=np.float64),
        box=box,
    )


def all_deflate_stream(data: bytes, level: int = 6) -> bytes:
    """Rewrite a stream so every payload is deflated (no stored escapes).

    The pre-PR encoder zlib-compressed every frame unconditionally; the
    current one stores near-incompressible P-frame bodies verbatim.  To
    measure the baseline on the bytes it would actually have shipped, the
    stored payloads are re-deflated and the flag cleared -- the logical
    content is untouched, and both decoders read the result identically.
    """
    chunks: List[bytes] = []
    for info in iter_frame_infos(data):
        start = info.offset + info.header_nbytes
        payload = data[start : start + info.payload_nbytes]
        flags = info.flags
        if flags & _FLAG_STORED:
            payload = zlib.compress(payload, level)
            flags &= ~_FLAG_STORED
        fields = list(_HEADER.unpack_from(data, info.offset))
        fields[14] = flags
        fields[15] = len(payload)
        chunks.append(_HEADER.pack(*fields))
        chunks.append(payload)
    return b"".join(chunks)


# -- measurement --------------------------------------------------------------


def _best_seconds(
    fn: Callable[[], object], repeats: int
) -> "Tuple[float, object]":
    """Best-of-N wall seconds (+ last result) -- the minimum filters
    scheduler noise; the result feeds the bit-identity checks for free."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _makespan(costs: Sequence[float], weights: Sequence[float], w: int) -> float:
    """Critical path of ``costs`` under the dispatcher's contiguous
    ``weights``-balanced partition into ``w`` chunks."""
    return max(
        sum(costs[lo:hi]) for lo, hi in partition_weighted(weights, w)
    )


def run_codec_bench(
    natoms: int = 8000,
    nframes: int = 384,
    keyframe_interval: int = 12,
    workers: int = 0,
    repeats: int = 3,
    seed: int = 7,
    backend: str = "auto",
) -> dict:
    """Measure codec throughput; returns the ``BENCH_codec.json`` record.

    ``workers=0`` resolves to the sweep maximum (8 -- the gated
    configuration); ``backend`` picks which sweep column the headline
    ``encode_mb_s``/``decode_mb_s`` parallel entries quote.  Rates are
    best-of-``repeats`` so a noisy run cannot understate them; the floors
    gate on the projected process-backend critical path either way (see
    module docstring).
    """
    from repro.workloads import build_workload

    headline_backend = resolve_backend(backend)
    registry = MetricsRegistry()
    workload = build_workload(natoms=natoms, nframes=nframes, seed=seed)
    trajectory = workload.trajectory
    raw_nbytes = trajectory.nbytes
    blob = encode_xtc(trajectory, keyframe_interval=keyframe_interval)
    idx = FrameIndex.build(blob)
    gofs = idx.gofs()
    ngofs = len(gofs)
    nworkers = max(WORKER_SWEEP) if workers == 0 else max(1, int(workers))

    # -- serial + legacy baselines ---------------------------------------
    encode_serial_s, _ = _best_seconds(
        lambda: encode_xtc(trajectory, keyframe_interval=keyframe_interval),
        repeats,
    )
    decode_serial_s, reference = _best_seconds(
        lambda: decode_xtc(blob), repeats
    )
    legacy_blob = all_deflate_stream(blob)
    decode_legacy_s, _ = _best_seconds(
        lambda: legacy_decode_xtc(legacy_blob), repeats
    )
    encode_serial = to_mb(raw_nbytes) / encode_serial_s
    decode_serial = to_mb(raw_nbytes) / decode_serial_s
    decode_legacy = to_mb(raw_nbytes) / decode_legacy_s

    # -- per-GOF kernel costs (the projection's work terms) --------------
    # Each timing pass decodes into a fresh anonymous mmap so first-touch
    # page faulting counts as per-GOF (parallelizable) work -- in the
    # real process path workers fault their disjoint shm slices
    # concurrently.  A recycled heap buffer (np.empty reuses freed,
    # already-faulted pages) would leak that cost into fixed_s and charge
    # it as serial.
    decode_costs = [float("inf")] * ngofs
    for _ in range(repeats):
        raw_map = mmap.mmap(-1, len(idx) * idx.natoms * 3 * 4)
        fresh = np.frombuffer(raw_map, dtype=np.float32).reshape(
            len(idx), idx.natoms, 3
        )
        for i, (s, e) in enumerate(gofs):
            t0 = time.perf_counter()
            _decode_run(blob, idx.infos[s:e], fresh[s:e])
            decode_costs[i] = min(
                decode_costs[i], time.perf_counter() - t0
            )
        del fresh
        raw_map.close()
    box9 = tuple(
        float(v)
        for v in (
            trajectory.box.reshape(9)
            if trajectory.box is not None
            else np.zeros(9, dtype=np.float32)
        )
    )
    encode_costs = [
        _best_seconds(
            lambda s=s, e=e: _encode_gof(
                trajectory, s, e, DEFAULT_PRECISION, 6, box9
            ),
            repeats,
        )[0]
        for s, e in gofs
    ]
    decode_weights = [
        (idx.infos[e - 1].offset + idx.infos[e - 1].total_nbytes)
        - idx.infos[s].offset
        for s, e in gofs
    ]
    encode_weights = [float(e - s) for s, e in gofs]
    decode_fixed_s = max(0.0, decode_serial_s - sum(decode_costs))
    encode_fixed_s = max(0.0, encode_serial_s - sum(encode_costs))

    # -- dispatch overhead + projection (process backend) ----------------
    spans = gofs
    projected_decode: dict = {}
    projected_encode: dict = {}
    decode_overhead: dict = {}
    encode_overhead: dict = {}
    with CodecPool(
        max(WORKER_SWEEP), backend="process", metrics=registry
    ) as probe_pool:
        for w in WORKER_SWEEP:
            d_over, _ = _best_seconds(
                lambda w=w: probe_decode_overhead(
                    blob, idx.infos, gofs, None, probe_pool, w
                ),
                max(2, repeats),
            )
            e_over, _ = _best_seconds(
                lambda w=w: probe_encode_overhead(
                    trajectory, spans, DEFAULT_PRECISION, 6, box9,
                    probe_pool, w,
                ),
                max(2, repeats),
            )
            decode_overhead[str(w)] = round(d_over, 6)
            encode_overhead[str(w)] = round(e_over, 6)
            projected_decode[str(w)] = round(
                decode_serial_s
                / (
                    decode_fixed_s
                    + _makespan(decode_costs, decode_weights, w)
                    + d_over
                ),
                2,
            )
            projected_encode[str(w)] = round(
                encode_serial_s
                / (
                    encode_fixed_s
                    + _makespan(encode_costs, encode_weights, w)
                    + e_over
                ),
                2,
            )

    # -- measured wall-clock sweep, both backends, bit-identity ----------
    sweep: dict = {}
    bit_identical = True
    for sweep_backend in ("thread", "process"):
        with CodecPool(
            max(WORKER_SWEEP), backend=sweep_backend, metrics=registry
        ) as pool:
            column: dict = {}
            for w in WORKER_SWEEP:
                dec_s, traj = _best_seconds(
                    lambda w=w: decode_xtc(
                        blob, workers=w, index=idx, executor=pool
                    ),
                    repeats,
                )
                enc_s, reblob = _best_seconds(
                    lambda w=w: encode_xtc(
                        trajectory,
                        keyframe_interval=keyframe_interval,
                        workers=w,
                        executor=pool,
                    ),
                    repeats,
                )
                bit_identical = bit_identical and (
                    np.array_equal(traj.coords, reference.coords)
                    and np.array_equal(traj.steps, reference.steps)
                    and np.array_equal(traj.times_ps, reference.times_ps)
                    and reblob == blob
                )
                column[str(w)] = {
                    "decode_mb_s": round(to_mb(raw_nbytes) / dec_s, 1),
                    "encode_mb_s": round(to_mb(raw_nbytes) / enc_s, 1),
                    "decode_speedup": round(decode_serial_s / dec_s, 2),
                    "encode_speedup": round(encode_serial_s / enc_s, 2),
                }
            sweep[sweep_backend] = column
    # Zero-copy decode results keep their shm mapping alive; drop the last
    # one so the metrics snapshot below records codec_shm_active == 0.
    traj = None

    headline_w = str(min(nworkers, max(WORKER_SWEEP)))
    headline = sweep[headline_backend].get(
        headline_w, sweep[headline_backend][str(max(WORKER_SWEEP))]
    )
    gate_w = str(max(WORKER_SWEEP))
    baseline_ratio = round(decode_serial / decode_legacy, 2)
    floors_ok = (
        projected_decode[gate_w] >= FLOORS["decode_parallel_speedup_8w"]
        and projected_encode[gate_w] >= FLOORS["encode_parallel_speedup_8w"]
        and baseline_ratio >= FLOORS["baseline_ratio"]
    )

    return {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "natoms": trajectory.natoms,
            "nframes": trajectory.nframes,
            "keyframe_interval": keyframe_interval,
            "gofs": ngofs,
            "raw_mb": round(to_mb(raw_nbytes), 3),
            "compressed_mb": round(to_mb(len(blob)), 3),
            "compression_ratio": round(raw_nbytes / len(blob), 3),
            "seed": seed,
        },
        "host": {
            "cpus": os.cpu_count() or 1,
            "default_backend": resolve_backend("auto"),
        },
        "workers": nworkers,
        "workers_swept": list(WORKER_SWEEP),
        "repeats": repeats,
        "backend": headline_backend,
        "encode_mb_s": {
            "serial": round(encode_serial, 1),
            "parallel": headline["encode_mb_s"],
        },
        "decode_mb_s": {
            "serial": round(decode_serial, 1),
            "parallel": headline["decode_mb_s"],
            "legacy_kernel": round(decode_legacy, 1),
        },
        "baseline_ratio": baseline_ratio,
        "sweep": sweep,
        "projected_speedup": {
            "model": (
                "serial_s / (fixed_s + makespan(w) + dispatch_overhead(w)); "
                "per-GOF costs measured serially into fresh mmaps (page "
                "faults count as parallelizable work), makespan under the "
                "dispatcher's weighted contiguous partition, overhead from "
                "a kernel-stubbed process-pool dispatch through the real "
                "shm+pool machinery"
            ),
            "decode": projected_decode,
            "encode": projected_encode,
            "decode_fixed_s": round(decode_fixed_s, 6),
            "encode_fixed_s": round(encode_fixed_s, 6),
            "decode_overhead_s": decode_overhead,
            "encode_overhead_s": encode_overhead,
        },
        "parallel_speedup": {
            "decode": projected_decode[gate_w],
            "encode": projected_encode[gate_w],
            "basis": "projected_process_critical_path_8w",
            "measured": {
                "decode": sweep[headline_backend][gate_w]["decode_speedup"],
                "encode": sweep[headline_backend][gate_w]["encode_speedup"],
            },
        },
        "bit_identical": bit_identical,
        "floors": dict(FLOORS),
        "pass": bool(floors_ok and bit_identical),
        "metrics": registry.to_json(),
    }


def render_codec_bench(result: dict) -> str:
    """Human-readable summary of a :func:`run_codec_bench` record."""
    w = result["workload"]
    enc, dec = result["encode_mb_s"], result["decode_mb_s"]
    speedup = result["parallel_speedup"]
    lines = [
        "Codec throughput (MB/s of raw frames)",
        f"  workload: {w['natoms']} atoms x {w['nframes']} frames "
        f"({w['raw_mb']} MB raw, ratio {w['compression_ratio']}x, "
        f"keyframe interval {w['keyframe_interval']}, {w['gofs']} GOFs)",
        f"  host: {result['host']['cpus']} cpu(s), "
        f"auto backend = {result['host']['default_backend']}",
        f"  encode: serial {enc['serial']}, "
        f"parallel[{result['backend']} x{result['workers']}] "
        f"{enc['parallel']}",
        f"  decode: serial {dec['serial']}, "
        f"parallel[{result['backend']} x{result['workers']}] "
        f"{dec['parallel']}, legacy kernel {dec['legacy_kernel']}",
        f"  baseline_ratio: {result['baseline_ratio']}x over the pre-PR kernel",
        "  sweep (decode_speedup @ workers):",
    ]
    for backend_name, column in result["sweep"].items():
        entries = ", ".join(
            f"{wk}w {cell['decode_speedup']}x" for wk, cell in column.items()
        )
        lines.append(f"    {backend_name}: {entries}")
    lines += [
        f"  projected (process critical path): "
        f"decode {speedup['decode']}x, encode {speedup['encode']}x @ 8w",
        f"  bit_identical: {result['bit_identical']}",
        f"  pass: {result['pass']} (floors: {result['floors']})",
    ]
    return "\n".join(lines)
