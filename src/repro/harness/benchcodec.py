"""Codec throughput benchmark with a frozen pre-PR kernel baseline.

Produces the machine-readable ``BENCH_codec.json`` record: encode/decode
MB/s (serial and parallel group-of-frames), the compression ratio, and
``baseline_ratio`` -- serial decode throughput of the vectorized kernels
relative to the seed's bit-matrix kernels, so later PRs have a perf
trajectory to beat.

The baseline is *embedded* here rather than checked out from history:
:func:`legacy_decode_xtc` decodes the exact same stream with the seed's
strategy -- an O(count x nbits) bit-matrix expansion per block
(``unpackbits`` + matrix-vector product), a pure-Python per-frame loop
with fresh allocations at every step, and a final ``np.stack``.  Only the
container parsing (header struct, stored-payload flag, block size) tracks
the current format so both kernels read identical bytes.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

import numpy as np
import zlib

from repro.errors import CodecError
from repro.formats.trajectory import Trajectory
from repro.formats.xtc import (
    _BLOCK_VALUES,
    _FLAG_PFRAME,
    _FLAG_STORED,
    _HEADER,
    _PAYLOAD_HEAD,
    _header_box,
    decode_xtc,
    encode_xtc,
    iter_frame_infos,
    resolve_workers,
)
from repro.units import to_mb

__all__ = [
    "all_deflate_stream",
    "legacy_decode_xtc",
    "render_codec_bench",
    "run_codec_bench",
]

SCHEMA_VERSION = 1


# -- the pre-PR kernel, frozen ------------------------------------------------


def _legacy_unzigzag(values: np.ndarray) -> np.ndarray:
    v = values.astype(np.uint64)
    half = (v >> np.uint64(1)).astype(np.int64)
    sign = (v & np.uint64(1)).astype(np.int64)
    return half ^ -sign


def _legacy_unpack_words(data: bytes, count: int, nbits: int) -> np.ndarray:
    """The seed's bit-matrix unpack: O(count x nbits) expansion."""
    if nbits == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    total_bits = count * nbits
    bits = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8), count=total_bits
    ).astype(np.uint64)
    weights = np.left_shift(
        np.uint64(1), np.arange(nbits - 1, -1, -1, dtype=np.uint64)
    )
    return bits.reshape(count, nbits) @ weights


def _legacy_decode_delta_block(
    payload: bytes, expected_count: int, stored: bool
) -> np.ndarray:
    raw = payload if stored else zlib.decompress(payload)
    nblocks, count = _PAYLOAD_HEAD.unpack_from(raw, 0)
    if count != expected_count:
        raise CodecError(f"payload holds {count} values, expected {expected_count}")
    offset = _PAYLOAD_HEAD.size
    widths = raw[offset : offset + nblocks]
    offset += nblocks
    out = np.empty(count, dtype=np.uint64)
    for b in range(nblocks):
        block_count = min(_BLOCK_VALUES, count - b * _BLOCK_VALUES)
        nbits = widths[b]
        nbytes = (block_count * nbits + 7) // 8
        out[b * _BLOCK_VALUES : b * _BLOCK_VALUES + block_count] = (
            _legacy_unpack_words(raw[offset : offset + nbytes], block_count, nbits)
        )
        offset += nbytes
    return _legacy_unzigzag(out)


def legacy_decode_xtc(data: bytes) -> Trajectory:
    """Decode with the seed's per-frame Python loop and bit-matrix kernel."""
    frames: List[np.ndarray] = []
    steps: List[int] = []
    times: List[float] = []
    prev_ints: Optional[np.ndarray] = None
    box = None
    for info in iter_frame_infos(data):
        start = info.offset + info.header_nbytes
        payload = data[start : start + info.payload_nbytes]
        natoms = info.natoms
        stored = bool(info.flags & _FLAG_STORED)
        if info.flags & _FLAG_PFRAME:
            deltas = _legacy_decode_delta_block(
                payload, natoms * 3, stored
            ).reshape(natoms, 3)
            ints = prev_ints + deltas
        else:
            origin = np.frombuffer(payload, dtype="<i4", count=3).astype(np.int64)
            deltas = _legacy_decode_delta_block(
                payload[16:], (natoms - 1) * 3, stored
            ).reshape(natoms - 1, 3)
            ints = np.empty((natoms, 3), dtype=np.int64)
            ints[0] = origin
            np.cumsum(deltas, axis=0, dtype=np.int64, out=ints[1:])
            ints[1:] += origin
        frames.append((ints / info.precision).astype(np.float32))
        prev_ints = ints
        steps.append(info.step)
        times.append(info.time_ps)
        if box is None:
            box = _header_box(data, info.offset)
    return Trajectory(
        coords=np.stack(frames),
        steps=np.asarray(steps, dtype=np.int64),
        times_ps=np.asarray(times, dtype=np.float64),
        box=box,
    )


def all_deflate_stream(data: bytes, level: int = 6) -> bytes:
    """Rewrite a stream so every payload is deflated (no stored escapes).

    The pre-PR encoder zlib-compressed every frame unconditionally; the
    current one stores near-incompressible P-frame bodies verbatim.  To
    measure the baseline on the bytes it would actually have shipped, the
    stored payloads are re-deflated and the flag cleared -- the logical
    content is untouched, and both decoders read the result identically.
    """
    chunks: List[bytes] = []
    for info in iter_frame_infos(data):
        start = info.offset + info.header_nbytes
        payload = data[start : start + info.payload_nbytes]
        flags = info.flags
        if flags & _FLAG_STORED:
            payload = zlib.compress(payload, level)
            flags &= ~_FLAG_STORED
        fields = list(_HEADER.unpack_from(data, info.offset))
        fields[14] = flags
        fields[15] = len(payload)
        chunks.append(_HEADER.pack(*fields))
        chunks.append(payload)
    return b"".join(chunks)


# -- measurement --------------------------------------------------------------


def _best_rate(fn: Callable[[], object], nbytes: int, repeats: int) -> float:
    """Best-of-N MB/s -- minimum wall time filters scheduler noise."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return to_mb(nbytes) / best


def run_codec_bench(
    natoms: int = 8000,
    nframes: int = 30,
    keyframe_interval: int = 10,
    workers: int = 0,
    repeats: int = 3,
    seed: int = 7,
) -> dict:
    """Measure codec throughput; returns the ``BENCH_codec.json`` record.

    ``workers=0`` resolves to one worker per CPU (the deployment default);
    rates are best-of-``repeats`` so a noisy run cannot understate them.
    """
    from repro.workloads import build_workload

    workload = build_workload(natoms=natoms, nframes=nframes, seed=seed)
    trajectory = workload.trajectory
    raw_nbytes = trajectory.nbytes
    blob = encode_xtc(trajectory, keyframe_interval=keyframe_interval)
    nworkers = resolve_workers(workers, max(1, nframes // keyframe_interval))

    encode_serial = _best_rate(
        lambda: encode_xtc(trajectory, keyframe_interval=keyframe_interval),
        raw_nbytes,
        repeats,
    )
    encode_parallel = _best_rate(
        lambda: encode_xtc(
            trajectory, keyframe_interval=keyframe_interval, workers=nworkers
        ),
        raw_nbytes,
        repeats,
    )
    decode_serial = _best_rate(lambda: decode_xtc(blob), raw_nbytes, repeats)
    decode_parallel = _best_rate(
        lambda: decode_xtc(blob, workers=nworkers), raw_nbytes, repeats
    )
    legacy_blob = all_deflate_stream(blob)
    decode_legacy = _best_rate(
        lambda: legacy_decode_xtc(legacy_blob), raw_nbytes, repeats
    )

    return {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "natoms": trajectory.natoms,
            "nframes": trajectory.nframes,
            "keyframe_interval": keyframe_interval,
            "raw_mb": round(to_mb(raw_nbytes), 3),
            "compressed_mb": round(to_mb(len(blob)), 3),
            "compression_ratio": round(raw_nbytes / len(blob), 3),
        },
        "workers": nworkers,
        "repeats": repeats,
        "encode_mb_s": {
            "serial": round(encode_serial, 1),
            "parallel": round(encode_parallel, 1),
        },
        "decode_mb_s": {
            "serial": round(decode_serial, 1),
            "parallel": round(decode_parallel, 1),
            "legacy_kernel": round(decode_legacy, 1),
        },
        "baseline_ratio": round(decode_serial / decode_legacy, 2),
        "parallel_speedup": {
            "encode": round(encode_parallel / encode_serial, 2),
            "decode": round(decode_parallel / decode_serial, 2),
        },
    }


def render_codec_bench(result: dict) -> str:
    """Human-readable summary of a :func:`run_codec_bench` record."""
    w = result["workload"]
    enc, dec = result["encode_mb_s"], result["decode_mb_s"]
    lines = [
        "Codec throughput (MB/s of raw frames)",
        f"  workload: {w['natoms']} atoms x {w['nframes']} frames "
        f"({w['raw_mb']} MB raw, ratio {w['compression_ratio']}x, "
        f"keyframe interval {w['keyframe_interval']})",
        f"  encode: serial {enc['serial']}, "
        f"parallel(x{result['workers']}) {enc['parallel']}",
        f"  decode: serial {dec['serial']}, "
        f"parallel(x{result['workers']}) {dec['parallel']}, "
        f"legacy kernel {dec['legacy_kernel']}",
        f"  baseline_ratio: {result['baseline_ratio']}x over the pre-PR kernel",
    ]
    return "\n".join(lines)
