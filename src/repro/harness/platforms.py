"""The three evaluation platforms (paper §4, Tables 4 and 5).

Each factory assembles a fresh :class:`Platform`: a DES simulator, one
compute node running the VMD pipeline, a *traditional* file system (the
control), and an ADA middleware over backend file systems.

* :func:`ssd_server` -- §4.1: one server, two 256 GB NVMe SSDs, ext4,
  16 GB DRAM.  ADA places the protein subset on one SSD and MISC on the
  other ("two separate locations").
* :func:`small_cluster` -- §4.2: nine nodes; six storage nodes (3x two WD
  1 TB HDDs, 3x two Plextor SSDs) behind OrangeFS over InfiniBand.  The
  control PVFS stripes uniformly over the hybrid pool; ADA runs one PVFS
  per pool and places by tag.
* :func:`fat_node` -- §4.3: 40-core E7 server, 1,007 GB DRAM, ten WD HDDs
  in RAID 50 under XFS.  ADA has no second tier here -- its benefit is
  pre-filtering alone, which is exactly what the section evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cluster.node import ComputeNode, CpuSpec, StorageNode
from repro.core.middleware import ADA
from repro.core.tags import PlacementPolicy
from repro.fs.base import FileSystem
from repro.fs.localfs import LocalFS
from repro.fs.pvfs import PVFS, StorageTarget
from repro.harness.calibration import E5_2603V4, E7_4820V3
from repro.net.infiniband import INFINIBAND_FDR
from repro.net.link import Link
from repro.sim import Simulator
from repro.storage.device import Device
from repro.storage.hdd import WD_1TB_HDD
from repro.storage.power import NodePower
from repro.storage.raid import raid0_spec, raid50_spec
from repro.storage.ssd import NVME_SSD_256GB, PLEXTOR_SSD_256GB
from repro.units import GB, GiB, KiB

__all__ = ["Platform", "ssd_server", "small_cluster", "fat_node"]

#: Traditional readers issue small (stripe/frame-grained) requests; this is
#: the xdrfile frame-by-frame access pattern on a parallel FS.
TRADITIONAL_REQUEST_SIZE = 64 * KiB


@dataclass
class Platform:
    """One assembled testbed."""

    name: str
    sim: Simulator
    compute: ComputeNode
    traditional_fs: FileSystem
    ada: ADA
    storage_nodes: List[StorageNode] = field(default_factory=list)
    #: Request size traditional reads use (None => one sequential request).
    traditional_request_size: Optional[int] = None
    description: str = ""

    def parameters(self) -> List:
        """(name, value) rows for the platform's parameter table."""
        rows = [
            ("Platform", self.name),
            ("CPU", f"{self.compute.cpu.name} @ {self.compute.cpu.ghz:.2f} GHz"),
            ("Memory", f"{self.compute.memory.capacity / GiB:.0f} GiB"),
            ("Traditional FS", self.traditional_fs.name),
            ("ADA backends", ", ".join(sorted(self.ada.plfs.backends))),
            ("Storage nodes", str(len(self.storage_nodes))),
        ]
        return rows

    def device_inventory(self) -> List:
        """Table-4-style disk rows: (device, read bw, write bw, capacity)."""
        from repro.units import fmt_bytes, to_mb

        specs = []
        device = getattr(self.traditional_fs, "device", None)
        if device is not None:
            specs.append(device.spec)
        for fs in self.ada.plfs.backends.values():
            inner = getattr(fs, "device", None)
            if inner is not None:
                specs.append(inner.spec)
            for target in getattr(fs, "targets", []) or []:
                specs.append(target.device.spec)
        rows, seen = [], set()
        for spec in specs:
            key = (spec.name, spec.read_bw)
            if key in seen:
                continue
            seen.add(key)
            rows.append(
                (
                    spec.name,
                    f"{to_mb(spec.read_bw):,.0f} MB/s",
                    f"{to_mb(spec.write_bw):,.0f} MB/s",
                    fmt_bytes(spec.capacity),
                )
            )
        return rows


def _node_power_cluster() -> NodePower:
    # Table 4: 400 W average per node under load.
    return NodePower(idle_w=330.0, cpu_active_w=60.0, io_active_w=10.0)


def _node_power_fat() -> NodePower:
    # 4-socket E7 server: high idle floor, big package swing.
    return NodePower(idle_w=400.0, cpu_active_w=250.0, io_active_w=80.0)


def ssd_server(memory_bytes: float = 16 * GiB, cpu: CpuSpec = E5_2603V4) -> Platform:
    """§4.1: single server, ext4 over NVMe, 16 GB DRAM."""
    sim = Simulator()
    compute = ComputeNode(
        sim, "ssd-server", cpu=cpu, memory_capacity=memory_bytes,
        power=_node_power_cluster(),
    )
    trad = LocalFS(sim, NVME_SSD_256GB, name="ext4:nvme0", flavor="ext4")
    backends: Dict[str, FileSystem] = {
        "nvme0": LocalFS(sim, NVME_SSD_256GB, name="ada:nvme0", flavor="ext4"),
        "nvme1": LocalFS(sim, NVME_SSD_256GB, name="ada:nvme1", flavor="ext4"),
    }
    ada = ADA(
        sim,
        backends=backends,
        placement=PlacementPolicy.paper_default(
            active_backend="nvme0", inactive_backend="nvme1"
        ),
    )
    return Platform(
        name="ssd-server",
        sim=sim,
        compute=compute,
        traditional_fs=trad,
        ada=ada,
        traditional_request_size=None,  # local sequential reads
        description="SSD server: E5-2603v4, 16 GB DRAM, 2x 256 GB NVMe, ext4",
    )


def small_cluster(
    memory_bytes: float = 16 * GiB,
    cpu: CpuSpec = E5_2603V4,
    hdd_nodes: int = 3,
    ssd_nodes: int = 3,
    drives_per_node: int = 2,
    stripe_size: int = 64 * KiB,
    request_overhead_s: float = 0.5e-3,
) -> Platform:
    """§4.2: nine-node cluster; hybrid OrangeFS control vs per-pool ADA."""
    sim = Simulator()
    compute = ComputeNode(
        sim, "compute0", cpu=cpu, memory_capacity=memory_bytes,
        power=_node_power_cluster(),
    )

    def _make_targets(n, member_spec, prefix):
        targets, nodes = [], []
        for i in range(n):
            spec = raid0_spec(member_spec, drives_per_node, name=f"{prefix}{i}")
            device = Device(sim, spec)
            link = Link(sim, INFINIBAND_FDR, name=f"ib:{prefix}{i}")
            targets.append(StorageTarget(device=device, link=link))
            nodes.append(
                StorageNode(
                    name=f"{prefix}{i}", devices=[device],
                    power=_node_power_cluster(), link=link,
                )
            )
        return targets, nodes

    hdd_targets, hdd_nodes_list = _make_targets(hdd_nodes, WD_1TB_HDD, "hdd")
    ssd_targets, ssd_nodes_list = _make_targets(ssd_nodes, PLEXTOR_SSD_256GB, "ssd")

    # Control: one OrangeFS striping uniformly over the hybrid pool.
    trad = PVFS(
        sim,
        hdd_targets + ssd_targets,
        name="pvfs:hybrid",
        stripe_size=stripe_size,
        request_overhead_s=request_overhead_s,
    )
    # ADA: one PVFS per homogeneous pool, tag-routed.
    backends: Dict[str, FileSystem] = {
        "ssd-pool": PVFS(
            sim, ssd_targets, name="pvfs:ssd", stripe_size=stripe_size,
            request_overhead_s=request_overhead_s,
        ),
        "hdd-pool": PVFS(
            sim, hdd_targets, name="pvfs:hdd", stripe_size=stripe_size,
            request_overhead_s=request_overhead_s,
        ),
    }
    # Each storage node contributes its CPU to ADA's pre-processing pool
    # (the whole point: this work happens on storage nodes, in parallel).
    storage_cpus = [
        ComputeNode(
            sim, f"{node.name}-cpu", cpu=cpu, memory_capacity=memory_bytes,
            power=_node_power_cluster(),
        )
        for node in hdd_nodes_list + ssd_nodes_list
    ]
    ada = ADA(
        sim,
        backends=backends,
        placement=PlacementPolicy.paper_default(
            active_backend="ssd-pool", inactive_backend="hdd-pool"
        ),
        storage_cpus=storage_cpus,
    )
    return Platform(
        name="small-cluster",
        sim=sim,
        compute=compute,
        traditional_fs=trad,
        ada=ada,
        storage_nodes=hdd_nodes_list + ssd_nodes_list,
        traditional_request_size=TRADITIONAL_REQUEST_SIZE,
        description=(
            "nine-node cluster: 3 compute, 3x2 WD 1TB HDD + 3x2 Plextor SSD "
            "storage nodes, OrangeFS over InfiniBand"
        ),
    )


def fat_node(
    memory_bytes: float = 1007 * GB, cpu: CpuSpec = E7_4820V3
) -> Platform:
    """§4.3: 1 TB-memory server, ten WD HDDs in RAID 50 under XFS."""
    sim = Simulator()
    compute = ComputeNode(
        sim, "fat-node", cpu=cpu, memory_capacity=memory_bytes,
        power=_node_power_fat(),
    )
    raid = raid50_spec(WD_1TB_HDD, n_members=10, spans=2, name="raid50-10xWD")
    trad = LocalFS(sim, raid, name="xfs:raid50", flavor="xfs")
    # No flash tier on this machine: both subsets live on the array; ADA's
    # benefit here is pre-filtering alone (exactly what §4.3 isolates).
    backends: Dict[str, FileSystem] = {
        "raid": LocalFS(sim, raid, name="ada:raid50", flavor="xfs"),
    }
    ada = ADA(
        sim,
        backends=backends,
        placement=PlacementPolicy(
            active_tags=frozenset({"p"}),
            active_backend="raid",
            inactive_backend="raid",
        ),
    )
    return Platform(
        name="fat-node",
        sim=sim,
        compute=compute,
        traditional_fs=trad,
        ada=ada,
        traditional_request_size=None,
        description=(
            "fat node: E7-4820v3 (40 cores), 1,007 GB DRAM, "
            "10x WD 1TB HDD RAID 50, XFS"
        ),
    )
