"""ASCII line charts: figure-shaped artifacts in plain text.

The paper's figures are log-ish line plots of metric vs frame count, one
series per scenario.  :func:`series_chart` renders the same thing in a
terminal: scenarios as letter marks on a scaled canvas, frame counts along
x, a legend underneath.  Killed points truncate their series exactly as
the paper's plots do.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.harness.report import METRICS
from repro.harness.scenarios import SCENARIOS, RunResult

__all__ = ["series_chart"]

_MARKS = "ABCDEFGH"


def series_chart(
    results: Iterable[RunResult],
    metric: str,
    fs_label: str = "FS",
    width: int = 64,
    height: int = 16,
) -> str:
    """Render a sweep as an ASCII chart (returns multi-line text)."""
    label, extract, _fmt = METRICS[metric]
    results = [r for r in results if not r.killed]
    if not results:
        return f"{label}: every point was killed"
    keys = sorted({r.scenario for r in results}, key=list(SCENARIOS).index)
    frames = sorted({r.nframes for r in results})
    by_cell = {(r.scenario, r.nframes): extract(r) for r in results}

    values = list(by_cell.values())
    vmax = max(values) or 1.0
    xmax = max(frames)

    canvas = [[" "] * width for _ in range(height)]
    for k, key in enumerate(keys):
        mark = _MARKS[k % len(_MARKS)]
        for nframes in frames:
            value = by_cell.get((key, nframes))
            if value is None:
                continue
            col = int((nframes / xmax) * (width - 1))
            row = height - 1 - int((value / vmax) * (height - 1))
            canvas[row][col] = mark

    lines = [f"{label} vs frames (y-max {vmax:.3g})"]
    lines += ["|" + "".join(row) for row in canvas]
    lines.append("+" + "-" * width)
    lines.append(f" 0{'frames'.center(width - 10)}{xmax:,}")
    legend = "   ".join(
        f"{_MARKS[k % len(_MARKS)]}={SCENARIOS[key].display(fs_label)}"
        for k, key in enumerate(keys)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
