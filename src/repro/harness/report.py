"""Paper-shaped text reporting.

:class:`Table` renders aligned monospace tables; :func:`series_pivot`
reshapes a sweep's results into one row per frame count with one column per
scenario -- the same layout the paper's figures plot.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.harness.scenarios import SCENARIOS, RunResult
from repro.units import fmt_bytes, fmt_seconds, to_gb, to_kj, to_mb

__all__ = ["Table", "series_pivot", "format_results", "METRICS"]


class Table:
    """Minimal aligned-text table."""

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            widths = [max(w, len(c)) for w, c in zip(widths, row)]
        lines = []
        if self.title:
            lines.append(self.title)
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        lines.append(fmt.format(*self.headers))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(fmt.format(*row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


#: metric key -> (column label, value extractor, formatter)
METRICS: Dict[str, tuple] = {
    "retrieval": (
        "retrieval",
        lambda r: r.retrieval_s,
        fmt_seconds,
    ),
    "turnaround": (
        "turnaround",
        lambda r: r.turnaround_s,
        fmt_seconds,
    ),
    "memory": (
        "peak memory",
        lambda r: r.peak_memory_nbytes,
        fmt_bytes,
    ),
    "energy": (
        "energy",
        lambda r: r.energy_j,
        lambda j: f"{to_kj(j):,.0f} kJ",
    ),
    "loaded": (
        "loaded size",
        lambda r: r.loaded_nbytes,
        fmt_bytes,
    ),
}


def series_pivot(
    results: Iterable[RunResult],
    metric: str,
    fs_label: str = "FS",
) -> Table:
    """Pivot sweep results: rows = frame counts, columns = scenarios.

    Killed points render as ``killed`` -- the truncated series of Fig. 10.
    """
    label, extract, fmt = METRICS[metric]
    results = list(results)
    keys = sorted({r.scenario for r in results}, key=list(SCENARIOS).index)
    frame_counts = sorted({r.nframes for r in results})
    by_cell = {(r.scenario, r.nframes): r for r in results}
    table = Table(
        headers=["frames"] + [SCENARIOS[k].display(fs_label) for k in keys],
        title=f"{label} by frame count",
    )
    for nframes in frame_counts:
        cells = [f"{nframes:,}"]
        for key in keys:
            r = by_cell.get((key, nframes))
            if r is None:
                cells.append("-")
            elif r.killed:
                cells.append(f"killed@{r.killed_phase}")
            else:
                cells.append(fmt(extract(r)))
        table.add_row(*cells)
    return table


def format_results(
    results: Iterable[RunResult],
    metrics: Sequence[str] = ("retrieval", "turnaround", "memory"),
    fs_label: str = "FS",
) -> str:
    """Render one table per metric, newline-separated."""
    return "\n\n".join(
        series_pivot(results, metric, fs_label=fs_label).render()
        for metric in metrics
    )
