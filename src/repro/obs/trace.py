"""Span-based tracing on the simulated clock.

Every instrumented fetch produces a nested timeline -- middleware ->
retriever -> coalesced run -> PLFS chunk read -> device -- with tags for
``(logical, tag, chunk, tier, cache_hit, retries)``.  Timestamps are the
DES clock (:attr:`Simulator.now`), never wall time, so a trace of a
seeded run is fully deterministic: identical seeds serialize to
byte-identical JSON, and a latency anomaly in a trace is a *modeled*
anomaly, reproducible forever.

Context propagation rides the engine's active-process tracking: within
one DES process a ``yield from`` chain is a single generator stack, so a
per-process span stack gives correct nesting; a process spawned while a
span is open inherits that span as its parent (the adaptive prefetcher's
background read therefore nests under the demand fetch that triggered
it).  The tracer attaches to the simulator (``sim.tracer``) so deep
layers -- PLFS, the storage devices -- can open spans without any
constructor threading; with no tracer attached, :func:`span` is a no-op
null context, leaving untraced runs untouched.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from typing import Dict, List, Optional

__all__ = ["Span", "Tracer", "span", "render_trace"]


class Span:
    """One timed operation; nests under a parent, carries tags."""

    __slots__ = (
        "tracer", "span_id", "name", "tags", "start_s", "end_s",
        "parent", "children", "status",
    )

    def __init__(self, tracer: "Tracer", span_id: int, name: str,
                 start_s: float, parent: Optional["Span"], tags: Dict):
        self.tracer = tracer
        self.span_id = span_id
        self.name = name
        self.tags = dict(tags)
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.parent = parent
        self.children: List["Span"] = []
        self.status = "ok"

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else self.tracer.sim.now
        return end - self.start_s

    def tag(self, **tags) -> "Span":
        self.tags.update(tags)
        return self

    def finish(self, status: str = "ok") -> None:
        if self.end_s is None:
            self.end_s = self.tracer.sim.now
            self.status = status

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s if self.end_s is not None else self.start_s,
            "status": self.status,
            "tags": {k: self.tags[k] for k in sorted(self.tags)},
            "children": [c.to_dict() for c in self.children],
        }

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"Span({self.name!r}, id={self.span_id}, tags={self.tags})"


class _SpanContext:
    """``with tracer.span(...)`` body: push on enter, pop+finish on exit."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", sp: Span):
        self.tracer = tracer
        self.span = sp

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer._pop(self.span)
        if exc_type is None:
            self.span.finish("ok")
        elif exc_type is GeneratorExit:
            self.span.finish("cancelled")
        else:
            self.span.tag(error=exc_type.__name__)
            self.span.finish("error")
        return False


class _NullContext:
    """The tracer-less stand-in: absorbs the same calls, records nothing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def tag(self, **tags):
        return self

    def finish(self, status: str = "ok") -> None:
        pass


_NULL = _NullContext()


class Tracer:
    """Collects spans into per-root timelines on one simulator.

    Construction attaches to the simulator (``sim.tracer``); use
    :meth:`Tracer.for_sim` to share an already-attached tracer instead of
    displacing it.  ``max_traces`` bounds retained root timelines (oldest
    dropped first) so long soaks cannot grow without bound.
    """

    def __init__(self, sim, max_traces: int = 1024):
        self.sim = sim
        self.max_traces = int(max_traces)
        self.roots: "deque[Span]" = deque(maxlen=self.max_traces)
        self._ids = itertools.count(1)
        self._global_stack: List[Span] = []
        self.spans_started = 0
        sim.tracer = self

    @classmethod
    def for_sim(cls, sim, max_traces: int = 1024) -> "Tracer":
        """The simulator's attached tracer, created on first use."""
        existing = getattr(sim, "tracer", None)
        if existing is not None:
            return existing
        return cls(sim, max_traces=max_traces)

    # -- context plumbing --------------------------------------------------

    def _stack(self) -> List[Span]:
        proc = getattr(self.sim, "_active_process", None)
        if proc is None:
            return self._global_stack
        return proc._span_stack

    def current(self) -> Optional[Span]:
        """The innermost open span in the active process (or globally)."""
        stack = self._stack()
        if stack:
            return stack[-1]
        proc = getattr(self.sim, "_active_process", None)
        if proc is not None:
            return proc._trace_ctx
        return None

    def span(self, name: str, **tags) -> _SpanContext:
        """Open a child of the current span (context manager).

        The span is recorded at entry; nesting follows the per-process
        stack, and a root (no parent anywhere) starts a new timeline.
        """
        parent = self.current()
        sp = Span(self, next(self._ids), name, self.sim.now, parent, tags)
        self.spans_started += 1
        if parent is not None:
            parent.children.append(sp)
        else:
            self.roots.append(sp)
        self._stack().append(sp)
        return _SpanContext(self, sp)

    def _pop(self, sp: Span) -> None:
        stack = self._stack()
        if sp in stack:
            # Normally the top; tolerate out-of-order unwinds (interrupts).
            stack.remove(sp)

    # -- query / export ----------------------------------------------------

    def find(self, name: Optional[str] = None, **tags) -> List[Span]:
        """Every span (any timeline) matching name and tag equality."""
        out = []
        for root in self.roots:
            for sp in root.walk():
                if name is not None and sp.name != name:
                    continue
                if any(sp.tags.get(k) != v for k, v in tags.items()):
                    continue
                out.append(sp)
        return out

    def traces(self, logical: Optional[str] = None,
               tag: Optional[str] = None) -> List[Span]:
        """Root timelines, optionally filtered by dataset/tag.

        A root matches when *any* span in its tree carries the requested
        ``logical`` / ``tag`` tags -- so a device-level filter still
        returns the enclosing fetch timeline.
        """
        out = []
        for root in self.roots:
            if logical is None and tag is None:
                out.append(root)
                continue
            for sp in root.walk():
                if logical is not None and sp.tags.get("logical") != logical:
                    continue
                if tag is not None and sp.tags.get("tag") != tag:
                    continue
                out.append(root)
                break
        return out

    def to_json(self, logical: Optional[str] = None,
                tag: Optional[str] = None) -> str:
        """Deterministic JSON of the (filtered) timelines."""
        payload = {
            "schema_version": 1,
            "traces": [r.to_dict() for r in self.traces(logical, tag)],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def clear(self) -> None:
        self.roots.clear()


def span(sim, name: str, **tags):
    """Open a span on ``sim``'s tracer, or a free null context without one.

    The instrumentation idiom for deep layers (devices, file systems)
    that must not require observability wiring::

        with span(self.sim, "device.read", device=self.name) as sp:
            ...
            sp.tag(nbytes=total)
    """
    tracer = getattr(sim, "tracer", None)
    if tracer is None:
        return _NULL
    return tracer.span(name, **tags)


def _render_span(sp: Span, depth: int, lines: List[str]) -> None:
    tags = " ".join(f"{k}={sp.tags[k]}" for k in sorted(sp.tags))
    duration = (sp.end_s if sp.end_s is not None else sp.start_s) - sp.start_s
    status = "" if sp.status == "ok" else f" [{sp.status}]"
    lines.append(
        f"{sp.start_s * 1e3:12.6f} ms  {'  ' * depth}{sp.name}"
        f" ({duration * 1e3:.6f} ms){status}"
        + (f"  {tags}" if tags else "")
    )
    for child in sp.children:
        _render_span(child, depth + 1, lines)


def render_trace(roots: List[Span]) -> str:
    """Human-readable nested timeline (simulated milliseconds)."""
    lines: List[str] = []
    for root in roots:
        _render_span(root, 0, lines)
    return "\n".join(lines)
