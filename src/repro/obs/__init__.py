"""Unified observability layer: metrics registry + simulated-time tracing.

``repro.obs`` is the substrate every scaling PR records into:

* :class:`~repro.obs.metrics.MetricsRegistry` -- counters, gauges, and
  fixed-bucket log-scale histograms; deterministic, no wall-clock; the
  single source of truth behind the legacy ``stats()`` dicts (now views).
* :class:`~repro.obs.trace.Tracer` -- span timelines on the DES clock:
  middleware -> retriever -> coalesced run -> PLFS chunk read -> device,
  tagged with ``(logical, tag, chunk, tier, cache_hit, retries)``.
* :mod:`~repro.obs.export` -- Prometheus text and structured JSON
  exporters (plus the parsers the round-trip tests use).

CLI entry points: ``python -m repro metrics`` and ``python -m repro
trace --logical X --tag p [--json]``.
"""

from repro.obs.export import (
    parse_metrics_json,
    parse_prometheus,
    registry_to_json,
    registry_to_prometheus,
)
from repro.obs.metrics import (
    SIZE_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    metric_view,
)
from repro.obs.trace import Span, Tracer, render_trace, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SIZE_BUCKETS",
    "Span",
    "TIME_BUCKETS",
    "Tracer",
    "global_registry",
    "metric_view",
    "parse_metrics_json",
    "parse_prometheus",
    "registry_to_json",
    "registry_to_prometheus",
    "render_trace",
    "span",
]
