"""Metric exporters: Prometheus text exposition and structured JSON.

Both formats are deterministic renderings of a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot -- families sorted by
name, instances by label key -- so identical seeded runs export
byte-identical artifacts, which is what the determinism gate in
``tests/obs`` holds.

:func:`parse_prometheus` is a minimal exposition-format parser (enough
for the round-trip property tests and for scraping our own output); it is
*not* a general Prometheus client.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

__all__ = [
    "registry_to_json",
    "registry_to_prometheus",
    "parse_prometheus",
    "parse_metrics_json",
]


def _label_str(labels, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = list(labels) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt(value) -> str:
    """Prometheus number formatting: integers render without a dot."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def registry_to_json(registry) -> Dict[str, object]:
    """Structured snapshot of every family, stable order throughout."""
    families: List[Dict[str, object]] = []
    for name, kind, metrics in registry.families():
        instances = []
        for metric in metrics:
            entry: Dict[str, object] = {
                "labels": {k: v for k, v in metric.labels},
            }
            if kind == "histogram":
                entry["buckets"] = [
                    {"le": bound, "count": count}
                    for bound, count in zip(metric.bounds, metric.bucket_counts)
                ]
                entry["count"] = metric.count
                entry["sum"] = metric.sum
            else:
                entry["value"] = metric.value
            instances.append(entry)
        families.append({"name": name, "kind": kind, "metrics": instances})
    return {"schema_version": 1, "families": families}


def registry_to_prometheus(registry) -> str:
    """Prometheus text exposition (format version 0.0.4)."""
    lines: List[str] = []
    for name, kind, metrics in registry.families():
        lines.append(f"# TYPE {name} {kind}")
        for metric in metrics:
            if kind == "histogram":
                # bucket_counts are already cumulative (``le`` semantics).
                for bound, count in zip(metric.bounds, metric.bucket_counts):
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_str(metric.labels, (('le', _fmt(bound)),))}"
                        f" {count}"
                    )
                lines.append(
                    f"{name}_bucket"
                    f"{_label_str(metric.labels, (('le', '+Inf'),))}"
                    f" {metric.count}"
                )
                lines.append(
                    f"{name}_sum{_label_str(metric.labels)} {_fmt(metric.sum)}"
                )
                lines.append(
                    f"{name}_count{_label_str(metric.labels)} {metric.count}"
                )
            else:
                lines.append(
                    f"{name}{_label_str(metric.labels)} {_fmt(metric.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse exposition text back into ``{name: {label_key: value}}``.

    Covers the subset :func:`registry_to_prometheus` emits (TYPE comments,
    labeled samples, ``+Inf`` bounds); raises :class:`ValueError` on
    anything malformed so the round-trip test actually validates syntax.
    """
    samples: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, _, value_part = line.rpartition(" ")
        if not body:
            raise ValueError(f"malformed sample line: {raw!r}")
        if "{" in body:
            name, _, label_blob = body.partition("{")
            if not label_blob.endswith("}"):
                raise ValueError(f"unterminated labels: {raw!r}")
            labels = _parse_labels(label_blob[:-1])
        else:
            name, labels = body, ()
        value = float("inf") if value_part == "+Inf" else float(value_part)
        samples.setdefault(name, {})[labels] = value
    return samples


def _parse_labels(blob: str) -> Tuple[Tuple[str, str], ...]:
    labels: List[Tuple[str, str]] = []
    i = 0
    while i < len(blob):
        eq = blob.index("=", i)
        key = blob[i:eq]
        if blob[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {blob!r}")
        j = eq + 2
        out = []
        while blob[j] != '"':
            if blob[j] == "\\":
                j += 1
            out.append(blob[j])
            j += 1
        labels.append((key, "".join(out)))
        i = j + 1
        if i < len(blob) and blob[i] == ",":
            i += 1
    return tuple(labels)


def parse_metrics_json(payload: str) -> Dict[str, object]:
    """Parse (and structurally validate) a JSON metrics snapshot."""
    record = json.loads(payload)
    if record.get("schema_version") != 1:
        raise ValueError(f"unknown metrics schema {record.get('schema_version')!r}")
    for family in record["families"]:
        if family["kind"] not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {family['kind']!r}")
        for metric in family["metrics"]:
            if family["kind"] == "histogram":
                bounds = [b["le"] for b in metric["buckets"]]
                if bounds != sorted(bounds):
                    raise ValueError(f"{family['name']}: buckets not ascending")
            elif "value" not in metric:
                raise ValueError(f"{family['name']}: sample without value")
    return record
