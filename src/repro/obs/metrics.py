"""Process-wide but injectable metrics: counters, gauges, histograms.

The evaluation sections of the source paper (Tables 4-6, Figures 7-10) are
entirely about *measured* behaviour -- per-stage latency, tier traffic
split, time-to-first-frame.  Before this module those numbers lived in
ad-hoc ``stats()`` dicts scattered across the middleware, retriever,
prefetcher, and block cache; now one :class:`MetricsRegistry` is the
single source of truth and those dicts are *views* over it.

Design constraints, in order:

* **Deterministic.**  No wall-clock anywhere: histogram buckets are fixed
  log-scale bounds chosen at construction, exports sort every family and
  label set, and identical seeded runs serialize to byte-identical JSON
  and Prometheus text.  The registry never touches the simulator, so
  attaching it cannot perturb event order.
* **Injectable.**  Components default to a private registry (so unit
  tests stay isolated) but accept a shared one; ``ADA`` threads a single
  registry through its determinator, retriever, prefetcher, block cache,
  and retry layer.  :func:`global_registry` offers the conventional
  process-wide instance for CLI tooling.
* **View-compatible.**  The pre-existing public counters
  (``BlockCache.hits_l1``, ``RetryStats.attempts``, ...) keep their exact
  names and ``stats()`` shapes; :func:`metric_view` turns an attribute
  into a read/write window onto a registry metric so call sites like
  ``self.hits_l1 += 1`` keep working unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "SIZE_BUCKETS",
    "global_registry",
    "metric_view",
]

#: Fixed log-scale (x4) latency bounds: 1 us .. ~67 s, in seconds.
TIME_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 4.0**i for i in range(14))

#: Fixed log-scale (x4) size bounds: 1 KiB .. ~4 GiB, in bytes.
SIZE_BUCKETS: Tuple[float, ...] = tuple(1024.0 * 4.0**i for i in range(12))

#: Canonical key for one labeled instance inside a family.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotone (by convention) numeric metric.

    ``inc`` preserves int-ness: integer increments on an integer counter
    keep the value an ``int``, so views over byte/operation counts expose
    the same Python types the old plain attributes had.
    """

    __slots__ = ("name", "labels", "_value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self._value: float = 0

    @property
    def value(self):
        return self._value

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name}: negative increment {amount!r}"
            )
        self._value += amount

    def set(self, value) -> None:
        """Direct assignment -- exists to back attribute *views* (legacy
        ``obj.counter = value`` call sites), not for general use."""
        self._value = value


class Gauge:
    """Point-in-time value; may also be backed by a callback.

    With ``fn`` set the gauge is *derived*: reads evaluate the callback,
    which is how occupancy-style values (cache bytes, pressure) stay
    coherent without write hooks on every mutation.
    """

    __slots__ = ("name", "labels", "_value", "fn")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey,
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.labels = labels
        self._value: float = 0
        self.fn = fn

    @property
    def value(self):
        if self.fn is not None:
            return self.fn()
        return self._value

    def set(self, value) -> None:
        self._value = value

    def inc(self, amount=1) -> None:
        self._value += amount

    def dec(self, amount=1) -> None:
        self._value -= amount


class Histogram:
    """Fixed-bound cumulative histogram (Prometheus ``le`` semantics).

    Bounds are frozen at construction (log-scale by default) so two runs
    of the same workload always bucket identically; there is no adaptive
    resizing to leak wall-clock nondeterminism into exports.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey,
                 bounds: Sequence[float] = TIME_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name}: bounds must be non-empty and ascending"
            )
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.bucket_counts: List[int] = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0

    @property
    def value(self):
        return self.count

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation); +inf observations clamp to the top
        bound."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile {q!r} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        for bound, cumulative in zip(self.bounds, self.bucket_counts):
            if cumulative >= rank:
                return bound
        return self.bounds[-1]


class MetricsRegistry:
    """Families of named, labeled metrics with deterministic export.

    One family name maps to one metric kind; asking for an existing
    ``(name, labels)`` pair returns the same instance, so components can
    hold direct references on their hot paths (no dict lookup per
    increment).
    """

    def __init__(self) -> None:
        self._kinds: Dict[str, str] = {}
        self._families: Dict[str, Dict[LabelKey, object]] = {}

    # -- factories ---------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels) -> Gauge:
        gauge = self._get(Gauge, name, labels, fn=fn)
        if fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str, bounds: Sequence[float] = TIME_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    def _get(self, cls, name: str, labels: Dict[str, object], **kwargs):
        seen = self._kinds.get(name)
        if seen is not None and seen != cls.kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as a {seen}"
            )
        key = _label_key(labels)
        family = self._families.setdefault(name, {})
        metric = family.get(key)
        if metric is None:
            metric = cls(name, key, **kwargs)
            family[key] = metric
            self._kinds[name] = cls.kind
        return metric

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return sum(len(f) for f in self._families.values())

    def families(self) -> List[Tuple[str, str, List[object]]]:
        """``(name, kind, [metrics sorted by label key])``, name-sorted."""
        out = []
        for name in sorted(self._families):
            metrics = [
                self._families[name][key]
                for key in sorted(self._families[name])
            ]
            out.append((name, self._kinds[name], metrics))
        return out

    def value(self, name: str, **labels):
        """The current value of one metric (0 when never touched)."""
        family = self._families.get(name)
        if family is None:
            return 0
        metric = family.get(_label_key(labels))
        return 0 if metric is None else metric.value

    # -- export ------------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """Structured snapshot; stable ordering, so ``json.dumps`` of two
        identical runs is byte-identical."""
        from repro.obs.export import registry_to_json

        return registry_to_json(self)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        from repro.obs.export import registry_to_prometheus

        return registry_to_prometheus(self)


_GLOBAL: Optional[MetricsRegistry] = None


def global_registry() -> MetricsRegistry:
    """The conventional process-wide registry (created on first use)."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = MetricsRegistry()
    return _GLOBAL


def metric_view(attr: str, key: Optional[str] = None, cast=None):
    """A class-level attribute that reads/writes a registry metric.

    ``attr`` names the instance attribute holding either the metric object
    itself or (with ``key``) a dict of metrics.  Existing call sites like
    ``self.hits_l1 += 1`` then transparently drive the registry while
    ``stats()`` dicts keep their historical shapes.
    """

    class _View:
        __slots__ = ()

        def _metric(self, obj):
            holder = getattr(obj, attr)
            return holder[key] if key is not None else holder

        def __get__(self, obj, owner=None):
            if obj is None:
                return self
            value = self._metric(obj).value
            return cast(value) if cast is not None else value

        def __set__(self, obj, value):
            self._metric(obj).set(value)

    return _View()
