"""Unit helpers used throughout the ADA reproduction.

All sizes inside the library are plain ``int``/``float`` **bytes**, all times
are ``float`` **seconds**, all energies are ``float`` **joules**, and all
power figures are ``float`` **watts**.  These helpers exist so call sites can
say ``256 * GiB`` or ``mb(100)`` instead of sprinkling magic powers of ten.

The paper reports storage sizes in decimal megabytes/gigabytes (Table 2 and
Table 6 use MB/GB as marketing units), so the decimal constants are the ones
used when reproducing its tables.
"""

from __future__ import annotations

# Decimal (SI) byte units -- used for device bandwidth and the paper's tables.
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

# Binary byte units -- used for memory capacities (DRAM is binary-sized).
KiB = 2**10
MiB = 2**20
GiB = 2**30
TiB = 2**40

# Time units (seconds).
USEC = 1e-6
MSEC = 1e-3
MINUTE = 60.0
HOUR = 3600.0

# Energy units (joules).
KILOJOULE = 1e3
MEGAJOULE = 1e6


def kb(n: float) -> float:
    """``n`` decimal kilobytes expressed in bytes."""
    return n * KB


def mb(n: float) -> float:
    """``n`` decimal megabytes expressed in bytes."""
    return n * MB


def gb(n: float) -> float:
    """``n`` decimal gigabytes expressed in bytes."""
    return n * GB


def to_mb(nbytes: float) -> float:
    """Bytes to decimal megabytes."""
    return nbytes / MB


def to_gb(nbytes: float) -> float:
    """Bytes to decimal gigabytes."""
    return nbytes / GB


def to_kj(joules: float) -> float:
    """Joules to kilojoules."""
    return joules / KILOJOULE


def mbps(n: float) -> float:
    """A bandwidth of ``n`` decimal megabytes per second, in bytes/second."""
    return n * MB


def gbps(n: float) -> float:
    """A bandwidth of ``n`` decimal gigabytes per second, in bytes/second."""
    return n * GB


def fmt_bytes(nbytes: float) -> str:
    """Human-readable decimal rendering of a byte count (``'1.31 GB'``)."""
    value = float(nbytes)
    for unit, scale in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {unit}"
    return f"{value:.0f} B"


def fmt_seconds(seconds: float) -> str:
    """Human-readable rendering of a duration (``'4.2 min'``, ``'13 ms'``)."""
    if seconds >= HOUR:
        return f"{seconds / HOUR:.2f} h"
    if seconds >= MINUTE:
        return f"{seconds / MINUTE:.2f} min"
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= MSEC:
        return f"{seconds / MSEC:.1f} ms"
    return f"{seconds / USEC:.1f} us"
