"""Fault injection and recovery for the ADA reproduction.

Two halves, designed to meet in the middle:

* **Injection** (:mod:`repro.faults.plan`): a deterministic, seedable
  :class:`FaultPlan` that file systems, storage devices, and network links
  consult per operation -- latency spikes, transient/permanent errors,
  in-flight bit flips, short reads.
* **Recovery** (:mod:`repro.faults.retry`): a :class:`RetryPolicy`
  (bounded retries, exponential backoff with deterministic jitter, per-op
  timeouts) driven by a :class:`Retrier`, with :class:`RetryStats`
  counters the middleware surfaces to operators.

The chaos test suite (``tests/faults/``) closes the loop: under
transient-only injection with retries enabled, the full ingest ->
tag-selective-read pipeline must be bit-identical to a fault-free run.
"""

from repro.faults.plan import (
    CLEAN,
    PERMANENT,
    TRANSIENT,
    FaultDecision,
    FaultPlan,
    FaultSpec,
    raise_fault,
)
from repro.faults.retry import Retrier, RetryPolicy, RetryStats

__all__ = [
    "CLEAN",
    "PERMANENT",
    "TRANSIENT",
    "FaultDecision",
    "FaultPlan",
    "FaultSpec",
    "Retrier",
    "RetryPolicy",
    "RetryStats",
    "raise_fault",
]
