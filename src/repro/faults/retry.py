"""Bounded retries with deterministic backoff, per-op timeout, and counters.

The streaming-MD pipelines this reproduction grows toward treat transient
I/O failure as the normal case: a dropped stripe or flipped bit triggers a
bounded, backed-off re-read rather than a crash.  :class:`RetryPolicy`
captures the schedule (exponential backoff with *deterministic* jitter -- a
seeded hash of (seed, key, attempt), so a fixed seed replays the exact same
delays); :class:`Retrier` executes DES operations under it.

Classification contract (see :mod:`repro.errors`):

* :class:`~repro.errors.TransientFaultError` (including corruption and
  timeouts) -> retried up to ``max_retries`` times, then wrapped in
  :class:`~repro.errors.RetryExhaustedError`;
* :class:`~repro.errors.PermanentFaultError` -> raised immediately;
* anything else (``StorageFullError``, ``CodecError``, ...) -> not ours,
  propagated untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.errors import (
    ConfigurationError,
    CorruptionError,
    FaultTimeoutError,
    PermanentFaultError,
    RetryExhaustedError,
    TransientFaultError,
)
from repro.obs.metrics import MetricsRegistry, metric_view
from repro.obs.trace import span
from repro.sim import AnyOf, Simulator

__all__ = ["RetryPolicy", "RetryStats", "Retrier"]

#: Sentinel delivered by the deadline timeout in a timeout race.
_DEADLINE = object()


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout envelope for one class of operations.

    ``delay_s(attempt, key)`` is a pure function of ``(seed, key, attempt)``:
    exponential growth from ``backoff_base_s`` by ``backoff_factor``, capped
    at ``backoff_cap_s``, with symmetric jitter of ``jitter_frac`` drawn from
    a per-(key, attempt) seeded stream -- reproducible to the femtosecond,
    yet decorrelated across concurrent operations so retries do not
    stampede in lockstep.
    """

    max_retries: int = 4
    backoff_base_s: float = 1e-3
    backoff_factor: float = 2.0
    backoff_cap_s: float = 0.5
    jitter_frac: float = 0.25
    timeout_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries {self.max_retries} must be >= 0"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff factor {self.backoff_factor} must be >= 1"
            )
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ConfigurationError(
                f"jitter fraction {self.jitter_frac} outside [0, 1]"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout {self.timeout_s} must be positive"
            )

    @classmethod
    def no_retries(cls, timeout_s: Optional[float] = None) -> "RetryPolicy":
        """Fail-fast configuration: first transient failure is final."""
        return cls(max_retries=0, timeout_s=timeout_s)

    def delay_s(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt + 1`` (deterministic)."""
        if attempt < 0:
            raise ConfigurationError(f"attempt {attempt} must be >= 0")
        raw = min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor**attempt,
        )
        if self.jitter_frac == 0.0 or raw == 0.0:
            return raw
        u = random.Random(f"{self.seed}/{key}/{attempt}").random()
        return raw * (1.0 + self.jitter_frac * (u - 0.5))

    def schedule(self, key: str = "") -> List[float]:
        """Every backoff delay this policy would use for ``key``, in order."""
        return [self.delay_s(attempt, key) for attempt in range(self.max_retries)]


class RetryStats:
    """Counters shared by every retried operation of a middleware.

    Since the observability layer landed these are *views* over a
    :class:`~repro.obs.metrics.MetricsRegistry` (one ``retry_<field>``
    counter per field): the attribute names, increments at call sites,
    and the :meth:`as_dict` shape are unchanged, but the registry is the
    source of truth, so exporters see the same numbers operators do.
    """

    FIELDS = (
        "attempts",  # individual tries, including the first
        "retries",  # re-tries after a transient failure
        "recovered",  # operations that succeeded after >= 1 retry
        "transient_faults",
        "corruption_detected",
        "timeouts",
        "permanent_failures",
        "exhausted",  # operations whose retries ran out
        "backoff_s",  # simulated seconds spent backing off
    )

    attempts = metric_view("_metrics_by_field", key="attempts")
    retries = metric_view("_metrics_by_field", key="retries")
    recovered = metric_view("_metrics_by_field", key="recovered")
    transient_faults = metric_view("_metrics_by_field", key="transient_faults")
    corruption_detected = metric_view(
        "_metrics_by_field", key="corruption_detected"
    )
    timeouts = metric_view("_metrics_by_field", key="timeouts")
    permanent_failures = metric_view(
        "_metrics_by_field", key="permanent_failures"
    )
    exhausted = metric_view("_metrics_by_field", key="exhausted")
    backoff_s = metric_view("_metrics_by_field", key="backoff_s", cast=float)

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metric_labels = dict(metric_labels or {})
        self._metrics_by_field = {
            field: self.metrics.counter(
                f"retry_{field}_total", **self.metric_labels
            )
            for field in self.FIELDS
        }

    def as_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self.FIELDS}

    def __repr__(self) -> str:
        return (
            f"RetryStats(attempts={self.attempts}, retries={self.retries}, "
            f"recovered={self.recovered}, exhausted={self.exhausted})"
        )


class Retrier:
    """Runs DES operations under a :class:`RetryPolicy`.

    ``call`` takes an *operation factory* -- each attempt needs a fresh
    generator, since a failed one cannot be resumed -- and replays it until
    success, permanent failure, or retry exhaustion, paying the policy's
    backoff in simulated time between attempts.
    """

    def __init__(
        self,
        sim: Simulator,
        policy: Optional[RetryPolicy] = None,
        stats: Optional[RetryStats] = None,
    ):
        self.sim = sim
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = stats if stats is not None else RetryStats()

    def call(
        self, op_factory: Callable[[], Generator], key: str = "op"
    ) -> Generator:
        """Process: run ``op_factory()`` to completion under the policy."""
        attempt = 0
        with span(self.sim, "retry.call", key=key) as sp:
            while True:
                self.stats.attempts += 1
                try:
                    result = yield from self._attempt(op_factory(), key)
                except PermanentFaultError:
                    self.stats.permanent_failures += 1
                    sp.tag(retries=attempt)
                    raise
                except TransientFaultError as exc:
                    self.stats.transient_faults += 1
                    if isinstance(exc, CorruptionError):
                        self.stats.corruption_detected += 1
                    if isinstance(exc, FaultTimeoutError):
                        self.stats.timeouts += 1
                    if attempt >= self.policy.max_retries:
                        self.stats.exhausted += 1
                        sp.tag(retries=attempt)
                        raise RetryExhaustedError(
                            f"{key}: gave up after {attempt + 1} attempt(s): "
                            f"{exc}"
                        ) from exc
                    delay = self.policy.delay_s(attempt, key)
                    if delay > 0:
                        self.stats.backoff_s += delay
                        with span(
                            self.sim, "retry.backoff", key=key, attempt=attempt
                        ):
                            yield self.sim.timeout(delay)
                    attempt += 1
                    self.stats.retries += 1
                    continue
                if attempt:
                    self.stats.recovered += 1
                sp.tag(retries=attempt)
                return result

    def _attempt(self, op: Generator, key: str) -> Generator:
        """Process: one attempt, raced against the per-op deadline."""
        if self.policy.timeout_s is None:
            result = yield from op
            return result
        proc = self.sim.process(op, name=f"attempt:{key}")
        deadline = self.sim.timeout(self.policy.timeout_s, value=_DEADLINE)
        try:
            outcome = yield AnyOf(self.sim, [proc, deadline])
        except BaseException:
            deadline.cancel()  # op failed first; drop the stale deadline
            raise
        if outcome is _DEADLINE:
            if proc.triggered:
                # Completed at the same instant the deadline fired; honor it.
                if proc.ok:
                    return proc.value
                raise proc.value
            proc.interrupt("deadline")
            raise FaultTimeoutError(
                f"{key}: no completion within {self.policy.timeout_s}s"
            )
        deadline.cancel()
        return outcome
