"""Deterministic, seedable fault injection.

A :class:`FaultPlan` is the single source of injected misbehaviour for a
simulated deployment: every file system, storage device, and network link it
is attached to consults it once per operation and receives a
:class:`FaultDecision` -- extra latency, a transient or permanent error, an
in-flight payload corruption, or a short read.

Determinism is the design center.  Each *site* (``fs:ssd``, ``dev:WD-1TB-HDD``,
``link:ib``) and operation kind owns an independent :class:`random.Random`
stream seeded from ``(plan seed, site, op)``.  The DES dispatches events in a
deterministic order, so the sequence of decisions at every site -- and hence
the whole chaos run -- replays exactly for a fixed seed, which is what lets
the chaos suite assert bit-identical recovery instead of "usually works".

Corruption is injected *in flight* (the returned copy of the payload is
flipped, the at-rest object is untouched), mirroring torn DMA / link noise:
a checksum-triggered re-read observes clean bytes, so corruption is
classified transient.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, replace
from fnmatch import fnmatchcase
from typing import Dict, Iterable, Optional

from repro.errors import (
    ConfigurationError,
    PermanentFaultError,
    TransientFaultError,
)

__all__ = [
    "TRANSIENT",
    "PERMANENT",
    "FaultSpec",
    "FaultDecision",
    "FaultPlan",
    "raise_fault",
]

#: Error classifications a :class:`FaultDecision` can carry.
TRANSIENT = "transient"
PERMANENT = "permanent"

_RATE_FIELDS = (
    "transient_rate",
    "permanent_rate",
    "corruption_rate",
    "short_read_rate",
    "latency_rate",
)


@dataclass(frozen=True)
class FaultSpec:
    """Per-site fault envelope: independent per-operation probabilities.

    ``latency_spike_s`` is the extra service delay charged when a latency
    spike fires (an HDD remap or retried SATA command is tens of
    milliseconds; an SSD hiccup is sub-millisecond -- see the per-device
    profiles in :mod:`repro.storage.ssd` / :mod:`repro.storage.hdd`).
    """

    transient_rate: float = 0.0
    permanent_rate: float = 0.0
    corruption_rate: float = 0.0
    short_read_rate: float = 0.0
    latency_rate: float = 0.0
    latency_spike_s: float = 10e-3

    def __post_init__(self) -> None:
        for field in _RATE_FIELDS:
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"fault {field} {rate!r} outside [0, 1]"
                )
        if self.latency_spike_s < 0:
            raise ConfigurationError(
                f"latency spike {self.latency_spike_s!r} must be >= 0"
            )

    @property
    def is_quiet(self) -> bool:
        """True when this spec can never inject anything."""
        return all(getattr(self, field) == 0.0 for field in _RATE_FIELDS)

    def scaled(self, factor: float) -> "FaultSpec":
        """A spec with every rate scaled by ``factor`` (clipped to 1)."""
        if factor < 0:
            raise ConfigurationError(f"scale factor {factor!r} must be >= 0")
        return replace(
            self,
            **{f: min(1.0, getattr(self, f) * factor) for f in _RATE_FIELDS},
        )


@dataclass(frozen=True)
class FaultDecision:
    """What one operation suffers: latency, error, and payload effects."""

    latency_s: float = 0.0
    error: Optional[str] = None  # None | TRANSIENT | PERMANENT
    corrupt: bool = False
    short_read: bool = False

    @property
    def is_clean(self) -> bool:
        return (
            self.latency_s == 0.0
            and self.error is None
            and not self.corrupt
            and not self.short_read
        )


#: Shared "nothing happens" decision (the overwhelmingly common case).
CLEAN = FaultDecision()


def raise_fault(kind: str, site: str, op: str, subject: str = "") -> None:
    """Raise the typed error for an injected failure of ``kind``."""
    detail = f" on {subject!r}" if subject else ""
    message = f"{site}: injected {kind} fault during {op}{detail}"
    if kind == PERMANENT:
        raise PermanentFaultError(message)
    raise TransientFaultError(message)


class FaultPlan:
    """Seeded per-site fault schedule with injection accounting.

    ``sites`` maps :func:`fnmatch.fnmatchcase` patterns to
    :class:`FaultSpec` overrides (first matching pattern wins, insertion
    order); unmatched sites use ``default``.  Pass a quiet default plus
    targeted patterns to fault one tier only::

        FaultPlan(seed=7, sites={"fs:hdd": FaultSpec(permanent_rate=1.0)})
    """

    def __init__(
        self,
        seed: int = 0,
        default: Optional[FaultSpec] = None,
        sites: Optional[Dict[str, FaultSpec]] = None,
    ):
        self.seed = int(seed)
        self.default = default if default is not None else FaultSpec()
        self.sites: Dict[str, FaultSpec] = dict(sites or {})
        self._rngs: Dict[str, random.Random] = {}
        #: (site, kind) -> times injected; kinds: latency, transient,
        #: permanent, corruption, short_read.
        self.injected: Counter = Counter()
        self.decisions = 0

    # -- construction helpers ------------------------------------------------

    @classmethod
    def transient_only(
        cls,
        seed: int = 0,
        rate: float = 0.05,
        corruption_rate: Optional[float] = None,
        short_read_rate: Optional[float] = None,
        latency_rate: Optional[float] = None,
        latency_spike_s: float = 5e-3,
    ) -> "FaultPlan":
        """A plan with no permanent faults: everything is recoverable.

        This is the regime the chaos suite's bit-identity property runs
        under -- with retries enabled, results must match a fault-free run.
        """
        spec = FaultSpec(
            transient_rate=rate,
            permanent_rate=0.0,
            corruption_rate=rate / 2 if corruption_rate is None else corruption_rate,
            short_read_rate=rate / 4 if short_read_rate is None else short_read_rate,
            latency_rate=rate / 2 if latency_rate is None else latency_rate,
            latency_spike_s=latency_spike_s,
        )
        return cls(seed=seed, default=spec)

    @classmethod
    def two_tier(cls, seed: int = 0, scale: float = 1.0) -> "FaultPlan":
        """Device-conscious plan: flash and rotating tiers fault differently
        (profiles from :mod:`repro.storage.ssd` / :mod:`repro.storage.hdd`)."""
        from repro.storage.hdd import hdd_fault_profile
        from repro.storage.ssd import ssd_fault_profile

        return cls(
            seed=seed,
            default=FaultSpec(),
            sites={
                "*ssd*": ssd_fault_profile().scaled(scale),
                "*SSD*": ssd_fault_profile().scaled(scale),
                "*hdd*": hdd_fault_profile().scaled(scale),
                "*HDD*": hdd_fault_profile().scaled(scale),
            },
        )

    # -- attachment ----------------------------------------------------------

    def attach(self, *objects: Iterable) -> "FaultPlan":
        """Attach this plan to anything exposing ``attach_faults``."""
        for obj in objects:
            obj.attach_faults(self)
        return self

    def attach_to(self, ada) -> "FaultPlan":
        """Attach to every injection point reachable from an ADA middleware:
        each backend FS, its local device or striped targets, and links."""
        for fs in ada.plfs.backends.values():
            fs.attach_faults(self)
            device = getattr(fs, "device", None)
            if device is not None:
                device.attach_faults(self)
            for target in getattr(fs, "targets", ()) or ():
                target.device.attach_faults(self)
                if target.link is not None:
                    target.link.attach_faults(self)
        return self

    # -- decision streams ----------------------------------------------------

    def spec_for(self, site: str) -> FaultSpec:
        for pattern, spec in self.sites.items():
            if fnmatchcase(site, pattern):
                return spec
        return self.default

    def _rng(self, stream: str) -> random.Random:
        rng = self._rngs.get(stream)
        if rng is None:
            rng = self._rngs[stream] = random.Random(f"{self.seed}/{stream}")
        return rng

    def decide(self, site: str, op: str) -> FaultDecision:
        """The fate of the next ``op`` at ``site`` (advances that stream)."""
        self.decisions += 1
        spec = self.spec_for(site)
        if spec.is_quiet:
            return CLEAN
        rng = self._rng(f"{site}:{op}")
        # Always draw every sub-stream so enabling one fault class does not
        # reshuffle the schedule of the others (stable comparisons across
        # spec variations with the same seed).
        u_latency = rng.random()
        u_permanent = rng.random()
        u_transient = rng.random()
        u_corrupt = rng.random()
        u_short = rng.random()
        latency = spec.latency_spike_s if u_latency < spec.latency_rate else 0.0
        error: Optional[str] = None
        if u_permanent < spec.permanent_rate:
            error = PERMANENT
        elif u_transient < spec.transient_rate:
            error = TRANSIENT
        decision = FaultDecision(
            latency_s=latency,
            error=error,
            corrupt=u_corrupt < spec.corruption_rate,
            short_read=u_short < spec.short_read_rate,
        )
        if latency:
            self.injected[(site, "latency")] += 1
        if error is not None:
            self.injected[(site, error)] += 1
        return decision

    # -- payload effects -----------------------------------------------------

    def corrupt_payload(self, site: str, op: str, data: bytes) -> bytes:
        """Flip one deterministic-random bit of an in-flight payload copy."""
        if not data:
            return data
        rng = self._rng(f"{site}:{op}#corrupt")
        position = rng.randrange(len(data))
        bit = 1 << rng.randrange(8)
        self.injected[(site, "corruption")] += 1
        mutable = bytearray(data)
        mutable[position] ^= bit
        return bytes(mutable)

    def short_length(self, site: str, op: str, nbytes: int) -> int:
        """Deterministic strictly-shorter length for a partial read."""
        if nbytes <= 0:
            return 0
        rng = self._rng(f"{site}:{op}#short")
        self.injected[(site, "short_read")] += 1
        return rng.randrange(nbytes)

    # -- accounting ----------------------------------------------------------

    def total(self, kind: Optional[str] = None) -> int:
        """Total injections, optionally of one kind."""
        return sum(
            count
            for (_, k), count in self.injected.items()
            if kind is None or k == kind
        )

    def snapshot(self) -> Dict[str, int]:
        """``{"site:kind": count}`` of everything injected so far."""
        return {
            f"{site}:{kind}": count
            for (site, kind), count in sorted(self.injected.items())
        }

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, sites={len(self.sites)}, "
            f"injected={self.total()})"
        )
