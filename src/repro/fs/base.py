"""Common file-system interface.

Read/write are DES *processes* (generators to drive with ``yield from`` or
``Simulator.run_process``) so that device queuing, striping, and network
hops all play out in simulated time.  Their return value is a
:class:`StoredObject` carrying the object's size and -- for materialized
objects -- its bytes.

Synchronous metadata helpers (``exists``/``nbytes``/``listdir``/``data``)
are free of simulated cost; explicit metadata *operations* that the paper's
pipelines pay for (e.g. ADA's indexer lookup) are modeled where they occur.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.faults.plan import FaultDecision, FaultPlan, raise_fault
from repro.fs.memfs import ObjectStore
from repro.sim import Simulator

__all__ = ["FileSystem", "StoredObject"]


@dataclass(frozen=True)
class StoredObject:
    """What a read returns: size always, content when materialized.

    ``tier``/``max_error`` surface the precision tier a read was served
    from (see :mod:`repro.core.lod`): ``"full"`` means exact bytes;
    ``"lod"`` means the coarse-quantized layer, with ``max_error`` the
    advertised per-atom-coordinate worst-case error bound.  Reads below
    the middleware's tier-selection layer always return ``"full"``.
    """

    path: str
    nbytes: int
    data: Optional[bytes] = None
    tier: str = "full"
    max_error: Optional[float] = None

    @property
    def is_virtual(self) -> bool:
        return self.data is None


class FileSystem(ABC):
    """Base class for all simulated file systems."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.store = ObjectStore()
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.faults: Optional[FaultPlan] = None

    # -- DES processes ------------------------------------------------------

    @abstractmethod
    def write(
        self,
        path: str,
        data: Optional[bytes] = None,
        nbytes: Optional[int] = None,
        request_size: Optional[int] = None,
        label: str = "write",
    ) -> Generator:
        """Process: persist an object (materialized or virtual)."""

    @abstractmethod
    def read(
        self,
        path: str,
        request_size: Optional[int] = None,
        label: str = "read",
    ) -> Generator:
        """Process: fetch an object; returns a :class:`StoredObject`."""

    def read_span(
        self,
        paths: List[str],
        request_size: Optional[int] = None,
        label: str = "read",
    ) -> Generator:
        """Process: read several objects as one coalesced span.

        The base implementation reads each path in turn (no coalescing
        win); backends with a single underlying device override it to
        charge one metadata operation and one seek-amortized transfer for
        the whole span.  Returns the :class:`StoredObject` list in
        ``paths`` order.
        """
        objs: List[StoredObject] = []
        for path in paths:
            obj = yield from self.read(
                path, request_size=request_size, label=label
            )
            objs.append(obj)
        return objs

    def write_span(
        self,
        items: List[Tuple[str, bytes]],
        request_size: Optional[int] = None,
        label: str = "write",
    ) -> Generator:
        """Process: persist several objects as one coalesced span.

        The write-side mirror of :meth:`read_span`: ``items`` is a list of
        ``(path, data)`` pairs bound for this backend.  The base
        implementation writes each object in turn; single-device backends
        override it to charge one metadata operation and one
        seek-amortized transfer for the span's total size.  A mid-span
        failure must leave no partial objects behind (the caller retries
        the whole span), so the sequential fallback rolls back anything it
        already stored before re-raising.  Returns the
        :class:`StoredObject` list in ``items`` order.
        """
        objs: List[StoredObject] = []
        try:
            for path, data in items:
                obj = yield from self.write(
                    path, data=data, request_size=request_size, label=label
                )
                objs.append(obj)
        except BaseException:
            for obj in objs:
                if self.store.exists(obj.path):
                    self.delete(obj.path)
            raise
        return objs

    # -- synchronous helpers --------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.store.exists(path)

    def nbytes(self, path: str) -> int:
        return self.store.nbytes(path)

    def data(self, path: str) -> bytes:
        return self.store.data(path)

    def listdir(self, prefix: str = "") -> List[str]:
        return self.store.listdir(prefix)

    def delete(self, path: str) -> int:
        return self.store.delete(path)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, objects={len(self.store)})"

    # -- fault injection ----------------------------------------------------

    def attach_faults(self, plan: FaultPlan) -> "FileSystem":
        """Route this file system's operations through a fault plan."""
        self.faults = plan
        return self

    @property
    def fault_site(self) -> str:
        return f"fs:{self.name}"

    def _fault_gate(self, op: str, path: str) -> Generator:
        """Process: pay injected latency, raise injected errors.

        Returns the :class:`FaultDecision` (or ``None`` with no plan
        attached) so the read path can reuse it for payload effects.
        Concrete file systems call this *before* mutating any state, so a
        failed attempt is always safe to retry.
        """
        if self.faults is None:
            return None
        decision = self.faults.decide(self.fault_site, op)
        if decision.latency_s > 0:
            yield self.sim.timeout(decision.latency_s)
        if decision.error is not None:
            raise_fault(decision.error, self.fault_site, op, path)
        return decision

    def _fault_payload(
        self, decision: Optional[FaultDecision], op: str, data: Optional[bytes]
    ) -> Optional[bytes]:
        """Apply in-flight payload effects (bit flip / short read) to a read.

        Only the returned copy is perturbed -- the at-rest object stays
        intact, so checksum-triggered re-reads observe clean bytes.
        """
        if decision is None or data is None or self.faults is None:
            return data
        if decision.short_read and data:
            data = data[: self.faults.short_length(self.fault_site, op, len(data))]
        if decision.corrupt and data:
            data = self.faults.corrupt_payload(self.fault_site, op, data)
        return data

    # -- shared internals -------------------------------------------------------

    @staticmethod
    def _payload_size(data: Optional[bytes], nbytes: Optional[int]) -> int:
        if data is not None:
            return len(data)
        if nbytes is None:
            raise ValueError("write needs data or nbytes")
        return int(nbytes)

    @staticmethod
    def _request_count(nbytes: int, request_size: Optional[int]) -> int:
        if request_size is None or request_size <= 0 or nbytes <= 0:
            return 1
        return max(1, -(-nbytes // request_size))
