"""In-memory object store backing every simulated file system.

Content addressing is flat, S3-style: a path is a ``/``-separated key,
directories exist implicitly as key prefixes.  Objects may be *materialized*
(real bytes -- used by tests, examples, and the calibration runs) or
*virtual* (size-only -- used at paper scale where 2.6 TB of coordinates
cannot be allocated).  Both kinds flow through identical FS/timing code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import FileExistsInFSError, FileNotFoundInFSError

__all__ = ["ObjectStore"]


@dataclass
class _Entry:
    nbytes: int
    data: Optional[bytes]


class ObjectStore:
    """Flat path -> object map with implicit directories."""

    def __init__(self) -> None:
        self._entries: Dict[str, _Entry] = {}

    @staticmethod
    def normalize(path: str) -> str:
        parts = [p for p in path.split("/") if p and p != "."]
        if not parts:
            raise FileNotFoundInFSError("empty path")
        return "/".join(parts)

    # -- mutation ---------------------------------------------------------

    def put(
        self,
        path: str,
        data: Optional[bytes] = None,
        nbytes: Optional[int] = None,
        overwrite: bool = True,
    ) -> int:
        """Store an object; returns its size.

        Pass ``data`` for a materialized object (size inferred) or just
        ``nbytes`` for a virtual one.
        """
        key = self.normalize(path)
        if data is None and nbytes is None:
            raise ValueError(f"put({path!r}): need data or nbytes")
        if data is not None and nbytes is not None and nbytes != len(data):
            raise ValueError(f"put({path!r}): nbytes {nbytes} != len(data)")
        if not overwrite and key in self._entries:
            raise FileExistsInFSError(key)
        size = len(data) if data is not None else int(nbytes)
        self._entries[key] = _Entry(nbytes=size, data=data)
        return size

    def delete(self, path: str) -> int:
        """Remove an object; returns the freed size."""
        key = self.normalize(path)
        entry = self._entries.pop(key, None)
        if entry is None:
            raise FileNotFoundInFSError(key)
        return entry.nbytes

    # -- queries -----------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.normalize(path) in self._entries

    def nbytes(self, path: str) -> int:
        return self._get(path).nbytes

    def data(self, path: str) -> bytes:
        """Materialized content; raises for virtual objects."""
        entry = self._get(path)
        if entry.data is None:
            raise FileNotFoundInFSError(
                f"{path!r} is a virtual (size-only) object with no content"
            )
        return entry.data

    def is_virtual(self, path: str) -> bool:
        return self._get(path).data is None

    def listdir(self, prefix: str = "") -> List[str]:
        """Immediate children (names) under a directory prefix, sorted."""
        if prefix:
            root = self.normalize(prefix) + "/"
        else:
            root = ""
        children = set()
        for key in self._entries:
            if key.startswith(root):
                rest = key[len(root) :]
                children.add(rest.split("/", 1)[0])
        return sorted(children)

    def walk(self, prefix: str = "") -> List[str]:
        """Every object key under a prefix, sorted."""
        root = self.normalize(prefix) + "/" if prefix else ""
        return sorted(k for k in self._entries if k.startswith(root))

    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def _get(self, path: str) -> _Entry:
        key = self.normalize(path)
        entry = self._entries.get(key)
        if entry is None:
            raise FileNotFoundInFSError(key)
        return entry
