"""Striped parallel file system (the PVFS / OrangeFS stand-in).

Objects stripe round-robin across storage targets; a read fans out one DES
process per target (device service, then the target's network link), and
completes when the slowest target finishes -- heterogeneous pools are
therefore paced by their HDD members, exactly the effect Section 4.2
wrestles with.

Client requests cost ``request_overhead_s`` each (RPC + scheduling).  A
traditional VMD reader issues stripe-sized requests (the xdrfile library
reads frame-by-frame), so wide files pay thousands of round trips; ADA's
retriever issues multi-megabyte requests against PLFS subset files and
sidesteps that tax.  This per-request asymmetry is the mechanism behind the
paper's ">2x better than PVFS" retrieval claim, and is explored by the
request-size ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.errors import (
    ConfigurationError,
    FaultError,
    FileNotFoundInFSError,
    StorageFullError,
)
from repro.fs.base import FileSystem, StoredObject
from repro.net.link import Link
from repro.sim import AllOf, Simulator
from repro.storage.device import Device, DeviceSpec
from repro.units import KiB

__all__ = ["PVFS", "StorageTarget"]

DEFAULT_STRIPE = 64 * KiB


@dataclass
class StorageTarget:
    """One storage server: a device plus its link toward the clients."""

    device: Device
    link: Optional[Link] = None

    @property
    def name(self) -> str:
        return self.device.name


class PVFS(FileSystem):
    """Round-robin striped parallel file system."""

    def __init__(
        self,
        sim: Simulator,
        targets: List[StorageTarget],
        name: str = "pvfs",
        stripe_size: int = DEFAULT_STRIPE,
        request_overhead_s: float = 0.5e-3,
        metadata_latency_s: float = 200e-6,
    ):
        if not targets:
            raise ConfigurationError("PVFS needs at least one storage target")
        if stripe_size <= 0:
            raise ConfigurationError("stripe size must be positive")
        super().__init__(sim, name)
        self.targets = list(targets)
        self.stripe_size = int(stripe_size)
        self.request_overhead_s = request_overhead_s
        self.metadata_latency_s = metadata_latency_s

    # -- striping arithmetic --------------------------------------------------

    def stripe_layout(self, nbytes: int) -> List[int]:
        """Bytes landing on each target for an object of ``nbytes``."""
        n = len(self.targets)
        full, rem = divmod(int(nbytes), self.stripe_size)
        per_target = [(full // n) * self.stripe_size] * n
        for k in range(full % n):
            per_target[k] += self.stripe_size
        if rem:
            per_target[full % n] += rem
        return per_target

    # -- DES processes ----------------------------------------------------------

    def write(
        self,
        path: str,
        data: Optional[bytes] = None,
        nbytes: Optional[int] = None,
        request_size: Optional[int] = None,
        label: str = "write",
    ) -> Generator:
        yield from self._fault_gate("write", path)
        size = self._payload_size(data, nbytes)
        layout = self.stripe_layout(size)
        # Check the whole layout before allocating anything so a mid-loop
        # failure cannot leak partially-reserved capacity.
        for target, share in zip(self.targets, layout):
            if share and share > target.device.free_bytes:
                raise StorageFullError(
                    f"{self.name}: target {target.name} needs {share:.3e} B, "
                    f"has {target.device.free_bytes:.3e} B free"
                )
        for target, share in zip(self.targets, layout):
            if share:
                target.device.allocate(share)
        try:
            yield self.sim.timeout(self.metadata_latency_s)
            procs = [
                self.sim.process(
                    self._target_io(t, share, request_size, label, write=True),
                    name=f"{self.name}:write:{t.name}",
                )
                for t, share in zip(self.targets, layout)
                if share
            ]
            if procs:
                yield AllOf(self.sim, procs)
        except FaultError:
            # A target-level injected failure: release every stripe
            # reservation so a retried write starts from a clean slate.
            for target, share in zip(self.targets, layout):
                if share:
                    target.device.free(share)
            raise
        self.store.put(path, data=data, nbytes=size)
        self.bytes_written += size
        return StoredObject(path=path, nbytes=size, data=data)

    def read(
        self,
        path: str,
        request_size: Optional[int] = None,
        label: str = "read",
    ) -> Generator:
        decision = yield from self._fault_gate("read", path)
        if not self.store.exists(path):
            raise FileNotFoundInFSError(f"{self.name}: {path}")
        size = self.store.nbytes(path)
        layout = self.stripe_layout(size)
        yield self.sim.timeout(self.metadata_latency_s)
        procs = [
            self.sim.process(
                self._target_io(t, share, request_size, label, write=False),
                name=f"{self.name}:read:{t.name}",
            )
            for t, share in zip(self.targets, layout)
            if share
        ]
        if procs:
            yield AllOf(self.sim, procs)
        self.bytes_read += size
        data = None if self.store.is_virtual(path) else self.store.data(path)
        data = self._fault_payload(decision, "read", data)
        return StoredObject(path=path, nbytes=size, data=data)

    def delete(self, path: str) -> int:
        """Remove an object and release capacity on every target."""
        size = self.store.nbytes(path)
        layout = self.stripe_layout(size)
        freed = super().delete(path)
        for target, share in zip(self.targets, layout):
            if share:
                target.device.free(share)
        return freed

    def _target_io(
        self,
        target: StorageTarget,
        share: int,
        request_size: Optional[int],
        label: str,
        write: bool,
    ) -> Generator:
        """One target's slice: client RPCs, device service, network hop."""
        chunk = request_size if request_size and request_size > 0 else self.stripe_size
        nrequests = max(1, -(-share // chunk))
        yield self.sim.timeout(nrequests * self.request_overhead_s)
        if write:
            yield from target.device.write(share, requests=1, label=label)
        else:
            yield from target.device.read(share, requests=1, label=label)
        if target.link is not None:
            yield from target.link.transfer(share, messages=nrequests, label=label)
