"""Single-device local file system (the ext4 / XFS stand-in).

All data lives on one device (possibly a RAID composite spec); reads and
writes queue on that device.  ``flavor`` only labels the FS (ext4 on the
SSD server, XFS on the fat node) -- their streaming behaviour is identical
at this model's fidelity, which matches the paper's usage (both are simply
"an existing file system").
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import FaultError, FileNotFoundInFSError
from repro.fs.base import FileSystem, StoredObject
from repro.obs.trace import span
from repro.sim import Simulator
from repro.storage.device import Device, DeviceSpec

__all__ = ["LocalFS"]


class LocalFS(FileSystem):
    """A traditional local file system over one block device."""

    def __init__(
        self,
        sim: Simulator,
        device_spec: DeviceSpec,
        name: Optional[str] = None,
        flavor: str = "ext4",
        metadata_latency_s: float = 50e-6,
    ):
        super().__init__(sim, name or f"{flavor}:{device_spec.name}")
        self.flavor = flavor
        self.device = Device(sim, device_spec)
        self.metadata_latency_s = metadata_latency_s

    def write(
        self,
        path: str,
        data: Optional[bytes] = None,
        nbytes: Optional[int] = None,
        request_size: Optional[int] = None,
        label: str = "write",
    ) -> Generator:
        yield from self._fault_gate("write", path)
        size = self._payload_size(data, nbytes)
        self.device.allocate(size)
        try:
            yield self.sim.timeout(self.metadata_latency_s)
            requests = self._request_count(size, request_size)
            yield from self.device.write(size, requests=requests, label=label)
        except FaultError:
            # A device-level injected failure: release the reservation so a
            # retried write does not leak capacity.
            self.device.free(size)
            raise
        self.store.put(path, data=data, nbytes=size)
        self.bytes_written += size
        return StoredObject(path=path, nbytes=size, data=data)

    def read(
        self,
        path: str,
        request_size: Optional[int] = None,
        label: str = "read",
    ) -> Generator:
        with span(self.sim, "fs.read", fs=self.name, path=path):
            decision = yield from self._fault_gate("read", path)
            if not self.store.exists(path):
                raise FileNotFoundInFSError(f"{self.name}: {path}")
            size = self.store.nbytes(path)
            yield self.sim.timeout(self.metadata_latency_s)
            requests = self._request_count(size, request_size)
            yield from self.device.read(size, requests=requests, label=label)
            self.bytes_read += size
            data = None if self.store.is_virtual(path) else self.store.data(path)
            data = self._fault_payload(decision, "read", data)
            return StoredObject(path=path, nbytes=size, data=data)

    def read_span(
        self,
        paths,
        request_size: Optional[int] = None,
        label: str = "read",
    ) -> Generator:
        """Process: coalesced read of several objects on the one device.

        The span pays a single metadata operation and one seek-amortized
        device transfer for its total size -- ADA's subset chunks are
        log-structured and adjacent, so the request-per-chunk tax of the
        sequential fallback disappears.  Fault decisions are taken once
        per span (it is one backend operation); payload effects apply to
        each object's returned copy.
        """
        if not paths:
            return []
        with span(
            self.sim, "fs.read_span",
            fs=self.name, paths=len(paths), first=paths[0],
        ):
            decision = yield from self._fault_gate("read", paths[0])
            sizes = []
            for path in paths:
                if not self.store.exists(path):
                    raise FileNotFoundInFSError(f"{self.name}: {path}")
                sizes.append(self.store.nbytes(path))
            total = sum(sizes)
            yield self.sim.timeout(self.metadata_latency_s)
            requests = self._request_count(total, request_size)
            yield from self.device.read(total, requests=requests, label=label)
            self.bytes_read += total
            objs = []
            for path, size in zip(paths, sizes):
                data = None if self.store.is_virtual(path) else self.store.data(path)
                data = self._fault_payload(decision, "read", data)
                objs.append(StoredObject(path=path, nbytes=size, data=data))
            return objs

    def write_span(
        self,
        items,
        request_size: Optional[int] = None,
        label: str = "write",
    ) -> Generator:
        """Process: coalesced write of several objects to the one device.

        The write-behind mirror of :meth:`read_span`: one metadata
        operation and one seek-amortized device transfer cover the span's
        total size, so a batch of log-structured subset chunks stops
        paying the per-chunk seek tax.  Capacity is reserved up front
        (``StorageFullError`` before any state changes, so the caller can
        spill the whole span) and nothing is stored until the device
        transfer completes -- a mid-span fault leaves no partial objects.
        """
        if not items:
            return []
        with span(
            self.sim, "fs.write_span",
            fs=self.name, paths=len(items), first=items[0][0],
        ):
            yield from self._fault_gate("write", items[0][0])
            sizes = [self._payload_size(data, None) for _, data in items]
            total = sum(sizes)
            self.device.allocate(total)
            try:
                yield self.sim.timeout(self.metadata_latency_s)
                requests = self._request_count(total, request_size)
                yield from self.device.write(total, requests=requests, label=label)
            except FaultError:
                self.device.free(total)
                raise
            objs = []
            for (path, data), size in zip(items, sizes):
                self.store.put(path, data=data, nbytes=size)
                self.bytes_written += size
                objs.append(StoredObject(path=path, nbytes=size, data=data))
            return objs

    def delete(self, path: str) -> int:
        """Remove an object and release its device capacity."""
        freed = super().delete(path)
        self.device.free(freed)
        return freed
