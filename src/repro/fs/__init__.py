"""Simulated file systems.

* :mod:`repro.fs.memfs` -- the in-memory object store every FS persists to.
* :mod:`repro.fs.base` -- the common FS interface (DES-process read/write).
* :mod:`repro.fs.localfs` -- single-device local FS (the ext4 / XFS stand-in).
* :mod:`repro.fs.pvfs` -- striped parallel FS over storage nodes (OrangeFS
  stand-in), with per-request client overhead that penalizes small-request
  access patterns on wide stripes.
* :mod:`repro.fs.plfs` -- PLFS-style container layer: one logical file fans
  out to per-subset data files on multiple backend file systems (Fig. 6).
"""

from repro.fs.base import FileSystem, StoredObject
from repro.fs.localfs import LocalFS
from repro.fs.memfs import ObjectStore
from repro.fs.plfs import PLFS, IndexRecord
from repro.fs.pvfs import PVFS, StorageTarget
from repro.fs.vfs import ADAInterposer, FileHandle, VFS

__all__ = [
    "ADAInterposer",
    "FileHandle",
    "FileSystem",
    "IndexRecord",
    "LocalFS",
    "ObjectStore",
    "PLFS",
    "PVFS",
    "StorageTarget",
    "StoredObject",
    "VFS",
]
