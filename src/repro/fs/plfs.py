"""PLFS-style container layer with multiple backends (paper §3.3, Fig. 6).

A logical file ``bar`` becomes a container ``bar.plfs/`` whose per-subset
data files may live on *different* backend file systems -- ADA's dispatcher
sends the protein subset to the SSD-backed FS and the MISC subset to the
HDD-backed FS.  The underlying file systems see ordinary files and "process
an assigned data subset as independent files without noticing that the
contents have been altered from the original" (paper §3.3).

An index object (JSON, stored on the metadata backend) records, per subset
chunk: tag, backend, path, and size.  The index is what ADA's indexer
consults to resolve a tag-selective read.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass
from typing import Dict, Generator, List, Optional

from repro.errors import (
    ConfigurationError,
    ContainerError,
    CorruptionError,
    FaultError,
    TagNotFoundError,
)
from repro.fs.base import FileSystem, StoredObject
from repro.sim import AllOf, Simulator

__all__ = ["PLFS", "IndexRecord"]

_INDEX_NAME = "index"


@dataclass(frozen=True)
class IndexRecord:
    """One subset chunk inside a container.

    ``crc`` is the zlib CRC-32 of the chunk's bytes, or ``-1`` when the
    chunk is virtual (size-only) and there is nothing to checksum.
    """

    tag: str
    backend: str
    path: str
    nbytes: int
    chunk: int = 0
    crc: int = -1


class PLFS:
    """Container layer multiplexing subsets across backend file systems."""

    def __init__(
        self,
        sim: Simulator,
        backends: Dict[str, FileSystem],
        metadata_backend: Optional[str] = None,
    ):
        if not backends:
            raise ConfigurationError("PLFS needs at least one backend")
        self.sim = sim
        self.backends = dict(backends)
        self.metadata_backend = metadata_backend or sorted(backends)[0]
        if self.metadata_backend not in self.backends:
            raise ConfigurationError(
                f"metadata backend {self.metadata_backend!r} is not a backend"
            )
        self._indexes: Dict[str, List[IndexRecord]] = {}
        self._chunk_counters: Dict[tuple, int] = {}

    # -- paths ------------------------------------------------------------

    @staticmethod
    def container_dir(logical: str) -> str:
        return f"{logical}.plfs"

    @classmethod
    def chunk_path(cls, logical: str, tag: str, chunk: int) -> str:
        return f"{cls.container_dir(logical)}/subset.{tag}/data.{chunk}"

    @classmethod
    def index_path(cls, logical: str) -> str:
        return f"{cls.container_dir(logical)}/{_INDEX_NAME}"

    # -- container lifecycle ---------------------------------------------------

    def exists(self, logical: str) -> bool:
        return logical in self._indexes or self.backends[
            self.metadata_backend
        ].exists(self.index_path(logical))

    def tags(self, logical: str) -> List[str]:
        """Distinct subset tags present in a container, sorted."""
        return sorted({r.tag for r in self.container_index(logical)})

    def container_index(self, logical: str) -> List[IndexRecord]:
        """The container's index records (cached after first load)."""
        if logical in self._indexes:
            return list(self._indexes[logical])
        meta_fs = self.backends[self.metadata_backend]
        path = self.index_path(logical)
        if not meta_fs.exists(path):
            raise ContainerError(f"no container index for {logical!r}")
        try:
            records = [
                IndexRecord(**rec) for rec in json.loads(meta_fs.data(path))
            ]
        except (ValueError, TypeError) as exc:
            raise ContainerError(f"corrupt index for {logical!r}: {exc}") from exc
        self._indexes[logical] = records
        return list(records)

    def subset_records(self, logical: str, tag: str) -> List[IndexRecord]:
        records = [r for r in self.container_index(logical) if r.tag == tag]
        if not records:
            raise TagNotFoundError(
                f"container {logical!r} has no subset tagged {tag!r} "
                f"(available: {self.tags(logical)})"
            )
        return sorted(records, key=lambda r: r.chunk)

    def subset_nbytes(self, logical: str, tag: str) -> int:
        return sum(r.nbytes for r in self.subset_records(logical, tag))

    def container_nbytes(self, logical: str) -> int:
        return sum(r.nbytes for r in self.container_index(logical))

    # -- DES processes ------------------------------------------------------------

    def write_subset(
        self,
        logical: str,
        tag: str,
        backend: str,
        data: Optional[bytes] = None,
        nbytes: Optional[int] = None,
        request_size: Optional[int] = None,
    ) -> Generator:
        """Process: append one subset chunk to a container."""
        if backend not in self.backends:
            raise ConfigurationError(f"unknown backend {backend!r}")
        records = self._indexes.setdefault(logical, [])
        # Chunk numbers come from a counter claimed *before* the write (so
        # concurrent writers pick distinct names), but the index record is
        # registered only *after* the backend write succeeds (so a failed
        # dispatch leaves no dangling index entry).
        chunk = self._chunk_counters.get((logical, tag), 0)
        self._chunk_counters[(logical, tag)] = chunk + 1
        path = self.chunk_path(logical, tag, chunk)
        size = FileSystem._payload_size(data, nbytes)
        yield from self.backends[backend].write(
            path, data=data, nbytes=size, request_size=request_size, label="plfs"
        )
        record = IndexRecord(
            tag=tag,
            backend=backend,
            path=path,
            nbytes=size,
            chunk=chunk,
            crc=zlib.crc32(data) if data is not None else -1,
        )
        records.append(record)
        try:
            yield from self._flush_index(logical)
        except FaultError:
            # Roll the chunk back so a dispatcher-level retry rewrites it
            # cleanly instead of duplicating subset bytes.
            records.pop()
            backend_fs = self.backends[backend]
            if backend_fs.exists(path):
                backend_fs.delete(path)
            raise
        return record

    def verify_chunk(self, record: IndexRecord, obj: StoredObject) -> None:
        """Check one chunk's bytes against its index record.

        Raises :class:`CorruptionError` (a transient fault: corruption is
        injected in flight, so a re-read observes clean bytes) on a size or
        CRC-32 mismatch.  Virtual chunks (``crc == -1``) have nothing to
        verify.
        """
        if record.crc == -1 or obj.data is None:
            return
        if len(obj.data) != record.nbytes or zlib.crc32(obj.data) != record.crc:
            raise CorruptionError(
                f"plfs: checksum mismatch reading {record.path} "
                f"(got {len(obj.data)} B, expected {record.nbytes} B)"
            )

    def read_chunk_run(
        self,
        records: List[IndexRecord],
        request_size: Optional[int] = None,
        coalesce: bool = True,
    ) -> Generator:
        """Process: read one *run* of chunks living on a single backend.

        With ``coalesce`` the run goes to the backend as one span read --
        one metadata operation, one seek-amortized transfer -- instead of
        one request per chunk.  Every chunk is still CRC-verified
        individually, so a coalesced range detects exactly the corruption
        an uncoalesced one would; the caller retries the whole run.
        Returns the chunks' :class:`StoredObject` list in ``records``
        order.
        """
        if not records:
            return []
        backend_names = {r.backend for r in records}
        if len(backend_names) != 1:
            raise ConfigurationError(
                f"chunk run spans backends {sorted(backend_names)}"
            )
        backend = self.backends[records[0].backend]
        if coalesce:
            objs = yield from backend.read_span(
                [r.path for r in records],
                request_size=request_size,
                label="plfs",
            )
        else:
            procs = [
                self.sim.process(
                    backend.read(r.path, request_size=request_size, label="plfs"),
                    name=f"plfs:read:{r.path}",
                )
                for r in records
            ]
            objs = yield AllOf(self.sim, procs)
        for record, obj in zip(records, objs):
            self.verify_chunk(record, obj)
        return objs

    def write_chunk_run(
        self,
        logical: str,
        entries: List[tuple],
        backend: str,
        request_size: Optional[int] = None,
        coalesce: bool = True,
    ) -> Generator:
        """Process: append one *run* of chunks bound for a single backend.

        The write-side mirror of :meth:`read_chunk_run`: ``entries`` is a
        list of ``(tag, data)`` pairs.  With ``coalesce`` the run reaches
        the backend as one span write -- one metadata operation, one
        seek-amortized transfer -- instead of one request per chunk.  Each
        chunk keeps its own index record and CRC-32, so tag-selective
        reads and per-chunk verification are unchanged, and the whole run
        shares a single index flush.

        Failure semantics match :meth:`write_subset`, scoped to the run:
        chunk numbers are claimed up front (a failed run leaves counter
        gaps, never reused names), no index record is registered until the
        backend write succeeds, and an index-flush fault rolls back every
        chunk of the run so a dispatcher-level retry rewrites it cleanly.
        ``StorageFullError`` propagates before any chunk is stored, so the
        caller can spill the *whole* run.  Returns the run's
        :class:`IndexRecord` list in ``entries`` order.
        """
        if backend not in self.backends:
            raise ConfigurationError(f"unknown backend {backend!r}")
        if not entries:
            return []
        records = self._indexes.setdefault(logical, [])
        backend_fs = self.backends[backend]
        chunks = []
        for tag, _data in entries:
            chunk = self._chunk_counters.get((logical, tag), 0)
            self._chunk_counters[(logical, tag)] = chunk + 1
            chunks.append(chunk)
        items = [
            (self.chunk_path(logical, tag, chunk), data)
            for (tag, data), chunk in zip(entries, chunks)
        ]
        if coalesce:
            yield from backend_fs.write_span(
                items, request_size=request_size, label="plfs"
            )
        else:
            stored = []
            try:
                for path, data in items:
                    yield from backend_fs.write(
                        path, data=data, request_size=request_size,
                        label="plfs",
                    )
                    stored.append(path)
            except BaseException:
                for path in stored:
                    if backend_fs.exists(path):
                        backend_fs.delete(path)
                raise
        run_records = [
            IndexRecord(
                tag=tag,
                backend=backend,
                path=path,
                nbytes=len(data),
                chunk=chunk,
                crc=zlib.crc32(data),
            )
            for (tag, data), (path, _), chunk in zip(entries, items, chunks)
        ]
        records.extend(run_records)
        try:
            yield from self._flush_index(logical)
        except FaultError:
            # Roll the whole run back (records by identity -- concurrent
            # writers may have appended behind us) so a retry rewrites it
            # cleanly instead of duplicating subset bytes.
            for record in run_records:
                records.remove(record)
                if backend_fs.exists(record.path):
                    backend_fs.delete(record.path)
            raise
        return run_records

    def read_subset(
        self,
        logical: str,
        tag: str,
        request_size: Optional[int] = None,
    ) -> Generator:
        """Process: read every chunk of one subset, chunks in parallel.

        Returns a :class:`StoredObject` whose data is the chunk
        concatenation (or virtual when any chunk is virtual).
        """
        records = self.subset_records(logical, tag)
        procs = [
            self.sim.process(
                self.backends[r.backend].read(
                    r.path, request_size=request_size, label="plfs"
                ),
                name=f"plfs:read:{r.path}",
            )
            for r in records
        ]
        objs = yield AllOf(self.sim, procs)
        for record, obj in zip(records, objs):
            self.verify_chunk(record, obj)
        total = sum(o.nbytes for o in objs)
        if any(o.is_virtual for o in objs):
            data = None
        else:
            data = b"".join(o.data for o in objs)
        return StoredObject(
            path=f"{logical}#{tag}", nbytes=total, data=data
        )

    def read_container(
        self, logical: str, request_size: Optional[int] = None
    ) -> Generator:
        """Process: read every subset of a container concurrently.

        Returns ``{tag: StoredObject}``.
        """
        tags = self.tags(logical)
        procs = [
            self.sim.process(
                self.read_subset(logical, tag, request_size=request_size),
                name=f"plfs:read:{logical}#{tag}",
            )
            for tag in tags
        ]
        objs = yield AllOf(self.sim, procs)
        return dict(zip(tags, objs))

    def fsck(self, logical: Optional[str] = None) -> Dict[str, list]:
        """Container integrity check.

        Cross-references index records against backend objects and
        reports:

        * ``missing`` -- indexed chunks whose backend object is gone;
        * ``size_mismatch`` -- chunks whose stored size disagrees with the
          index;
        * ``orphaned`` -- ``*.plfs/subset.*`` objects on a backend that no
          index references (a crashed dispatch, for instance).

        Returns ``{"missing": [...], "size_mismatch": [...],
        "orphaned": [...], "ok": bool}``.
        """
        logicals = (
            [logical]
            if logical is not None
            else sorted(
                {
                    key[: -len(".plfs/" + _INDEX_NAME)]
                    for fs in self.backends.values()
                    for key in fs.store.walk()
                    if key.endswith(".plfs/" + _INDEX_NAME)
                }
            )
        )
        missing, size_mismatch = [], []
        indexed_paths = set()
        for name in logicals:
            for record in self.container_index(name):
                indexed_paths.add((record.backend, record.path))
                backend = self.backends[record.backend]
                if not backend.exists(record.path):
                    missing.append(record.path)
                elif backend.nbytes(record.path) != record.nbytes:
                    size_mismatch.append(record.path)
        orphaned = []
        for backend_name, fs in self.backends.items():
            for key in fs.store.walk():
                if "/subset." not in key or ".plfs/" not in key:
                    continue
                if logical is not None and not key.startswith(
                    self.container_dir(logical) + "/"
                ):
                    continue
                if (backend_name, key) not in indexed_paths:
                    orphaned.append(f"{backend_name}:{key}")
        report = {
            "missing": sorted(missing),
            "size_mismatch": sorted(size_mismatch),
            "orphaned": sorted(orphaned),
        }
        report["ok"] = not (missing or size_mismatch or orphaned)
        return report

    def delete_container(self, logical: str) -> int:
        """Remove every chunk and the index of a container; returns freed
        bytes.  Synchronous (metadata-path operation, like ``rm -r``)."""
        records = self.container_index(logical)
        freed = 0
        for record in records:
            backend = self.backends[record.backend]
            if backend.exists(record.path):
                freed += backend.delete(record.path)
        meta_fs = self.backends[self.metadata_backend]
        index_path = self.index_path(logical)
        if meta_fs.exists(index_path):
            meta_fs.delete(index_path)
        self._indexes.pop(logical, None)
        for key in [k for k in self._chunk_counters if k[0] == logical]:
            del self._chunk_counters[key]
        return freed

    def delete_subset(self, logical: str, tag: str) -> int:
        """Remove one tagged subset's chunks from a container; returns
        freed bytes.  Synchronous, like :meth:`delete_container`.

        The rebalancer's cleanup primitive: after a subset migrates to
        another node, the source drops just that ``(logical, tag)`` --
        the rest of the container (and its index) stays serviceable.
        Deleting the last subset removes the container entirely.
        """
        records = self.container_index(logical)
        keep = [r for r in records if r.tag != tag]
        if len(keep) == len(records):
            return 0
        if not keep:
            return self.delete_container(logical)
        freed = 0
        for record in records:
            if record.tag != tag:
                continue
            backend = self.backends[record.backend]
            if backend.exists(record.path):
                freed += backend.delete(record.path)
        self._indexes[logical] = keep
        self._chunk_counters.pop((logical, tag), None)
        return freed

    def _flush_index(self, logical: str) -> Generator:
        """Persist the index object to the metadata backend."""
        payload = json.dumps(
            [asdict(r) for r in self._indexes[logical]]
        ).encode()
        yield from self.backends[self.metadata_backend].write(
            self.index_path(logical), data=payload, label="plfs-index"
        )
