"""Page-cache wrapper around a file system.

The paper's sharpest point is that *caching and faster media don't help*:
even with the compressed file fully resident, the C path still pays full
decompression on every load ("a time-consuming repeated effort", §1).
:class:`CachedFS` makes that argument quantitative -- it serves repeat
reads at memory bandwidth, and the page-cache ablation bench shows the
traditional turnaround barely moves while ADA's lead stands.

LRU over whole objects (VMD reads whole files), capacity in bytes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, Optional

from repro.errors import ConfigurationError
from repro.fs.base import FileSystem, StoredObject
from repro.units import gbps

__all__ = ["CachedFS"]


class CachedFS(FileSystem):
    """LRU page cache in front of another file system."""

    def __init__(
        self,
        inner: FileSystem,
        capacity_bytes: float,
        memory_bandwidth: float = gbps(6.0),
        name: Optional[str] = None,
    ):
        if capacity_bytes <= 0 or memory_bandwidth <= 0:
            raise ConfigurationError("cache capacity/bandwidth must be positive")
        super().__init__(inner.sim, name or f"cached:{inner.name}")
        self.inner = inner
        self.store = inner.store  # shared namespace: the cache adds no state
        self.capacity_bytes = float(capacity_bytes)
        self.memory_bandwidth = float(memory_bandwidth)
        self._lru: "OrderedDict[str, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def cached_bytes(self) -> float:
        return float(sum(self._lru.values()))

    def is_cached(self, path: str) -> bool:
        return self.store.normalize(path) in self._lru

    def invalidate(self, path: Optional[str] = None) -> None:
        """Drop one path (or everything) from the cache."""
        if path is None:
            self._lru.clear()
        else:
            self._lru.pop(self.store.normalize(path), None)

    # -- FS interface -----------------------------------------------------

    def write(
        self,
        path: str,
        data: Optional[bytes] = None,
        nbytes: Optional[int] = None,
        request_size: Optional[int] = None,
        label: str = "write",
    ) -> Generator:
        # Write-through; the written object becomes cache-resident.
        obj = yield from self.inner.write(
            path, data=data, nbytes=nbytes, request_size=request_size, label=label
        )
        self._admit(path, obj.nbytes)
        self.bytes_written += obj.nbytes
        return obj

    def read(
        self,
        path: str,
        request_size: Optional[int] = None,
        label: str = "read",
    ) -> Generator:
        key = self.store.normalize(path)
        if key in self._lru:
            self.hits += 1
            self._lru.move_to_end(key)
            size = self.store.nbytes(key)
            yield self.sim.timeout(size / self.memory_bandwidth)
            self.bytes_read += size
            data = None if self.store.is_virtual(key) else self.store.data(key)
            return StoredObject(path=path, nbytes=size, data=data)
        self.misses += 1
        obj = yield from self.inner.read(
            path, request_size=request_size, label=label
        )
        self._admit(path, obj.nbytes)
        self.bytes_read += obj.nbytes
        return obj

    def _admit(self, path: str, nbytes: int) -> None:
        if nbytes > self.capacity_bytes:
            return  # larger than the whole cache: bypass
        key = self.store.normalize(path)
        self._lru[key] = nbytes
        self._lru.move_to_end(key)
        while self.cached_bytes > self.capacity_bytes:
            self._lru.popitem(last=False)
