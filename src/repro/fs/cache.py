"""Caching layers: the page-cache FS wrapper and the tiered block cache.

Two distinct caches live here:

* :class:`CachedFS` -- the paper's *counter-argument* device.  The paper's
  sharpest point is that caching and faster media don't help the
  traditional path: even with the compressed file fully resident, the C
  path still pays full decompression on every load ("a time-consuming
  repeated effort", §1).  ``CachedFS`` makes that argument quantitative --
  it serves repeat reads at memory bandwidth, and the page-cache ablation
  bench shows the traditional turnaround barely moves while ADA's lead
  stands.  LRU over whole objects (VMD reads whole files), capacity in
  bytes.

* :class:`BlockCache` -- ADA's *own* read accelerator.  A two-level
  (memory over SSD) cache keyed by PLFS ``(logical, tag, chunk)`` blocks,
  shared by ``ADA.fetch`` / ``fetch_all`` / ``fetch_merged`` and warmed by
  the adaptive prefetcher.  L1 serves at memory bandwidth; blocks evicted
  from L1 demote to an SSD-class L2 before leaving the cache entirely.
  Hit/miss/eviction counters surface through ``ADA.stats()``; the
  :meth:`BlockCache.pressure` watermark is what the prefetcher consults
  before issuing speculative reads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.fs.base import FileSystem, StoredObject
from repro.obs.metrics import MetricsRegistry, metric_view
from repro.obs.trace import span
from repro.units import MiB, gbps

__all__ = ["CachedFS", "BlockCache", "BlockKey", "CachedBlock", "DERIVED_SUBSET"]


class CachedFS(FileSystem):
    """LRU page cache in front of another file system.

    Coherence contract: a ``write`` to a cached path *invalidates* the
    cached entry synchronously, before any backend time is charged, and
    re-admits the object only once the backend write has completed.  A
    read that overlaps the write therefore either misses (and queues on
    the backend behind the write) or serves the consistent pre-write
    snapshot -- never a torn object whose size and bytes disagree.
    """

    hits = metric_view("_metric_fields", key="hits")
    misses = metric_view("_metric_fields", key="misses")
    invalidations = metric_view("_metric_fields", key="invalidations")

    def __init__(
        self,
        inner: FileSystem,
        capacity_bytes: float,
        memory_bandwidth: float = gbps(6.0),
        name: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if capacity_bytes <= 0 or memory_bandwidth <= 0:
            raise ConfigurationError("cache capacity/bandwidth must be positive")
        super().__init__(inner.sim, name or f"cached:{inner.name}")
        self.inner = inner
        self.store = inner.store  # shared namespace: the cache adds no state
        self.capacity_bytes = float(capacity_bytes)
        self.memory_bandwidth = float(memory_bandwidth)
        self._lru: "OrderedDict[str, int]" = OrderedDict()
        # Counters live in the (injectable) metrics registry; the public
        # ``hits``/``misses``/``invalidations`` attributes are views.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._metric_fields = {
            field: self.metrics.counter(f"page_cache_{field}_total", fs=self.name)
            for field in ("hits", "misses", "invalidations")
        }

    @property
    def cached_bytes(self) -> float:
        return float(sum(self._lru.values()))

    def is_cached(self, path: str) -> bool:
        return self.store.normalize(path) in self._lru

    def invalidate(self, path: Optional[str] = None) -> None:
        """Drop one path (or everything) from the cache."""
        if path is None:
            self.invalidations += len(self._lru)
            self._lru.clear()
        elif self._lru.pop(self.store.normalize(path), None) is not None:
            self.invalidations += 1

    # -- FS interface -----------------------------------------------------

    def write(
        self,
        path: str,
        data: Optional[bytes] = None,
        nbytes: Optional[int] = None,
        request_size: Optional[int] = None,
        label: str = "write",
    ) -> Generator:
        # Invalidate *before* the backend write is charged: a concurrent
        # reader must not hit a cache entry the write is about to replace.
        self.invalidate(path)
        # Write-through; the written object becomes cache-resident.
        obj = yield from self.inner.write(
            path, data=data, nbytes=nbytes, request_size=request_size, label=label
        )
        self._admit(path, obj.nbytes)
        self.bytes_written += obj.nbytes
        return obj

    def read(
        self,
        path: str,
        request_size: Optional[int] = None,
        label: str = "read",
    ) -> Generator:
        key = self.store.normalize(path)
        if key in self._lru:
            self.hits += 1
            self._lru.move_to_end(key)
            # Snapshot size *and* bytes before sleeping: the hit serves the
            # cached copy as of the request, not whatever a concurrent
            # writer leaves behind mid-transfer.
            size = self.store.nbytes(key)
            data = None if self.store.is_virtual(key) else self.store.data(key)
            yield self.sim.timeout(size / self.memory_bandwidth)
            self.bytes_read += size
            return StoredObject(path=path, nbytes=size, data=data)
        self.misses += 1
        obj = yield from self.inner.read(
            path, request_size=request_size, label=label
        )
        self._admit(path, obj.nbytes)
        self.bytes_read += obj.nbytes
        return obj

    def _admit(self, path: str, nbytes: int) -> None:
        key = self.store.normalize(path)
        if nbytes > self.capacity_bytes:
            # Larger than the whole cache: bypass -- but never leave a
            # stale smaller entry behind for the same path.
            self._lru.pop(key, None)
            return
        self._lru[key] = nbytes
        self._lru.move_to_end(key)
        while self.cached_bytes > self.capacity_bytes:
            self._lru.popitem(last=False)


# ---------------------------------------------------------------------------
# Tiered block cache (the pipelined read path's L1/L2)
# ---------------------------------------------------------------------------

#: Cache key: one PLFS subset chunk.
BlockKey = Tuple[str, str, int]

#: Chunk number used for *derived* whole-subset entries: the assembled
#: (chunk-concatenated) subset a repeat ``fetch`` serves as one block.
#: Real chunk numbers are >= 0, so -1 can never collide.  Derived entries
#: must be invalidated whenever new chunks land (``ingest_append``).
DERIVED_SUBSET = -1


@dataclass
class CachedBlock:
    """One resident block: size always, bytes when materialized."""

    nbytes: int
    data: Optional[bytes] = None
    prefetched: bool = False  # admitted speculatively, not yet used


class BlockCache:
    """Two-level LRU block cache over ``(logical, tag, chunk)`` keys.

    * **L1 (memory)** serves hits at ``l1_bandwidth`` with no fixed
      latency -- the block is already in the reader's address space.
    * **L2 (SSD-class)** holds blocks demoted from L1; a hit pays
      ``l2_latency_s`` plus ``nbytes / l2_bandwidth`` and promotes the
      block back to L1.

    ``lookup`` is a DES process (it charges simulated time); ``admit`` /
    ``invalidate`` are synchronous bookkeeping, matching the repo's
    convention that metadata mutation is free while data movement pays.
    """

    hits_l1 = metric_view("_metric_fields", key="hits_l1")
    hits_l2 = metric_view("_metric_fields", key="hits_l2")
    misses = metric_view("_metric_fields", key="misses")
    demotions = metric_view("_metric_fields", key="demotions")
    evictions = metric_view("_metric_fields", key="evictions")
    invalidations = metric_view("_metric_fields", key="invalidations")
    prefetch_hits = metric_view("_metric_fields", key="prefetch_hits")
    prefetch_wasted = metric_view("_metric_fields", key="prefetch_wasted")

    def __init__(
        self,
        sim,
        l1_capacity_bytes: float = 64 * MiB,
        l2_capacity_bytes: float = 0.0,
        l1_bandwidth: float = gbps(6.0),
        l2_bandwidth: float = gbps(2.0),
        l2_latency_s: float = 80e-6,
        metrics: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Dict[str, str]] = None,
    ):
        if l1_capacity_bytes <= 0:
            raise ConfigurationError("block cache L1 capacity must be positive")
        if l2_capacity_bytes < 0:
            raise ConfigurationError("block cache L2 capacity must be >= 0")
        if l1_bandwidth <= 0 or l2_bandwidth <= 0:
            raise ConfigurationError("block cache bandwidths must be positive")
        if l2_latency_s < 0:
            raise ConfigurationError("block cache L2 latency must be >= 0")
        self.sim = sim
        self.l1_capacity_bytes = float(l1_capacity_bytes)
        self.l2_capacity_bytes = float(l2_capacity_bytes)
        self.l1_bandwidth = float(l1_bandwidth)
        self.l2_bandwidth = float(l2_bandwidth)
        self.l2_latency_s = float(l2_latency_s)
        self._l1: "OrderedDict[BlockKey, CachedBlock]" = OrderedDict()
        self._l2: "OrderedDict[BlockKey, CachedBlock]" = OrderedDict()
        self.metric_labels: Dict[str, str] = dict(metric_labels or {})
        # Hit/eviction accounting is registry-backed (the attributes above
        # are views); occupancy surfaces as derived gauges so exporters
        # always see the live value.
        self.bind_metrics(metrics if metrics is not None else MetricsRegistry())

    def bind_metrics(
        self,
        metrics: MetricsRegistry,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """(Re)home this cache's counters and gauges in ``metrics``.

        A cache is usually constructed standalone and handed to ``ADA``,
        which then rebinds it into the middleware's shared registry;
        counts accumulated so far carry over.  ``labels`` (merged over any
        construction-time ``metric_labels``) distinguish this cache's
        series when several caches share one registry -- a sharded
        deployment binds each shard's cache with ``{"shard": name}``.
        Without them, same-named counters from two caches would be the
        *same* registry object (silently merged series) and the derived
        occupancy gauges would track only the last cache bound.
        """
        previous = getattr(self, "_metric_fields", None)
        if labels:
            self.metric_labels.update({k: str(v) for k, v in labels.items()})
        extra = self.metric_labels
        self.metrics = metrics
        self._metric_fields = {
            "hits_l1": self.metrics.counter(
                "block_cache_hits_total", tier="l1", **extra
            ),
            "hits_l2": self.metrics.counter(
                "block_cache_hits_total", tier="l2", **extra
            ),
            "misses": self.metrics.counter(
                "block_cache_misses_total", **extra
            ),
            "demotions": self.metrics.counter(
                "block_cache_demotions_total", **extra
            ),
            "evictions": self.metrics.counter(
                "block_cache_evictions_total", **extra
            ),
            "invalidations": self.metrics.counter(
                "block_cache_invalidations_total", **extra
            ),
            "prefetch_hits": self.metrics.counter(
                "block_cache_prefetch_hits_total", **extra
            ),
            "prefetch_wasted": self.metrics.counter(
                "block_cache_prefetch_wasted_total", **extra
            ),
        }
        if previous is not None:
            for field, metric in previous.items():
                # Subclasses widen ``_metric_fields`` after this runs; skip
                # their keys here and let their ``bind_metrics`` carry them.
                if field in self._metric_fields and metric.value:
                    self._metric_fields[field].set(metric.value)
        self.metrics.gauge(
            "block_cache_bytes", fn=lambda: self.l1_bytes, tier="l1", **extra
        )
        self.metrics.gauge(
            "block_cache_bytes", fn=lambda: self.l2_bytes, tier="l2", **extra
        )
        self.metrics.gauge("block_cache_pressure", fn=self.pressure, **extra)

    # -- capacity accounting ----------------------------------------------

    @property
    def l1_bytes(self) -> float:
        return float(sum(b.nbytes for b in self._l1.values()))

    @property
    def l2_bytes(self) -> float:
        return float(sum(b.nbytes for b in self._l2.values()))

    @property
    def cached_bytes(self) -> float:
        return self.l1_bytes + self.l2_bytes

    def pressure(self) -> float:
        """L1 occupancy fraction -- the prefetcher's back-off watermark."""
        return self.l1_bytes / self.l1_capacity_bytes

    def __len__(self) -> int:
        return len(self._l1) + len(self._l2)

    def __contains__(self, key: BlockKey) -> bool:
        return key in self._l1 or key in self._l2

    def peek(self, key: BlockKey) -> bool:
        """Residency check with no simulated cost and no LRU effect."""
        return key in self

    # -- data path ---------------------------------------------------------

    def lookup(self, key: BlockKey) -> Generator:
        """Process: fetch a block, paying its tier's service time.

        Returns the :class:`CachedBlock` (L2 hits are promoted to L1) or
        ``None`` on a miss.
        """
        logical, tag, chunk = key
        block = self._l1.get(key)
        if block is not None:
            self.hits_l1 += 1
            self._l1.move_to_end(key)
            self._count_prefetch_use(block)
            with span(
                self.sim, "cache.lookup", logical=logical, tag=tag,
                chunk=chunk, tier="l1", cache_hit=True,
            ):
                yield self.sim.timeout(block.nbytes / self.l1_bandwidth)
            return block
        block = self._l2.pop(key, None)
        if block is not None:
            self.hits_l2 += 1
            self._count_prefetch_use(block)
            with span(
                self.sim, "cache.lookup", logical=logical, tag=tag,
                chunk=chunk, tier="l2", cache_hit=True,
            ):
                yield self.sim.timeout(
                    self.l2_latency_s + block.nbytes / self.l2_bandwidth
                )
            self._insert_l1(key, block)  # promote
            return block
        self.misses += 1
        return None

    def admit(
        self,
        key: BlockKey,
        nbytes: int,
        data: Optional[bytes] = None,
        prefetched: bool = False,
    ) -> None:
        """Install (or refresh) a block in L1."""
        if nbytes > self.l1_capacity_bytes:
            return  # larger than the whole L1: bypass
        self._l2.pop(key, None)
        self._insert_l1(
            key, CachedBlock(nbytes=int(nbytes), data=data, prefetched=prefetched)
        )

    def invalidate(
        self,
        logical: Optional[str] = None,
        tag: Optional[str] = None,
        chunk: Optional[int] = None,
    ) -> int:
        """Drop matching blocks; ``None`` fields are wildcards.

        ``invalidate()`` empties the cache; ``invalidate(logical)`` drops a
        dataset (what ``ADA.remove`` and ``ingest_append`` use to keep
        derived subset state coherent).  Returns the number dropped.
        """
        def matches(key: BlockKey) -> bool:
            return (
                (logical is None or key[0] == logical)
                and (tag is None or key[1] == tag)
                and (chunk is None or key[2] == chunk)
            )

        dropped = 0
        for key in [k for k in self._l1 if matches(k)]:
            block = self._l1.pop(key)
            self._on_l1_remove(key, block)
            self._on_removed(key, block)
            dropped += 1
        for key in [k for k in self._l2 if matches(k)]:
            block = self._l2.pop(key)
            self._on_removed(key, block)
            dropped += 1
        self.invalidations += dropped
        return dropped

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        hits = self.hits_l1 + self.hits_l2
        total = hits + self.misses
        return {
            "l1_capacity_bytes": self.l1_capacity_bytes,
            "l2_capacity_bytes": self.l2_capacity_bytes,
            "l1_bytes": self.l1_bytes,
            "l2_bytes": self.l2_bytes,
            "blocks": len(self),
            "hits_l1": self.hits_l1,
            "hits_l2": self.hits_l2,
            "misses": self.misses,
            "hit_ratio": (hits / total) if total else 0.0,
            "demotions": self.demotions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_wasted": self.prefetch_wasted,
            "pressure": self.pressure(),
        }

    # -- internals ---------------------------------------------------------

    def _count_prefetch_use(self, block: CachedBlock) -> None:
        if block.prefetched:
            self.prefetch_hits += 1
            block.prefetched = False

    def _insert_l1(self, key: BlockKey, block: CachedBlock) -> None:
        previous = self._l1.pop(key, None)
        if previous is not None:
            self._on_l1_remove(key, previous)
        self._l1[key] = block
        self._l1.move_to_end(key)
        self._on_l1_insert(key, block)
        while self.l1_bytes > self.l1_capacity_bytes and len(self._l1) > 1:
            victim_key = self._pick_l1_victim()
            victim = self._l1.pop(victim_key)
            self._on_l1_remove(victim_key, victim)
            self._demote(victim_key, victim)
        # A single over-budget resident block demotes too.
        if self.l1_bytes > self.l1_capacity_bytes:
            only_key, only = self._l1.popitem(last=False)
            self._on_l1_remove(only_key, only)
            self._demote(only_key, only)

    def _demote(self, key: BlockKey, block: CachedBlock) -> None:
        if block.nbytes > self.l2_capacity_bytes:
            self._drop(key, block)
            return
        self.demotions += 1
        self._l2[key] = block
        self._l2.move_to_end(key)
        while self.l2_bytes > self.l2_capacity_bytes and self._l2:
            victim_key = self._pick_l2_victim()
            evicted = self._l2.pop(victim_key)
            self._drop(victim_key, evicted)

    def _drop(self, key: BlockKey, block: CachedBlock) -> None:
        self.evictions += 1
        if block.prefetched:
            self.prefetch_wasted += 1
        self._on_removed(key, block)

    # -- subclass hooks (fair-share partitioning overrides these) ----------

    def _pick_l1_victim(self) -> BlockKey:
        """Key of the next L1 block to demote; default is plain LRU."""
        return next(iter(self._l1))

    def _pick_l2_victim(self) -> BlockKey:
        """Key of the next L2 block to evict; default is plain LRU."""
        return next(iter(self._l2))

    def _on_l1_insert(self, key: BlockKey, block: CachedBlock) -> None:
        """A block became L1-resident (admit, refresh, or promote)."""

    def _on_l1_remove(self, key: BlockKey, block: CachedBlock) -> None:
        """A block left L1 (demotion, invalidation, or refresh)."""

    def _on_removed(self, key: BlockKey, block: CachedBlock) -> None:
        """A block left the cache entirely (eviction or invalidation)."""
