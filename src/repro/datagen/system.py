"""Full-system assembly: protein + membrane + solvent + ions.

:func:`build_gpcr_system` sizes the non-protein components so the protein
atom fraction lands on a requested target (the paper's Table 1 shows
43.5-49 % across its three trajectory files).  Components are laid out in
contiguous blocks -- protein, ligand, lipids, water, ions -- the ordering
real structure-preparation tools (CHARMM-GUI, gmx pdb2gmx) emit, which is
what makes Algorithm 1's run-length labeling effective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datagen.membrane import ATOMS_PER_LIPID, generate_membrane
from repro.datagen.protein import generate_protein
from repro.datagen.solvent import ATOMS_PER_WATER, generate_ions, generate_water
from repro.errors import TopologyError
from repro.formats.topology import AtomClass, Topology

__all__ = ["MolecularSystem", "build_gpcr_system"]

#: Average heavy atoms per synthetic residue (backbone 4 + mean sidechain).
_ATOMS_PER_RESIDUE = 8.6


@dataclass
class MolecularSystem:
    """A topology + reference coordinates, ready for trajectory generation."""

    topology: Topology
    coords: np.ndarray  # (natoms, 3) float32
    seed: int = 0

    @property
    def natoms(self) -> int:
        return self.topology.natoms

    def protein_fraction(self) -> float:
        return self.topology.protein_fraction()

    def class_counts(self) -> Dict[AtomClass, int]:
        return self.topology.counts_by_class()


def build_gpcr_system(
    natoms_target: int = 4000,
    protein_fraction: float = 0.425,
    seed: int = 0,
    n_chains: int = 1,
    ion_fraction: float = 0.004,
    interleave_ligand: bool = False,
) -> MolecularSystem:
    """Build a GPCR-in-membrane system of roughly ``natoms_target`` atoms.

    ``protein_fraction`` steers the active-data share (paper band: 0.43 to
    0.49).  Remaining atoms split ~45 % lipid / ~55 % water by MD convention,
    with a sprinkle of ions.  ``interleave_ligand`` inserts a small ligand
    block between protein chains to exercise multi-run labeling.

    The realized fraction lands within ~2 % of the request (component sizes
    are integral numbers of residues/lipids/waters).
    """
    if natoms_target < 200:
        raise TopologyError("natoms_target too small for a membrane system")
    if not 0.05 <= protein_fraction <= 0.95:
        raise TopologyError(f"unreasonable protein fraction {protein_fraction}")

    n_protein_atoms = int(round(natoms_target * protein_fraction))
    n_misc_atoms = natoms_target - n_protein_atoms
    n_ions = max(2, int(round(natoms_target * ion_fraction)))
    n_lipid_atoms = int(round((n_misc_atoms - n_ions) * 0.45))
    n_lipids = max(1, n_lipid_atoms // ATOMS_PER_LIPID)
    n_water_atoms = n_misc_atoms - n_ions - n_lipids * ATOMS_PER_LIPID
    n_waters = max(1, n_water_atoms // ATOMS_PER_WATER)

    parts: List[Tuple[Topology, np.ndarray]] = []

    residues_per_chain = max(
        1, int(round(n_protein_atoms / _ATOMS_PER_RESIDUE / n_chains))
    )
    for c in range(n_chains):
        chain_id = chr(ord("A") + c)
        parts.append(
            generate_protein(residues_per_chain, seed=seed + 11 * c, chain=chain_id)
        )
        if interleave_ligand and c < n_chains - 1:
            parts.append(_ligand_block(seed=seed + 101 + c, resid_start=9000 + c))

    if not interleave_ligand:
        parts.append(_ligand_block(seed=seed + 100, resid_start=9000))
    parts.append(
        generate_membrane(
            n_lipids, seed=seed + 1, exclusion_radius=12.0, resid_start=1
        )
    )
    parts.append(generate_water(n_waters, seed=seed + 2, z_exclusion=26.0))
    parts.append(generate_ions(n_ions, seed=seed + 3))

    topology = Topology.concatenate([p[0] for p in parts])
    coords = np.concatenate([p[1] for p in parts]).astype(np.float32)
    return MolecularSystem(topology=topology, coords=coords, seed=seed)


def _ligand_block(seed: int, resid_start: int) -> Tuple[Topology, np.ndarray]:
    """A small bound ligand (~20 heavy atoms) sitting in the binding pocket."""
    rng = np.random.default_rng(seed)
    n = 20
    names = [f"C{i+1}" for i in range(n - 4)] + ["N1", "N2", "O1", "O2"]
    topo = Topology(
        names=names,
        resnames=["LIG"] * n,
        resids=[resid_start] * n,
        chains=["L"] * n,
    )
    coords = rng.normal(scale=2.0, size=(n, 3)).astype(np.float32)
    return topo, coords
