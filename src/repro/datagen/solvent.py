"""Solvent generators: TIP3-like water boxes and counter-ions.

Water dominates MD system volume; the paper's MISC (inactive) data is
mostly the "liquid that surrounds the protein" (Fig. 1c).  Waters are
placed on a jittered cubic lattice at liquid density (one molecule per
~30 A^3); ions are substituted onto random water sites.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.formats.topology import Topology

__all__ = ["generate_water", "generate_ions", "ATOMS_PER_WATER"]

ATOMS_PER_WATER = 3
_WATER_ATOMS = ["OH2", "H1", "H2"]
_VOLUME_PER_WATER = 30.0  # Angstrom^3 at ~1 g/cc

#: Internal geometry of one water (O at origin, H at ~0.96 A).
_WATER_TEMPLATE = np.array(
    [[0.0, 0.0, 0.0], [0.96, 0.0, 0.0], [-0.24, 0.93, 0.0]], dtype=np.float64
)


def generate_water(
    n_waters: int,
    seed: int = 0,
    resid_start: int = 1,
    z_exclusion: float = 0.0,
) -> Tuple[Topology, np.ndarray]:
    """Generate ``(topology, coords)`` for ``n_waters`` TIP3 molecules.

    ``z_exclusion`` keeps the slab ``|z| < z_exclusion`` empty so water does
    not overlap a membrane placed at the midplane.
    """
    if n_waters < 1:
        raise TopologyError("need at least one water molecule")
    rng = np.random.default_rng(seed)

    pitch = _VOLUME_PER_WATER ** (1.0 / 3.0)
    side = int(np.ceil(n_waters ** (1.0 / 3.0))) + 2
    grid = (np.arange(side) - side / 2.0) * pitch
    gx, gy, gz = np.meshgrid(grid, grid, grid)
    sites = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])
    if z_exclusion > 0:
        shift = z_exclusion + pitch
        sites[:, 2] = np.where(
            sites[:, 2] >= 0, sites[:, 2] + shift, sites[:, 2] - shift
        )
    # Keep lattice order (solvation tools emit waters scanline by scanline);
    # the spatial coherence keeps inter-molecule deltas small for the codec.
    sites = sites[:n_waters]
    sites += rng.normal(scale=0.3, size=sites.shape)

    # Vectorized assembly: (n_waters, 3 atoms, 3 xyz).
    coords = sites[:, None, :] + _WATER_TEMPLATE[None, :, :]
    names = _WATER_ATOMS * n_waters
    resnames = ["TIP3"] * (ATOMS_PER_WATER * n_waters)
    resids = np.repeat(np.arange(n_waters) + resid_start, ATOMS_PER_WATER)

    topo = Topology(
        names=names,
        resnames=resnames,
        resids=resids,
        chains=["W"] * len(names),
    )
    return topo, coords.reshape(-1, 3).astype(np.float32)


def generate_ions(
    n_ions: int,
    seed: int = 0,
    resid_start: int = 1,
    box_half: float = 40.0,
) -> Tuple[Topology, np.ndarray]:
    """Generate ``(topology, coords)`` for alternating SOD/CLA counter-ions."""
    if n_ions < 1:
        raise TopologyError("need at least one ion")
    rng = np.random.default_rng(seed)
    names: List[str] = []
    resnames: List[str] = []
    for i in range(n_ions):
        kind = "SOD" if i % 2 == 0 else "CLA"
        names.append(kind)
        resnames.append(kind)
    coords = rng.uniform(-box_half, box_half, size=(n_ions, 3))
    topo = Topology(
        names=names,
        resnames=resnames,
        resids=np.arange(n_ions) + resid_start,
        chains=["I"] * n_ions,
    )
    return topo, coords.astype(np.float32)
