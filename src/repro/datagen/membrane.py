"""Synthetic lipid-bilayer generator (POPC-like membrane).

A GPCR sits in a membrane; in the paper's datasets the lipid + water MISC
portion dominates the raw volume.  Each lipid here carries 52 heavy atoms
(head group + glycerol + two acyl tails), close to real POPC, and lipids are
placed on two leaflets of a planar bilayer with ~68 A^2 area per lipid.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.formats.topology import Topology

__all__ = ["generate_membrane", "POPC_ATOMS", "ATOMS_PER_LIPID"]

#: Simplified POPC heavy-atom template: choline head, phosphate, glycerol,
#: sn-1 palmitoyl tail (16 C) and sn-2 oleoyl tail (18 C).
POPC_ATOMS: List[str] = (
    ["N", "C13", "C14", "C15", "C12", "C11", "P", "O13", "O14", "O12", "O11"]
    + ["C1", "C2", "O21", "C21", "O22", "C3", "O31", "C31", "O32"]
    + [f"C2{i}" for i in range(2, 18)]  # sn-2 tail carbons
    + [f"C3{i}" for i in range(2, 18)]  # sn-1 tail carbons
)

ATOMS_PER_LIPID = len(POPC_ATOMS)  # 52

_AREA_PER_LIPID = 68.0  # Angstrom^2
_LEAFLET_Z = 18.0  # Angstrom offset of head groups from bilayer midplane


def generate_membrane(
    n_lipids: int,
    seed: int = 0,
    resid_start: int = 1,
    exclusion_radius: float = 0.0,
) -> Tuple[Topology, np.ndarray]:
    """Generate ``(topology, coords)`` for a bilayer of ``n_lipids`` POPC.

    Lipids split evenly over two leaflets on a square lattice; a central
    circular hole of ``exclusion_radius`` leaves room for the embedded
    protein.
    """
    if n_lipids < 1:
        raise TopologyError("a membrane needs at least one lipid")
    rng = np.random.default_rng(seed)

    per_leaflet = (n_lipids + 1) // 2
    pitch = np.sqrt(_AREA_PER_LIPID)

    # Candidate lattice sites with the protein hole excluded; the lattice
    # grows until enough sites survive the exclusion.  Lattice order is
    # kept: real membrane builders emit lipids row by row, and that spatial
    # coherence is what makes trajectory deltas small.
    side = max(2, int(np.ceil(np.sqrt(per_leaflet * 2.0))))
    while True:
        grid = (np.arange(side) - side / 2.0) * pitch
        xx, yy = np.meshgrid(grid, grid)
        sites = np.column_stack([xx.ravel(), yy.ravel()])
        if exclusion_radius > 0:
            sites = sites[np.hypot(sites[:, 0], sites[:, 1]) > exclusion_radius]
        if len(sites) >= per_leaflet:
            break
        side += 2

    names: List[str] = []
    resnames: List[str] = []
    resids: List[int] = []
    coords: List[np.ndarray] = []
    for lip in range(n_lipids):
        leaflet = 1.0 if lip % 2 == 0 else -1.0
        site = sites[lip // 2 % len(sites)]
        # Head at +/-_LEAFLET_Z, tails descending toward the midplane.
        z_head = leaflet * _LEAFLET_Z
        depth = np.linspace(0.0, leaflet * -_LEAFLET_Z * 0.9, ATOMS_PER_LIPID)
        jitter = rng.normal(scale=0.7, size=(ATOMS_PER_LIPID, 3))
        block = np.column_stack(
            [
                np.full(ATOMS_PER_LIPID, site[0]),
                np.full(ATOMS_PER_LIPID, site[1]),
                np.full(ATOMS_PER_LIPID, z_head) + depth,
            ]
        )
        coords.append(block + jitter)
        names.extend(POPC_ATOMS)
        resnames.extend(["POPC"] * ATOMS_PER_LIPID)
        resids.extend([resid_start + lip] * ATOMS_PER_LIPID)

    topo = Topology(
        names=names,
        resnames=resnames,
        resids=resids,
        chains=["M"] * len(names),
    )
    return topo, np.concatenate(coords).astype(np.float32)
