"""Trajectory generation: Ornstein-Uhlenbeck dynamics around a reference.

Each atom wiggles around its reference position with a class-dependent
amplitude -- protein atoms are constrained by their fold, water diffuses
freely.  An OU process (mean-reverting random walk) keeps coordinates
bounded over arbitrarily many frames while producing the small
frame-to-frame and atom-to-atom deltas that give real ``.xtc`` files their
~3x compressibility.

The generator is fully vectorized over atoms; the frame loop carries only
the OU recursion state.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.datagen.system import MolecularSystem
from repro.errors import TopologyError
from repro.formats.topology import AtomClass
from repro.formats.trajectory import Trajectory

__all__ = ["generate_trajectory", "CLASS_AMPLITUDE"]

#: RMS positional fluctuation (Angstrom) per class.
CLASS_AMPLITUDE: Dict[AtomClass, float] = {
    AtomClass.PROTEIN: 0.8,
    AtomClass.WATER: 2.4,
    AtomClass.LIPID: 1.6,
    AtomClass.ION: 2.0,
    AtomClass.LIGAND: 1.0,
    AtomClass.OTHER: 1.5,
}

_REVERSION = 0.05  # OU mean-reversion rate per frame


def generate_trajectory(
    system: MolecularSystem,
    nframes: int,
    seed: Optional[int] = None,
    dt_ps: float = 10.0,
    box_edge: Optional[float] = None,
) -> Trajectory:
    """Simulate ``nframes`` OU frames around ``system.coords``.

    The returned trajectory's steps/times follow a fixed ``dt_ps`` output
    stride, like an MD engine writing every N steps.
    """
    if nframes < 1:
        raise TopologyError("need at least one frame")
    rng = np.random.default_rng(system.seed if seed is None else seed)
    natoms = system.natoms

    sigma = np.empty(natoms, dtype=np.float64)
    for cls, amp in CLASS_AMPLITUDE.items():
        sigma[system.topology.class_mask(cls)] = amp
    # Per-step noise scale that yields the stationary RMS amplitude above.
    step_scale = (sigma * np.sqrt(2.0 * _REVERSION))[:, None]

    ref = system.coords.astype(np.float64)
    displacement = np.zeros((natoms, 3))
    frames = np.empty((nframes, natoms, 3), dtype=np.float32)
    for f in range(nframes):
        noise = rng.standard_normal((natoms, 3))
        displacement += -_REVERSION * displacement + step_scale * noise
        frames[f] = ref + displacement

    if box_edge is None:
        span = np.ptp(system.coords, axis=0).max()
        box_edge = float(span) + 10.0
    box = np.diag([box_edge] * 3).astype(np.float32)

    steps = np.arange(nframes, dtype=np.int64) * 5000
    times = np.arange(nframes, dtype=np.float64) * dt_ps
    return Trajectory(coords=frames, steps=steps, times_ps=times, box=box)
