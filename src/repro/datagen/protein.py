"""Synthetic protein generator.

Builds a polypeptide with a self-avoiding-ish random-walk backbone (CA-CA
step ~3.8 A confined to a globular envelope, the shape of a folded GPCR
bundle) and per-residue sidechain atoms drawn from simplified amino-acid
templates.  The average of ~8 atoms per residue matches heavy-atom counts of
real force fields, so byte-volume fractions come out realistic.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.formats.topology import Topology

__all__ = ["generate_protein", "SIDECHAINS"]

#: Heavy-atom sidechain names per residue type (simplified but realistic
#: counts: GLY has none, TRP has ten).
SIDECHAINS = {
    "GLY": [],
    "ALA": ["CB"],
    "SER": ["CB", "OG"],
    "CYS": ["CB", "SG"],
    "THR": ["CB", "OG1", "CG2"],
    "VAL": ["CB", "CG1", "CG2"],
    "PRO": ["CB", "CG", "CD"],
    "LEU": ["CB", "CG", "CD1", "CD2"],
    "ILE": ["CB", "CG1", "CG2", "CD1"],
    "ASN": ["CB", "CG", "OD1", "ND2"],
    "ASP": ["CB", "CG", "OD1", "OD2"],
    "MET": ["CB", "CG", "SD", "CE"],
    "GLN": ["CB", "CG", "CD", "OE1", "NE2"],
    "GLU": ["CB", "CG", "CD", "OE1", "OE2"],
    "LYS": ["CB", "CG", "CD", "CE", "NZ"],
    "HIS": ["CB", "CG", "ND1", "CD2", "CE1", "NE2"],
    "PHE": ["CB", "CG", "CD1", "CD2", "CE1", "CE2", "CZ"],
    "ARG": ["CB", "CG", "CD", "NE", "CZ", "NH1", "NH2"],
    "TYR": ["CB", "CG", "CD1", "CD2", "CE1", "CE2", "CZ", "OH"],
    "TRP": ["CB", "CG", "CD1", "CD2", "NE1", "CE2", "CE3", "CZ2", "CZ3", "CH2"],
}

_BACKBONE = ["N", "CA", "C", "O"]
_CA_STEP = 3.8  # Angstrom


def generate_protein(
    n_residues: int,
    seed: int = 0,
    chain: str = "A",
    radius: float = None,
) -> Tuple[Topology, np.ndarray]:
    """Generate ``(topology, coords)`` for one synthetic protein chain.

    ``radius`` bounds the globular envelope; defaults to a density-derived
    value so larger proteins stay compact rather than becoming long snakes.
    """
    if n_residues < 1:
        raise TopologyError("a protein needs at least one residue")
    rng = np.random.default_rng(seed)
    if radius is None:
        # Empirical globular protein scaling: R ~ 3 * N^(1/3) Angstrom.
        radius = 3.0 * max(n_residues, 8) ** (1.0 / 3.0)

    restypes = rng.choice(list(SIDECHAINS.keys()), size=n_residues)

    # Backbone CA random walk, reflected at the envelope boundary.
    ca = np.zeros((n_residues, 3))
    pos = np.zeros(3)
    steps = rng.normal(size=(n_residues, 3))
    steps *= _CA_STEP / np.linalg.norm(steps, axis=1, keepdims=True)
    for i in range(n_residues):
        cand = pos + steps[i]
        if np.linalg.norm(cand) > radius:
            cand = pos - steps[i]  # reflect back inward
        ca[i] = pos = cand

    names: List[str] = []
    resnames: List[str] = []
    resids: List[int] = []
    coord_rows: List[np.ndarray] = []
    for i, restype in enumerate(restypes):
        atoms = _BACKBONE + SIDECHAINS[restype]
        jitter = rng.normal(scale=0.8, size=(len(atoms), 3))
        offsets = jitter + np.linspace(0, 1.4, len(atoms))[:, None]
        names.extend(atoms)
        resnames.extend([restype] * len(atoms))
        resids.extend([i + 1] * len(atoms))
        coord_rows.append(ca[i] + offsets)

    topo = Topology(
        names=names,
        resnames=resnames,
        resids=resids,
        chains=[chain] * len(names),
    )
    return topo, np.concatenate(coord_rows).astype(np.float32)
