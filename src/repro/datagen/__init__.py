"""Synthetic GPCR-like molecular systems and trajectories.

The paper evaluates ADA on production CB1/GPCR trajectories [Hua et al.
2016] that are not redistributable.  This package builds synthetic systems
with the same *structural statistics* -- a membrane protein surrounded by a
lipid bilayer, water, and ions, with a protein atom fraction in the 42-49 %
band of Table 1 -- so ADA's categorizer, labeler, and dispatcher exercise
the identical code paths they would on the real data.
"""

from repro.datagen.protein import generate_protein
from repro.datagen.membrane import generate_membrane
from repro.datagen.solvent import generate_ions, generate_water
from repro.datagen.system import MolecularSystem, build_gpcr_system
from repro.datagen.motion import generate_trajectory

__all__ = [
    "MolecularSystem",
    "build_gpcr_system",
    "generate_ions",
    "generate_membrane",
    "generate_protein",
    "generate_trajectory",
    "generate_water",
]
