"""Exception taxonomy for the ADA reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch the whole family.  The OOM-kill semantics of the fat-node
experiments (Fig. 10) are expressed with :class:`OutOfMemoryError`, which the
benchmark harness catches and records as a ``killed`` data point exactly the
way the paper plots truncated series.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class FileSystemError(ReproError):
    """Base class for file-system level failures."""


class FileNotFoundInFSError(FileSystemError):
    """A path was looked up in a simulated file system and does not exist."""


class FileExistsInFSError(FileSystemError):
    """Exclusive create of a path that already exists."""


class NotAFileError(FileSystemError):
    """A directory path was used where a regular file was required."""

class NotADirectoryInFSError(FileSystemError):
    """A file path was used where a directory was required."""


class StorageFullError(FileSystemError):
    """A storage device ran out of capacity during a write."""


class OutOfMemoryError(ReproError):
    """A node exceeded its memory capacity; the process is 'killed'.

    Mirrors the kernel OOM-killer events the paper observes on the 1 TB
    fat-node server when VMD tries to render 1,876,800+ frames.
    """

    def __init__(self, requested: float, in_use: float, capacity: float):
        self.requested = float(requested)
        self.in_use = float(in_use)
        self.capacity = float(capacity)
        super().__init__(
            f"out of memory: requested {requested:.3e} B with "
            f"{in_use:.3e} B in use of {capacity:.3e} B capacity"
        )


class TagNotFoundError(ReproError):
    """A tag-selective read referenced a tag absent from the label index."""


class LabelIndexError(ReproError):
    """The label file for a dataset is missing or corrupt."""


class ContainerError(ReproError):
    """A PLFS container is malformed (missing subdirs, bad index records)."""


class CodecError(ReproError, ValueError):
    """XTC-like codec failure (bad magic, truncated stream, bad precision).

    Also a :class:`ValueError`: argument-domain failures (empty containers,
    out-of-range frame windows, non-integer indices) are value errors to
    callers that do not know the :mod:`repro` taxonomy.
    """


class TopologyError(ReproError):
    """Inconsistent molecular topology (bad atom classes, range overlap)."""


class SimulationError(ReproError):
    """Discrete-event simulation kernel failure (e.g. deadlock detected)."""


class ConfigurationError(ReproError):
    """Invalid platform or scenario configuration."""


class AdmissionRejected(ReproError):
    """A tenant request breached its admission limits (serving layer).

    Raised *synchronously* at submit time -- a rejected request never
    enters the scheduler, so admission control bounds each tenant's
    queue footprint, not just its service share.
    """

    def __init__(self, tenant: str, reason: str, limit: float, value: float):
        self.tenant = str(tenant)
        self.reason = str(reason)
        self.limit = float(limit)
        self.value = float(value)
        super().__init__(
            f"tenant {tenant!r} rejected ({reason}): "
            f"{value:g} would exceed limit {limit:g}"
        )


class FaultError(ReproError):
    """Base class for injected or detected I/O faults (see :mod:`repro.faults`).

    The split below is the transient-vs-permanent classification the retry
    layer keys on: :class:`TransientFaultError` subclasses are retried,
    :class:`PermanentFaultError` subclasses are surfaced immediately.
    """


class TransientFaultError(FaultError):
    """An operation failed in a way a retry can plausibly fix."""


class PermanentFaultError(FaultError):
    """An operation failed in a way no retry will fix (media gone, etc.)."""


class CorruptionError(TransientFaultError):
    """A checksummed payload came back altered (bit flip, short read).

    Classified transient: the at-rest copy is intact, so a re-read serves
    clean bytes -- the re-fetch path the streaming-MD pipelines use.
    """


class FaultTimeoutError(TransientFaultError):
    """An operation exceeded its per-op deadline and was abandoned."""


class RetryExhaustedError(PermanentFaultError):
    """Bounded retries ran out; wraps the last transient failure as its
    ``__cause__``.  Permanent from the caller's point of view."""


class NodeDownError(PermanentFaultError):
    """An ADA middleware node is dead (fail-stop).

    Raised by the sharded front when a routed operation targets a killed
    node; the router catches it and fails over to a surviving replica, so
    callers only ever see it when *every* holder of a subset is gone."""


class DegradedReadWarning(UserWarning):
    """A read completed without an inactive-tier subset (documented
    degradation, paper's MISC data): surfaced, never silent."""
