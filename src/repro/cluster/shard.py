"""Distributed ADA: shard the middleware itself across N nodes.

PVFS already stripes *objects* across simulated storage devices, but the
middleware (categorizer, dispatcher, block cache, frame index) has been a
singleton -- aggregate read throughput was capped by one node's cache and
device queues no matter how many backends existed.  This module scales
the middleware out:

* :class:`HashRing` -- consistent hashing with virtual nodes, keyed on
  ``(logical, tag)``.  Placement is a pure function of ``(seed, node
  names, key)`` (md5, independent of ``PYTHONHASHSEED``), so every
  process and every run agrees on ownership, and adding or removing a
  node only remaps the ring-adjacent key ranges (~1/N of keys).
* :class:`ShardNode` -- one ADA middleware instance plus its liveness
  flag and load gauges.  Each node owns its *own* backends, block cache,
  prefetcher, and retriever, so N nodes mean N independent device queues
  and N private working sets.
* :class:`ShardedADA` -- the front: exposes the same ``fetch`` /
  ``fetch_chunks`` / ``fetch_merged`` / ``ingest_stream`` surface as a
  single :class:`~repro.core.middleware.ADA` (``repro.serve`` and
  ``repro.vmd`` run on top unmodified), routing every subset operation to
  its owners.  The hot active subset (tag ``p`` by default) is replicated
  to R nodes with read-any/primary-write semantics; reads pick the
  least-loaded live replica (sticky per stream, so sequential scans keep
  training one shard's stride detector); a dead node triggers failover to
  a surviving replica, and an unreplicated subset whose only holder died
  degrades exactly like a lost inactive tier
  (:class:`~repro.errors.DegradedReadWarning`).

Fault injection composes: each routed operation first consults the
``shard:<node>`` site of the attached :class:`~repro.faults.FaultPlan`
(the shard's "network/RPC device"), with transient errors retried by a
front-side :class:`~repro.faults.Retrier` and permanent errors treated as
a node crash.  Rebalancing (:meth:`ShardedADA.add_node` /
:meth:`ShardedADA.drain_node`) migrates only the keys whose ownership
changed, re-using the write path's coalesced chunk-run machinery and
overlapping migration with serving -- reads keep routing to the old
holders until each key's copy has landed.
"""

from __future__ import annotations

import bisect
import hashlib
import warnings
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.ingest import IngestPipeline, IngestPipelineConfig
from repro.core.labeler import LabelMap
from repro.core.lod import (
    base_tags,
    is_lod_tag,
    lod_max_error,
    lod_tag,
    validate_precision,
)
from repro.core.middleware import ADA, IngestReceipt, merge_decoded_subsets
from repro.errors import (
    ConfigurationError,
    DegradedReadWarning,
    FaultError,
    LabelIndexError,
    NodeDownError,
    PermanentFaultError,
)
from repro.faults.plan import PERMANENT, FaultPlan, raise_fault
from repro.faults.retry import Retrier, RetryPolicy, RetryStats
from repro.fs.base import FileSystem, StoredObject
from repro.fs.cache import DERIVED_SUBSET
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span
from repro.sim import AllOf, Simulator

__all__ = ["HashRing", "ShardNode", "ShardedADA"]

#: Virtual nodes per physical node; more vnodes = tighter balance.
DEFAULT_VNODES = 256


def _hash64(text: str) -> int:
    """Stable 64-bit hash (md5 prefix): identical across processes,
    seeds, and ``PYTHONHASHSEED`` values."""
    return int.from_bytes(
        hashlib.md5(text.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring with virtual nodes.

    ``owners(key, n)`` walks clockwise from the key's hash collecting the
    first ``n`` *distinct* nodes -- the replica set.  Adding a node
    claims only the ranges immediately counter-clockwise of its vnodes;
    every other key keeps its owners, which is the minimal-movement
    property the rebalancer relies on.
    """

    def __init__(
        self,
        nodes: Sequence[str] = (),
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
    ):
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        self._hashes: List[int] = []
        self._ring: Dict[int, str] = {}
        self._nodes: List[str] = []
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @staticmethod
    def key_for(logical: str, tag: str) -> str:
        return f"{logical}#{tag}"

    def _points(self, node: str) -> List[int]:
        return [
            _hash64(f"{self.seed}/{node}#{i}") for i in range(self.vnodes)
        ]

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ConfigurationError(f"node {node!r} already on the ring")
        for point in self._points(node):
            if point in self._ring:  # 64-bit collision: effectively never
                continue
            self._ring[point] = node
            bisect.insort(self._hashes, point)
        self._nodes.append(node)
        self._nodes.sort()

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise ConfigurationError(f"node {node!r} not on the ring")
        for point in self._points(node):
            if self._ring.get(point) == node:
                del self._ring[point]
                index = bisect.bisect_left(self._hashes, point)
                del self._hashes[index]
        self._nodes.remove(node)

    def owners(self, key: str, n: int = 1) -> List[str]:
        """The first ``n`` distinct nodes clockwise of ``key``'s hash."""
        if not self._nodes:
            raise ConfigurationError("hash ring has no nodes")
        n = min(int(n), len(self._nodes))
        start = bisect.bisect_right(self._hashes, _hash64(key))
        found: List[str] = []
        total = len(self._hashes)
        for step in range(total):
            node = self._ring[self._hashes[(start + step) % total]]
            if node not in found:
                found.append(node)
                if len(found) == n:
                    break
        return found

    def primary(self, key: str) -> str:
        return self.owners(key, 1)[0]


class ShardNode:
    """One ADA middleware node of a sharded deployment.

    Wraps a full :class:`ADA` (its own backends, cache, prefetcher,
    retriever -- all metric-labeled with the node name) plus the
    liveness flag and load gauges the router keys on.  Death is
    fail-stop *for routing*: a killed node receives no new requests;
    requests already executing drain normally, which cannot change any
    read's bytes -- replicas are byte-identical by construction.
    """

    def __init__(self, name: str, ada: ADA):
        self.name = str(name)
        self.ada = ada
        self.alive = True
        self.inflight = 0
        self.served_bytes = 0

    @classmethod
    def build(
        cls,
        sim: Simulator,
        name: str,
        backends: Dict[str, FileSystem],
        metrics: Optional[MetricsRegistry] = None,
        **ada_kwargs,
    ) -> "ShardNode":
        """Construct the node's middleware with shard-labeled metrics."""
        ada = ADA(
            sim, backends, metrics=metrics, shard_id=str(name), **ada_kwargs
        )
        return cls(name, ada)

    def kill(self) -> None:
        self.alive = False

    def revive(self) -> None:
        self.alive = True

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"ShardNode({self.name!r}, {state}, inflight={self.inflight})"


class _ClusterIndex:
    """Just enough of the ``PLFS`` surface for the serving layer.

    ``ServeFront`` sizes admission costs from ``plfs.subset_records`` and
    ``FaultPlan.attach_to`` walks ``plfs.backends``; both resolve against
    the member nodes here.
    """

    def __init__(self, front: "ShardedADA"):
        self._front = front

    @property
    def backends(self) -> Dict[str, FileSystem]:
        merged: Dict[str, FileSystem] = {}
        for node in self._front.nodes.values():
            for name, fs in node.ada.plfs.backends.items():
                merged[f"{node.name}/{name}"] = fs
        return merged

    @property
    def metadata_backend(self) -> str:
        raise ConfigurationError(
            "a sharded deployment has per-node metadata backends"
        )

    def subset_records(self, logical: str, tag: str):
        node = self._front._any_holder(logical, tag)
        return node.ada.plfs.subset_records(logical, tag)

    def subset_nbytes(self, logical: str, tag: str) -> int:
        node = self._front._any_holder(logical, tag)
        return node.ada.plfs.subset_nbytes(logical, tag)

    def container_nbytes(self, logical: str) -> int:
        return self._front.container_nbytes(logical)

    def tags(self, logical: str) -> List[str]:
        return self._front.tags(logical)


class _PrefetchFanout:
    """The front's ``prefetcher`` handle: broadcast wiring to every shard.

    ``ServeFront`` assigns ``tenant_source``/``budget_source`` once on
    ``ada.prefetcher``; this facade forwards the assignment to each
    node's real prefetcher (and to nodes added later), so per-tenant
    stride scoping and speculative-byte budgets keep working when the
    middleware is sharded.
    """

    def __init__(self, front: "ShardedADA"):
        self._front = front
        self._tenant_source: Optional[Callable[[], Optional[str]]] = None
        self._budget_source: Optional[Callable[[str], Optional[float]]] = None

    def _node_prefetchers(self):
        for node in self._front.nodes.values():
            if node.ada.prefetcher is not None:
                yield node.ada.prefetcher

    @property
    def tenant_source(self):
        return self._tenant_source

    @tenant_source.setter
    def tenant_source(self, source) -> None:
        self._tenant_source = source
        for prefetcher in self._node_prefetchers():
            prefetcher.tenant_source = source

    @property
    def budget_source(self):
        return self._budget_source

    @budget_source.setter
    def budget_source(self, source) -> None:
        self._budget_source = source
        for prefetcher in self._node_prefetchers():
            prefetcher.budget_source = source

    def wire(self, node: ShardNode) -> None:
        """Apply the stored wiring to a newly added node."""
        prefetcher = node.ada.prefetcher
        if prefetcher is None:
            return
        if self._tenant_source is not None and prefetcher.tenant_source is None:
            prefetcher.tenant_source = self._tenant_source
        if self._budget_source is not None and prefetcher.budget_source is None:
            prefetcher.budget_source = self._budget_source

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for node in self._front.nodes.values():
            if node.ada.prefetcher is not None:
                out[node.name] = node.ada.prefetcher.stats()
        return out


class ShardedADA:
    """N ADA middleware nodes behind one single-middleware surface.

    Containers partition across nodes by consistent-hashing ``(logical,
    tag)``; tags in ``replicated_tags`` (the hot active subset) land on
    ``replicas`` nodes.  Reads route to the least-loaded live holder
    (sticky per ``(logical, tag)`` stream), writes go to every holder
    (primary first, so the primary's copy is never behind a replica's),
    and ``fetch_merged`` scatter-gathers each tag from its own shard.

    The surface mirrors :class:`ADA` closely enough that
    :class:`~repro.serve.ServeFront` and
    :class:`~repro.vmd.session.VMDSession` run unmodified on top.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[ShardNode],
        replicas: int = 2,
        replicated_tags: Sequence[str] = ("p",),
        ring_vnodes: int = DEFAULT_VNODES,
        ring_seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        affinity_slack: int = 2,
        affinity_bytes_slack: int = 256 * 1024,
    ):
        if not nodes:
            raise ConfigurationError("ShardedADA needs at least one node")
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self.sim = sim
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if getattr(sim, "metrics", None) is None:
            sim.metrics = self.metrics
        self.replicas = int(replicas)
        self.replicated_tags = tuple(replicated_tags)
        self.affinity_slack = int(affinity_slack)
        self.affinity_bytes_slack = int(affinity_bytes_slack)
        self.nodes: Dict[str, ShardNode] = {}
        self.ring = HashRing(vnodes=ring_vnodes, seed=ring_seed)
        #: Authoritative holder lists: ``(logical, tag) -> [node, ...]``
        #: (primary first).  The ring proposes targets; this records where
        #: data currently *is*, so reads keep resolving mid-migration.
        self._placement: Dict[Tuple[str, str], List[str]] = {}
        self._catalog: Dict[str, List[str]] = {}
        self._label_maps: Dict[str, LabelMap] = {}
        self._affinity: Dict[Tuple[str, str], str] = {}
        #: Failure/recovery timeline: kill and failover events in sim time.
        self.events: List[Dict[str, object]] = []
        #: (logical, tag, dead primary) already logged as promoted, so the
        #: timeline records each promotion once, not once per read.
        self._promoted: set = set()
        #: (logical, tag, reason) for every degraded fetch_all (ADA mirror).
        self.degraded: List[Tuple[str, str, str]] = []
        self.block_cache = None  # per-shard caches live inside the nodes
        self.plfs = _ClusterIndex(self)
        self.prefetcher = _PrefetchFanout(self)
        self.fault_plan = fault_plan
        self._retrier = (
            Retrier(
                sim,
                policy=retry_policy,
                stats=RetryStats(
                    metrics=self.metrics, metric_labels={"shard": "front"}
                ),
            )
            if fault_plan is not None
            else None
        )
        self._counters = {
            "routed": self.metrics.counter("cluster_routed_total"),
            "failovers": self.metrics.counter("cluster_failovers_total"),
            "kills": self.metrics.counter("cluster_node_kills_total"),
            "degraded": self.metrics.counter("cluster_degraded_reads_total"),
            "keys_moved": self.metrics.counter("cluster_keys_moved_total"),
            "bytes_moved": self.metrics.counter("cluster_bytes_moved_total"),
            "lod_routed": self.metrics.counter("cluster_lod_routed_total"),
            "lod_fallback": self.metrics.counter(
                "cluster_lod_fallback_total"
            ),
        }
        self._ingest_pipeline: Optional[IngestPipeline] = None
        for node in nodes:
            self._register(node)
        # The front does host-side preprocessing (categorize/encode)
        # once; nodes only see already-encoded per-tag subsets.
        first = next(iter(self.nodes.values()))
        self.preprocessor = first.ada.preprocessor
        self.policy = first.ada.policy

    # -- membership -----------------------------------------------------------

    def _register(self, node: ShardNode) -> None:
        if node.name in self.nodes:
            raise ConfigurationError(f"duplicate shard node {node.name!r}")
        self.nodes[node.name] = node
        self.ring.add(node.name)
        self.metrics.gauge(
            "shard_inflight",
            fn=lambda n=node: n.inflight,
            shard=node.name,
        )
        self.metrics.gauge(
            "shard_alive", fn=lambda n=node: int(n.alive), shard=node.name
        )
        node._served_counter = self.metrics.counter(
            "shard_served_bytes_total", shard=node.name
        )
        self.prefetcher.wire(node)

    def node(self, name: str) -> ShardNode:
        return self.nodes[name]

    def alive_nodes(self) -> List[str]:
        return sorted(n for n, node in self.nodes.items() if node.alive)

    def kill_node(self, name: str) -> None:
        """Fail-stop a node: no new requests route to it."""
        node = self.nodes[name]
        if not node.alive:
            return
        node.kill()
        self._counters["kills"].inc()
        # A fresh corpse gets a fresh promotion timeline (revive + re-kill).
        self._promoted = {p for p in self._promoted if p[2] != name}
        self.events.append({"t": self.sim.now, "event": "kill", "node": name})

    # -- placement ------------------------------------------------------------

    def replication_for(self, tag: str) -> int:
        return self.replicas if tag in self.replicated_tags else 1

    def targets(self, logical: str, tag: str) -> List[str]:
        """Where the ring says ``(logical, tag)`` should live now."""
        return self.ring.owners(
            HashRing.key_for(logical, tag), self.replication_for(tag)
        )

    def holders(self, logical: str, tag: str) -> List[str]:
        """Where ``(logical, tag)`` actually lives (primary first)."""
        try:
            return list(self._placement[(logical, tag)])
        except KeyError:
            raise LabelIndexError(
                f"no placement for {logical!r}#{tag!r}"
            ) from None

    def _any_holder(self, logical: str, tag: str) -> ShardNode:
        names = self.holders(logical, tag)
        for name in names:
            if self.nodes[name].alive:
                return self.nodes[name]
        # Every holder is down; metadata is still resolvable from the
        # first holder's in-memory index (it just cannot serve reads).
        return self.nodes[names[0]]

    # -- routing core -----------------------------------------------------------

    def _select(self, logical: str, tag: str, candidates: List[str]) -> str:
        """Least-loaded live replica, sticky per (logical, tag) stream.

        Stickiness matters for satellite efficiency, not correctness: a
        sequential scan that alternated replicas every window would feed
        each shard's stride detector a broken pattern and kill prefetch.
        The stream switches replicas when its node died, fell
        ``affinity_slack`` requests behind the least-loaded one, or has
        served ``affinity_bytes_slack`` more bytes than it (the byte
        bound stops a Zipf-hot stream from pinning its whole volume on
        one replica -- stickiness is a tiebreak, not a hard pin).
        """
        def load(name: str) -> Tuple[int, int, str]:
            node = self.nodes[name]
            return (node.inflight, node.served_bytes, name)

        best = min(candidates, key=load)
        sticky = self._affinity.get((logical, tag))
        if sticky in candidates:
            snode, bnode = self.nodes[sticky], self.nodes[best]
            if (
                snode.inflight <= bnode.inflight + self.affinity_slack
                and snode.served_bytes
                <= bnode.served_bytes + self.affinity_bytes_slack
            ):
                return sticky
        self._affinity[(logical, tag)] = best
        return best

    def _gate(self, node: ShardNode, op: str) -> Generator:
        """Process: the shard's fault site -- pay latency, raise injections.

        A permanent injection at a shard site means the *node* is gone
        (fail-stop), not just one request: the node is killed and the
        error surfaces as :class:`NodeDownError` for the router to fail
        over.
        """
        if not node.alive:
            raise NodeDownError(f"shard:{node.name} is down")
        if self.fault_plan is None:
            return
        site = f"shard:{node.name}"
        decision = self.fault_plan.decide(site, op)
        if decision.latency_s:
            yield self.sim.timeout(decision.latency_s)
        if decision.error is not None:
            if decision.error == PERMANENT:
                self.kill_node(node.name)
                raise NodeDownError(
                    f"shard:{node.name}: injected node crash during {op}"
                )
            raise_fault(decision.error, site, op)

    def _attempt(
        self, node: ShardNode, op: str, factory: Callable[[ShardNode], Generator]
    ) -> Generator:
        yield from self._gate(node, op)
        result = yield from factory(node)
        return result

    @staticmethod
    def _result_nbytes(result) -> int:
        if isinstance(result, StoredObject):
            return int(result.nbytes)
        if isinstance(result, (list, tuple)):
            return int(
                sum(
                    o.nbytes
                    for o in result
                    if isinstance(o, StoredObject)
                )
            )
        return 0

    def _routed(
        self,
        logical: str,
        tag: str,
        op: str,
        factory: Callable[[ShardNode], Generator],
    ) -> Generator:
        """Process: run ``factory(node)`` on the best live holder.

        Transient shard faults retry on the *same* node (bounded by the
        front's retry policy); a dead node -- killed out-of-band or by a
        permanent injection -- fails over to the next live replica.
        ``NodeDownError`` escapes only when every holder is gone.
        """
        candidates = self.holders(logical, tag)
        tried: List[str] = []
        with span(
            self.sim, "cluster.route", logical=logical, tag=tag, op=op
        ) as sp:
            while True:
                live = [
                    name
                    for name in candidates
                    if self.nodes[name].alive and name not in tried
                ]
                if not live:
                    raise NodeDownError(
                        f"{logical}#{tag}: no live replica "
                        f"(holders {candidates}, tried {tried})"
                    )
                name = self._select(logical, tag, live)
                node = self.nodes[name]
                self._counters["routed"].inc()
                node.inflight += 1
                try:
                    if self._retrier is not None:
                        result = yield from self._retrier.call(
                            lambda n=node: self._attempt(n, op, factory),
                            key=f"shard:{name}:{op}:{logical}#{tag}",
                        )
                    else:
                        result = yield from self._attempt(node, op, factory)
                except (NodeDownError, PermanentFaultError) as exc:
                    tried.append(name)
                    self._counters["failovers"].inc()
                    self.events.append(
                        {
                            "t": self.sim.now,
                            "event": "failover",
                            "logical": logical,
                            "tag": tag,
                            "op": op,
                            "from": name,
                            "reason": str(exc),
                        }
                    )
                    sp.tag(failover=len(tried))
                    continue
                finally:
                    node.inflight -= 1
                nbytes = self._result_nbytes(result)
                node.served_bytes += nbytes
                node._served_counter.inc(nbytes)
                primary = candidates[0]
                if name != primary and not self.nodes[primary].alive:
                    # The key's primary died out-of-band; this read was
                    # silently promoted to a replica.  Count every such
                    # read, but put only the first per (key, corpse) on
                    # the timeline -- that first success IS the recovery
                    # point the chaos bench measures.
                    self._counters["failovers"].inc()
                    promo = (logical, tag, primary)
                    if promo not in self._promoted:
                        self._promoted.add(promo)
                        self.events.append(
                            {
                                "t": self.sim.now,
                                "event": "failover",
                                "logical": logical,
                                "tag": tag,
                                "op": op,
                                "from": primary,
                                "to": name,
                                "reason": "primary dead; replica promoted",
                            }
                        )
                    sp.tag(promoted_from=primary)
                sp.tag(node=name)
                return result

    # -- ingest (write) path -----------------------------------------------------

    def _route_subsets(
        self,
        logical: str,
        subsets: Dict[str, bytes],
        store_op: str = "store",
        coalesce: bool = True,
    ) -> Generator:
        """Process: write each tag's blob to every holder, in parallel.

        Primary-write semantics: the holder list is ring order, primary
        first; all copies are written before the ingest completes, so a
        later failover can serve bit-identical bytes from any replica.
        """
        procs = []
        for tag in sorted(subsets):
            blob = subsets[tag]
            key = (logical, tag)
            if key not in self._placement:
                self._placement[key] = self.targets(logical, tag)
                tags = self._catalog.setdefault(logical, [])
                if tag not in tags:
                    tags.append(tag)
                    tags.sort()
            for name in self._placement[key]:
                node = self.nodes[name]
                if store_op == "store_run":
                    gen = node.ada.determinator.store_run(
                        logical, {tag: blob}, coalesce=coalesce
                    )
                else:
                    gen = node.ada.determinator.store(logical, {tag: blob})
                procs.append(
                    self.sim.process(
                        gen, name=f"shardwrite:{name}:{logical}#{tag}"
                    )
                )
        if procs:
            yield AllOf(self.sim, procs)

    def _charge_preprocess(self, raw_nbytes: float) -> Generator:
        """Process: the front's pre-processing CPU charge.

        Charged on the primary holder's storage CPUs when it has any
        (mirrors single-node ADA; a no-op for CPU-less deployments).
        """
        first = next(iter(self.nodes.values()))
        yield from first.ada._charge_preprocess(raw_nbytes)

    def ingest(
        self, logical: str, pdb_text: str, trajectory_blob: bytes
    ) -> Generator:
        """Process: pre-process once, route each tagged subset to its shard."""
        result = self.preprocessor.process(pdb_text, trajectory_blob)
        yield from self._charge_preprocess(result.raw_nbytes)
        self._label_maps[logical] = result.label_map
        with span(self.sim, "cluster.ingest", logical=logical):
            yield from self._route_subsets(logical, result.subsets)
        return self._receipt(
            logical,
            result.label_map,
            {tag: len(blob) for tag, blob in result.subsets.items()},
            result.raw_nbytes,
            result.compressed_nbytes,
        )

    def ingest_append(self, logical: str, trajectory_blob: bytes) -> Generator:
        """Process: append a chunk; each tag lands on its existing holders."""
        label_map = self.label_map(logical)
        result = self.preprocessor.process_chunk(label_map, trajectory_blob)
        yield from self._charge_preprocess(result.raw_nbytes)
        with span(self.sim, "cluster.ingest_append", logical=logical):
            yield from self._route_subsets(logical, result.subsets)
        self._invalidate_derived(logical)
        return self._receipt(
            logical,
            label_map,
            {tag: len(blob) for tag, blob in result.subsets.items()},
            result.raw_nbytes,
            result.compressed_nbytes,
        )

    def ingest_stream(
        self,
        logical: str,
        trajectory_blob: bytes,
        pdb_text: Optional[str] = None,
        config: Optional[IngestPipelineConfig] = None,
    ) -> Generator:
        """Process: windowed streaming ingest with sharded write-behind.

        The front runs the same bounded producer/consumer pipeline as a
        single middleware; the dispatch stage fans each window's tags out
        to their holder shards as coalesced chunk runs.  Chunk order per
        ``(node, logical, tag)`` follows window order, so every replica
        stores byte-identical chunks.
        """
        config = config or IngestPipelineConfig()
        if pdb_text is not None:
            label_map = self.preprocessor.analyze_structure(pdb_text)
            self._label_maps[logical] = label_map
            appending = False
        else:
            label_map = self.label_map(logical)
            appending = True
        if (
            self._ingest_pipeline is None
            or self._ingest_pipeline.config != config
        ):
            self._ingest_pipeline = IngestPipeline(
                self.sim, config, metrics=self.metrics,
                metric_labels={"shard": "front"},
            )
        windows = self.preprocessor.process_windows(
            label_map, trajectory_blob, config.window_frames
        )
        subset_sizes: Dict[str, int] = {}
        raw_total = [0]

        def dispatch_window(result) -> Generator:
            raw_total[0] += result.raw_nbytes
            for tag, blob in result.subsets.items():
                subset_sizes[tag] = subset_sizes.get(tag, 0) + len(blob)
            yield from self._route_subsets(
                logical,
                result.subsets,
                store_op="store_run" if config.pipelined else "store",
                coalesce=config.coalesce,
            )
            return []

        with span(
            self.sim, "cluster.ingest_stream",
            logical=logical, pipelined=config.pipelined,
        ):
            yield from self._ingest_pipeline.run(
                windows, self._charge_preprocess, dispatch_window
            )
        if appending:
            self._invalidate_derived(logical)
        return self._receipt(
            logical, label_map, subset_sizes, raw_total[0],
            len(trajectory_blob),
        )

    def _invalidate_derived(self, logical: str) -> None:
        for tag in self._catalog.get(logical, ()):
            for name in self._placement.get((logical, tag), ()):
                cache = self.nodes[name].ada.block_cache
                if cache is not None:
                    cache.invalidate(logical=logical, chunk=DERIVED_SUBSET)

    # -- fetch (read) path ---------------------------------------------------------

    def _resolve_tier(
        self, logical: str, tag: str, precision: str
    ) -> Tuple[str, str]:
        """Front-side tier choice: ``(tier, routing tag)``.

        The tier must resolve *before* routing because the ``lod:``
        sibling hashes to its own ring position -- it may live on a
        different node than its base subset.  ``"auto"`` folds in the
        live holders' own pressure signals (cache watermark, fresh fault
        degradation); the chosen tier is then passed to the node
        explicitly so front and node never disagree mid-request.
        """
        precision = validate_precision(precision)
        if precision == "full" or is_lod_tag(tag):
            return "full", tag
        available = (logical, lod_tag(tag)) in self._placement
        if precision == "lod":
            if not available:
                self._counters["lod_fallback"].inc()
                return "full", tag
            return "lod", lod_tag(tag)
        if available and self._under_pressure(logical, tag):
            return "lod", lod_tag(tag)
        return "full", tag

    def _under_pressure(self, logical: str, tag: str) -> bool:
        """Any live holder of the base subset reporting pressure?"""
        for name in self._placement.get((logical, tag), ()):
            node = self.nodes[name]
            if node.alive and node.ada._under_pressure():
                return True
        return False

    def fetch(self, logical: str, tag: str, precision: str = "full") -> Generator:
        """Process: tag-selective read from the best live holder."""
        tier, route_tag = self._resolve_tier(logical, tag, precision)
        if tier == "lod":
            self._counters["lod_routed"].inc()
            obj = yield from self._routed(
                logical, route_tag, "fetch",
                lambda node: node.ada.fetch(logical, tag, precision="lod"),
            )
            return obj
        obj = yield from self._routed(
            logical, tag, "fetch",
            lambda node: node.ada.fetch(logical, tag),
        )
        return obj

    def fetch_chunks(
        self, logical: str, tag: str, chunks, precision: str = "full"
    ) -> Generator:
        """Process: windowed chunk read; sticky routing keeps one shard's
        prefetcher trained on the stream."""
        chunks = list(chunks)
        tier, route_tag = self._resolve_tier(logical, tag, precision)
        if tier == "lod":
            self._counters["lod_routed"].inc()
            objs = yield from self._routed(
                logical, route_tag, "fetch_chunks",
                lambda node: node.ada.fetch_chunks(
                    logical, tag, chunks, precision="lod"
                ),
            )
            return objs
        objs = yield from self._routed(
            logical, tag, "fetch_chunks",
            lambda node: node.ada.fetch_chunks(logical, tag, chunks),
        )
        return objs

    def fetch_all(self, logical: str, allow_degraded: bool = True) -> Generator:
        """Process: read every subset; degrade like a single middleware.

        A subset whose every holder is gone degrades (warning + record)
        when it is expendable -- unreplicated *and* living off the active
        tier on its shard -- otherwise the failure raises.
        """
        tags = self.tags(logical)
        with span(self.sim, "cluster.fetch_all", logical=logical) as sp:
            procs = [
                self.sim.process(
                    self._guarded_fetch(logical, tag),
                    name=f"clusterfetch:{logical}#{tag}",
                )
                for tag in tags
            ]
            results = yield AllOf(self.sim, procs)
            objs: Dict[str, StoredObject] = {}
            for tag, result in zip(tags, results):
                if isinstance(result, FaultError):
                    if allow_degraded and self._downgradable(logical, tag):
                        self.degraded.append((logical, tag, str(result)))
                        self._counters["degraded"].inc()
                        sp.tag(degraded=True)
                        warnings.warn(
                            DegradedReadWarning(
                                f"{logical}: subset {tag!r} unavailable "
                                f"cluster-wide, loading without it ({result})"
                            ),
                            stacklevel=2,
                        )
                        continue
                    raise result
                objs[tag] = result
            return objs

    def _guarded_fetch(self, logical: str, tag: str) -> Generator:
        try:
            obj = yield from self.fetch(logical, tag)
        except FaultError as exc:
            return exc
        return obj

    def _downgradable(self, logical: str, tag: str) -> bool:
        """Expendable = unreplicated (the cluster analog of 'inactive').

        Replication *is* the cluster's active tier: the hot subsets in
        ``replicated_tags`` have R copies precisely because a session
        without them is useless, so their total loss always raises.  An
        unreplicated tag is by policy the MISC data the paper allows a
        degraded session to load without.
        """
        return tag not in self.replicated_tags

    def fetch_merged(self, logical: str, precision: str = "full") -> Generator:
        """Process: scatter-gather -- each tag reads from its own shard,
        frames reassemble at the front."""
        precision = validate_precision(precision)
        tags = self.tags(logical)
        tier = "full"
        if precision != "full":
            # The merged read degrades only as a whole: every base subset
            # needs a sibling, or frame counts would disagree mid-merge.
            available = all(
                (logical, lod_tag(t)) in self._placement for t in tags
            )
            if precision == "lod":
                if available:
                    tier = "lod"
                else:
                    self._counters["lod_fallback"].inc()
            elif available and any(
                self._under_pressure(logical, t) for t in tags
            ):
                tier = "lod"
        read_tags = [lod_tag(t) if tier == "lod" else t for t in tags]
        if tier == "lod":
            self._counters["lod_routed"].inc()
        with span(
            self.sim, "cluster.fetch_merged", logical=logical, tier=tier
        ):
            procs = [
                self.sim.process(
                    self._routed(
                        logical, read_tag, "fetch_merged",
                        lambda node, t=read_tag: node.ada.determinator
                        .retriever.retrieve_chunks(logical, t),
                    ),
                    name=f"clustermerge:{logical}#{read_tag}",
                )
                for read_tag in read_tags
            ]
            results = yield AllOf(self.sim, procs)
        merged = merge_decoded_subsets(
            logical,
            self.label_map(logical),
            dict(zip(tags, results)),
            self.preprocessor.decompressor.decompress,
        )
        # merge_decoded_subsets yields a plain Trajectory; the tier verdict
        # rides along as attributes (mirrors StoredObject.tier/max_error).
        merged.tier = tier
        merged.max_error = (
            lod_max_error(self.preprocessor.lod_precision)
            if tier == "lod"
            else None
        )
        return merged

    # -- metadata --------------------------------------------------------------------

    def label_map(self, logical: str) -> LabelMap:
        if logical not in self._label_maps:
            raise LabelIndexError(f"no label map for {logical!r}")
        return self._label_maps[logical]

    def tags(self, logical: str) -> List[str]:
        if logical not in self._catalog:
            raise LabelIndexError(f"unknown dataset {logical!r}")
        return base_tags(self._catalog[logical])

    def all_tags(self, logical: str) -> List[str]:
        """Every catalogued tag, the LOD family included."""
        if logical not in self._catalog:
            raise LabelIndexError(f"unknown dataset {logical!r}")
        return list(self._catalog[logical])

    def has_lod(self, logical: str, tag: Optional[str] = None) -> bool:
        """Mirror of :meth:`ADA.has_lod` against the cluster catalog."""
        if logical not in self._catalog:
            return False
        if tag is not None:
            return (logical, lod_tag(tag)) in self._placement
        bases = self.tags(logical)
        return bool(bases) and all(
            (logical, lod_tag(t)) in self._placement for t in bases
        )

    def subset_nbytes(self, logical: str, tag: str) -> int:
        return self._any_holder(logical, tag).ada.subset_nbytes(logical, tag)

    def container_nbytes(self, logical: str) -> int:
        # Stored volume counts every representation, LOD siblings included.
        return sum(
            self.subset_nbytes(logical, tag) for tag in self.all_tags(logical)
        )

    def remove(self, logical: str) -> int:
        """Delete a dataset from every holder; returns freed bytes."""
        freed = 0
        for tag in self._catalog.get(logical, []):
            for name in self._placement.pop((logical, tag), []):
                node = self.nodes[name]
                freed += node.ada.plfs.delete_subset(logical, tag)
                if node.ada.block_cache is not None:
                    node.ada.block_cache.invalidate(logical=logical)
        self._catalog.pop(logical, None)
        self._label_maps.pop(logical, None)
        return freed

    # -- rebalancing -------------------------------------------------------------

    def add_node(self, node: ShardNode) -> Generator:
        """Process: join a node and migrate the keys it now owns.

        Only ring-adjacent ranges move (consistent hashing's minimal-
        movement property).  Each moved subset is read from a surviving
        current holder and written to its new owner through the normal
        coalesced chunk-run write path, *then* the placement entry flips
        and the stale copy is dropped -- reads keep resolving against
        the old holders for the whole transfer, so migration overlaps
        serving.  Returns ``{"keys_moved": ..., "bytes_moved": ...}``.
        """
        self._register(node)
        stats = yield from self._rebalance()
        self.events.append(
            {"t": self.sim.now, "event": "add_node", "node": node.name, **stats}
        )
        return stats

    def drain_node(self, name: str) -> Generator:
        """Process: migrate a node's keys away, then remove it from the ring.

        The inverse of :meth:`add_node`: the ring drops the node first
        (so targets no longer include it), every key it held migrates to
        the new owner set, and the node leaves the deployment.
        """
        if name not in self.nodes:
            raise ConfigurationError(f"unknown shard node {name!r}")
        self.ring.remove(name)
        stats = yield from self._rebalance(draining=name)
        node = self.nodes.pop(name)
        node.kill()
        self.events.append(
            {"t": self.sim.now, "event": "drain_node", "node": name, **stats}
        )
        return stats

    def _rebalance(self, draining: Optional[str] = None) -> Generator:
        """Process: converge placement onto the ring's current targets."""
        keys_moved = 0
        bytes_moved = 0
        with span(self.sim, "cluster.rebalance", draining=draining or "") as sp:
            for key in sorted(self._placement):
                logical, tag = key
                current = self._placement[key]
                desired = self.targets(logical, tag)
                additions = [n for n in desired if n not in current]
                for dest_name in additions:
                    moved = yield from self._migrate_subset(
                        logical, tag, current, dest_name
                    )
                    bytes_moved += moved
                if additions:
                    keys_moved += 1
                if current != desired:
                    # Flip routing only after every new copy landed.
                    self._placement[key] = list(desired)
                    self._affinity.pop(key, None)
                    for stale in current:
                        if stale in desired or stale not in self.nodes:
                            continue
                        node = self.nodes[stale]
                        node.ada.plfs.delete_subset(logical, tag)
                        if node.ada.block_cache is not None:
                            node.ada.block_cache.invalidate(logical=logical)
            sp.tag(keys_moved=keys_moved, bytes_moved=bytes_moved)
        self._counters["keys_moved"].inc(keys_moved)
        self._counters["bytes_moved"].inc(bytes_moved)
        return {"keys_moved": keys_moved, "bytes_moved": bytes_moved}

    def _migrate_subset(
        self,
        logical: str,
        tag: str,
        sources: List[str],
        dest_name: str,
    ) -> Generator:
        """Process: copy one subset to ``dest`` via the coalesced write path."""
        source = None
        for name in sources:
            if name in self.nodes and self.nodes[name].alive:
                source = self.nodes[name]
                break
        if source is None:
            raise NodeDownError(
                f"{logical}#{tag}: no live source to migrate from"
            )
        dest = self.nodes[dest_name]
        objs = yield from source.ada.determinator.retriever.retrieve_chunks(
            logical, tag
        )
        entries = [(tag, obj.data) for obj in objs]
        yield from dest.ada.determinator.dispatcher.dispatch_run(
            logical, entries, coalesce=True
        )
        return sum(obj.nbytes for obj in objs)

    # -- reporting ----------------------------------------------------------------

    @property
    def retry_stats(self):
        """Front-side retry counters (shard-gate retries)."""
        if self._retrier is not None:
            return self._retrier.stats
        first = next(iter(self.nodes.values()))
        return first.ada.retry_stats

    def node_loads(self) -> Dict[str, Dict[str, object]]:
        return {
            name: {
                "alive": node.alive,
                "inflight": node.inflight,
                "served_bytes": node.served_bytes,
            }
            for name, node in sorted(self.nodes.items())
        }

    def stats(self) -> Dict[str, object]:
        return {
            "nodes": self.node_loads(),
            "replicas": self.replicas,
            "replicated_tags": list(self.replicated_tags),
            "placement_keys": len(self._placement),
            "failovers": int(self._counters["failovers"].value),
            "kills": int(self._counters["kills"].value),
            "keys_moved": int(self._counters["keys_moved"].value),
            "bytes_moved": int(self._counters["bytes_moved"].value),
            "degraded_reads": len(self.degraded),
            "lod_routed": int(self._counters["lod_routed"].value),
            "lod_fallback": int(self._counters["lod_fallback"].value),
            "prefetch": self.prefetcher.stats(),
        }

    def fault_counters(self) -> Dict[str, object]:
        counters: Dict[str, object] = {
            "retry": self.retry_stats.as_dict(),
            "degraded_reads": len(self.degraded),
            "degraded": list(self.degraded),
            "failovers": int(self._counters["failovers"].value),
        }
        if self.fault_plan is not None:
            counters["injected"] = self.fault_plan.snapshot()
            counters["injected_total"] = self.fault_plan.total()
        return counters

    def _receipt(
        self,
        logical: str,
        label_map: LabelMap,
        subset_sizes: Dict[str, int],
        raw_nbytes: int,
        compressed_nbytes: int,
    ) -> IngestReceipt:
        return IngestReceipt(
            logical=logical,
            label_map=label_map,
            subset_sizes=subset_sizes,
            backends={
                tag: ",".join(self._placement.get((logical, tag), []))
                for tag in subset_sizes
            },
            raw_nbytes=raw_nbytes,
            compressed_nbytes=compressed_nbytes,
        )
