"""Energy integration over a simulation run.

Reproduces the paper's whole-server measurement (Fig. 10d): energy is the
node power envelope integrated over the data-processing turnaround window.
CPU-phase and I/O-phase draws differ (decompression burns the package;
streaming mostly doesn't), which is why the C-XFS path costs more than 3x
ADA's despite moving fewer bytes.
"""

from __future__ import annotations

from typing import Iterable

from repro.cluster.node import ComputeNode, StorageNode

__all__ = ["node_energy", "storage_node_energy", "cluster_energy"]


def node_energy(node: ComputeNode, wall_s: float) -> float:
    """Joules one compute node draws over a window of ``wall_s`` seconds."""
    return node.power.energy(
        wall_s=wall_s,
        cpu_busy_s=node.cpu_busy.union_time(),
        io_busy_s=node.io_busy.union_time(),
    )


def storage_node_energy(node: StorageNode, wall_s: float) -> float:
    """Joules one storage node draws: node envelope + device envelopes."""
    energy = node.power.energy(wall_s=wall_s, cpu_busy_s=0.0, io_busy_s=0.0)
    for dev in node.devices:
        busy = min(dev.busy.union_time(), wall_s)
        energy += dev.spec.power.energy(busy_s=busy, wall_s=wall_s)
    return energy


def cluster_energy(
    compute_nodes: Iterable[ComputeNode],
    storage_nodes: Iterable[StorageNode],
    wall_s: float,
) -> float:
    """Total joules across the machine over the turnaround window."""
    total = sum(node_energy(n, wall_s) for n in compute_nodes)
    total += sum(storage_node_energy(n, wall_s) for n in storage_nodes)
    return total
