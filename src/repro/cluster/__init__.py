"""Cluster substrate: nodes, memory accounting, energy, and sharding.

The fat-node OOM kills of Fig. 10 come from :class:`MemoryLedger` capacity
enforcement; the energy series of Fig. 10d comes from integrating node
power envelopes over the busy intervals the DES records.  The sharding
layer (:mod:`repro.cluster.shard`) partitions the ADA middleware itself
across N nodes behind a single-middleware surface.
"""

from repro.cluster.memory import MemoryLedger
from repro.cluster.node import ComputeNode, CpuSpec, StorageNode
from repro.cluster.energy import cluster_energy, node_energy

_SHARD_EXPORTS = ("HashRing", "ShardNode", "ShardedADA")


def __getattr__(name):
    # Lazy: repro.core.middleware imports repro.cluster.node, and the
    # shard layer imports the middleware back -- importing it eagerly
    # here would close that cycle during the middleware's own import.
    if name in _SHARD_EXPORTS:
        from repro.cluster import shard

        return getattr(shard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ComputeNode",
    "CpuSpec",
    "HashRing",
    "MemoryLedger",
    "ShardNode",
    "ShardedADA",
    "StorageNode",
    "cluster_energy",
    "node_energy",
]
