"""Cluster substrate: nodes, memory accounting, and energy integration.

The fat-node OOM kills of Fig. 10 come from :class:`MemoryLedger` capacity
enforcement; the energy series of Fig. 10d comes from integrating node
power envelopes over the busy intervals the DES records.
"""

from repro.cluster.memory import MemoryLedger
from repro.cluster.node import ComputeNode, CpuSpec, StorageNode
from repro.cluster.energy import cluster_energy, node_energy

__all__ = [
    "ComputeNode",
    "CpuSpec",
    "MemoryLedger",
    "StorageNode",
    "cluster_energy",
    "node_energy",
]
