"""Compute and storage node models.

A :class:`ComputeNode` owns the CPU pipeline (a FIFO resource -- the VMD
data path is single-threaded, as the paper's Flame Graph shows one burst
per phase), a :class:`MemoryLedger`, and per-phase CPU *rates* calibrated in
:mod:`repro.harness.calibration`.  A :class:`StorageNode` groups the
devices and uplink of one storage server.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Generator, List, Optional

from repro.cluster.memory import MemoryLedger
from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.sim import BusyTracker, Resource, Simulator
from repro.storage.device import Device
from repro.storage.power import NodePower

__all__ = ["CpuSpec", "ComputeNode", "StorageNode"]


@dataclass(frozen=True)
class CpuSpec:
    """CPU identity plus the calibrated single-thread processing rates.

    Rates are bytes/second of the quantity named:

    * ``decompress_rate`` -- raw bytes *produced* per second of inflate
      (the C-path tax; drives the 13.4x of Fig. 7b and the >50 % CPU share
      of Fig. 8);
    * ``scan_rate`` -- decompressed bytes scanned per second when filtering
      active data or re-merging ADA subsets (the D-path tax);
    * ``render_rate`` -- active-subset bytes turned into 3D geometry per
      second (both paths pay it).
    """

    name: str
    cores: int
    ghz: float
    decompress_rate: float
    scan_rate: float
    render_rate: float

    def __post_init__(self) -> None:
        if min(self.decompress_rate, self.scan_rate, self.render_rate) <= 0:
            raise ConfigurationError(f"{self.name}: rates must be positive")
        if self.cores < 1:
            raise ConfigurationError(f"{self.name}: needs at least one core")


class ComputeNode:
    """A node running the VMD front end (or ADA's storage-side logic)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu: CpuSpec,
        memory_capacity: float,
        power: NodePower,
        nic: Optional[Link] = None,
    ):
        self.sim = sim
        self.name = name
        self.cpu = cpu
        self.memory = MemoryLedger(memory_capacity)
        self.power = power
        self.nic = nic
        # Single-threaded data path: one pipeline slot regardless of cores.
        self.pipeline = Resource(sim, capacity=1, name=f"{name}:cpu")
        # In-situ analysis slot: the fused ingest stage charges its pass
        # here, on a spare core, so analyzing window k overlaps the data
        # path's decompress/categorize of window k+1 on the same node.
        self.analysis_pipeline = Resource(sim, capacity=1, name=f"{name}:analysis")
        self.cpu_busy = BusyTracker(f"{name}:cpu")
        self.io_busy = BusyTracker(f"{name}:io")

    def cpu_work(self, nbytes: float, rate: float, label: str) -> Generator:
        """Process: occupy the CPU pipeline for ``nbytes / rate`` seconds."""
        if rate <= 0:
            raise ConfigurationError(f"{self.name}: non-positive rate for {label}")
        with self.pipeline.request() as req:
            yield req
            start = self.sim.now
            yield self.sim.timeout(nbytes / rate)
            self.cpu_busy.record(start, self.sim.now, label)

    def decompress(self, raw_nbytes: float) -> Generator:
        """Process: inflate ``raw_nbytes`` of output (paper's phase 1 tax)."""
        yield from self.cpu_work(raw_nbytes, self.cpu.decompress_rate, "decompress")

    def scan(self, nbytes: float, label: str = "scan") -> Generator:
        """Process: scan/filter/merge over decompressed data."""
        yield from self.cpu_work(nbytes, self.cpu.scan_rate, label)

    def render(self, nbytes: float) -> Generator:
        """Process: build 3D geometry from active data (phase 2)."""
        yield from self.cpu_work(nbytes, self.cpu.render_rate, "render")

    def analyze(self, nbytes: float) -> Generator:
        """Process: in-situ analysis pass over decompressed window data.

        Charged at the scan rate (a streaming pass over the decoded
        coordinates) but on the *analysis* slot, not the data-path
        pipeline, so a fused ingest overlaps it with pre-processing.
        """
        if self.cpu.scan_rate <= 0:
            raise ConfigurationError(f"{self.name}: non-positive rate for analyze")
        with self.analysis_pipeline.request() as req:
            yield req
            start = self.sim.now
            yield self.sim.timeout(nbytes / self.cpu.scan_rate)
            self.cpu_busy.record(start, self.sim.now, "analyze")

    def record_io(self, start: float, end: float, label: str = "io") -> None:
        """Note an I/O window for the power model."""
        self.io_busy.record(start, end, label)

    def reset_run(self) -> None:
        """Fresh process semantics between experiment points."""
        self.memory.reset()
        self.cpu_busy.clear()
        self.io_busy.clear()


@dataclass
class StorageNode:
    """A storage server: its devices, uplink, and power envelope."""

    name: str
    devices: List[Device]
    power: NodePower
    link: Optional[Link] = None

    def device_busy_union(self) -> float:
        """Wall-clock seconds any of this node's devices were active."""
        merged = BusyTracker(self.name)
        for dev in self.devices:
            merged.intervals.extend(dev.busy.intervals)
        return merged.union_time()
