"""Node memory accounting with OOM-kill semantics.

VMD's data-processing pipeline allocates several large buffers -- the
compressed file, the decompressed frame array, the filtered active subset
(paper §2.1) -- and the fat-node experiments (Fig. 10) end exactly when
their sum crosses physical memory: "both XFS and ADA (all) are killed by
the system due to memory shortage".  :class:`MemoryLedger` reproduces that:
labeled allocations, capacity enforcement via :class:`OutOfMemoryError`,
and peak tracking (the quantity Figs. 7c/9c/10c plot).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import OutOfMemoryError

__all__ = ["MemoryLedger"]


class MemoryLedger:
    """Labeled allocation tracking against a fixed capacity."""

    def __init__(self, capacity: float):
        if capacity <= 0:
            raise ValueError(f"memory capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self._allocations: Dict[str, float] = {}
        self.peak = 0.0

    @property
    def in_use(self) -> float:
        return sum(self._allocations.values())

    @property
    def available(self) -> float:
        return self.capacity - self.in_use

    def held(self, label: str) -> float:
        """Bytes currently allocated under ``label`` (0 if none)."""
        return self._allocations.get(label, 0.0)

    def allocate(self, label: str, nbytes: float) -> None:
        """Grow ``label`` by ``nbytes``; raises :class:`OutOfMemoryError`
        (the OOM kill) when capacity would be exceeded."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        in_use = self.in_use
        if in_use + nbytes > self.capacity:
            raise OutOfMemoryError(
                requested=nbytes, in_use=in_use, capacity=self.capacity
            )
        self._allocations[label] = self._allocations.get(label, 0.0) + nbytes
        self.peak = max(self.peak, in_use + nbytes)

    def free(self, label: str) -> float:
        """Release everything under ``label``; returns the freed bytes."""
        return self._allocations.pop(label, 0.0)

    def shrink(self, label: str, nbytes: float) -> None:
        """Release part of a labeled allocation (streaming-decompress
        freeing consumed compressed chunks)."""
        held = self._allocations.get(label, 0.0)
        if nbytes > held + 1e-6:
            raise ValueError(
                f"shrink of {nbytes:.3e} B exceeds {held:.3e} B held by {label!r}"
            )
        remaining = held - nbytes
        if remaining <= 1e-9:
            self._allocations.pop(label, None)
        else:
            self._allocations[label] = remaining

    def reset(self) -> None:
        """Free everything and clear the peak (a fresh process)."""
        self._allocations.clear()
        self.peak = 0.0

    def snapshot(self) -> Dict[str, float]:
        return dict(self._allocations)

    def __repr__(self) -> str:
        return (
            f"MemoryLedger(in_use={self.in_use:.3e}, peak={self.peak:.3e}, "
            f"capacity={self.capacity:.3e})"
        )
