"""GPCR workload presets: materialized builders and the paper's sweeps.

Frame counts come straight from the evaluation:

* Table 1 samples three ``.xtc`` files (626 / 1,251 / 5,006 frames);
* Table 2 / Fig. 7 sweep 626..5,006 on the SSD server;
* Fig. 9 extends to 6,256 frames on the cluster;
* Table 6 / Fig. 10 sweep 62,560..5,004,800 on the fat node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import DataPreProcessor, TagPolicy
from repro.core.preprocessor import PreProcessResult
from repro.datagen import MolecularSystem, build_gpcr_system, generate_trajectory
from repro.formats import Trajectory, encode_xtc, write_pdb
from repro.workloads.virtual import SizingModel

__all__ = [
    "TABLE1_FRAME_COUNTS",
    "SSD_SERVER_FRAME_COUNTS",
    "CLUSTER_FRAME_COUNTS",
    "FAT_NODE_FRAME_COUNTS",
    "GpcrWorkload",
    "build_workload",
]

TABLE1_FRAME_COUNTS = (626, 1_251, 5_006)

SSD_SERVER_FRAME_COUNTS = (
    626, 1_251, 1_877, 2_503, 3_129, 3_754, 4_380, 5_006,
)

CLUSTER_FRAME_COUNTS = SSD_SERVER_FRAME_COUNTS + (6_256,)

FAT_NODE_FRAME_COUNTS = (
    62_560, 187_680, 312_800, 437_920, 625_600, 938_400, 1_251_200,
    1_564_000, 1_876_800, 2_502_400, 3_440_800, 4_379_200, 5_004_800,
)


@dataclass
class GpcrWorkload:
    """A materialized small-scale GPCR dataset."""

    system: MolecularSystem
    trajectory: Trajectory
    pdb_text: str
    xtc_blob: bytes

    @property
    def raw_nbytes(self) -> int:
        return self.trajectory.nbytes

    @property
    def compressed_nbytes(self) -> int:
        return len(self.xtc_blob)

    @property
    def compression_ratio(self) -> float:
        return self.compressed_nbytes / self.raw_nbytes

    def preprocess(self, policy: Optional[TagPolicy] = None) -> PreProcessResult:
        """Run ADA's pre-processor over this workload."""
        pre = DataPreProcessor(policy)
        return pre.process_topology(self.system.topology, self.xtc_blob)

    def measured_sizing(self) -> SizingModel:
        """A :class:`SizingModel` calibrated from this workload's real bytes."""
        result = self.preprocess()
        return SizingModel.from_measurement(
            natoms=self.system.natoms,
            raw_nbytes=self.raw_nbytes,
            compressed_nbytes=self.compressed_nbytes,
            protein_nbytes=result.subset_nbytes("p"),
        )


def build_workload(
    natoms: int = 4000,
    nframes: int = 20,
    protein_fraction: float = 0.44,
    seed: int = 0,
    keyframe_interval: int = 100,
) -> GpcrWorkload:
    """Build a materialized GPCR-like workload (system + trajectory + files).

    Defaults stay laptop-friendly; the paper's class mix and compressibility
    are preserved at any size.  ``keyframe_interval`` sets the encoded
    stream's GOF size -- streaming-ingest benches lower it so one blob
    splits into many independently decodable windows.
    """
    system = build_gpcr_system(
        natoms_target=natoms, protein_fraction=protein_fraction, seed=seed
    )
    trajectory = generate_trajectory(system, nframes=nframes, seed=seed + 1)
    return GpcrWorkload(
        system=system,
        trajectory=trajectory,
        pdb_text=write_pdb(system.topology, system.coords),
        xtc_blob=encode_xtc(trajectory, keyframe_interval=keyframe_interval),
    )
