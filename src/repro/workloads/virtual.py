"""Paper-scale dataset sizing.

Tables 2 and 6 fix the byte arithmetic of the GPCR datasets:

* raw (decompressed) volume grows ~522 KB per frame
  (Table 2: 327 MB / 626 frames; Table 6 scales identically);
* the compressed ``.xtc`` is ~0.306x the raw volume (100 MB vs 327 MB);
* the decompressed *protein* subset is ~0.424x the raw volume
  (139 MB vs 327 MB; equivalently 1.386x the compressed size).

A :class:`VirtualDataset` applies those constants to any frame count,
producing the size-only objects the modeled experiments move around.  The
constants can also be *measured* from the real codec + generator
(:meth:`SizingModel.from_measurement`) -- the calibration bench reports
paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.labeler import LabelMap
from repro.errors import ConfigurationError

__all__ = ["SizingModel", "VirtualDataset"]

#: Atoms per frame implied by Table 2: 327 MB / 626 frames / 12 B.
PAPER_NATOMS = 43_530


@dataclass(frozen=True)
class SizingModel:
    """Byte-volume constants of a trajectory corpus."""

    natoms: int = PAPER_NATOMS
    compression_ratio: float = 0.3061  # compressed / raw  (Table 2)
    protein_fraction: float = 0.4244  # protein raw / full raw  (Table 2)

    def __post_init__(self) -> None:
        if not 0 < self.compression_ratio < 1:
            raise ConfigurationError(
                f"compression ratio {self.compression_ratio} outside (0, 1)"
            )
        if not 0 < self.protein_fraction < 1:
            raise ConfigurationError(
                f"protein fraction {self.protein_fraction} outside (0, 1)"
            )
        if self.natoms < 2:
            raise ConfigurationError("need at least two atoms")

    @classmethod
    def paper(cls) -> "SizingModel":
        """The constants Tables 2/6 publish."""
        return cls()

    @classmethod
    def from_measurement(
        cls, natoms: int, raw_nbytes: int, compressed_nbytes: int, protein_nbytes: int
    ) -> "SizingModel":
        """Constants measured from a materialized calibration run."""
        return cls(
            natoms=natoms,
            compression_ratio=compressed_nbytes / raw_nbytes,
            protein_fraction=protein_nbytes / raw_nbytes,
        )

    @property
    def raw_bytes_per_frame(self) -> float:
        return self.natoms * 12.0

    def dataset(self, nframes: int, name: str = "bar.xtc") -> "VirtualDataset":
        return VirtualDataset(name=name, nframes=nframes, model=self)


@dataclass(frozen=True)
class VirtualDataset:
    """Size-only description of one trajectory file at paper scale."""

    name: str
    nframes: int
    model: SizingModel

    def __post_init__(self) -> None:
        if self.nframes < 1:
            raise ConfigurationError("dataset needs at least one frame")

    @property
    def raw_nbytes(self) -> int:
        """Decompressed full volume (the paper's 'Raw Data' column)."""
        return int(self.nframes * self.model.raw_bytes_per_frame)

    @property
    def compressed_nbytes(self) -> int:
        """``.xtc`` volume (the 'Compressed' loaded-size column)."""
        return int(self.raw_nbytes * self.model.compression_ratio)

    @property
    def protein_nbytes(self) -> int:
        """Decompressed protein subset (the 'De-compressed, protein' column)."""
        return int(self.raw_nbytes * self.model.protein_fraction)

    @property
    def misc_nbytes(self) -> int:
        return self.raw_nbytes - self.protein_nbytes

    @property
    def protein_natoms(self) -> int:
        return int(round(self.model.natoms * self.model.protein_fraction))

    def subset_sizes(self) -> dict:
        """Tag -> bytes for ADA's two-way split."""
        return {"p": self.protein_nbytes, "m": self.misc_nbytes}

    def label_map(self) -> LabelMap:
        """A block-layout label map consistent with the sizes."""
        cut = self.protein_natoms
        return LabelMap(
            natoms=self.model.natoms,
            ranges={"p": [(0, cut)], "m": [(cut, self.model.natoms)]},
        )
