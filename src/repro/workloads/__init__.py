"""Workload definitions: the GPCR datasets of the paper's evaluation.

:mod:`repro.workloads.virtual` holds the sizing model that turns a frame
count into the byte volumes of Tables 2 and 6; :mod:`repro.workloads.gpcr`
holds the materialized small-scale workload builder and the frame-count
sweeps of each evaluation section.
"""

from repro.workloads.virtual import SizingModel, VirtualDataset
from repro.workloads.gpcr import (
    CLUSTER_FRAME_COUNTS,
    FAT_NODE_FRAME_COUNTS,
    SSD_SERVER_FRAME_COUNTS,
    TABLE1_FRAME_COUNTS,
    GpcrWorkload,
    build_workload,
)

__all__ = [
    "CLUSTER_FRAME_COUNTS",
    "FAT_NODE_FRAME_COUNTS",
    "GpcrWorkload",
    "SSD_SERVER_FRAME_COUNTS",
    "SizingModel",
    "TABLE1_FRAME_COUNTS",
    "VirtualDataset",
    "build_workload",
]
