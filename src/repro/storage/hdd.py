"""HDD specs.

Table 4: Western Digital 1 TB SATA drives, 126 MB/s max transfer rate.  A
~8 ms average seek is standard for 7200 rpm desktop drives; it is what makes
many-stripe HDD reads measurably slower than one sequential stream, the
effect PLFS's log-structured layout mitigates.
"""

from __future__ import annotations

from repro.faults.plan import FaultSpec
from repro.storage.device import DeviceSpec
from repro.storage.power import DevicePower
from repro.units import TB, mbps

__all__ = ["WD_1TB_HDD", "hdd_fault_profile", "hdd_spec"]


def hdd_spec(
    name: str = "hdd",
    read_mbps: float = 126.0,
    write_mbps: float = 120.0,
    seek_ms: float = 8.0,
    capacity: float = 1 * TB,
    active_w: float = 8.5,
    idle_w: float = 5.0,
) -> DeviceSpec:
    """Parameterized rotating-disk spec (defaults: the paper's WD 1 TB)."""
    return DeviceSpec(
        name=name,
        read_bw=mbps(read_mbps),
        write_bw=mbps(write_mbps),
        seek_latency_s=seek_ms / 1e3,
        capacity=capacity,
        power=DevicePower(active_w=active_w, idle_w=idle_w),
    )


def hdd_fault_profile(scale: float = 1.0) -> FaultSpec:
    """Typical rotating-disk failure envelope for chaos runs.

    Disks fail more often and more slowly than flash: sector remaps and
    retried SATA commands show up as tens-of-milliseconds spikes, and media
    errors surface as transient read failures the host must retry.
    ``scale`` multiplies every rate for stress sweeps.
    """
    return FaultSpec(
        transient_rate=0.01,
        permanent_rate=0.0,
        corruption_rate=0.004,
        short_read_rate=0.002,
        latency_rate=0.03,
        latency_spike_s=30e-3,
    ).scaled(scale)


#: The cluster's storage drive (Table 4): WD 1 TB SATA, 126 MB/s max.
WD_1TB_HDD = hdd_spec(name="WD-1TB-HDD")
