"""Generic storage-device model.

A :class:`DeviceSpec` is a pure function from request shape to service time;
a :class:`Device` is a sim-bound instance with a FIFO queue (one request in
service at a time, as for a real block device at queue depth 1) and a
:class:`~repro.sim.stats.BusyTracker` for the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Generator, Optional

from repro.errors import ConfigurationError, StorageFullError
from repro.faults.plan import FaultPlan, raise_fault
from repro.obs.trace import span
from repro.sim import BusyTracker, Resource, Simulator
from repro.storage.power import DevicePower

__all__ = ["DeviceSpec", "Device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Cost/power envelope of one storage device.

    ``seek_latency_s`` is charged once per request (head movement for HDDs,
    command overhead for SSDs); sequential bandwidth covers the payload.
    """

    name: str
    read_bw: float  # bytes/second, sequential
    write_bw: float  # bytes/second, sequential
    seek_latency_s: float
    capacity: float  # bytes
    power: DevicePower

    def __post_init__(self) -> None:
        if self.read_bw <= 0 or self.write_bw <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth must be positive")
        if self.seek_latency_s < 0 or self.capacity <= 0:
            raise ConfigurationError(f"{self.name}: bad latency/capacity")

    def read_time(self, nbytes: float, requests: int = 1) -> float:
        """Service time for a read of ``nbytes`` issued as ``requests`` ops."""
        return max(requests, 1) * self.seek_latency_s + nbytes / self.read_bw

    def write_time(self, nbytes: float, requests: int = 1) -> float:
        return max(requests, 1) * self.seek_latency_s + nbytes / self.write_bw

    def scaled(self, factor: float, name: Optional[str] = None) -> "DeviceSpec":
        """A spec with bandwidths scaled by ``factor`` (for arrays/ablations)."""
        return replace(
            self,
            name=name or f"{self.name}x{factor:g}",
            read_bw=self.read_bw * factor,
            write_bw=self.write_bw * factor,
        )


class Device:
    """A sim-bound storage device: FIFO service + occupancy accounting."""

    def __init__(self, sim: Simulator, spec: DeviceSpec, name: Optional[str] = None):
        self.sim = sim
        self.spec = spec
        self.name = name or spec.name
        self.resource = Resource(sim, capacity=1, name=self.name)
        self.busy = BusyTracker(self.name)
        self.used_bytes = 0.0
        self.faults: Optional[FaultPlan] = None

    @property
    def free_bytes(self) -> float:
        return self.spec.capacity - self.used_bytes

    # -- fault injection ------------------------------------------------------

    def attach_faults(self, plan: FaultPlan) -> "Device":
        """Route this device's operations through a fault plan."""
        self.faults = plan
        return self

    @property
    def fault_site(self) -> str:
        return f"dev:{self.name}"

    def _fault_gate(self, op: str) -> Generator:
        """Process: injected latency spike / error before service begins."""
        if self.faults is None:
            return
        decision = self.faults.decide(self.fault_site, op)
        if decision.latency_s > 0:
            yield self.sim.timeout(decision.latency_s)
        if decision.error is not None:
            raise_fault(decision.error, self.fault_site, op)

    def allocate(self, nbytes: float) -> None:
        """Reserve capacity for a write (raises when the device is full)."""
        if nbytes > self.free_bytes:
            raise StorageFullError(
                f"{self.name}: {nbytes:.3e} B requested, "
                f"{self.free_bytes:.3e} B free"
            )
        self.used_bytes += nbytes

    def free(self, nbytes: float) -> None:
        self.used_bytes = max(0.0, self.used_bytes - nbytes)

    # -- sim processes --------------------------------------------------------

    def read(self, nbytes: float, requests: int = 1, label: str = "read") -> Generator:
        """DES process: occupy the device for the read's service time."""
        with span(
            self.sim, "device.read",
            device=self.name, nbytes=int(nbytes), requests=requests,
        ):
            yield from self._fault_gate("read")
            yield from self._serve(
                self.spec.read_time(nbytes, requests), label, "read", nbytes
            )

    def write(
        self, nbytes: float, requests: int = 1, label: str = "write"
    ) -> Generator:
        """DES process: occupy the device for the write's service time."""
        with span(
            self.sim, "device.write",
            device=self.name, nbytes=int(nbytes), requests=requests,
        ):
            yield from self._fault_gate("write")
            yield from self._serve(
                self.spec.write_time(nbytes, requests), label, "write", nbytes
            )

    def _serve(
        self, duration: float, label: str, op: str, nbytes: float
    ) -> Generator:
        with self.resource.request() as req:
            yield req
            start = self.sim.now
            yield self.sim.timeout(duration)
            self.busy.record(start, self.sim.now, label)
        self._record_metrics(op, duration, nbytes)

    def _record_metrics(self, op: str, duration: float, nbytes: float) -> None:
        """Per-device counters/histograms on the sim-attached registry.

        Pure bookkeeping (no simulated cost): attaching observability can
        never change event order or timing.
        """
        registry = getattr(self.sim, "metrics", None)
        if registry is None:
            return
        registry.counter("device_ops_total", device=self.name, op=op).inc()
        registry.counter(
            "device_bytes_total", device=self.name, op=op
        ).inc(int(nbytes))
        registry.histogram(
            "device_service_seconds", device=self.name, op=op
        ).observe(duration)
