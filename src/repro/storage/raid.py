"""RAID array composition.

The fat-node server (Table 5) runs ten WD 1 TB HDDs in RAID 50: two RAID-5
spans of five drives striped together, i.e. eight data spindles.  We model
an array as a single composite :class:`DeviceSpec` whose bandwidth is the
aggregate of its data spindles -- adequate for streaming workloads, which
is all the VMD pipeline issues.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.storage.device import DeviceSpec
from repro.storage.power import DevicePower

__all__ = ["raid0_spec", "raid50_spec"]


def raid0_spec(member: DeviceSpec, n_members: int, name: str = None) -> DeviceSpec:
    """Pure striping: bandwidth and capacity scale with every member."""
    if n_members < 2:
        raise ConfigurationError("RAID 0 needs at least two members")
    return DeviceSpec(
        name=name or f"raid0-{n_members}x{member.name}",
        read_bw=member.read_bw * n_members,
        write_bw=member.write_bw * n_members,
        seek_latency_s=member.seek_latency_s,
        capacity=member.capacity * n_members,
        power=DevicePower(
            active_w=member.power.active_w * n_members,
            idle_w=member.power.idle_w * n_members,
        ),
    )


def raid50_spec(
    member: DeviceSpec,
    n_members: int = 10,
    spans: int = 2,
    name: str = None,
) -> DeviceSpec:
    """RAID 50: ``spans`` RAID-5 groups striped together.

    One parity spindle per span: data bandwidth and capacity come from
    ``n_members - spans`` drives.  Write bandwidth is additionally derated
    for the read-modify-write parity penalty.
    """
    if spans < 2:
        raise ConfigurationError("RAID 50 needs at least two spans")
    if n_members % spans != 0:
        raise ConfigurationError(
            f"{n_members} members do not divide into {spans} spans"
        )
    if n_members // spans < 3:
        raise ConfigurationError("each RAID-5 span needs at least three drives")
    data_drives = n_members - spans
    return DeviceSpec(
        name=name or f"raid50-{n_members}x{member.name}",
        read_bw=member.read_bw * data_drives,
        write_bw=member.write_bw * data_drives * 0.5,  # parity RMW penalty
        seek_latency_s=member.seek_latency_s,
        capacity=member.capacity * data_drives,
        power=DevicePower(
            active_w=member.power.active_w * n_members,
            idle_w=member.power.idle_w * n_members,
        ),
    )
