"""Power envelopes for devices and nodes.

The paper measures whole-server energy on the fat node with a Modbus power
meter (Fig. 10d) and reports 400 W average per cluster node (Table 4).  We
model node power as ``idle + sum(active component draws)`` and integrate over
busy intervals recorded by the DES -- a standard first-order server energy
model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["DevicePower", "NodePower"]


@dataclass(frozen=True)
class DevicePower:
    """Active/idle draw of one storage device, in watts."""

    active_w: float
    idle_w: float

    def __post_init__(self) -> None:
        if self.active_w < self.idle_w or self.idle_w < 0:
            raise ConfigurationError(
                f"device power active={self.active_w} idle={self.idle_w} invalid"
            )

    def energy(self, busy_s: float, wall_s: float) -> float:
        """Joules consumed over ``wall_s`` with ``busy_s`` of activity."""
        if busy_s > wall_s + 1e-9:
            raise ConfigurationError("busy time exceeds wall time")
        return self.active_w * busy_s + self.idle_w * (wall_s - busy_s)


@dataclass(frozen=True)
class NodePower:
    """Power envelope of a whole node (CPU package + platform)."""

    idle_w: float
    cpu_active_w: float  # extra draw while the CPU pipeline is busy
    io_active_w: float = 0.0  # extra draw while disks/NICs are streaming

    def __post_init__(self) -> None:
        if min(self.idle_w, self.cpu_active_w, self.io_active_w) < 0:
            raise ConfigurationError("negative power draw")

    @property
    def peak_w(self) -> float:
        return self.idle_w + self.cpu_active_w + self.io_active_w

    def energy(self, wall_s: float, cpu_busy_s: float, io_busy_s: float = 0.0) -> float:
        """Joules consumed by the node over a window of ``wall_s`` seconds."""
        if wall_s < 0:
            raise ConfigurationError("negative wall time")
        cpu_busy_s = min(cpu_busy_s, wall_s)
        io_busy_s = min(io_busy_s, wall_s)
        return (
            self.idle_w * wall_s
            + self.cpu_active_w * cpu_busy_s
            + self.io_active_w * io_busy_s
        )
