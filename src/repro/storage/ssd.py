"""SSD specs.

Table 4 lists Plextor 256 GB PCIe drives at 3000 MB/s peak read / 1000 MB/s
peak write; the SSD server (Section 4.1) uses 256 GB NVMe drives with the
same envelope.  Command overhead is ~80 us, three orders of magnitude below
an HDD seek -- which is why the paper finds transfer time becoming
irrelevant next to decompression.
"""

from __future__ import annotations

from repro.faults.plan import FaultSpec
from repro.storage.device import DeviceSpec
from repro.storage.power import DevicePower
from repro.units import GB, mbps

__all__ = ["NVME_SSD_256GB", "PLEXTOR_SSD_256GB", "ssd_fault_profile", "ssd_spec"]


def ssd_spec(
    name: str = "ssd",
    read_mbps: float = 3000.0,
    write_mbps: float = 1000.0,
    latency_us: float = 80.0,
    capacity: float = 256 * GB,
    active_w: float = 6.0,
    idle_w: float = 1.5,
) -> DeviceSpec:
    """Parameterized flash-device spec (defaults: the paper's PCIe drives)."""
    return DeviceSpec(
        name=name,
        read_bw=mbps(read_mbps),
        write_bw=mbps(write_mbps),
        seek_latency_s=latency_us / 1e6,
        capacity=capacity,
        power=DevicePower(active_w=active_w, idle_w=idle_w),
    )


def ssd_fault_profile(scale: float = 1.0) -> FaultSpec:
    """Typical flash failure envelope for chaos runs.

    Flash fails rarely and fast: occasional sub-millisecond latency spikes
    (garbage collection stalls) and a low transient error rate, with
    corruption caught by on-device ECC before it reaches the host most of
    the time.  ``scale`` multiplies every rate for stress sweeps.
    """
    return FaultSpec(
        transient_rate=0.002,
        permanent_rate=0.0,
        corruption_rate=0.001,
        short_read_rate=0.0005,
        latency_rate=0.01,
        latency_spike_s=0.5e-3,
    ).scaled(scale)


#: The cluster's flash drive (Table 4): Plextor 256 GB PCIe.
PLEXTOR_SSD_256GB = ssd_spec(name="Plextor-256GB-SSD")

#: The SSD server's drive (Section 4.1): 256 GB NVMe.
NVME_SSD_256GB = ssd_spec(name="NVMe-256GB-SSD")
