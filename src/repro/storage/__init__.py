"""Storage-device models.

Device *specs* are pure cost models (seek latency + bandwidth + power) taken
from the paper's published hardware tables; *devices* bind a spec to the DES
kernel so concurrent transfers queue on the device and busy intervals feed
the energy model.
"""

from repro.storage.device import Device, DeviceSpec
from repro.storage.hdd import WD_1TB_HDD, hdd_spec
from repro.storage.ssd import NVME_SSD_256GB, PLEXTOR_SSD_256GB, ssd_spec
from repro.storage.raid import raid0_spec, raid50_spec
from repro.storage.power import DevicePower, NodePower

__all__ = [
    "Device",
    "DeviceSpec",
    "DevicePower",
    "NodePower",
    "NVME_SSD_256GB",
    "PLEXTOR_SSD_256GB",
    "WD_1TB_HDD",
    "hdd_spec",
    "raid0_spec",
    "raid50_spec",
    "ssd_spec",
]
