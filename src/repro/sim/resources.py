"""Contended resources for the DES kernel.

:class:`Resource` is a FIFO multi-server resource (capacity ``n`` means at
most ``n`` concurrent holders).  Storage devices, CPU cores, and network
links each wrap a :class:`Resource` so that concurrent transfers queue
realistically instead of magically overlapping.

Requests are context managers so modeling code can write::

    with device.resource.request() as req:
        yield req
        yield sim.timeout(device.access_time(nbytes))
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator

__all__ = ["Request", "Resource"]


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted."""

    __slots__ = ("resource",)

    def __init__(self, sim: Simulator, resource: "Resource"):
        super().__init__(sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """FIFO resource with integer capacity.

    ``request()`` returns a :class:`Request` event that fires when one of the
    ``capacity`` slots is granted.  ``release()`` frees a slot and grants the
    next queued request at the current simulation time.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        self._queue: Deque[Request] = deque()
        self._users: int = 0
        # Diagnostics.
        self.total_requests = 0
        self.peak_queue_len = 0

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._users

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        req = Request(self.sim, self)
        self.total_requests += 1
        if self._users < self.capacity:
            self._users += 1
            req.succeed(req)
        else:
            self._queue.append(req)
            self.peak_queue_len = max(self.peak_queue_len, len(self._queue))
        return req

    def release(self, request: Optional[Request] = None) -> None:
        """Free a slot (idempotent per request: releasing an unfired queued
        request just cancels it)."""
        if request is not None and not request.triggered:
            # Cancel a still-queued request.
            try:
                self._queue.remove(request)
            except ValueError:
                pass
            return
        if self._users <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            nxt = self._queue.popleft()
            nxt.succeed(nxt)  # hand the slot straight over
        else:
            self._users -= 1
