"""Discrete-event simulation kernel.

A small, dependency-free DES engine in the style of SimPy: generator-based
processes communicate through :class:`~repro.sim.engine.Event` objects and
contend for :class:`~repro.sim.resources.Resource` instances.  The cluster,
storage-device, and network models are all built on this kernel so that
striped parallel reads, dual-pool transfers, and pipeline overlap are modeled
by *actual concurrency* in simulated time rather than ad-hoc closed-form
formulas.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.resources import Request, Resource
from repro.sim.stats import BusyTracker, Counter, TimeSeries
from repro.sim.store import Store

__all__ = [
    "AllOf",
    "AnyOf",
    "BusyTracker",
    "Counter",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "Simulator",
    "Store",
    "TimeSeries",
    "Timeout",
]
