"""Measurement primitives for simulation runs.

:class:`BusyTracker` records the intervals during which a component (CPU,
disk, NIC) is active; the cluster energy model integrates these intervals
against per-component active power to reproduce the paper's Fig. 10d energy
measurements.  :class:`TimeSeries` and :class:`Counter` are small helpers for
harness-level metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["BusyTracker", "Counter", "TimeSeries"]


@dataclass
class BusyTracker:
    """Accumulates labeled busy intervals for one component.

    Intervals may be recorded out of order but must not be negative.  Overlap
    is permitted (a striped device doing two concurrent transfers) -- the
    :meth:`busy_time` accumulator counts *work* seconds, while
    :meth:`union_time` merges overlaps to get wall-clock occupancy, which is
    what the power model wants.
    """

    name: str = "component"
    intervals: List[Tuple[float, float, str]] = field(default_factory=list)

    def record(self, start: float, end: float, label: str = "") -> None:
        """Record activity on ``[start, end]`` tagged with ``label``."""
        if end < start:
            raise ValueError(f"negative interval [{start}, {end}] on {self.name!r}")
        self.intervals.append((float(start), float(end), label))

    def busy_time(self, label: str = None) -> float:
        """Total work-seconds recorded (optionally for one label only)."""
        return sum(
            end - start
            for start, end, lab in self.intervals
            if label is None or lab == label
        )

    def union_time(self) -> float:
        """Wall-clock seconds during which the component was active at all."""
        if not self.intervals:
            return 0.0
        spans = sorted((s, e) for s, e, _ in self.intervals)
        total = 0.0
        cur_s, cur_e = spans[0]
        for s, e in spans[1:]:
            if s > cur_e:
                total += cur_e - cur_s
                cur_s, cur_e = s, e
            else:
                cur_e = max(cur_e, e)
        total += cur_e - cur_s
        return total

    def by_label(self) -> Dict[str, float]:
        """Work-seconds per label."""
        out: Dict[str, float] = {}
        for start, end, label in self.intervals:
            out[label] = out.get(label, 0.0) + (end - start)
        return out

    def last_end(self) -> float:
        """Latest interval end (0.0 if nothing recorded)."""
        return max((end for _, end, _ in self.intervals), default=0.0)

    def clear(self) -> None:
        self.intervals.clear()


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    name: str = "counter"
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


@dataclass
class TimeSeries:
    """(time, value) samples with simple reducers."""

    name: str = "series"
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def sample(self, time: float, value: float) -> None:
        self.samples.append((float(time), float(value)))

    def max(self) -> float:
        return max((v for _, v in self.samples), default=0.0)

    def last(self) -> float:
        return self.samples[-1][1] if self.samples else 0.0

    def values(self) -> List[float]:
        return [v for _, v in self.samples]
