"""Core discrete-event simulation engine.

The engine is a classic event-heap design.  :class:`Simulator` owns a heap of
``(time, seq, event)`` entries; :class:`Process` wraps a Python generator and
advances it each time the event it is waiting on fires.  The public surface
mirrors SimPy closely enough that the modeling code reads like standard DES
code, but the implementation is intentionally small and fully deterministic
(ties broken by insertion order).

Typical usage::

    sim = Simulator()

    def transfer(sim, link, nbytes):
        with link.request() as req:
            yield req
            yield sim.timeout(nbytes / link.bandwidth)

    sim.process(transfer(sim, link, 1 << 20))
    sim.run()
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
]


class Interrupt(Exception):
    """Thrown into a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        self.cause = cause
        super().__init__(cause)


class Event:
    """A one-shot occurrence in simulated time.

    Events start *pending*; :meth:`succeed` or :meth:`fail` triggers them,
    after which every subscribed callback runs at the current simulation
    time.  Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_cancelled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> "Event":
        """Abandon a scheduled firing: a cancelled event's heap entry is
        skipped without advancing time or running callbacks.

        This is how a race winner discards the loser (e.g. a completed
        operation cancelling its unexpired deadline) so the stale entry
        does not drag the clock to its fire time when the heap drains.
        """
        self._cancelled = True
        self.callbacks = []
        return self

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self._triggered = True
        self.sim._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as a failure; waiters see ``exception`` raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self._triggered = True
        self.sim._schedule(self, delay=0.0)
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = float(delay)
        self._value = value
        self._ok = True
        self._triggered = True  # scheduled immediately, fires at now+delay
        sim._schedule(self, delay=self.delay)


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event triggers, its value is sent back into the generator (or its
    exception thrown in, if it failed).  The process-as-event triggers with
    the generator's return value, so processes can wait on each other.
    """

    __slots__ = ("generator", "_waiting_on", "name", "_trace_ctx", "_span_stack")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(f"process target is not a generator: {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Observability context: a process spawned while a trace span is
        # open inherits that span as its parent (see repro.obs.trace); the
        # per-process span stack keeps nesting correct across interleaved
        # processes.  Both stay None/empty with no tracer attached.
        tracer = sim.tracer
        self._trace_ctx = tracer.current() if tracer is not None else None
        self._span_stack: List[Any] = []
        # Bootstrap: resume once at the current time.
        boot = Event(sim)
        boot.callbacks.append(self._resume)
        boot.succeed(None)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        wake = Event(self.sim)
        wake.callbacks.append(lambda ev: self._step(throw=Interrupt(cause)))
        wake.succeed(None)

    # -- internal machinery -------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(send=event.value)
        else:
            self._step(throw=event.value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        # Mark this process active while its generator chain runs, so the
        # tracer (and any other ambient-context consumer) can attribute
        # work -- including spans opened deep inside ``yield from`` chains
        # -- to the right process.
        previous_active = self.sim._active_process
        self.sim._active_process = self
        try:
            self._step_inner(send=send, throw=throw)
        finally:
            self.sim._active_process = previous_active

    def _step_inner(
        self, send: Any = None, throw: Optional[BaseException] = None
    ) -> None:
        try:
            if throw is not None:
                target = self.generator.throw(throw)
            else:
                target = self.generator.send(send)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            if not self._triggered:
                self.fail(exc)
                if not self.callbacks:
                    # Nobody is watching this process: surface the error.
                    raise
            return
        if not isinstance(target, Event):
            self.generator.throw(
                SimulationError(f"process {self.name!r} yielded non-event {target!r}")
            )
            return
        self._waiting_on = target
        if target.triggered and not isinstance(target, Timeout):
            # Already-fired event: resume immediately (same timestamp).
            wake = Event(self.sim)
            wake.callbacks.append(lambda ev: self._resume(target))
            wake.succeed(None)
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = 0
        for ev in self.events:
            if not isinstance(ev, Event):
                raise SimulationError(f"condition over non-event {ev!r}")
        for ev in self.events:
            if ev.triggered and not isinstance(ev, Timeout):
                self._observe(ev)
            else:
                self._pending += 1
                ev.callbacks.append(self._observe)
        if not self.events and not self._triggered:
            self.succeed([])

    def _observe(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired (a barrier).

    The value is the list of constituent values in constructor order.  If any
    constituent fails, the barrier fails with that exception.
    """

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending <= 0 and all(ev.triggered for ev in self.events):
            self.succeed([ev.value for ev in self.events])


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires, with that event's value."""

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed(event.value)


class Simulator:
    """Event-heap discrete-event simulator.

    Time is a ``float`` in seconds starting at 0.  All scheduling is
    deterministic: simultaneous events run in scheduling order.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List = []
        self._seq = itertools.count()
        self._processed = 0
        #: Observability hooks (see :mod:`repro.obs`): a Tracer attaches
        #: itself here, a MetricsRegistry may be attached by the deployment
        #: (ADA does); ``_active_process`` is maintained by Process._step.
        self.tracer: Optional[Any] = None
        self.metrics: Optional[Any] = None
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far (diagnostics)."""
        return self._processed

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start ``generator`` as a process; returns the process-as-event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling / main loop ----------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), event))

    def run(self, until: Optional[float] = None) -> float:
        """Dispatch events until the heap drains (or ``until`` is reached).

        Returns the final simulation time.
        """
        while self._heap:
            when, _, event = self._heap[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            if event._cancelled:
                continue
            if when < self._now - 1e-12:
                raise SimulationError("event scheduled in the past")
            self._now = max(self._now, when)
            self._processed += 1
            callbacks, event.callbacks = event.callbacks, []
            for callback in callbacks:
                callback(event)
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_process(self, generator: Generator, name: Optional[str] = None) -> Any:
        """Convenience: run ``generator`` to completion and return its value.

        Raises whatever the process raised.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} never completed (deadlock: "
                f"{len(self._heap)} events pending)"
            )
        if not proc.ok:
            raise proc.value
        return proc.value
