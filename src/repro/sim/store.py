"""Bounded FIFO channel for producer/consumer processes.

A :class:`Store` lets one DES process stream items to another with
back-pressure: ``put`` blocks when the buffer is full, ``get`` blocks when
it is empty.  It is the primitive for modeling *pipelined* staging --
e.g. a disk reading chunks while the NIC ships the previous ones -- as
opposed to the sequential store-and-forward the scenario pipelines use
(see the pipelining ablation for why that simplification is safe).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator

__all__ = ["Store"]


class Store:
    """Bounded FIFO of items exchanged between processes."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("store capacity must be >= 1")
        self.sim = sim
        self.capacity = int(capacity)
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque = deque()  # (event, item) pairs
        self.puts = 0
        self.gets = 0

    @property
    def level(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Generator:
        """Process: enqueue ``item``; waits while the buffer is full."""
        if self._getters:
            # A consumer is already waiting: hand over directly.
            getter = self._getters.popleft()
            getter.succeed(item)
            self.puts += 1
            return
        if len(self._items) < self.capacity:
            self._items.append(item)
            self.puts += 1
            return
        event = Event(self.sim)
        self._putters.append((event, item))
        yield event
        self.puts += 1

    def get(self) -> Generator:
        """Process: dequeue the oldest item; waits while empty.

        Use as ``item = yield from store.get()``.
        """
        if self._items:
            item = self._items.popleft()
            self._admit_waiting_putter()
            self.gets += 1
            return item
        if self._putters:
            event, item = self._putters.popleft()
            event.succeed(None)
            self.gets += 1
            return item
        event = Event(self.sim)
        self._getters.append(event)
        item = yield event
        self.gets += 1
        return item

    def _admit_waiting_putter(self) -> None:
        if self._putters and len(self._items) < self.capacity:
            event, item = self._putters.popleft()
            self._items.append(item)
            event.succeed(None)
