#!/usr/bin/env python
"""A complete study workflow: the biologist's day, end to end.

Simulate a GPCR campaign (equilibration + production phases), ingest into
ADA, load *only the protein* with a tag-selective read, then run the
standard analysis battery -- RMSD convergence, per-atom RMSF, radius of
gyration, native-contact stability -- and emit a CSV of the time series.

Run:  python examples/analysis_workflow.py
"""

import csv
import io

import numpy as np

from repro import ADA, Simulator, VMDSession, build_gpcr_system
from repro.analysis import (
    gyration_radius,
    native_contact_fraction,
    rmsd_trajectory,
    rmsf,
)
from repro.formats import write_pdb
from repro.fs import LocalFS
from repro.mdengine import LangevinEngine, SimulationCampaign
from repro.storage import NVME_SSD_256GB, WD_1TB_HDD
from repro.units import fmt_bytes
from repro.vmd import select


def main() -> None:
    # 1. The campaign: one structure, two motion phases (paper §2.1).
    system = build_gpcr_system(natoms_target=4000, seed=33)
    pdb_text = write_pdb(system.topology, system.coords)
    campaign = SimulationCampaign(engine=LangevinEngine(system, seed=34))
    campaign.run_phase("equilibration", nframes=10, stride=20)
    campaign.run_phase("production", nframes=30, stride=20)

    # 2. Both phases ingest under one structure analysis.
    sim = Simulator()
    ada = ADA(
        sim,
        backends={
            "ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd"),
            "hdd": LocalFS(sim, WD_1TB_HDD, name="hdd"),
        },
    )
    sim.run_process(
        ada.ingest("prod.xtc", pdb_text, campaign.phase_blob("production"))
    )
    sim.run_process(
        ada.ingest("equi.xtc", pdb_text, campaign.phase_blob("equilibration"))
    )

    # 3. Protein-only load of the production phase.
    session = VMDSession(ada=ada)
    session.mol_new(pdb_text, name="production-protein")
    load = session.mol_addfile_tag("prod.xtc", "p")
    traj = load.trajectory
    print(
        f"loaded {traj.natoms} protein atoms x {traj.nframes} frames "
        f"({fmt_bytes(load.source_nbytes)} moved, zero decompression)"
    )

    # 4. The analysis battery.
    series = rmsd_trajectory(traj)
    fluct = rmsf(traj)
    rg = gyration_radius(traj)
    ca = select(session.top.loaded_topology(), "name CA")
    q = native_contact_fraction(traj, cutoff=10.0, selection=ca)

    print(f"RMSD:   drifts to {series[-1]:.2f} A by frame {traj.nframes - 1}")
    print(f"RMSF:   median {np.median(fluct):.2f} A over {len(fluct)} atoms")
    print(f"Rg:     {rg.mean():.2f} +/- {rg.std():.2f} A (stable fold)")
    print(f"Q(t):   native CA contacts stay at {100 * q.min():.0f}-100%")

    # 5. Machine-readable time series, like any real study would keep.
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["frame", "time_ps", "rmsd_A", "rg_A", "q_native"])
    for i in range(traj.nframes):
        writer.writerow(
            [i, f"{traj.times_ps[i]:.1f}", f"{series[i]:.3f}",
             f"{rg[i]:.3f}", f"{q[i]:.3f}"]
        )
    print(f"\ntime-series CSV ({buffer.tell()} bytes), first lines:")
    for line in buffer.getvalue().splitlines()[:4]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
