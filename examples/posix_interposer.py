#!/usr/bin/env python
"""ADA as a transparent file-system layer (paper Fig. 4, §3.4).

An MD application knows nothing about ADA: it just writes ``foo.pdb`` and
``bar.xtc`` to a mount point through ordinary open/write/close.  The
interposer traps the target-application files at close, runs the
storage-side pre-processing, and later serves tag-selective reads.  As a
finale, the loaded protein frame is rasterized to an actual image.

Run:  python examples/posix_interposer.py
"""

import pathlib

from repro import ADA, Simulator, VMDSession, build_workload
from repro.fs import ADAInterposer, LocalFS
from repro.storage import NVME_SSD_256GB, WD_1TB_HDD
from repro.units import fmt_bytes
from repro.vmd.raster import render_frame_image


def main() -> None:
    workload = build_workload(natoms=6000, nframes=20, seed=29)
    sim = Simulator()
    ada = ADA(
        sim,
        backends={
            "ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd"),
            "hdd": LocalFS(sim, WD_1TB_HDD, name="hdd"),
        },
    )
    vfs = ADAInterposer(sim, ada, ada_mount="/mnt/ada")

    # The "application" writes its outputs like to any file system.
    with vfs.open("/mnt/ada/run7/foo.pdb", "w") as fh:
        fh.write(workload.pdb_text.encode())
    with vfs.open("/mnt/ada/run7/bar.xtc", "w") as fh:
        fh.write(workload.xtc_blob)
    with vfs.open("/mnt/ada/run7/job.log", "w") as fh:
        fh.write(b"simulation completed\n")  # NOT trapped

    receipt = vfs.trapped["run7/bar.xtc"]
    print("trapped at close: run7/bar.xtc")
    for tag, size in sorted(receipt.subset_sizes.items()):
        print(f"  subset {tag!r}: {fmt_bytes(size)} -> {receipt.backends[tag]}")
    print(f"job.log passed through untouched: "
          f"{vfs.exists('/mnt/ada/run7/job.log')}")

    # Tag-selective read through the same path namespace.
    protein_blob = vfs.read_tag("/mnt/ada/run7/bar.xtc", "p")
    print(f"\nread tag 'p': {fmt_bytes(len(protein_blob))} "
          f"(vs {fmt_bytes(workload.raw_nbytes)} raw)")

    # Load, render, and write an actual picture.
    session = VMDSession(ada=ada)
    session.mol_new(workload.pdb_text, name="trapped-protein")
    session.mol_addfile_tag("run7/bar.xtc", "p")
    canvas, pgm = render_frame_image(session.top, iframe=0, width=200, height=150)
    out = pathlib.Path("protein_frame.pgm")
    out.write_text(pgm)
    lit = int((canvas > 0).sum())
    print(f"rasterized frame 0: {canvas.shape[1]}x{canvas.shape[0]}, "
          f"{lit} lit pixels -> {out}")


if __name__ == "__main__":
    main()
