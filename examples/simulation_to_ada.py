#!/usr/bin/env python
"""A running MD simulation streaming into ADA, analyzed live.

The full upstream story of Fig. 3b: a Langevin MD engine integrates a
GPCR-in-membrane system and emits ``.xtc`` chunks as it goes; each chunk
streams into ADA, which splits it storage-side; the biologist then loads
only the protein subset and computes RMSD/RMSF/Rg on it.

Run:  python examples/simulation_to_ada.py
"""

import numpy as np

from repro import ADA, Simulator, VMDSession, build_gpcr_system
from repro.analysis import gyration_radius, rmsd_trajectory, rmsf
from repro.formats import write_pdb
from repro.fs import LocalFS
from repro.mdengine import ChunkedXtcWriter, LangevinEngine
from repro.storage import NVME_SSD_256GB, WD_1TB_HDD
from repro.units import fmt_bytes


def main() -> None:
    system = build_gpcr_system(natoms_target=5000, seed=23)
    pdb_text = write_pdb(system.topology, system.coords)
    engine = LangevinEngine(system, dt_ps=0.002, seed=24)
    print(f"simulating {system.topology!r}")

    sim = Simulator()
    ada = ADA(
        sim,
        backends={
            "ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd"),
            "hdd": LocalFS(sim, WD_1TB_HDD, name="hdd"),
        },
    )

    # Chunk 0 establishes the dataset (structure analysis happens once)...
    boot = ChunkedXtcWriter(chunk_frames=10)
    for frame in engine.sample(10, stride=25):
        boot.add_frame(frame)
    boot.flush()
    sim.run_process(
        ada.ingest("live.xtc", pdb_text, next(iter(boot.chunks.values())))
    )

    # ...then the engine keeps running, streaming chunks into ADA.
    def pump(name, blob):
        receipt = sim.run_process(ada.ingest_append("live.xtc", blob))
        print(
            f"  streamed {name}: +{fmt_bytes(sum(receipt.subset_sizes.values()))} "
            f"raw split storage-side"
        )

    writer = ChunkedXtcWriter(basename="live", chunk_frames=10, on_chunk=pump)
    for frame in engine.sample(30, stride=25):
        writer.add_frame(frame)
    writer.flush()

    # Tag-selective load of everything simulated so far.
    session = VMDSession(ada=ada)
    session.mol_new(pdb_text, name="live-protein")
    load = session.mol_addfile_tag("live.xtc", "p")
    traj = load.trajectory
    print(
        f"\nloaded protein subset: {traj.natoms} atoms x {traj.nframes} frames "
        f"({fmt_bytes(load.source_nbytes)})"
    )

    # The analysis the biologist actually wanted.
    series = rmsd_trajectory(traj)
    fluct = rmsf(traj)
    rg = gyration_radius(traj)
    print(f"RMSD vs frame 0:  max {series.max():.2f} A (drifts as it samples)")
    print(f"RMSF:             median {np.median(fluct):.2f} A, "
          f"most mobile atom {fluct.max():.2f} A")
    print(f"radius of gyration: {rg.mean():.1f} +/- {rg.std():.2f} A")


if __name__ == "__main__":
    main()
