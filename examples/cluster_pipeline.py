#!/usr/bin/env python
"""The nine-node cluster experiment (paper §4.2 / Fig. 9), modeled.

Sweeps frame counts over the four Table-3 scenarios on the hybrid
OrangeFS cluster and prints the retrieval / turnaround / memory series the
paper plots, plus the headline ratios.

Run:  python examples/cluster_pipeline.py
"""

from repro import run_point, run_sweep, series_pivot, small_cluster
from repro.harness.report import Table
from repro.workloads import CLUSTER_FRAME_COUNTS


def main() -> None:
    platform = small_cluster()
    print(platform.description, "\n")
    params = Table(["parameter", "value"], title="Table 4-style parameters")
    for name, value in platform.parameters():
        params.add_row(name, value)
    print(params, "\n")

    results = run_sweep(small_cluster, CLUSTER_FRAME_COUNTS)
    for metric in ("retrieval", "turnaround", "memory"):
        print(series_pivot(results, metric, fs_label="PVFS"), "\n")

    d = run_point(small_cluster, "D-trad", 6_256)
    a = run_point(small_cluster, "D-ada-all", 6_256)
    p = run_point(small_cluster, "D-ada-p", 6_256)
    print("headlines @6,256 frames:")
    print(
        f"  D-ADA(all) retrieval beats D-PVFS by "
        f"{d.retrieval_s / a.retrieval_s:.1f}x   (paper: >2x)"
    )
    print(
        f"  D-PVFS turnaround is {d.turnaround_s / p.turnaround_s:.1f}x "
        f"D-ADA(protein)          (paper: 9x)"
    )


if __name__ == "__main__":
    main()
