#!/usr/bin/env python
"""Quickstart: ADA end-to-end on real bytes.

Builds a synthetic GPCR workload, stands up ADA over an SSD-backed and an
HDD-backed file system, ingests the dataset once (storage-side
decompress + categorize + dispatch), then compares the traditional VMD
load against a tag-selective ADA load.

Run:  python examples/quickstart.py
"""

from repro import ADA, Simulator, VMDSession, build_workload
from repro.core import PlacementPolicy
from repro.fs import LocalFS
from repro.storage import NVME_SSD_256GB, WD_1TB_HDD
from repro.units import fmt_bytes, fmt_seconds
from repro.vmd import Animator


def main() -> None:
    # 1. A synthetic GPCR-in-membrane system: ~44 % protein by volume,
    #    like the paper's CB1 datasets (Table 1).
    workload = build_workload(natoms=8000, nframes=40, seed=7)
    print(f"system: {workload.system.topology!r}")
    print(
        f"trajectory: {workload.trajectory.nframes} frames, "
        f"raw {fmt_bytes(workload.raw_nbytes)}, "
        f"xtc {fmt_bytes(workload.compressed_nbytes)} "
        f"({workload.raw_nbytes / workload.compressed_nbytes:.2f}x compression)"
    )

    # 2. ADA over two backends: protein -> SSD, MISC -> HDD.
    sim = Simulator()
    ada = ADA(
        sim,
        backends={
            "ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd"),
            "hdd": LocalFS(sim, WD_1TB_HDD, name="hdd"),
        },
        placement=PlacementPolicy.paper_default(),
    )

    # 3. Ingest once: storage-side pre-processing splits the dataset.
    receipt = sim.run_process(
        ada.ingest("bar.xtc", workload.pdb_text, workload.xtc_blob)
    )
    for tag, size in sorted(receipt.subset_sizes.items()):
        print(
            f"  subset {tag!r}: {fmt_bytes(size)} -> backend "
            f"{receipt.backends[tag]!r}"
        )

    # 4a. Traditional load: decompress everything on the compute node.
    session = VMDSession(ada=ada)
    session.mol_new(workload.pdb_text, name="gpcr-traditional")
    trad = session.mol_addfile(workload.xtc_blob)
    print(
        f"traditional load: inflated {fmt_bytes(trad.decompressed_nbytes)}, "
        f"CPU {fmt_seconds(trad.timer.total())} "
        f"({100 * trad.timer.fraction('decompress'):.0f}% decompression)"
    )

    # 4b. ADA load: `mol addfile bar.xtc tag p` -- protein only.
    session.mol_new(workload.pdb_text, name="gpcr-ada")
    ada_load = session.mol_addfile_tag("bar.xtc", "p")
    print(
        f"ADA tag-p load:   moved {fmt_bytes(ada_load.source_nbytes)}, "
        f"CPU {fmt_seconds(ada_load.timer.total())}"
    )
    print(
        f"memory at peak: traditional {fmt_bytes(trad.peak_memory_nbytes)} "
        f"vs ADA {fmt_bytes(ada_load.peak_memory_nbytes)} "
        f"({trad.peak_memory_nbytes / ada_load.peak_memory_nbytes:.1f}x saving)"
    )

    # 5. Render and replay the protein animation.
    animator = Animator(session.top, cache_frames=32)
    stats = animator.rock(passes=2)
    print(
        f"replayed {stats.frames_shown} frames back and forth, "
        f"cache hit rate {100 * stats.hit_rate:.0f}%"
    )


if __name__ == "__main__":
    main()
