#!/usr/bin/env python
"""User-described data structure (the paper's stated future work, §6).

"We plan to develop a dynamic data categorizing and labeling interface
through which a user can describe the structure of his raw data in a
configuration file."  :meth:`TagPolicy.from_config` is that interface: a
declarative mapping of classes/residues to tags, here pulling cholesterol
out of the lipid pool into its own hot tier.

Run:  python examples/custom_policy.py
"""

from repro import ADA, Simulator, TagPolicy, build_workload
from repro.core import PlacementPolicy
from repro.datagen import build_gpcr_system, generate_trajectory
from repro.formats import Topology, encode_xtc, write_pdb
from repro.fs import LocalFS
from repro.storage import NVME_SSD_256GB, WD_1TB_HDD
from repro.units import fmt_bytes

import numpy as np

#: What a scientist would put in ada.toml / ada.json.
CONFIG = {
    "name": "cholesterol-study",
    "classes": {"protein": "hot", "ligand": "hot"},
    "residues": {"CHL1": "hot", "TIP3": "cold"},
    "default": "cold",
}


def build_system_with_cholesterol():
    """A GPCR system whose membrane carries some CHL1 cholesterol."""
    base = build_gpcr_system(natoms_target=5000, seed=19)
    topo = base.topology
    # Relabel ~20% of the lipid molecules as cholesterol.
    resnames = topo.resnames.copy()
    lipid_resids = np.unique(topo.resids[resnames == "POPC"])
    chol_resids = set(lipid_resids[:: 5].tolist())
    mask = (resnames == "POPC") & np.isin(topo.resids, list(chol_resids))
    resnames[mask] = "CHL1"
    base.topology = Topology(
        names=topo.names, resnames=resnames, resids=topo.resids,
        chains=topo.chains, elements=topo.elements,
    )
    return base


def main() -> None:
    system = build_system_with_cholesterol()
    traj = generate_trajectory(system, nframes=20, seed=20)
    policy = TagPolicy.from_config(CONFIG)

    sim = Simulator()
    ada = ADA(
        sim,
        backends={
            "ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd"),
            "hdd": LocalFS(sim, WD_1TB_HDD, name="hdd"),
        },
        policy=policy,
        placement=PlacementPolicy(
            active_tags=frozenset({"hot"}),
            active_backend="ssd",
            inactive_backend="hdd",
        ),
    )
    receipt = sim.run_process(
        ada.ingest(
            "chol.xtc", write_pdb(system.topology, system.coords), encode_xtc(traj)
        )
    )
    print(f"policy {policy.name!r} produced subsets:")
    for tag in sorted(receipt.subset_sizes):
        print(
            f"  {tag:5s} {fmt_bytes(receipt.subset_sizes[tag]):>10s} "
            f"-> {receipt.backends[tag]}"
        )
    hot = receipt.subset_sizes.get("hot", 0)
    total = sum(receipt.subset_sizes.values())
    print(
        f"\nhot tier holds {100 * hot / total:.0f}% of the raw volume "
        "(protein + ligand + cholesterol), everything else stays cold"
    )


if __name__ == "__main__":
    main()
