#!/usr/bin/env python
"""Fine-grained dataset views (paper §4.1, closing paragraph).

With the per-class tag policy, ADA labels protein / water / lipid / ion /
ligand separately, so a scientist can open just the lipid bilayer or just
the solvation shell: ``mol addfile /mnt/bar.xtc tag l``.

Run:  python examples/fine_grained_tags.py
"""

from repro import ADA, Simulator, TagPolicy, VMDSession, build_workload
from repro.core import PlacementPolicy
from repro.fs import LocalFS
from repro.storage import NVME_SSD_256GB, WD_1TB_HDD
from repro.units import fmt_bytes

TAG_NAMES = {
    "p": "protein",
    "w": "water",
    "l": "lipid",
    "i": "ions",
    "g": "ligand",
    "o": "other",
}


def main() -> None:
    workload = build_workload(natoms=6000, nframes=25, seed=13)
    sim = Simulator()
    # Protein AND ligand are active data for a binding study.
    placement = PlacementPolicy(
        active_tags=frozenset({"p", "g"}),
        active_backend="ssd",
        inactive_backend="hdd",
    )
    ada = ADA(
        sim,
        backends={
            "ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd"),
            "hdd": LocalFS(sim, WD_1TB_HDD, name="hdd"),
        },
        policy=TagPolicy.per_class(),
        placement=placement,
    )
    receipt = sim.run_process(
        ada.ingest("bar.xtc", workload.pdb_text, workload.xtc_blob)
    )

    print("per-class subsets after ingest:")
    for tag in sorted(receipt.subset_sizes):
        print(
            f"  tag {tag!r} ({TAG_NAMES[tag]:8s}) "
            f"{fmt_bytes(receipt.subset_sizes[tag]):>10s}  -> "
            f"{receipt.backends[tag]}"
        )

    session = VMDSession(ada=ada)
    session.mol_new(workload.pdb_text, name="bilayer-study")
    lipid = session.mol_addfile_tag("bar.xtc", "l")
    print(
        f"\nopened the lipid bilayer alone: {session.top.loaded_natoms} atoms, "
        f"{lipid.trajectory.nframes} frames, moved only "
        f"{fmt_bytes(lipid.source_nbytes)} of "
        f"{fmt_bytes(workload.raw_nbytes)} raw"
    )

    session.mol_new(workload.pdb_text, name="binding-study")
    session.mol_addfile_tag("bar.xtc", "p")
    print(
        f"opened the protein alone:       {session.top.loaded_natoms} atoms "
        f"(binding-site study without a drop of water)"
    )


if __name__ == "__main__":
    main()
