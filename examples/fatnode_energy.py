#!/usr/bin/env python
"""The 1 TB fat-node experiment (paper §4.3 / Fig. 10), modeled.

Sweeps up to 5,004,800 frames on the XFS RAID-50 server, reproducing the
OOM-kill truncations (XFS and ADA(all) die at 1,876,800 frames; ADA
(protein) survives to 5,004,800) and the >3x energy gap.

Run:  python examples/fatnode_energy.py
"""

from repro import fat_node, run_point, run_sweep, series_pivot
from repro.harness.report import Table
from repro.units import to_kj
from repro.workloads import FAT_NODE_FRAME_COUNTS


def main() -> None:
    platform = fat_node()
    print(platform.description, "\n")
    params = Table(["parameter", "value"], title="Table 5-style parameters")
    for name, value in platform.parameters():
        params.add_row(name, value)
    print(params, "\n")

    scenarios = ("C-trad", "D-ada-all", "D-ada-p")
    results = run_sweep(fat_node, FAT_NODE_FRAME_COUNTS, scenario_keys=scenarios)
    for metric in ("retrieval", "turnaround", "memory", "energy"):
        print(series_pivot(results, metric, fs_label="XFS"), "\n")

    kills = [(r.scenario, r.nframes) for r in results if r.killed]
    print("OOM kills (scenario, first killed frame count):")
    seen = set()
    for scenario, nframes in kills:
        if scenario not in seen:
            seen.add(scenario)
            print(f"  {scenario:10s} killed at {nframes:,} frames")

    xfs = run_point(fat_node, "C-trad", 1_564_000)
    ada = run_point(fat_node, "D-ada-p", 1_564_000)
    print(
        f"\nenergy @1,564,000 frames: XFS {to_kj(xfs.energy_j):,.0f} kJ vs "
        f"ADA(protein) {to_kj(ada.energy_j):,.0f} kJ "
        f"({xfs.energy_j / ada.energy_j:.1f}x, paper: >3x)"
    )


if __name__ == "__main__":
    main()
