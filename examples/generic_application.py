#!/usr/bin/env python
"""ADA for a non-VMD application (paper §1 and §3.1's precision tiers).

A sensor-array application produces fixed-size records mixing a
high-precision tier (timestamps + float64 readings) with a low-precision
tier (float16 previews + quality flags).  It hands ADA a *structure file*
describing that layout; ADA splits the table column-group-wise, places the
hot tier on flash, and serves precision-selective reads -- no VMD anywhere.

Run:  python examples/generic_application.py
"""

import numpy as np

from repro.core import IODeterminator, PlacementPolicy
from repro.core.generic import FieldSpec, GenericPreProcessor, RecordStructure
from repro.fs import LocalFS, PLFS
from repro.sim import Simulator
from repro.storage import NVME_SSD_256GB, WD_1TB_HDD
from repro.units import fmt_bytes

N_RECORDS = 100_000


def main() -> None:
    # 1. The application's structure file (what §6 calls "a configuration
    #    file through which a user can describe the structure of his data").
    structure = RecordStructure(
        [
            FieldSpec("timestamp", "<i8", "hi"),
            FieldSpec("reading", "<f8", "hi"),
            FieldSpec("preview", "<f2", "lo"),
            FieldSpec("quality", "<u1", "lo"),
        ]
    )
    print(
        f"structure: {structure.record_nbytes} B/record, "
        f"hi tier {100 * structure.tag_fraction('hi'):.0f}% of the volume"
    )

    # 2. The raw table.
    rng = np.random.default_rng(44)
    records = np.empty(N_RECORDS, dtype=structure.numpy_dtype())
    records["timestamp"] = np.arange(N_RECORDS)
    records["reading"] = rng.normal(loc=20.0, scale=3.0, size=N_RECORDS)
    records["preview"] = records["reading"].astype("<f2")
    records["quality"] = rng.integers(0, 4, size=N_RECORDS)
    table = records.tobytes()

    # 3. ADA's generic pre-processor + the unchanged I/O determinator.
    pre = GenericPreProcessor(structure)
    subsets = pre.split(table)
    sim = Simulator()
    plfs = PLFS(
        sim,
        backends={
            "ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd"),
            "hdd": LocalFS(sim, WD_1TB_HDD, name="hdd"),
        },
    )
    det = IODeterminator(
        sim,
        plfs,
        PlacementPolicy(
            active_tags=frozenset({"hi"}),
            active_backend="ssd",
            inactive_backend="hdd",
        ),
    )
    sim.run_process(det.store("sensors.dat", subsets))
    for tag, blob in sorted(subsets.items()):
        backend = det.dispatcher.backend_for(tag)
        print(f"  tier {tag!r}: {fmt_bytes(len(blob)):>10s} -> {backend}")

    # 4. A quick-look consumer reads ONLY the low-precision tier...
    obj = sim.run_process(det.fetch("sensors.dat", "lo"))
    lo = pre.project(obj.data, "lo")
    print(
        f"\nquick look from {fmt_bytes(obj.nbytes)} (vs {fmt_bytes(len(table))} "
        f"raw): mean preview {lo['preview'].astype(np.float64).mean():.2f}, "
        f"{(lo['quality'] == 0).sum()} clean records"
    )

    # 5. ...while the full-precision analysis reconstructs everything.
    objs = sim.run_process(det.fetch_all("sensors.dat"))
    merged = pre.merge({tag: o.data for tag, o in objs.items()})
    full = np.frombuffer(merged, dtype=structure.numpy_dtype())
    assert np.array_equal(full, records)
    print(
        f"full reconstruction bit-exact: {full['reading'].mean():.4f} mean "
        "reading from float64"
    )


if __name__ == "__main__":
    main()
