"""Tests for the Langevin MD engine."""

import numpy as np
import pytest

from repro.datagen import build_gpcr_system
from repro.errors import ConfigurationError
from repro.formats import AtomClass
from repro.mdengine import LangevinEngine


@pytest.fixture(scope="module")
def system():
    return build_gpcr_system(natoms_target=1200, seed=51)


def test_parameter_validation(system):
    with pytest.raises(ConfigurationError):
        LangevinEngine(system, dt_ps=0.0)
    with pytest.raises(ConfigurationError):
        LangevinEngine(system, friction_per_ps=-1.0)
    with pytest.raises(ConfigurationError):
        LangevinEngine(system, kt=0.0)


def test_step_advances_clock(system):
    engine = LangevinEngine(system, dt_ps=0.002, seed=1)
    engine.step(10)
    assert engine.step_count == 10
    assert engine.time_ps == pytest.approx(0.02)


def test_positions_move_but_stay_bounded(system):
    engine = LangevinEngine(system, seed=2)
    engine.step(500)
    displacement = np.linalg.norm(engine.positions - engine.reference, axis=1)
    assert displacement.mean() > 0.05  # things actually move
    assert np.percentile(displacement, 99) < 30.0  # restraints hold


def test_stationary_amplitudes_follow_class(system):
    """Protein atoms fluctuate less than water: the spring table works."""
    engine = LangevinEngine(system, seed=3)
    engine.step(2000)
    disp = np.linalg.norm(engine.positions - engine.reference, axis=1)
    water = disp[system.topology.class_mask(AtomClass.WATER)].mean()
    protein = disp[system.topology.class_mask(AtomClass.PROTEIN)].mean()
    assert water > 1.5 * protein


def test_temperature_near_target(system):
    engine = LangevinEngine(system, kt=1.0, seed=4)
    engine.step(1000)
    assert engine.temperature_estimate() == pytest.approx(1.0, rel=0.2)


def test_run_produces_trajectory(system):
    engine = LangevinEngine(system, seed=5)
    traj = engine.run(nframes=6, stride=20)
    assert traj.nframes == 6
    assert traj.natoms == system.natoms
    assert engine.step_count == 120
    # Steps recorded at the sampling cadence.
    assert list(traj.steps) == [20, 40, 60, 80, 100, 120]


def test_sample_validation(system):
    engine = LangevinEngine(system, seed=6)
    with pytest.raises(ConfigurationError):
        list(engine.sample(0))
    with pytest.raises(ConfigurationError):
        list(engine.sample(1, stride=0))


def test_deterministic_per_seed(system):
    a = LangevinEngine(system, seed=7).run(3, stride=10)
    b = LangevinEngine(system, seed=7).run(3, stride=10)
    np.testing.assert_array_equal(a.coords, b.coords)


def test_engine_output_compresses_like_datagen(system):
    """Integrator frames keep the small-delta structure the codec needs."""
    from repro.formats import encode_xtc

    traj = LangevinEngine(system, seed=8).run(nframes=15, stride=25)
    ratio = traj.nbytes / len(encode_xtc(traj))
    assert ratio > 2.5
