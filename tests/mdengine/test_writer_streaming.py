"""Tests for chunked output and streaming ingestion into ADA."""

import numpy as np
import pytest

from repro.core import ADA
from repro.datagen import build_gpcr_system
from repro.errors import ConfigurationError
from repro.formats import decode_xtc, write_pdb
from repro.formats.xtc import decode_raw
from repro.fs import LocalFS
from repro.mdengine import ChunkedXtcWriter, LangevinEngine, SimulationCampaign
from repro.sim import Simulator
from repro.storage import NVME_SSD_256GB, WD_1TB_HDD


@pytest.fixture(scope="module")
def system():
    return build_gpcr_system(natoms_target=1000, seed=61)


def _ada(sim):
    return ADA(
        sim,
        backends={
            "ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd"),
            "hdd": LocalFS(sim, WD_1TB_HDD, name="hdd"),
        },
    )


def test_writer_chunking(system):
    engine = LangevinEngine(system, seed=1)
    writer = ChunkedXtcWriter(basename="run", chunk_frames=4)
    for frame in engine.sample(10, stride=5):
        writer.add_frame(frame)
    writer.flush()
    assert len(writer.chunks) == 3  # 4 + 4 + 2
    assert writer.frames_written == 10
    names = sorted(writer.chunks)
    assert names[0] == "run.part0000.xtc"
    # Each chunk decodes on its own; the pieces sum to 10 frames.
    total = sum(decode_xtc(b).nframes for b in writer.chunks.values())
    assert total == 10


def test_writer_flush_empty_is_noop():
    writer = ChunkedXtcWriter(chunk_frames=4)
    assert writer.flush() is None
    assert writer.total_nbytes == 0


def test_writer_validation():
    with pytest.raises(ConfigurationError):
        ChunkedXtcWriter(chunk_frames=0)


def test_concatenated_chunks_decode_as_one_stream(system):
    engine = LangevinEngine(system, seed=2)
    writer = ChunkedXtcWriter(chunk_frames=3)
    for frame in engine.sample(7, stride=5):
        writer.add_frame(frame)
    writer.flush()
    stream = b"".join(writer.chunks[k] for k in sorted(writer.chunks))
    assert decode_xtc(stream).nframes == 7


def test_campaign_multiple_phases(system):
    """One structure guides several .xtc files (paper §2.1)."""
    campaign = SimulationCampaign(engine=LangevinEngine(system, seed=3))
    campaign.run_phase("equilibration", nframes=4, stride=10)
    campaign.run_phase("production", nframes=6, stride=10)
    assert set(campaign.phases) == {"equilibration", "production"}
    assert decode_xtc(campaign.phase_blob("production")).nframes == 6


def test_streaming_ingest_into_ada(system):
    """Chunks from a running simulation stream straight into ADA."""
    sim = Simulator()
    ada = _ada(sim)
    pdb_text = write_pdb(system.topology, system.coords)
    engine = LangevinEngine(system, seed=4)

    # First chunk establishes the dataset (full ingest with analysis)...
    first = ChunkedXtcWriter(chunk_frames=5)
    for frame in engine.sample(5, stride=10):
        first.add_frame(frame)
    first.flush()
    blob0 = next(iter(first.chunks.values()))
    sim.run_process(ada.ingest("stream.xtc", pdb_text, blob0))

    # ...subsequent chunks append under the stored label map.
    def pump(name, blob):
        sim.run_process(ada.ingest_append("stream.xtc", blob))

    writer = ChunkedXtcWriter(chunk_frames=5, on_chunk=pump)
    for frame in engine.sample(10, stride=10):
        writer.add_frame(frame)
    writer.flush()

    # The protein subset now holds all 15 frames across 3 PLFS chunks.
    assert len(ada.plfs.subset_records("stream.xtc", "p")) == 3
    obj = sim.run_process(ada.fetch("stream.xtc", "p"))
    protein = decode_raw(obj.data)
    assert protein.nframes == 15
    assert protein.natoms == ada.label_map("stream.xtc").atom_count("p")


def test_append_before_ingest_rejected(system):
    sim = Simulator()
    ada = _ada(sim)
    from repro.errors import LabelIndexError

    with pytest.raises(LabelIndexError):
        sim.run_process(ada.ingest_append("ghost.xtc", b"whatever"))
