"""Tests for the striped parallel file system."""

import pytest

from repro.errors import ConfigurationError, FileNotFoundInFSError
from repro.fs import PVFS, StorageTarget
from repro.net import Link, LinkSpec
from repro.sim import Simulator
from repro.storage import Device, DevicePower, DeviceSpec
from repro.units import GB, KiB, MB, mbps


def _device(sim, read=100.0, name="d", capacity=10 * GB):
    spec = DeviceSpec(
        name=name,
        read_bw=mbps(read),
        write_bw=mbps(read),
        seek_latency_s=0.0,
        capacity=capacity,
        power=DevicePower(active_w=5.0, idle_w=1.0),
    )
    return Device(sim, spec)


def _pvfs(sim, speeds, **kw):
    targets = [
        StorageTarget(device=_device(sim, read=s, name=f"d{i}"))
        for i, s in enumerate(speeds)
    ]
    kw.setdefault("request_overhead_s", 0.0)
    kw.setdefault("metadata_latency_s", 0.0)
    return PVFS(sim, targets, **kw)


def test_needs_targets():
    with pytest.raises(ConfigurationError):
        PVFS(Simulator(), [])


def test_stripe_layout_balanced():
    sim = Simulator()
    fs = _pvfs(sim, [100, 100, 100], stripe_size=64 * KiB)
    layout = fs.stripe_layout(10 * 64 * KiB)
    assert sum(layout) == 10 * 64 * KiB
    assert max(layout) - min(layout) <= 64 * KiB


def test_stripe_layout_with_remainder():
    sim = Simulator()
    fs = _pvfs(sim, [100, 100], stripe_size=1000)
    layout = fs.stripe_layout(2500)
    assert sum(layout) == 2500
    assert layout == [1500, 1000]


def test_striped_read_is_parallel():
    """Three equal targets read a file ~3x faster than one would."""
    sim = Simulator()
    fs = _pvfs(sim, [100, 100, 100])
    sim.run_process(fs.write("f", nbytes=int(300 * MB)))
    t0 = sim.now
    sim.run_process(fs.read("f"))
    assert sim.now - t0 == pytest.approx(1.0, rel=0.05)


def test_heterogeneous_pool_paced_by_slowest():
    """Half the stripes on slow targets dominate completion (the hybrid
    HDD+SSD pool effect of Section 4.2)."""
    sim = Simulator()
    fs = _pvfs(sim, [100, 100, 1000, 1000])
    sim.run_process(fs.write("f", nbytes=int(400 * MB)))
    t0 = sim.now
    sim.run_process(fs.read("f"))
    elapsed = sim.now - t0
    assert elapsed == pytest.approx((100 * MB) / mbps(100), rel=0.05)


def test_request_overhead_charged_per_stripe():
    sim = Simulator()
    fs = _pvfs(sim, [100], stripe_size=1 * MB, request_overhead_s=0.001)
    sim.run_process(fs.write("f", nbytes=int(10 * MB)))
    t0 = sim.now
    sim.run_process(fs.read("f"))
    small = sim.now - t0
    t0 = sim.now
    sim.run_process(fs.read("f", request_size=int(10 * MB)))
    bulk = sim.now - t0
    assert small - bulk == pytest.approx(9 * 0.001)


def test_read_missing_raises():
    sim = Simulator()
    fs = _pvfs(sim, [100])
    with pytest.raises(FileNotFoundInFSError):
        sim.run_process(fs.read("missing"))


def test_materialized_roundtrip():
    sim = Simulator()
    fs = _pvfs(sim, [100, 100])
    payload = bytes(range(256)) * 10
    sim.run_process(fs.write("blob", data=payload))
    obj = sim.run_process(fs.read("blob"))
    assert obj.data == payload


def test_capacity_split_across_targets():
    sim = Simulator()
    fs = _pvfs(sim, [100, 100])
    sim.run_process(fs.write("f", nbytes=int(1 * GB)))
    used = [t.device.used_bytes for t in fs.targets]
    assert sum(used) == pytest.approx(1 * GB)
    assert used[0] == pytest.approx(used[1], rel=0.01)


def test_network_hop_charged():
    sim = Simulator()
    dev = _device(sim, read=1000.0)
    link = Link(sim, LinkSpec(name="l", bandwidth=mbps(100.0), latency_s=0.0))
    fs = PVFS(
        sim,
        [StorageTarget(device=dev, link=link)],
        request_overhead_s=0.0,
        metadata_latency_s=0.0,
    )
    sim.run_process(fs.write("f", nbytes=int(100 * MB)))
    t0 = sim.now
    sim.run_process(fs.read("f"))
    # 0.1 s device + 1.0 s network.
    assert sim.now - t0 == pytest.approx(1.1, rel=0.02)
    # Both the write and the read crossed the link.
    assert link.bytes_moved == pytest.approx(200 * MB)


def test_bad_stripe_size_rejected():
    with pytest.raises(ConfigurationError):
        _pvfs(Simulator(), [100], stripe_size=0)
