"""Tests for the POSIX-style VFS and the ADA interposer."""

import pytest

from repro.core import ADA
from repro.errors import ConfigurationError, FileNotFoundInFSError
from repro.fs import LocalFS
from repro.fs.vfs import ADAInterposer, VFS
from repro.sim import Simulator
from repro.storage import NVME_SSD_256GB, WD_1TB_HDD
from repro.workloads import build_workload


def _fs(sim, name):
    spec = NVME_SSD_256GB if name == "ssd" else WD_1TB_HDD
    return LocalFS(sim, spec, name=name)


@pytest.fixture
def vfs():
    sim = Simulator()
    v = VFS(sim)
    v.mount("/mnt/ssd", _fs(sim, "ssd"))
    v.mount("/mnt/hdd", _fs(sim, "hdd"))
    return v


def test_write_then_read_roundtrip(vfs):
    with vfs.open("/mnt/ssd/dir/file.bin", "w") as fh:
        fh.write(b"hello ")
        fh.write(b"world")
    with vfs.open("/mnt/ssd/dir/file.bin", "r") as fh:
        assert fh.read() == b"hello world"
    assert vfs.nbytes("/mnt/ssd/dir/file.bin") == 11


def test_partial_reads_advance_cursor(vfs):
    with vfs.open("/mnt/ssd/f", "w") as fh:
        fh.write(b"abcdef")
    fh = vfs.open("/mnt/ssd/f")
    assert fh.read(2) == b"ab"
    assert fh.read(2) == b"cd"
    assert fh.read() == b"ef"
    fh.close()


def test_longest_prefix_mount_wins():
    sim = Simulator()
    v = VFS(sim)
    outer, inner = _fs(sim, "ssd"), _fs(sim, "hdd")
    v.mount("/mnt", outer)
    v.mount("/mnt/special", inner)
    with v.open("/mnt/special/x", "w") as fh:
        fh.write(b"inner!")
    assert inner.exists("x")
    assert not outer.exists("special/x")


def test_unmounted_path_rejected(vfs):
    with pytest.raises(FileNotFoundInFSError):
        vfs.open("/other/file", "w").close()
    assert not vfs.exists("/other/file")


def test_double_mount_rejected(vfs):
    with pytest.raises(ConfigurationError):
        vfs.mount("/mnt/ssd", _fs(Simulator(), "ssd"))


def test_open_missing_for_read_rejected(vfs):
    with pytest.raises(FileNotFoundInFSError):
        vfs.open("/mnt/ssd/ghost", "r")


def test_mode_enforcement(vfs):
    with pytest.raises(ConfigurationError):
        vfs.open("/mnt/ssd/f", "a")
    fh = vfs.open("/mnt/ssd/f", "w")
    with pytest.raises(ValueError):
        fh.read()
    fh.close()
    with pytest.raises(ValueError):
        fh.write(b"late")


# -- ADA interposition ----------------------------------------------------------


@pytest.fixture(scope="module")
def workload():
    return build_workload(natoms=1200, nframes=6, seed=95)


@pytest.fixture
def interposer(workload):
    sim = Simulator()
    ada = ADA(
        sim,
        backends={"ssd": _fs(sim, "ssd"), "hdd": _fs(sim, "hdd")},
    )
    return ADAInterposer(sim, ada, ada_mount="/mnt/ada")


def test_target_files_are_trapped(interposer, workload):
    with interposer.open("/mnt/ada/run/foo.pdb", "w") as fh:
        fh.write(workload.pdb_text.encode())
    with interposer.open("/mnt/ada/run/bar.xtc", "w") as fh:
        fh.write(workload.xtc_blob)
    assert "run/bar.xtc" in interposer.trapped
    receipt = interposer.trapped["run/bar.xtc"]
    assert set(receipt.subset_sizes) == {"p", "m"}
    assert interposer.ada.tags("run/bar.xtc") == ["m", "p"]


def test_non_target_files_pass_through(interposer):
    with interposer.open("/mnt/ada/notes.txt", "w") as fh:
        fh.write(b"plain data")
    assert not interposer.trapped
    inactive = interposer.ada.plfs.backends[
        interposer.ada.placement.inactive_backend
    ]
    assert inactive.data("notes.txt") == b"plain data"
    # And it reads back through the same handle API.
    with interposer.open("/mnt/ada/notes.txt") as fh:
        assert fh.read() == b"plain data"


def test_trajectory_before_structure_rejected(interposer, workload):
    with pytest.raises(ConfigurationError, match="guiding"):
        with interposer.open("/mnt/ada/lonely/bar.xtc", "w") as fh:
            fh.write(workload.xtc_blob)


def test_tag_read_extension(interposer, workload):
    with interposer.open("/mnt/ada/run/foo.pdb", "w") as fh:
        fh.write(workload.pdb_text.encode())
    with interposer.open("/mnt/ada/run/bar.xtc", "w") as fh:
        fh.write(workload.xtc_blob)
    blob = interposer.read_tag("/mnt/ada/run/bar.xtc", "p")
    from repro.formats.xtc import decode_raw

    protein = decode_raw(blob)
    assert protein.nframes == workload.trajectory.nframes


def test_other_mounts_unaffected(interposer, workload):
    sim = interposer.sim
    plain = _fs(sim, "ssd")
    interposer.mount("/mnt/scratch", plain)
    with interposer.open("/mnt/scratch/bar.xtc", "w") as fh:
        fh.write(workload.xtc_blob)
    # Same suffix, different mount: NOT trapped.
    assert "bar.xtc" not in interposer.trapped
    assert plain.exists("bar.xtc")
