"""Tests for the in-memory object store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FileExistsInFSError, FileNotFoundInFSError
from repro.fs import ObjectStore


def test_put_get_roundtrip():
    store = ObjectStore()
    store.put("a/b/file.xtc", data=b"hello")
    assert store.data("a/b/file.xtc") == b"hello"
    assert store.nbytes("a/b/file.xtc") == 5


def test_path_normalization():
    store = ObjectStore()
    store.put("/a//b/./c", data=b"x")
    assert store.exists("a/b/c")
    assert store.data("a/b/c") == b"x"


def test_empty_path_rejected():
    store = ObjectStore()
    with pytest.raises(FileNotFoundInFSError):
        store.put("///", data=b"x")


def test_virtual_object_size_only():
    store = ObjectStore()
    store.put("big.xtc", nbytes=10**12)
    assert store.nbytes("big.xtc") == 10**12
    assert store.is_virtual("big.xtc")
    with pytest.raises(FileNotFoundInFSError, match="virtual"):
        store.data("big.xtc")


def test_put_requires_data_or_size():
    with pytest.raises(ValueError):
        ObjectStore().put("x")


def test_put_inconsistent_size_rejected():
    with pytest.raises(ValueError):
        ObjectStore().put("x", data=b"abc", nbytes=5)


def test_put_consistent_size_ok():
    store = ObjectStore()
    store.put("x", data=b"abc", nbytes=3)
    assert not store.is_virtual("x")


def test_overwrite_control():
    store = ObjectStore()
    store.put("x", data=b"1")
    store.put("x", data=b"22")
    assert store.nbytes("x") == 2
    with pytest.raises(FileExistsInFSError):
        store.put("x", data=b"3", overwrite=False)


def test_delete_returns_size():
    store = ObjectStore()
    store.put("x", data=b"12345")
    assert store.delete("x") == 5
    assert not store.exists("x")
    with pytest.raises(FileNotFoundInFSError):
        store.delete("x")


def test_missing_lookup_raises():
    with pytest.raises(FileNotFoundInFSError):
        ObjectStore().nbytes("nope")


def test_listdir_immediate_children():
    store = ObjectStore()
    store.put("bar.plfs/subset.p/data.0", data=b"p")
    store.put("bar.plfs/subset.m/data.0", data=b"m")
    store.put("bar.plfs/index", data=b"i")
    store.put("other", data=b"o")
    assert store.listdir("bar.plfs") == ["index", "subset.m", "subset.p"]
    assert "bar.plfs" in store.listdir()


def test_walk_recursive():
    store = ObjectStore()
    store.put("c/x", data=b"1")
    store.put("c/d/y", data=b"2")
    assert store.walk("c") == ["c/d/y", "c/x"]


def test_total_bytes_and_len():
    store = ObjectStore()
    store.put("a", data=b"123")
    store.put("b", nbytes=7)
    assert store.total_bytes() == 10
    assert len(store) == 2


@settings(max_examples=30, deadline=None)
@given(
    entries=st.dictionaries(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
            min_size=1,
            max_size=8,
        ),
        st.binary(max_size=64),
        min_size=1,
        max_size=10,
    )
)
def test_property_store_is_a_faithful_map(entries):
    store = ObjectStore()
    for path, data in entries.items():
        store.put(path, data=data)
    for path, data in entries.items():
        assert store.data(path) == data
    assert len(store) == len(entries)
    assert store.total_bytes() == sum(len(d) for d in entries.values())
