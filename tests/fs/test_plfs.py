"""Tests for the PLFS container layer."""

import pytest

from repro.errors import ConfigurationError, ContainerError, TagNotFoundError
from repro.fs import PLFS, LocalFS
from repro.sim import Simulator
from repro.storage import DevicePower, DeviceSpec
from repro.units import GB, MB, mbps


def _fs(sim, name, read=100.0):
    spec = DeviceSpec(
        name=name,
        read_bw=mbps(read),
        write_bw=mbps(read),
        seek_latency_s=0.0,
        capacity=10 * GB,
        power=DevicePower(active_w=5.0, idle_w=1.0),
    )
    return LocalFS(sim, spec, name=name, metadata_latency_s=0.0)


def _plfs(sim, ssd_speed=1000.0, hdd_speed=100.0):
    return PLFS(
        sim,
        backends={
            "ssd": _fs(sim, "ssd", read=ssd_speed),
            "hdd": _fs(sim, "hdd", read=hdd_speed),
        },
        metadata_backend="ssd",
    )


def test_needs_backends():
    with pytest.raises(ConfigurationError):
        PLFS(Simulator(), backends={})


def test_unknown_metadata_backend_rejected():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        PLFS(sim, backends={"a": _fs(sim, "a")}, metadata_backend="b")


def test_write_subset_places_on_named_backend():
    sim = Simulator()
    plfs = _plfs(sim)
    sim.run_process(plfs.write_subset("bar", "p", backend="ssd", data=b"protein"))
    sim.run_process(plfs.write_subset("bar", "m", backend="hdd", data=b"misc!"))
    assert plfs.backends["ssd"].exists("bar.plfs/subset.p/data.0")
    assert plfs.backends["hdd"].exists("bar.plfs/subset.m/data.0")
    # Paper Fig. 6: containers carry per-mount directories + subdirs.
    assert "subset.p" in plfs.backends["ssd"].listdir("bar.plfs")


def test_unknown_backend_rejected():
    sim = Simulator()
    plfs = _plfs(sim)
    with pytest.raises(ConfigurationError):
        sim.run_process(plfs.write_subset("bar", "p", backend="nvme", data=b"x"))


def test_read_subset_roundtrip():
    sim = Simulator()
    plfs = _plfs(sim)
    sim.run_process(plfs.write_subset("bar", "p", backend="ssd", data=b"abc"))
    obj = sim.run_process(plfs.read_subset("bar", "p"))
    assert obj.data == b"abc"
    assert obj.nbytes == 3


def test_multi_chunk_subset_concatenates_in_order():
    sim = Simulator()
    plfs = _plfs(sim)
    for part in (b"one-", b"two-", b"three"):
        sim.run_process(plfs.write_subset("bar", "p", backend="ssd", data=part))
    obj = sim.run_process(plfs.read_subset("bar", "p"))
    assert obj.data == b"one-two-three"
    records = plfs.subset_records("bar", "p")
    assert [r.chunk for r in records] == [0, 1, 2]


def test_missing_tag_raises_with_available_tags():
    sim = Simulator()
    plfs = _plfs(sim)
    sim.run_process(plfs.write_subset("bar", "p", backend="ssd", data=b"x"))
    with pytest.raises(TagNotFoundError, match="'p'"):
        sim.run_process(plfs.read_subset("bar", "z"))


def test_missing_container_raises():
    sim = Simulator()
    plfs = _plfs(sim)
    with pytest.raises(ContainerError):
        plfs.container_index("ghost")


def test_index_survives_cache_loss():
    """The index is durable on the metadata backend, not just in memory."""
    sim = Simulator()
    plfs = _plfs(sim)
    sim.run_process(plfs.write_subset("bar", "p", backend="ssd", data=b"x"))
    sim.run_process(plfs.write_subset("bar", "m", backend="hdd", data=b"yy"))
    plfs._indexes.clear()  # simulate a fresh PLFS client
    assert plfs.tags("bar") == ["m", "p"]
    assert plfs.subset_nbytes("bar", "m") == 2


def test_corrupt_index_raises():
    sim = Simulator()
    plfs = _plfs(sim)
    sim.run_process(plfs.write_subset("bar", "p", backend="ssd", data=b"x"))
    plfs._indexes.clear()
    plfs.backends["ssd"].store.put("bar.plfs/index", data=b"not json")
    with pytest.raises(ContainerError, match="corrupt"):
        plfs.container_index("bar")


def test_container_nbytes_and_exists():
    sim = Simulator()
    plfs = _plfs(sim)
    assert not plfs.exists("bar")
    sim.run_process(plfs.write_subset("bar", "p", backend="ssd", nbytes=100))
    sim.run_process(plfs.write_subset("bar", "m", backend="hdd", nbytes=300))
    assert plfs.exists("bar")
    assert plfs.container_nbytes("bar") == 400
    assert plfs.subset_nbytes("bar", "p") == 100


def test_read_container_returns_all_tags():
    sim = Simulator()
    plfs = _plfs(sim)
    sim.run_process(plfs.write_subset("bar", "p", backend="ssd", data=b"pp"))
    sim.run_process(plfs.write_subset("bar", "m", backend="hdd", data=b"mmm"))
    objs = sim.run_process(plfs.read_container("bar"))
    assert objs["p"].data == b"pp"
    assert objs["m"].nbytes == 3


def test_subset_reads_hit_only_their_backend():
    """Tag-selective read touches the SSD only -- the fine-grained-view
    advantage of Section 4.1."""
    sim = Simulator()
    plfs = _plfs(sim)
    sim.run_process(
        plfs.write_subset("bar", "p", backend="ssd", nbytes=int(10 * MB))
    )
    sim.run_process(
        plfs.write_subset("bar", "m", backend="hdd", nbytes=int(10 * MB))
    )
    hdd_before = plfs.backends["hdd"].device.busy.busy_time("plfs")
    sim.run_process(plfs.read_subset("bar", "p"))
    assert plfs.backends["hdd"].device.busy.busy_time("plfs") == hdd_before


def test_parallel_subset_read_overlaps_backends():
    """Reading the whole container overlaps SSD and HDD work."""
    sim = Simulator()
    plfs = _plfs(sim, ssd_speed=1000.0, hdd_speed=100.0)
    sim.run_process(
        plfs.write_subset("bar", "p", backend="ssd", nbytes=int(100 * MB))
    )
    sim.run_process(
        plfs.write_subset("bar", "m", backend="hdd", nbytes=int(100 * MB))
    )
    t0 = sim.now
    sim.run_process(plfs.read_container("bar"))
    # HDD (1.0 s) dominates; SSD's 0.1 s hides inside it.
    assert sim.now - t0 == pytest.approx(1.0, rel=0.05)


def test_virtual_subsets_flow_through():
    sim = Simulator()
    plfs = _plfs(sim)
    sim.run_process(plfs.write_subset("bar", "p", backend="ssd", nbytes=10**9))
    obj = sim.run_process(plfs.read_subset("bar", "p"))
    assert obj.is_virtual
    assert obj.nbytes == 10**9
