"""Tests for the tiered block cache and the CachedFS coherence fixes."""

import pytest

from repro.fs import LocalFS
from repro.fs.cache import DERIVED_SUBSET, BlockCache, CachedFS
from repro.sim import Simulator
from repro.storage import DevicePower, DeviceSpec
from repro.units import GB, KB, MB, MiB, gbps, mbps


def _inner(sim, read=100.0):
    spec = DeviceSpec(
        name="disk",
        read_bw=mbps(read),
        write_bw=mbps(read),
        seek_latency_s=0.0,
        capacity=100 * GB,
        power=DevicePower(active_w=5.0, idle_w=1.0),
    )
    return LocalFS(sim, spec, metadata_latency_s=0.0)


# -- CachedFS coherence (the stale-read regressions) -------------------------


def test_concurrent_overwrite_cannot_tear_a_cached_read():
    """A read in flight during an overwrite returns a consistent snapshot.

    Before the fix the read-hit path re-fetched data after paying its
    memory-time timeout, so a 1 GB cached read overlapping a tiny fast
    overwrite returned the *new* bytes with the *old* size -- torn.
    """
    sim = Simulator()
    fs = CachedFS(_inner(sim, read=1000.0), 4 * GB)
    old = b"a" * int(1 * MB)
    new = b"b" * 10
    sim.run_process(fs.write("f", data=old))
    assert fs.is_cached("f")

    def overwrite():
        # Land mid-read: the cached read pays ~1MB / 6 GB/s of memory time.
        yield sim.timeout(1e-5)
        yield from fs.write("f", data=new)

    sim.process(overwrite(), name="overwrite")
    obj = sim.run_process(fs.read("f"))
    assert obj.data == old  # the snapshot the reader started with
    assert obj.nbytes == len(old)  # ... and a size that matches it
    # The overwrite both invalidated and re-populated the cache.
    assert fs.invalidations >= 1
    assert sim.run_process(fs.read("f")).data == new


def test_overwrite_invalidates_before_backend_charge():
    sim = Simulator()
    fs = CachedFS(_inner(sim), 1 * GB)
    sim.run_process(fs.write("f", data=b"x" * 1000))
    assert fs.is_cached("f")
    sim.run_process(fs.write("f", data=b"y" * 1000))
    assert fs.invalidations == 1
    assert sim.run_process(fs.read("f")).data == b"y" * 1000


# -- BlockCache: tiers, LRU, accounting --------------------------------------


def _block_cache(sim, l1=1 * MiB, l2=0.0):
    return BlockCache(sim, l1_capacity_bytes=l1, l2_capacity_bytes=l2)


def test_lookup_miss_then_hit():
    sim = Simulator()
    cache = _block_cache(sim)
    key = ("bar.xtc", "p", 0)
    assert sim.run_process(cache.lookup(key)) is None
    cache.admit(key, 1000, data=b"z" * 1000)
    block = sim.run_process(cache.lookup(key))
    assert block is not None and block.data == b"z" * 1000
    assert cache.misses == 1 and cache.hits_l1 == 1


def test_l1_hit_pays_memory_bandwidth_time():
    sim = Simulator()
    cache = BlockCache(sim, l1_capacity_bytes=1 * GB, l1_bandwidth=gbps(6.0))
    cache.admit(("f", "p", 0), int(600 * MB))
    t0 = sim.now
    sim.run_process(cache.lookup(("f", "p", 0)))
    assert sim.now - t0 == pytest.approx(0.1, rel=0.01)


def test_eviction_demotes_to_l2_and_promotes_back():
    sim = Simulator()
    cache = _block_cache(sim, l1=int(250 * KB), l2=int(1 * MB))
    for chunk in range(3):
        cache.admit(("f", "p", chunk), int(100 * KB))
    # chunk 0 was demoted to the SSD tier, not dropped.
    assert cache.demotions == 1
    assert ("f", "p", 0) in cache
    t0 = sim.now
    block = sim.run_process(cache.lookup(("f", "p", 0)))
    assert block is not None
    assert cache.hits_l2 == 1
    # L2 pays its latency floor; an L1 hit of the same size costs far less.
    l2_time = sim.now - t0
    t0 = sim.now
    sim.run_process(cache.lookup(("f", "p", 0)))  # promoted: now an L1 hit
    assert cache.hits_l1 == 1
    assert sim.now - t0 < l2_time


def test_eviction_without_l2_drops():
    sim = Simulator()
    cache = _block_cache(sim, l1=int(250 * KB), l2=0.0)
    for chunk in range(3):
        cache.admit(("f", "p", chunk), int(100 * KB))
    assert cache.evictions >= 1
    assert ("f", "p", 0) not in cache
    assert cache.l1_bytes <= 250 * KB


def test_oversized_block_bypasses():
    sim = Simulator()
    cache = _block_cache(sim, l1=int(50 * KB))
    cache.admit(("f", "p", 0), int(100 * KB))
    assert ("f", "p", 0) not in cache
    assert len(cache) == 0


def test_invalidate_wildcards():
    sim = Simulator()
    cache = _block_cache(sim)
    cache.admit(("a", "p", 0), 10)
    cache.admit(("a", "p", 1), 10)
    cache.admit(("a", "m", 0), 10)
    cache.admit(("b", "p", 0), 10)
    cache.admit(("a", "p", DERIVED_SUBSET), 20)
    assert cache.invalidate(logical="a", chunk=DERIVED_SUBSET) == 1
    assert cache.invalidate(logical="a", tag="m") == 1
    assert cache.invalidate(logical="a") == 2
    assert ("b", "p", 0) in cache
    assert cache.invalidations == 4


def test_pressure_tracks_l1_occupancy():
    sim = Simulator()
    cache = _block_cache(sim, l1=int(1 * MB))
    assert cache.pressure() == 0.0
    cache.admit(("f", "p", 0), int(500 * KB))
    assert cache.pressure() == pytest.approx(0.5)


def test_prefetched_accounting_hit_and_wasted():
    sim = Simulator()
    cache = _block_cache(sim, l1=int(250 * KB))
    cache.admit(("f", "p", 0), int(100 * KB), prefetched=True)
    sim.run_process(cache.lookup(("f", "p", 0)))
    assert cache.prefetch_hits == 1
    cache.admit(("f", "p", 1), int(100 * KB), prefetched=True)
    cache.admit(("f", "p", 2), int(100 * KB))
    cache.admit(("f", "p", 3), int(100 * KB))  # evicts 1, never used
    assert cache.prefetch_wasted == 1


def test_stats_schema():
    sim = Simulator()
    cache = _block_cache(sim)
    cache.admit(("f", "p", 0), 10)
    sim.run_process(cache.lookup(("f", "p", 0)))
    stats = cache.stats()
    for key in (
        "l1_bytes",
        "l2_bytes",
        "blocks",
        "hits_l1",
        "hits_l2",
        "misses",
        "hit_ratio",
        "demotions",
        "evictions",
        "invalidations",
        "prefetch_hits",
        "prefetch_wasted",
        "pressure",
    ):
        assert key in stats
    assert stats["hit_ratio"] == 1.0


# -- precision tiers share the cache without colliding ------------------------


def test_lod_and_full_tiers_never_collide():
    """The tier rides in the tag, so the same chunk cached coarse can
    never satisfy (or poison) a full-precision lookup -- and vice versa."""
    sim = Simulator()
    cache = _block_cache(sim)
    full_key = ("bar.xtc", "p", 0)
    lod_key = ("bar.xtc", "lod:p", 0)
    cache.admit(lod_key, 250, data=b"c" * 250)

    # A full-precision lookup of the same logical chunk is a miss.
    assert sim.run_process(cache.lookup(full_key)) is None
    assert cache.misses == 1 and cache.hits_l1 == 0

    cache.admit(full_key, 1000, data=b"f" * 1000)
    exact = sim.run_process(cache.lookup(full_key))
    coarse = sim.run_process(cache.lookup(lod_key))
    assert exact.data == b"f" * 1000
    assert coarse.data == b"c" * 250
    assert cache.hits_l1 == 2

    # Accounting sees two distinct blocks, bytes summed per tier.
    stats = cache.stats()
    assert stats["blocks"] == 2
    assert stats["l1_bytes"] == 1250

    # Invalidating the dataset's full tier leaves the coarse tier alone
    # only if asked per-tag; whole-logical invalidation drops both.
    cache.invalidate(logical="bar.xtc", tag="p")
    assert sim.run_process(cache.lookup(full_key)) is None
    assert sim.run_process(cache.lookup(lod_key)) is not None
    cache.invalidate(logical="bar.xtc")
    assert sim.run_process(cache.lookup(lod_key)) is None
