"""Tests for shared FS helpers and the StoredObject contract."""

import pytest

from repro.fs.base import FileSystem, StoredObject


def test_payload_size_from_data():
    assert FileSystem._payload_size(b"abcde", None) == 5


def test_payload_size_from_nbytes():
    assert FileSystem._payload_size(None, 1234) == 1234


def test_payload_size_requires_one():
    with pytest.raises(ValueError):
        FileSystem._payload_size(None, None)


@pytest.mark.parametrize(
    "nbytes,request_size,expected",
    [
        (100, None, 1),
        (100, 0, 1),
        (0, 10, 1),
        (100, 100, 1),
        (101, 100, 2),
        (1000, 64, 16),
        (1001, 64, 16),
        (1025, 64, 17),
    ],
)
def test_request_count(nbytes, request_size, expected):
    assert FileSystem._request_count(nbytes, request_size) == expected


def test_stored_object_virtuality():
    assert StoredObject(path="p", nbytes=5).is_virtual
    assert not StoredObject(path="p", nbytes=5, data=b"12345").is_virtual


def test_stored_object_is_frozen():
    obj = StoredObject(path="p", nbytes=5)
    with pytest.raises(AttributeError):
        obj.nbytes = 10
