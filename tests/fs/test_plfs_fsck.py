"""Tests for PLFS container integrity checking."""

import pytest

from repro.fs import LocalFS, PLFS
from repro.sim import Simulator
from repro.storage import NVME_SSD_256GB, WD_1TB_HDD


@pytest.fixture
def plfs():
    sim = Simulator()
    fs = PLFS(
        sim,
        backends={
            "ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd"),
            "hdd": LocalFS(sim, WD_1TB_HDD, name="hdd"),
        },
    )
    sim.run_process(fs.write_subset("bar", "p", backend="ssd", data=b"pppp"))
    sim.run_process(fs.write_subset("bar", "m", backend="hdd", data=b"mm"))
    sim.run_process(fs.write_subset("baz", "p", backend="ssd", data=b"x"))
    return sim, fs


def test_healthy_containers_pass(plfs):
    _, fs = plfs
    report = fs.fsck()
    assert report["ok"]
    assert report["missing"] == []
    assert report["size_mismatch"] == []
    assert report["orphaned"] == []


def test_missing_chunk_detected(plfs):
    _, fs = plfs
    fs.backends["ssd"].delete("bar.plfs/subset.p/data.0")
    report = fs.fsck("bar")
    assert not report["ok"]
    assert report["missing"] == ["bar.plfs/subset.p/data.0"]


def test_size_mismatch_detected(plfs):
    _, fs = plfs
    fs.backends["hdd"].store.put("bar.plfs/subset.m/data.0", data=b"wrong-size")
    report = fs.fsck("bar")
    assert report["size_mismatch"] == ["bar.plfs/subset.m/data.0"]


def test_orphan_detected(plfs):
    _, fs = plfs
    fs.backends["ssd"].store.put("bar.plfs/subset.z/data.9", data=b"lost")
    report = fs.fsck("bar")
    assert report["orphaned"] == ["ssd:bar.plfs/subset.z/data.9"]
    assert not report["ok"]


def test_scoped_fsck_ignores_other_containers(plfs):
    _, fs = plfs
    fs.backends["ssd"].delete("baz.plfs/subset.p/data.0")
    assert fs.fsck("bar")["ok"]
    assert not fs.fsck("baz")["ok"]
    assert not fs.fsck()["ok"]  # global scan sees it


def test_fsck_after_spilled_ingest():
    """A spill-completed ingest is still fully consistent."""
    from repro.core import ADA
    from repro.storage import DevicePower, DeviceSpec
    from repro.units import mbps
    from repro.workloads import build_workload

    workload = build_workload(natoms=1000, nframes=4, seed=201)
    sim = Simulator()
    tiny_ssd = DeviceSpec(
        name="tiny", read_bw=mbps(1000), write_bw=mbps(1000),
        seek_latency_s=0.0, capacity=1000,
        power=DevicePower(active_w=1.0, idle_w=0.5),
    )
    ada = ADA(
        sim,
        backends={
            "ssd": LocalFS(sim, tiny_ssd, name="ssd"),
            "hdd": LocalFS(sim, WD_1TB_HDD, name="hdd"),
        },
    )
    sim.run_process(ada.ingest("s.xtc", workload.pdb_text, workload.xtc_blob))
    assert ada.stats()["spills"]
    assert ada.plfs.fsck()["ok"]
