"""Coalesced chunk-run writes: ``PLFS.write_chunk_run`` + ``write_span``.

The write-side mirror of the read path's span coalescing: one metadata
operation and one seek-amortized device transfer per backend run, while
every chunk keeps its own index record and CRC-32.  The failure contract
is run-scoped: capacity is claimed before any store (``StorageFullError``
spills the whole run), a mid-span fault leaves no partial objects, and an
index-flush fault rolls back every chunk of the run.
"""

import zlib

import pytest

from repro.errors import (
    ConfigurationError,
    StorageFullError,
    TransientFaultError,
)
from repro.fs.base import FileSystem, StoredObject
from repro.fs.localfs import LocalFS
from repro.fs.plfs import PLFS
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator
from repro.storage import DevicePower, DeviceSpec
from repro.units import GB, mbps


def _spec(name, capacity=GB, seek_s=8e-3):
    return DeviceSpec(
        name=name,
        read_bw=mbps(100),
        write_bw=mbps(100),
        seek_latency_s=seek_s,
        capacity=capacity,
        power=DevicePower(active_w=5.0, idle_w=1.0),
    )


def _plfs(capacity=GB, seek_s=8e-3):
    """PLFS over one data backend plus a separate metadata backend, so
    device-op assertions on the data disk are not muddied by index flushes."""
    sim = Simulator()
    sim.metrics = MetricsRegistry()
    backends = {
        "hdd": LocalFS(sim, _spec("hdd", capacity, seek_s), name="hdd"),
        "meta": LocalFS(sim, _spec("meta"), name="meta"),
    }
    return sim, PLFS(sim, backends, metadata_backend="meta")


ENTRIES = [("m", b"misc-bytes-0"), ("p", b"protein-bytes-00")]


def test_write_chunk_run_happy_path():
    sim, plfs = _plfs()
    records = sim.run_process(
        plfs.write_chunk_run("bar.xtc", ENTRIES, backend="hdd")
    )
    assert [(r.tag, r.chunk) for r in records] == [("m", 0), ("p", 0)]
    hdd = plfs.backends["hdd"]
    for record, (tag, data) in zip(records, ENTRIES):
        assert record.backend == "hdd"
        assert record.path == PLFS.chunk_path("bar.xtc", tag, 0)
        assert record.nbytes == len(data)
        assert record.crc == zlib.crc32(data)
        assert hdd.store.data(record.path) == data
        plfs.verify_chunk(record, StoredObject(record.path, len(data), data))
    # The index flushed once and round-trips through a fresh PLFS view.
    fresh = PLFS(sim, plfs.backends, metadata_backend="meta")
    assert fresh.container_index("bar.xtc") == records
    assert plfs.fsck("bar.xtc")["ok"]


def test_chunk_numbers_continue_across_runs():
    sim, plfs = _plfs()
    first = sim.run_process(
        plfs.write_chunk_run("bar.xtc", ENTRIES, backend="hdd")
    )
    second = sim.run_process(
        plfs.write_chunk_run("bar.xtc", ENTRIES, backend="hdd")
    )
    assert [(r.tag, r.chunk) for r in first] == [("m", 0), ("p", 0)]
    assert [(r.tag, r.chunk) for r in second] == [("m", 1), ("p", 1)]
    assert plfs.subset_nbytes("bar.xtc", "p") == 2 * len(ENTRIES[1][1])


def test_empty_run_is_a_no_op():
    sim, plfs = _plfs()
    assert sim.run_process(plfs.write_chunk_run("bar.xtc", [], backend="hdd")) == []
    assert not plfs.exists("bar.xtc")


def test_unknown_backend_rejected():
    sim, plfs = _plfs()
    with pytest.raises(ConfigurationError):
        sim.run_process(plfs.write_chunk_run("bar.xtc", ENTRIES, backend="nope"))


def test_coalesced_run_pays_one_device_write():
    def ops(sim):
        counter = sim.metrics.counter(
            "device_ops_total", device="hdd", op="write"
        )
        return int(counter.value)

    sim_c, plfs_c = _plfs()
    sim_c.run_process(
        plfs_c.write_chunk_run("bar.xtc", ENTRIES * 2, backend="hdd")
    )
    sim_u, plfs_u = _plfs()
    sim_u.run_process(
        plfs_u.write_chunk_run(
            "bar.xtc", ENTRIES * 2, backend="hdd", coalesce=False
        )
    )
    assert ops(sim_c) == 1
    assert ops(sim_u) == len(ENTRIES * 2)
    # Same chunks landed either way; only the request count differs.
    assert plfs_c.container_index("bar.xtc") == plfs_u.container_index("bar.xtc")
    # Seek amortization: the coalesced run is strictly faster in sim time.
    assert sim_c.now < sim_u.now


def test_index_flush_fault_rolls_back_whole_run():
    sim, plfs = _plfs()

    def failing_flush(logical):
        raise TransientFaultError("index flush lost")
        yield  # pragma: no cover

    real_flush = plfs._flush_index
    plfs._flush_index = failing_flush
    with pytest.raises(TransientFaultError):
        sim.run_process(plfs.write_chunk_run("bar.xtc", ENTRIES, backend="hdd"))
    # No index records, no chunk objects left behind.
    assert plfs._indexes["bar.xtc"] == []
    assert list(plfs.backends["hdd"].store.walk()) == []
    # A retry rewrites cleanly: counters left gaps, names are never reused.
    plfs._flush_index = real_flush
    records = sim.run_process(
        plfs.write_chunk_run("bar.xtc", ENTRIES, backend="hdd")
    )
    assert [(r.tag, r.chunk) for r in records] == [("m", 1), ("p", 1)]
    assert plfs.fsck("bar.xtc")["ok"]


def test_storage_full_propagates_before_any_store():
    sim, plfs = _plfs(capacity=8)  # smaller than the run's total
    hdd = plfs.backends["hdd"]
    with pytest.raises(StorageFullError):
        sim.run_process(plfs.write_chunk_run("bar.xtc", ENTRIES, backend="hdd"))
    assert list(hdd.store.walk()) == []
    assert hdd.device.used_bytes == 0  # reservation released, not leaked
    assert "bar.xtc" not in plfs._indexes or plfs._indexes["bar.xtc"] == []


def test_localfs_write_span_fault_leaves_no_partial_objects():
    from repro.faults import FaultPlan, FaultSpec

    sim = Simulator()
    fs = LocalFS(sim, _spec("hdd"), name="hdd")
    FaultPlan(seed=3, sites={"fs:hdd": FaultSpec(transient_rate=1.0)}).attach(fs)
    with pytest.raises(TransientFaultError):
        sim.run_process(fs.write_span([("a", b"aa"), ("b", b"bb")]))
    assert list(fs.store.walk()) == []
    assert fs.device.used_bytes == 0


class _FlakyFS(FileSystem):
    """Minimal base-class FS whose write fails on one marked path."""

    def __init__(self, sim, fail_on):
        super().__init__(sim, "flaky")
        self.fail_on = fail_on

    def write(self, path, data=None, nbytes=None, request_size=None,
              label="write"):
        yield self.sim.timeout(1e-6)
        if path == self.fail_on:
            raise TransientFaultError(f"flaky: {path}")
        size = self._payload_size(data, nbytes)
        self.store.put(path, data=data, nbytes=size)
        self.bytes_written += size
        return StoredObject(path=path, nbytes=size, data=data)

    def read(self, path, request_size=None, label="read"):
        yield self.sim.timeout(1e-6)
        return StoredObject(
            path=path, nbytes=self.store.nbytes(path), data=self.store.data(path)
        )


def test_base_write_span_fallback_rolls_back_stored_prefix():
    sim = Simulator()
    fs = _FlakyFS(sim, fail_on="b")
    with pytest.raises(TransientFaultError):
        sim.run_process(fs.write_span([("a", b"aa"), ("b", b"bb"), ("c", b"cc")]))
    # "a" was stored before "b" failed; the fallback deleted it again.
    assert list(fs.store.walk()) == []
