"""Tests for the page-cache FS wrapper."""

import pytest

from repro.errors import ConfigurationError
from repro.fs import LocalFS
from repro.fs.cache import CachedFS
from repro.sim import Simulator
from repro.storage import DevicePower, DeviceSpec
from repro.units import GB, MB, mbps


def _inner(sim, read=100.0):
    spec = DeviceSpec(
        name="disk",
        read_bw=mbps(read),
        write_bw=mbps(read),
        seek_latency_s=0.0,
        capacity=100 * GB,
        power=DevicePower(active_w=5.0, idle_w=1.0),
    )
    return LocalFS(sim, spec, metadata_latency_s=0.0)


def _cached(sim, capacity=1 * GB, read=100.0, mem_bw=mbps(6000)):
    return CachedFS(_inner(sim, read), capacity, memory_bandwidth=mem_bw)


def test_validation():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        CachedFS(_inner(sim), 0)
    with pytest.raises(ConfigurationError):
        CachedFS(_inner(sim), 1 * GB, memory_bandwidth=0)


def test_first_read_misses_second_hits():
    sim = Simulator()
    fs = _cached(sim)
    sim.run_process(fs.write("f", nbytes=int(100 * MB)))
    fs.invalidate()
    t0 = sim.now
    sim.run_process(fs.read("f"))
    cold = sim.now - t0
    t0 = sim.now
    sim.run_process(fs.read("f"))
    warm = sim.now - t0
    assert fs.misses == 1 and fs.hits == 1
    assert cold == pytest.approx(1.0, rel=0.01)
    assert warm < cold / 20  # memory speed


def test_write_through_populates_cache():
    sim = Simulator()
    fs = _cached(sim)
    sim.run_process(fs.write("f", data=b"x" * 1000))
    assert fs.is_cached("f")
    obj = sim.run_process(fs.read("f"))
    assert fs.hits == 1
    assert obj.data == b"x" * 1000


def test_lru_eviction_under_pressure():
    sim = Simulator()
    fs = _cached(sim, capacity=int(250 * MB))
    for name in ("a", "b", "c"):
        sim.run_process(fs.write(name, nbytes=int(100 * MB)))
    # a was evicted (250 MB cap, 300 MB written).
    assert not fs.is_cached("a")
    assert fs.is_cached("b") and fs.is_cached("c")
    assert fs.cached_bytes <= 250 * MB


def test_lru_recency_ordering():
    sim = Simulator()
    fs = _cached(sim, capacity=int(250 * MB))
    sim.run_process(fs.write("a", nbytes=int(100 * MB)))
    sim.run_process(fs.write("b", nbytes=int(100 * MB)))
    sim.run_process(fs.read("a"))  # refresh a
    sim.run_process(fs.write("c", nbytes=int(100 * MB)))
    assert fs.is_cached("a")
    assert not fs.is_cached("b")


def test_oversized_object_bypasses_cache():
    sim = Simulator()
    fs = _cached(sim, capacity=int(50 * MB))
    sim.run_process(fs.write("big", nbytes=int(100 * MB)))
    assert not fs.is_cached("big")


def test_invalidate_single_path():
    sim = Simulator()
    fs = _cached(sim)
    sim.run_process(fs.write("f", nbytes=1000))
    fs.invalidate("f")
    assert not fs.is_cached("f")


def test_namespace_shared_with_inner():
    sim = Simulator()
    inner = _inner(sim)
    fs = CachedFS(inner, 1 * GB)
    sim.run_process(fs.write("f", data=b"abc"))
    assert inner.exists("f")
    assert inner.data("f") == b"abc"
