"""Property-based tests for PVFS striping arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs import PVFS, StorageTarget
from repro.sim import Simulator
from repro.storage import Device, DevicePower, DeviceSpec
from repro.units import GB, mbps


def _pvfs(n_targets, stripe_size):
    sim = Simulator()
    spec = DeviceSpec(
        name="d",
        read_bw=mbps(100),
        write_bw=mbps(100),
        seek_latency_s=0.0,
        capacity=100 * GB,
        power=DevicePower(active_w=1.0, idle_w=0.5),
    )
    targets = [StorageTarget(Device(sim, spec, name=f"d{i}")) for i in range(n_targets)]
    return PVFS(sim, targets, stripe_size=stripe_size)


@settings(max_examples=200, deadline=None)
@given(
    n_targets=st.integers(1, 12),
    stripe_size=st.integers(1, 1 << 20),
    nbytes=st.integers(0, 1 << 32),
)
def test_property_stripe_layout_conserves_and_balances(
    n_targets, stripe_size, nbytes
):
    """Layout invariants for any (targets, stripe, size):

    * shares sum exactly to the object size;
    * no share is negative;
    * imbalance never exceeds one stripe plus the tail remainder;
    * byte counts are whole stripes except on the tail target.
    """
    fs = _pvfs(n_targets, stripe_size)
    layout = fs.stripe_layout(nbytes)
    assert len(layout) == n_targets
    assert sum(layout) == nbytes
    assert all(share >= 0 for share in layout)
    assert max(layout) - min(layout) <= 2 * stripe_size
    remainder_targets = sum(1 for s in layout if s % stripe_size != 0)
    assert remainder_targets <= 1


@settings(max_examples=50, deadline=None)
@given(
    n_targets=st.integers(1, 6),
    nbytes=st.integers(1, 1 << 24),
)
def test_property_layout_matches_capacity_accounting(n_targets, nbytes):
    """After a write, per-device used bytes equal the computed layout."""
    fs = _pvfs(n_targets, 64 * 1024)
    fs.sim.run_process(fs.write("obj", nbytes=nbytes))
    layout = fs.stripe_layout(nbytes)
    used = [t.device.used_bytes for t in fs.targets]
    assert used == [float(share) for share in layout]
