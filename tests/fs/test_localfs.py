"""Tests for the single-device local file system."""

import pytest

from repro.errors import FileNotFoundInFSError, StorageFullError
from repro.fs import LocalFS
from repro.sim import Simulator
from repro.storage import DevicePower, DeviceSpec
from repro.units import GB, MB, mbps


def _fs(sim, read=100.0, write=100.0, capacity=10 * GB, **kw):
    spec = DeviceSpec(
        name="disk",
        read_bw=mbps(read),
        write_bw=mbps(write),
        seek_latency_s=0.0,
        capacity=capacity,
        power=DevicePower(active_w=5.0, idle_w=1.0),
    )
    return LocalFS(sim, spec, metadata_latency_s=0.0, **kw)


def test_write_then_read_roundtrip():
    sim = Simulator()
    fs = _fs(sim)
    sim.run_process(fs.write("f.xtc", data=b"payload"))
    obj = sim.run_process(fs.read("f.xtc"))
    assert obj.data == b"payload"
    assert obj.nbytes == 7
    assert not obj.is_virtual


def test_read_missing_raises():
    sim = Simulator()
    fs = _fs(sim)
    with pytest.raises(FileNotFoundInFSError):
        sim.run_process(fs.read("missing"))


def test_timing_matches_device_model():
    sim = Simulator()
    fs = _fs(sim, read=100.0, write=50.0)
    sim.run_process(fs.write("f", nbytes=int(100 * MB)))
    t_write = sim.now
    sim.run_process(fs.read("f"))
    assert t_write == pytest.approx(2.0)
    assert sim.now - t_write == pytest.approx(1.0)


def test_virtual_write_charges_capacity():
    sim = Simulator()
    fs = _fs(sim, capacity=1 * GB)
    sim.run_process(fs.write("big", nbytes=int(0.9 * GB)))
    with pytest.raises(StorageFullError):
        sim.run_process(fs.write("big2", nbytes=int(0.2 * GB)))


def test_virtual_read_returns_sizes():
    sim = Simulator()
    fs = _fs(sim)
    sim.run_process(fs.write("v", nbytes=12345))
    obj = sim.run_process(fs.read("v"))
    assert obj.is_virtual
    assert obj.nbytes == 12345


def test_request_size_adds_seeks():
    sim = Simulator()
    spec = DeviceSpec(
        name="hdd",
        read_bw=mbps(100.0),
        write_bw=mbps(100.0),
        seek_latency_s=0.01,
        capacity=10 * GB,
        power=DevicePower(active_w=5.0, idle_w=1.0),
    )
    fs = LocalFS(sim, spec, metadata_latency_s=0.0)
    sim.run_process(fs.write("f", nbytes=int(10 * MB)))
    t0 = sim.now
    sim.run_process(fs.read("f"))
    bulk = sim.now - t0
    t0 = sim.now
    sim.run_process(fs.read("f", request_size=int(1 * MB)))
    chunked = sim.now - t0
    assert chunked == pytest.approx(bulk + 9 * 0.01)


def test_byte_counters():
    sim = Simulator()
    fs = _fs(sim)
    sim.run_process(fs.write("a", data=b"xx"))
    sim.run_process(fs.read("a"))
    sim.run_process(fs.read("a"))
    assert fs.bytes_written == 2
    assert fs.bytes_read == 4


def test_flavor_label():
    sim = Simulator()
    fs = _fs(sim, flavor="xfs")
    assert fs.flavor == "xfs"
