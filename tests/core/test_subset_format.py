"""Tests for the subset serialization option (raw / xtc / dcd)."""

import numpy as np
import pytest

from repro.core import ADA, DataPreProcessor
from repro.fs import LocalFS
from repro.sim import Simulator
from repro.storage import NVME_SSD_256GB, WD_1TB_HDD
from repro.vmd import VMDSession
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload(natoms=1500, nframes=10, seed=91)


def test_unknown_format_rejected():
    with pytest.raises(ValueError, match="subset format"):
        DataPreProcessor(subset_format="zip")


@pytest.mark.parametrize("fmt", ["raw", "xtc", "dcd"])
def test_subsets_decode_in_every_format(workload, fmt):
    result = DataPreProcessor(subset_format=fmt).process_topology(
        workload.system.topology, workload.xtc_blob
    )
    from repro.core import Decompressor

    dec = Decompressor()
    protein = dec.decompress(result.subsets["p"])
    assert protein.nframes == workload.trajectory.nframes
    assert protein.natoms == result.label_map.atom_count("p")


def test_xtc_subsets_are_much_smaller(workload):
    raw = DataPreProcessor(subset_format="raw").process_topology(
        workload.system.topology, workload.xtc_blob
    )
    xtc = DataPreProcessor(subset_format="xtc").process_topology(
        workload.system.topology, workload.xtc_blob
    )
    total_raw = sum(len(b) for b in raw.subsets.values())
    total_xtc = sum(len(b) for b in xtc.subsets.values())
    assert total_xtc < 0.5 * total_raw


def _ada(sim, fmt):
    return ADA(
        sim,
        backends={
            "ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd"),
            "hdd": LocalFS(sim, WD_1TB_HDD, name="hdd"),
        },
        subset_format=fmt,
    )


@pytest.mark.parametrize("fmt", ["raw", "xtc", "dcd"])
def test_end_to_end_tag_load_per_format(workload, fmt):
    sim = Simulator()
    ada = _ada(sim, fmt)
    sim.run_process(ada.ingest("bar.xtc", workload.pdb_text, workload.xtc_blob))
    session = VMDSession(ada=ada)
    session.mol_new(workload.pdb_text)
    load = session.mol_addfile_tag("bar.xtc", "p")
    assert load.trajectory.nframes == workload.trajectory.nframes
    # Compressed subsets pay inflation at load; raw/dcd do not.
    if fmt == "xtc":
        assert load.decompressed_nbytes > 0
        assert "decompress" in load.timer.seconds
    else:
        assert load.decompressed_nbytes == 0


def test_formats_agree_on_coordinates(workload):
    loads = {}
    for fmt in ("raw", "xtc", "dcd"):
        sim = Simulator()
        ada = _ada(sim, fmt)
        sim.run_process(
            ada.ingest("bar.xtc", workload.pdb_text, workload.xtc_blob)
        )
        session = VMDSession(ada=ada)
        session.mol_new(workload.pdb_text)
        loads[fmt] = session.mol_addfile_tag("bar.xtc", "p").trajectory.coords
    np.testing.assert_array_equal(loads["raw"], loads["dcd"])
    # xtc subsets requantize once more: equal within one quantum.
    np.testing.assert_allclose(loads["xtc"], loads["raw"], atol=0.011)
