"""Tests for dataset lifecycle: deletion frees space everywhere."""

import pytest

from repro.core import ADA
from repro.errors import ContainerError, FileNotFoundInFSError, LabelIndexError
from repro.fs import LocalFS, PVFS, StorageTarget
from repro.sim import Simulator
from repro.storage import Device, NVME_SSD_256GB, WD_1TB_HDD
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload(natoms=1200, nframes=6, seed=141)


def _local_ada(sim):
    return ADA(
        sim,
        backends={
            "ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd"),
            "hdd": LocalFS(sim, WD_1TB_HDD, name="hdd"),
        },
    )


def test_localfs_delete_frees_capacity():
    sim = Simulator()
    fs = LocalFS(sim, NVME_SSD_256GB, name="ssd")
    sim.run_process(fs.write("f", nbytes=10**9))
    assert fs.device.used_bytes == pytest.approx(1e9)
    assert fs.delete("f") == 10**9
    assert fs.device.used_bytes == 0.0


def test_pvfs_delete_frees_every_target():
    sim = Simulator()
    targets = [
        StorageTarget(Device(sim, WD_1TB_HDD, name=f"h{i}")) for i in range(3)
    ]
    fs = PVFS(sim, targets)
    sim.run_process(fs.write("f", nbytes=3 * 10**8))
    assert sum(t.device.used_bytes for t in targets) == pytest.approx(3e8)
    fs.delete("f")
    assert all(t.device.used_bytes == 0.0 for t in targets)


def test_ada_remove_clears_everything(workload):
    sim = Simulator()
    ada = _local_ada(sim)
    receipt = sim.run_process(
        ada.ingest("bar.xtc", workload.pdb_text, workload.xtc_blob)
    )
    total = sum(receipt.subset_sizes.values())
    used_before = sum(
        fs.device.used_bytes for fs in ada.plfs.backends.values()
    )
    freed = ada.remove("bar.xtc")
    assert freed >= total  # subsets + index + label file
    used_after = sum(fs.device.used_bytes for fs in ada.plfs.backends.values())
    assert used_after < used_before - total + 1024
    # All metadata gone.
    with pytest.raises(ContainerError):
        ada.plfs.container_index("bar.xtc")
    with pytest.raises(LabelIndexError):
        ada.label_map("bar.xtc")


def test_reingest_after_remove(workload):
    """A removed name can be ingested again from chunk zero."""
    sim = Simulator()
    ada = _local_ada(sim)
    sim.run_process(ada.ingest("bar.xtc", workload.pdb_text, workload.xtc_blob))
    ada.remove("bar.xtc")
    sim.run_process(ada.ingest("bar.xtc", workload.pdb_text, workload.xtc_blob))
    records = ada.plfs.subset_records("bar.xtc", "p")
    assert [r.chunk for r in records] == [0]
    obj = sim.run_process(ada.fetch("bar.xtc", "p"))
    from repro.formats.xtc import decode_raw

    assert decode_raw(obj.data).nframes == workload.trajectory.nframes


def test_remove_one_of_many_leaves_others(workload):
    sim = Simulator()
    ada = _local_ada(sim)
    sim.run_process(ada.ingest("a.xtc", workload.pdb_text, workload.xtc_blob))
    sim.run_process(ada.ingest("b.xtc", workload.pdb_text, workload.xtc_blob))
    ada.remove("a.xtc")
    assert ada.tags("b.xtc") == ["m", "p"]
    obj = sim.run_process(ada.fetch("b.xtc", "p"))
    assert obj.nbytes > 0
