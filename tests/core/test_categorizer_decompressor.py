"""Tests for the categorizer and decompressor."""

import numpy as np
import pytest

from repro.core import Categorizer, Decompressor, TagPolicy
from repro.datagen import build_gpcr_system, generate_trajectory
from repro.errors import CodecError, TopologyError
from repro.formats import AtomClass, decode_xtc, encode_xtc
from repro.formats.xtc import decode_raw, encode_raw


@pytest.fixture(scope="module")
def system():
    return build_gpcr_system(natoms_target=1500, protein_fraction=0.45, seed=3)


@pytest.fixture(scope="module")
def trajectory(system):
    return generate_trajectory(system, nframes=6, seed=4)


def test_split_covers_every_atom(system, trajectory):
    cat = Categorizer(TagPolicy.protein_vs_misc())
    lm = cat.label(system.topology)
    subsets = cat.split(trajectory, lm)
    assert set(subsets) == {"p", "m"}
    assert sum(s.natoms for s in subsets.values()) == trajectory.natoms
    assert all(s.nframes == trajectory.nframes for s in subsets.values())


def test_split_preserves_coordinates(system, trajectory):
    cat = Categorizer(TagPolicy.protein_vs_misc())
    lm = cat.label(system.topology)
    subsets = cat.split(trajectory, lm)
    protein_idx = lm.indices("p")
    np.testing.assert_array_equal(
        subsets["p"].coords, trajectory.coords[:, protein_idx, :]
    )


def test_split_atom_count_mismatch_rejected(system, trajectory):
    cat = Categorizer(TagPolicy.protein_vs_misc())
    small = build_gpcr_system(natoms_target=800, seed=9)
    lm = cat.label(small.topology)
    with pytest.raises(TopologyError):
        cat.split(trajectory, lm)


def test_split_topology_classes(system):
    cat = Categorizer(TagPolicy.protein_vs_misc())
    lm = cat.label(system.topology)
    topos = cat.split_topology(system.topology, lm)
    assert all(topos["p"].classes == AtomClass.PROTEIN)
    assert not any(topos["m"].classes == AtomClass.PROTEIN)


def test_per_class_split(system, trajectory):
    cat = Categorizer(TagPolicy.per_class())
    lm = cat.label(system.topology)
    subsets = cat.split(trajectory, lm)
    counts = system.topology.counts_by_class()
    assert subsets["w"].natoms == counts[AtomClass.WATER]
    assert subsets["l"].natoms == counts[AtomClass.LIPID]


# -- decompressor ------------------------------------------------------------


def test_sniff_formats(trajectory):
    d = Decompressor()
    assert d.sniff(encode_xtc(trajectory)) == "xtc"
    assert d.sniff(encode_raw(trajectory)) == "raw"
    with pytest.raises(CodecError):
        d.sniff(b"\x00\x00\x00\x00rubbish")
    with pytest.raises(CodecError):
        d.sniff(b"ab")


def test_decompress_xtc(trajectory):
    d = Decompressor()
    out = d.decompress(encode_xtc(trajectory))
    assert out.nframes == trajectory.nframes
    assert np.abs(out.coords - trajectory.coords).max() < 0.01


def test_decompress_raw_passthrough(trajectory):
    d = Decompressor()
    out = d.decompress(encode_raw(trajectory))
    assert out.allclose(trajectory)


def test_is_compressed(trajectory):
    d = Decompressor()
    assert d.is_compressed(encode_xtc(trajectory))
    assert not d.is_compressed(encode_raw(trajectory))


def test_frame_count_without_decode(trajectory):
    d = Decompressor()
    assert d.frame_count(encode_xtc(trajectory)) == trajectory.nframes
    assert d.frame_count(encode_raw(trajectory)) == trajectory.nframes


def test_raw_nbytes_matches_payload(trajectory):
    d = Decompressor()
    assert d.raw_nbytes(encode_xtc(trajectory)) == trajectory.nbytes


# -- frame-index cache + worker wiring -----------------------------------------


def test_index_cache_shares_one_scan(trajectory):
    d = Decompressor()
    blob = encode_xtc(trajectory)
    d.frame_count(blob)
    d.raw_nbytes(blob)
    d.decompress(blob)
    assert d.index_misses == 1
    assert d.index_hits == 2


def test_index_cache_identity_keyed(trajectory):
    d = Decompressor(index_cache_size=1)
    a = encode_xtc(trajectory)
    b = encode_xtc(trajectory, keyframe_interval=2)
    assert d.frame_index(a) is d.frame_index(a)
    d.frame_index(b)  # evicts a (LRU of size 1)
    d.frame_index(a)
    assert d.index_misses == 3


def test_index_cache_disabled(trajectory):
    d = Decompressor(index_cache_size=0)
    blob = encode_xtc(trajectory)
    d.frame_index(blob)
    d.frame_index(blob)
    assert d.index_hits == 0 and d.index_misses == 2
    with pytest.raises(CodecError):
        Decompressor(index_cache_size=-1)


def test_parallel_decompress_bit_identical(trajectory):
    blob = encode_xtc(trajectory, keyframe_interval=2)
    serial = Decompressor().decompress(blob)
    parallel = Decompressor(workers=4).decompress(blob)
    np.testing.assert_array_equal(serial.coords, parallel.coords)
