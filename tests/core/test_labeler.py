"""Tests for Algorithm 1 (the labeler) and label-file persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LabelMap, TagPolicy, build_label_map
from repro.datagen import build_gpcr_system
from repro.errors import LabelIndexError, TagNotFoundError
from repro.formats import Topology


def _topo(resnames):
    return Topology(
        names=["CA"] * len(resnames),
        resnames=resnames,
        resids=list(range(1, len(resnames) + 1)),
    )


def test_single_run_per_tag():
    lm = build_label_map(
        _topo(["ALA", "ALA", "TIP3", "TIP3", "TIP3"]),
        TagPolicy.protein_vs_misc(),
    )
    assert lm.ranges == {"p": [(0, 2)], "m": [(2, 5)]}


def test_alternating_tags_make_multiple_runs():
    lm = build_label_map(
        _topo(["ALA", "TIP3", "ALA", "TIP3"]), TagPolicy.protein_vs_misc()
    )
    assert lm.ranges["p"] == [(0, 1), (2, 3)]
    assert lm.ranges["m"] == [(1, 2), (3, 4)]
    assert lm.run_count("p") == 2


def test_indices_expand_ranges():
    lm = build_label_map(
        _topo(["ALA", "TIP3", "ALA", "TIP3"]), TagPolicy.protein_vs_misc()
    )
    np.testing.assert_array_equal(lm.indices("p"), [0, 2])
    np.testing.assert_array_equal(lm.indices("m"), [1, 3])


def test_atom_count_and_fraction():
    lm = build_label_map(
        _topo(["ALA", "ALA", "TIP3", "TIP3", "TIP3"]),
        TagPolicy.protein_vs_misc(),
    )
    assert lm.atom_count("p") == 2
    assert lm.fraction("p") == pytest.approx(0.4)


def test_unknown_tag_raises():
    lm = build_label_map(_topo(["ALA"]), TagPolicy.protein_vs_misc())
    with pytest.raises(TagNotFoundError, match="available"):
        lm.indices("z")


def test_empty_topology_empty_map():
    lm = LabelMap(natoms=0)
    lm.validate()
    assert lm.tags == []


def test_gpcr_system_fraction_matches_topology():
    system = build_gpcr_system(natoms_target=3000, protein_fraction=0.44, seed=1)
    lm = build_label_map(system.topology, TagPolicy.protein_vs_misc())
    assert lm.fraction("p") == pytest.approx(system.protein_fraction())
    assert lm.atom_count("p") + lm.atom_count("m") == system.natoms


def test_label_file_roundtrip():
    system = build_gpcr_system(natoms_target=2000, seed=0)
    lm = build_label_map(system.topology, TagPolicy.per_class())
    loaded = LabelMap.from_bytes(lm.to_bytes())
    assert loaded.ranges == lm.ranges
    assert loaded.natoms == lm.natoms


def test_label_file_corruption_detected():
    with pytest.raises(LabelIndexError, match="corrupt"):
        LabelMap.from_bytes(b"not json at all")


def test_label_file_invalid_partition_detected():
    blob = LabelMap(natoms=4, ranges={"p": [(0, 2)], "m": [(3, 4)]}).to_bytes()
    with pytest.raises(LabelIndexError, match="partition"):
        LabelMap.from_bytes(blob)


def test_validate_catches_overlap():
    lm = LabelMap(natoms=4, ranges={"p": [(0, 3)], "m": [(2, 4)]})
    with pytest.raises(LabelIndexError):
        lm.validate()


def test_validate_catches_short_cover():
    lm = LabelMap(natoms=10, ranges={"p": [(0, 4)]})
    with pytest.raises(LabelIndexError):
        lm.validate()


_RESIDUE_POOL = ["ALA", "GLY", "TIP3", "POPC", "SOD", "LIG", "XXX"]


@settings(max_examples=40, deadline=None)
@given(
    resnames=st.lists(st.sampled_from(_RESIDUE_POOL), min_size=1, max_size=60),
    per_class=st.booleans(),
)
def test_property_ranges_partition_atom_space(resnames, per_class):
    """Algorithm 1 invariant: ranges tile [0, natoms) with no gaps/overlap,
    and every atom's tag matches the policy."""
    policy = TagPolicy.per_class() if per_class else TagPolicy.protein_vs_misc()
    topo = _topo(resnames)
    lm = build_label_map(topo, policy)
    lm.validate()  # partition invariant
    tags = policy.atom_tags(topo)
    for tag in lm.tags:
        assert all(tags[lm.indices(tag)] == tag)
    assert sum(lm.atom_count(t) for t in lm.tags) == len(resnames)


@settings(max_examples=30, deadline=None)
@given(resnames=st.lists(st.sampled_from(_RESIDUE_POOL), min_size=1, max_size=40))
def test_property_label_file_roundtrip(resnames):
    lm = build_label_map(_topo(resnames), TagPolicy.per_class())
    assert LabelMap.from_bytes(lm.to_bytes()).ranges == lm.ranges
