"""Regression tests for the read-path bugfix sweep.

* A failed coalesced run must purge its :attr:`IORetriever._inflight`
  entries -- before the fix, a FaultError escaping the AllOf barrier left
  dead Process objects in the dedup map for the life of the retriever.
* The prefetcher must clamp speculative targets at the subset's last
  chunk -- before the fix, only the ``c >= 0`` bound existed, so
  end-of-stream predictions issued doomed windows and inflated the
  ``issued``/``chunks_requested`` counters.
* The multi-tenant sweep: per-tenant cache accounting must survive
  derived whole-subset entries and cross-tenant dedup (charge follows
  use), and the prefetcher's stride state and in-flight cap must be
  keyed per tenant, not global.
"""

import pytest

from repro.core import ADA
from repro.errors import FaultError, PermanentFaultError
from repro.fs.cache import DERIVED_SUBSET, BlockCache
from repro.fs.localfs import LocalFS
from repro.serve import TenantBlockCache
from repro.sim import Simulator
from repro.storage.ssd import NVME_SSD_256GB
from repro.workloads import build_workload

LOGICAL = "reg.xtc"
NCHUNKS = 10


def _chunked_ada(prefetch: bool = False):
    from repro.formats.xtc import encode_raw

    sim = Simulator()
    ada = ADA(
        sim,
        backends={"ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd")},
        block_cache=BlockCache(sim),
        prefetch=prefetch,
    )
    frames_per_chunk = 3
    workload = build_workload(
        natoms=240, nframes=NCHUNKS * frames_per_chunk, seed=9
    )
    blobs = [
        encode_raw(
            workload.trajectory.slice_frames(
                i * frames_per_chunk, (i + 1) * frames_per_chunk
            )
        )
        for i in range(NCHUNKS)
    ]
    sim.run_process(ada.ingest(LOGICAL, workload.pdb_text, blobs[0]))
    for blob in blobs[1:]:
        sim.run_process(ada.ingest_append(LOGICAL, blob))
    return sim, ada


# -- inflight purge on failed coalesced runs --------------------------------


def test_failed_coalesced_run_purges_inflight_map(monkeypatch):
    sim, ada = _chunked_ada()
    retriever = ada.determinator.retriever
    original = ada.plfs.read_chunk_run

    def doomed(records, **kwargs):
        raise PermanentFaultError("injected: backend gone")
        yield  # pragma: no cover - makes this a generator function

    monkeypatch.setattr(ada.plfs, "read_chunk_run", doomed)
    with pytest.raises(FaultError):
        sim.run_process(ada.fetch_chunks(LOGICAL, "p", [0, 1, 2, 3]))
    # The fix: the finally-block purge leaves no dead Process behind.
    assert retriever._inflight == {}

    # And the retriever is fully usable once the backend recovers.
    monkeypatch.setattr(ada.plfs, "read_chunk_run", original)
    objs = sim.run_process(ada.fetch_chunks(LOGICAL, "p", [0, 1, 2, 3]))
    assert len(objs) == 4 and all(o.nbytes > 0 for o in objs)
    assert retriever._inflight == {}


def test_successful_run_also_leaves_inflight_empty():
    sim, ada = _chunked_ada()
    sim.run_process(ada.fetch_chunks(LOGICAL, "p", list(range(NCHUNKS))))
    assert ada.determinator.retriever._inflight == {}


# -- prefetch end-of-stream clamp -------------------------------------------


def test_prefetch_prediction_clamped_at_last_chunk():
    sim, ada = _chunked_ada(prefetch=True)
    prefetcher = ada.prefetcher
    # Train a stride-3 pattern whose next window straddles the end:
    # after [6..9] the prediction is chunks 9..12, but only 9 exists...
    # stride confirms on the third same-stride step.
    prefetcher.observe(LOGICAL, "p", [0, 1, 2, 3])
    prefetcher.observe(LOGICAL, "p", [3, 4, 5, 6])
    proc = prefetcher.observe(LOGICAL, "p", [6, 7, 8, 9])
    assert proc is not None  # ...so a (clamped) window still launches
    assert prefetcher.issued == 1
    assert prefetcher.chunks_requested == 1  # chunk 9 only
    assert prefetcher.suppressed_eof == 3  # 10, 11, 12 never issued
    sim.run()
    assert ada.block_cache.peek((LOGICAL, "p", 9))


def test_prefetch_prediction_entirely_past_eof_is_suppressed():
    sim, ada = _chunked_ada(prefetch=True)
    prefetcher = ada.prefetcher
    prefetcher.observe(LOGICAL, "p", [2, 3])
    prefetcher.observe(LOGICAL, "p", [6, 7])
    proc = prefetcher.observe(LOGICAL, "p", [10, 11])  # hypothetical window
    assert proc is None
    assert prefetcher.issued == 0
    assert prefetcher.chunks_requested == 0
    assert prefetcher.suppressed_eof == 2  # 14 and 15, both past the end
    assert prefetcher.stats()["suppressed_eof"] == 2


# -- per-tenant cache accounting (charge follows use) -----------------------


def _tenant_ada(prefetch: bool = False):
    """Like :func:`_chunked_ada` but with a TenantBlockCache and a stub
    tenant source the test toggles directly (no serving front needed)."""
    from repro.formats.xtc import encode_raw

    current = {"tenant": None}
    sim = Simulator()
    ada = ADA(
        sim,
        backends={"ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd")},
        block_cache=TenantBlockCache(
            sim, tenant_source=lambda: current["tenant"]
        ),
        prefetch=prefetch,
    )
    if prefetch:
        ada.prefetcher.tenant_source = lambda: current["tenant"]
    frames_per_chunk = 3
    workload = build_workload(
        natoms=240, nframes=NCHUNKS * frames_per_chunk, seed=9
    )
    blobs = [
        encode_raw(
            workload.trajectory.slice_frames(
                i * frames_per_chunk, (i + 1) * frames_per_chunk
            )
        )
        for i in range(NCHUNKS)
    ]
    sim.run_process(ada.ingest(LOGICAL, workload.pdb_text, blobs[0]))
    for blob in blobs[1:]:
        sim.run_process(ada.ingest_append(LOGICAL, blob))
    return sim, ada, current


def _charge_is_consistent(cache):
    return sum(cache.charged_bytes(o) for o in set(cache._owner.values())) == (
        cache.l1_bytes
    )


def test_derived_subset_entry_recharged_on_cross_tenant_hit():
    """The whole-subset entry A assembled stops billing A once B uses it.

    Before the fix the derived entry stayed charged to whichever tenant
    happened to assemble it first, silently eating that tenant's quota
    while every neighbor enjoyed the hits.
    """
    sim, ada, current = _tenant_ada()
    key = (LOGICAL, "p", DERIVED_SUBSET)

    current["tenant"] = "a"
    sim.run_process(ada.fetch(LOGICAL, "p"))
    assert ada.block_cache.owner(key) == "a"
    charged_to_a = ada.block_cache.charged_bytes("a")
    assert charged_to_a > 0

    current["tenant"] = "b"
    sim.run_process(ada.fetch(LOGICAL, "p"))
    assert ada.block_cache.owner(key) is None  # community property now
    assert ada.block_cache.cross_tenant_hits >= 1
    assert ada.block_cache.charged_bytes("a") < charged_to_a
    assert ada.block_cache.charged_bytes(None) > 0
    assert _charge_is_consistent(ada.block_cache)


def test_cross_tenant_chunk_reuse_moves_charge_to_shared_pool():
    """B consuming blocks A faulted in must not leave A holding the bill."""
    sim, ada, current = _tenant_ada()
    cache = ada.block_cache

    current["tenant"] = "a"
    sim.run_process(ada.fetch_chunks(LOGICAL, "p", [0, 1, 2]))
    for chunk in (0, 1, 2):
        assert cache.owner((LOGICAL, "p", chunk)) == "a"

    current["tenant"] = "b"
    sim.run_process(ada.fetch_chunks(LOGICAL, "p", [0, 1, 2]))
    for chunk in (0, 1, 2):
        assert cache.owner((LOGICAL, "p", chunk)) is None
    assert cache.charged_bytes(None) > 0
    assert _charge_is_consistent(cache)


def test_concurrent_cross_tenant_fetch_keeps_accounting_consistent():
    """Two tenants racing on the same chunks: whoever wins the in-flight
    dedup, the books must still balance and reuse must communalize."""
    sim, ada, current = _tenant_ada()
    cache = ada.block_cache

    def tenant_fetch(name, chunks):
        current["tenant"] = name
        objs = yield from ada.fetch_chunks(LOGICAL, "p", chunks)
        return objs

    def race():
        a = sim.process(tenant_fetch("a", [3, 4, 5]))
        b = sim.process(tenant_fetch("b", [3, 4, 5]))
        yield sim.all_of([a, b])
        return None

    sim.run_process(race())
    assert _charge_is_consistent(cache)
    # A later touch by either tenant settles any single-owner residue.
    current["tenant"] = "b"
    sim.run_process(ada.fetch_chunks(LOGICAL, "p", [3, 4, 5]))
    current["tenant"] = "a"
    sim.run_process(ada.fetch_chunks(LOGICAL, "p", [3, 4, 5]))
    for chunk in (3, 4, 5):
        assert cache.owner((LOGICAL, "p", chunk)) is None
    assert _charge_is_consistent(cache)


# -- per-tenant prefetch streams and in-flight slots ------------------------


def test_stride_detection_survives_cross_tenant_interleaving():
    """Two tenants scrubbing the same dataset confirm *separate* strides.

    With the old global ``(logical, tag)`` stream key, B's windows reset
    A's stride every observation (stride 0), so neither tenant ever
    earned a prefetch under interleaving.
    """
    sim, ada, current = _tenant_ada(prefetch=True)
    prefetcher = ada.prefetcher
    for window in ([0, 1], [2, 3], [4, 5]):
        for tenant in ("a", "b"):
            current["tenant"] = tenant
            prefetcher.observe(LOGICAL, "p", window)
    assert (None, "a", LOGICAL, "p") in prefetcher._streams
    assert (None, "b", LOGICAL, "p") in prefetcher._streams
    assert prefetcher.issued == 2  # both confirmed on their third window
    assert prefetcher.suppressed_inflight == 0
    sim.run()


def test_inflight_cap_is_per_tenant_not_global():
    """A's in-flight speculation must not suppress B's (but still its own)."""
    sim, ada, current = _tenant_ada(prefetch=True)
    prefetcher = ada.prefetcher
    assert prefetcher.max_inflight == 1

    current["tenant"] = "a"
    prefetcher.observe(LOGICAL, "p", [0, 1])
    prefetcher.observe(LOGICAL, "p", [2, 3])
    proc = prefetcher.observe(LOGICAL, "p", [4, 5])
    assert proc is not None and proc.is_alive  # A's slot is now occupied

    # A itself is capped...
    prefetcher.observe(LOGICAL, "p", [6, 7])
    assert prefetcher.suppressed_inflight == 1

    # ...but B is not: its slot is its own.
    current["tenant"] = "b"
    prefetcher.observe(LOGICAL, "p", [0, 1])
    prefetcher.observe(LOGICAL, "p", [2, 3])
    assert prefetcher.observe(LOGICAL, "p", [4, 5]) is not None
    assert prefetcher.suppressed_inflight == 1  # unchanged
    assert prefetcher.issued == 2
    assert set(prefetcher._inflight) == {"a", "b"}
    sim.run()


def test_prefetch_budget_caps_speculative_bytes():
    """A zero budget suppresses speculation and counts it as such."""
    sim, ada, current = _tenant_ada(prefetch=True)
    prefetcher = ada.prefetcher
    prefetcher.budget_source = lambda tenant: 0.0

    current["tenant"] = "a"
    prefetcher.observe(LOGICAL, "p", [0, 1])
    prefetcher.observe(LOGICAL, "p", [2, 3])
    assert prefetcher.observe(LOGICAL, "p", [4, 5]) is None
    assert prefetcher.suppressed_budget == 1
    assert prefetcher.issued == 0

    # No ambient tenant -> single-tenant behavior: budgets do not apply.
    current["tenant"] = None
    prefetcher.observe(LOGICAL, "p", [6, 7])
    prefetcher.observe(LOGICAL, "p", [8, 9])
    # (stream for None confirmed on its second same-stride step)
    assert prefetcher.suppressed_budget == 1
    sim.run()
