"""Regression tests for the read-path bugfix sweep.

* A failed coalesced run must purge its :attr:`IORetriever._inflight`
  entries -- before the fix, a FaultError escaping the AllOf barrier left
  dead Process objects in the dedup map for the life of the retriever.
* The prefetcher must clamp speculative targets at the subset's last
  chunk -- before the fix, only the ``c >= 0`` bound existed, so
  end-of-stream predictions issued doomed windows and inflated the
  ``issued``/``chunks_requested`` counters.
"""

import pytest

from repro.core import ADA
from repro.errors import FaultError, PermanentFaultError
from repro.fs.cache import BlockCache
from repro.fs.localfs import LocalFS
from repro.sim import Simulator
from repro.storage.ssd import NVME_SSD_256GB
from repro.workloads import build_workload

LOGICAL = "reg.xtc"
NCHUNKS = 10


def _chunked_ada(prefetch: bool = False):
    from repro.formats.xtc import encode_raw

    sim = Simulator()
    ada = ADA(
        sim,
        backends={"ssd": LocalFS(sim, NVME_SSD_256GB, name="ssd")},
        block_cache=BlockCache(sim),
        prefetch=prefetch,
    )
    frames_per_chunk = 3
    workload = build_workload(
        natoms=240, nframes=NCHUNKS * frames_per_chunk, seed=9
    )
    blobs = [
        encode_raw(
            workload.trajectory.slice_frames(
                i * frames_per_chunk, (i + 1) * frames_per_chunk
            )
        )
        for i in range(NCHUNKS)
    ]
    sim.run_process(ada.ingest(LOGICAL, workload.pdb_text, blobs[0]))
    for blob in blobs[1:]:
        sim.run_process(ada.ingest_append(LOGICAL, blob))
    return sim, ada


# -- inflight purge on failed coalesced runs --------------------------------


def test_failed_coalesced_run_purges_inflight_map(monkeypatch):
    sim, ada = _chunked_ada()
    retriever = ada.determinator.retriever
    original = ada.plfs.read_chunk_run

    def doomed(records, **kwargs):
        raise PermanentFaultError("injected: backend gone")
        yield  # pragma: no cover - makes this a generator function

    monkeypatch.setattr(ada.plfs, "read_chunk_run", doomed)
    with pytest.raises(FaultError):
        sim.run_process(ada.fetch_chunks(LOGICAL, "p", [0, 1, 2, 3]))
    # The fix: the finally-block purge leaves no dead Process behind.
    assert retriever._inflight == {}

    # And the retriever is fully usable once the backend recovers.
    monkeypatch.setattr(ada.plfs, "read_chunk_run", original)
    objs = sim.run_process(ada.fetch_chunks(LOGICAL, "p", [0, 1, 2, 3]))
    assert len(objs) == 4 and all(o.nbytes > 0 for o in objs)
    assert retriever._inflight == {}


def test_successful_run_also_leaves_inflight_empty():
    sim, ada = _chunked_ada()
    sim.run_process(ada.fetch_chunks(LOGICAL, "p", list(range(NCHUNKS))))
    assert ada.determinator.retriever._inflight == {}


# -- prefetch end-of-stream clamp -------------------------------------------


def test_prefetch_prediction_clamped_at_last_chunk():
    sim, ada = _chunked_ada(prefetch=True)
    prefetcher = ada.prefetcher
    # Train a stride-3 pattern whose next window straddles the end:
    # after [6..9] the prediction is chunks 9..12, but only 9 exists...
    # stride confirms on the third same-stride step.
    prefetcher.observe(LOGICAL, "p", [0, 1, 2, 3])
    prefetcher.observe(LOGICAL, "p", [3, 4, 5, 6])
    proc = prefetcher.observe(LOGICAL, "p", [6, 7, 8, 9])
    assert proc is not None  # ...so a (clamped) window still launches
    assert prefetcher.issued == 1
    assert prefetcher.chunks_requested == 1  # chunk 9 only
    assert prefetcher.suppressed_eof == 3  # 10, 11, 12 never issued
    sim.run()
    assert ada.block_cache.peek((LOGICAL, "p", 9))


def test_prefetch_prediction_entirely_past_eof_is_suppressed():
    sim, ada = _chunked_ada(prefetch=True)
    prefetcher = ada.prefetcher
    prefetcher.observe(LOGICAL, "p", [2, 3])
    prefetcher.observe(LOGICAL, "p", [6, 7])
    proc = prefetcher.observe(LOGICAL, "p", [10, 11])  # hypothetical window
    assert proc is None
    assert prefetcher.issued == 0
    assert prefetcher.chunks_requested == 0
    assert prefetcher.suppressed_eof == 2  # 14 and 15, both past the end
    assert prefetcher.stats()["suppressed_eof"] == 2
